//! Renders a full scene — road network, grid overlay, alarm workload, a
//! subscriber and both kinds of safe region — to `scene.svg` in the
//! current directory. Open it in any browser to *see* what the algorithms
//! compute.
//!
//! Run with: `cargo run --example render_scene`

use spatial_alarms::alarms::{AlarmIndex, AlarmWorkload, SubscriberId, WorkloadConfig};
use spatial_alarms::core::{MwpsrComputer, PyramidComputer, PyramidConfig};
use spatial_alarms::geometry::{Grid, MotionPdf, Point, Rect};
use spatial_alarms::roadnet::{generate_network, NetworkConfig};
use spatial_alarms::viz::SceneRenderer;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let network_config = NetworkConfig::small_test();
    let network = generate_network(&network_config);
    let universe = Rect::new(0.0, 0.0, network_config.universe_side_m, network_config.universe_side_m)?;
    let grid = Grid::new(universe, 1_000.0)?;
    let workload = AlarmWorkload::generate(&WorkloadConfig {
        alarms: 40,
        subscribers: 10,
        universe,
        region_half_extent_m: (80.0, 220.0),
        ..WorkloadConfig::default()
    });
    let index = AlarmIndex::build(workload.alarms().to_vec());

    let user = SubscriberId(3);
    let pos = Point::new(1_450.0, 2_350.0);
    let cell = grid.cell_rect(grid.cell_of(pos));
    let obstacles: Vec<Rect> =
        index.relevant_intersecting(user, cell).iter().map(|a| a.region()).collect();

    let rect_region =
        MwpsrComputer::new(MotionPdf::new(1.0, 32)?).compute(pos, 0.6, cell, &obstacles);
    let bitmap_region =
        PyramidComputer::new(PyramidConfig::three_by_three(4)).compute(cell, &obstacles);

    let svg = SceneRenderer::new(universe, 900)
        .road_network(&network)
        .grid(&grid)
        .alarms(workload.alarms(), Some(user))
        .bitmap_safe_region(&bitmap_region)
        .rect_safe_region(&rect_region)
        .subscriber(pos, " user#3")
        .finish();

    std::fs::write("scene.svg", &svg)?;
    println!("wrote scene.svg ({} bytes)", svg.len());
    println!("  blue rect   = MWPSR safe region (what the client monitors with 4 comparisons)");
    println!("  green cells = PBSR h=4 safe region (bitmap-encoded, {} bits)", bitmap_region.bitmap_size());
    println!("  red/orange  = public / personal alarm regions (dimmed = not relevant to user#3)");
    Ok(())
}
