//! City-scale end-to-end simulation: vehicles commute across a synthetic
//! road network while the distributed safe-region architecture processes
//! their spatial alarms. Compares all five processing strategies on the
//! identical trace and prints the paper's four metric families.
//!
//! Run with: `cargo run --release --example city_simulation`

use spatial_alarms::sim::{
    EnergyModel, ServerCostModel, SimulationConfig, SimulationHarness, StrategyKind,
};

fn main() {
    // A laptop-sized slice of the paper's setup: 200 vehicles for 10
    // simulated minutes against the full 10,000-alarm workload.
    let mut config = SimulationConfig::scaled(0.02);
    config.duration_s = 600.0;
    println!(
        "world: {} vehicles, {} alarms, {:.0} km² universe, {:.0}s at {:.0} Hz",
        config.fleet.vehicles,
        config.workload.alarms,
        config.universe().area() / 1.0e6,
        config.duration_s,
        1.0 / config.sample_period_s
    );

    println!("building harness (network, alarm index, ground truth)...");
    let harness = SimulationHarness::build(&config);
    println!(
        "ground truth: {} alarm firings across {} location samples\n",
        harness.ground_truth().len(),
        harness.total_samples()
    );

    let energy = EnergyModel::default();
    let cost = ServerCostModel::default();
    println!(
        "{:<22} {:>10} {:>12} {:>12} {:>14} {:>9}",
        "strategy", "messages", "% of samples", "downlink Mbps", "energy (mWh)", "server min"
    );
    for kind in [
        StrategyKind::Periodic,
        StrategyKind::SafePeriod,
        StrategyKind::MwpsrNonWeighted,
        StrategyKind::Mwpsr { y: 1.0, z: 32 },
        StrategyKind::Pbsr { height: 5 },
        StrategyKind::Optimal,
    ] {
        let report = harness.run(kind);
        report.assert_accurate(); // 100% of alarms fired, on time
        let (alarm_min, region_min) = report.server_minutes(&cost);
        println!(
            "{:<22} {:>10} {:>11.2}% {:>13.4} {:>14.2} {:>9.3}",
            kind.label(),
            report.metrics.uplink_messages,
            100.0 * report.metrics.uplink_messages as f64 / harness.total_samples() as f64,
            report.downlink_mbps(),
            report.client_energy_mwh(&energy),
            alarm_min + region_min,
        );
    }
    println!("\nevery strategy fired the identical ground-truth alarm sequence (100% accuracy)");
}
