//! Device heterogeneity: the §4 motivation for bitmap safe regions.
//!
//! A fleet of clients with different capability classes receives safe
//! regions tailored to what each device can afford: weak devices get cheap
//! 4-comparison rectangles, strong devices get tall pyramids whose larger
//! safe regions buy radio silence at the price of more CPU per check.
//!
//! Run with: `cargo run --release --example heterogeneous_clients`

use spatial_alarms::alarms::{AlarmIndex, AlarmWorkload, SubscriberId, WorkloadConfig};
use spatial_alarms::core::{MwpsrComputer, PyramidComputer, PyramidConfig, SafeRegion};
use spatial_alarms::geometry::{Grid, MotionPdf, Point, Rect};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// What a device class can afford per GPS fix.
#[derive(Debug, Clone, Copy)]
enum DeviceClass {
    /// Bottom-tier tracker: rectangle only.
    Weak,
    /// Mid-tier phone: shallow pyramid.
    Standard { height: u32 },
    /// Flagship: deep pyramid.
    Powerful { height: u32 },
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let universe = Rect::new(0.0, 0.0, 20_000.0, 20_000.0)?;
    let workload = AlarmWorkload::generate(&WorkloadConfig {
        alarms: 2_000,
        subscribers: 100,
        universe,
        public_fraction: 0.15,
        ..WorkloadConfig::default()
    });
    let index = AlarmIndex::build(workload.alarms().to_vec());
    let grid = Grid::with_cell_area_km2(universe, 2.5)?;
    let mut rng = SmallRng::seed_from_u64(11);

    println!(
        "{:<22} {:>12} {:>14} {:>12} {:>10}",
        "device", "payload bits", "check ops max", "coverage", "safe area"
    );

    for (user_id, class) in [
        (1u32, DeviceClass::Weak),
        (2, DeviceClass::Standard { height: 2 }),
        (3, DeviceClass::Standard { height: 3 }),
        (4, DeviceClass::Powerful { height: 5 }),
        (5, DeviceClass::Powerful { height: 7 }),
    ] {
        let user = SubscriberId(user_id);
        let pos = Point::new(rng.gen_range(2_000.0..18_000.0), rng.gen_range(2_000.0..18_000.0));
        let cell = grid.cell_rect(grid.cell_of(pos));
        let obstacles: Vec<Rect> = index
            .relevant_intersecting(user, cell)
            .iter()
            .map(|a| a.region())
            .collect();

        match class {
            DeviceClass::Weak => {
                let computer = MwpsrComputer::new(MotionPdf::new(1.0, 32)?);
                let region = computer.compute(pos, 0.0, cell, &obstacles);
                println!(
                    "{:<22} {:>12} {:>14} {:>11.1}% {:>7.2} km²",
                    format!("user#{user_id} (weak, rect)"),
                    region.encoded_bits(),
                    region.worst_case_check_ops(),
                    100.0 * region.rect().area() / cell.area(),
                    region.rect().area() / 1.0e6
                );
            }
            DeviceClass::Standard { height } | DeviceClass::Powerful { height } => {
                let computer = PyramidComputer::new(PyramidConfig::three_by_three(height));
                let region = computer.compute(cell, &obstacles);
                println!(
                    "{:<22} {:>12} {:>14} {:>11.1}% {:>7.2} km²",
                    format!("user#{user_id} (pyramid h={height})"),
                    region.encoded_bits(),
                    region.worst_case_check_ops(),
                    100.0 * region.coverage(),
                    region.coverage() * cell.area() / 1.0e6
                );
            }
        }
    }

    println!(
        "\ntaller pyramids trade bigger payloads and deeper checks for larger safe\n\
         regions (fewer server contacts) - the paper's client-heterogeneity knob"
    );
    Ok(())
}
