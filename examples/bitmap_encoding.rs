//! The Figure 3 worked example: bitmap-encoded safe regions.
//!
//! Reconstructs the paper's grid cell with four intersecting alarm regions
//! and shows how GBSR and PBSR encode the same safe region — including the
//! paper's headline numbers: the 9×9 GBSR needs **82 bits** while the
//! height-2 PBSR needs only **64 bits** for a finer representation.
//!
//! Run with: `cargo run --example bitmap_encoding`

use spatial_alarms::core::{PyramidComputer, PyramidConfig, SafeRegion};
use spatial_alarms::geometry::{Point, Rect};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's Figure 3(a): a grid cell with four alarm regions whose
    // 3×3 split yields the bitmap pattern 000 011 010 (top row first).
    let cell = Rect::new(0.0, 0.0, 9.0, 9.0)?;
    let alarms = vec![
        Rect::new(0.0, 6.5, 9.0, 9.0)?, // R(S,A1): spans the whole top band
        Rect::new(0.5, 3.5, 1.5, 5.0)?, // R(S,A2): middle-left
        Rect::new(0.5, 1.0, 1.5, 2.0)?, // R(S,A3): bottom-left
        Rect::new(7.0, 1.0, 8.0, 2.0)?, // R(S,A4): bottom-right
    ];

    println!("grid cell: {cell}");
    for (i, a) in alarms.iter().enumerate() {
        println!("alarm region A{}: {a}", i + 1);
    }

    // Figure 3(b): the coarse 3×3 GBSR.
    let gbsr3 = PyramidComputer::new(PyramidConfig::three_by_three(1)).compute(cell, &alarms);
    println!("\nGBSR 3x3   bitmap: {}", gbsr3.to_bitstring());
    println!("           bits: {:>3}  coverage: {:>5.1}%", gbsr3.bitmap_size(), gbsr3.coverage() * 100.0);

    // Figure 3(c): the fine but wasteful 9×9 GBSR.
    let gbsr9 = PyramidComputer::new(PyramidConfig::gbsr(9, 9)).compute(cell, &alarms);
    println!("GBSR 9x9   bits: {:>3}  coverage: {:>5.1}%", gbsr9.bitmap_size(), gbsr9.coverage() * 100.0);

    // Figure 3(d): the height-2 pyramid — finer *and* smaller.
    let pbsr = PyramidComputer::new(PyramidConfig::three_by_three(2)).compute(cell, &alarms);
    println!("PBSR h=2   bits: {:>3}  coverage: {:>5.1}%", pbsr.bitmap_size(), pbsr.coverage() * 100.0);
    println!("           bitmap: {}", pbsr.to_bitstring());
    assert_eq!(gbsr9.bitmap_size(), 82, "paper: GBSR 9x9 needs 82 bits");
    assert_eq!(pbsr.bitmap_size(), 64, "paper: PBSR h=2 needs 64 bits");

    // Deeper pyramids keep refining where the alarms are.
    println!("\nheight sweep (3x3 pyramid):");
    println!("  h  bits  coverage  worst-case check ops");
    for h in 1..=6 {
        let region = PyramidComputer::new(PyramidConfig::three_by_three(h)).compute(cell, &alarms);
        println!(
            "  {h}  {:>4}  {:>7.1}%  {:>3}",
            region.bitmap_size(),
            region.coverage() * 100.0,
            region.worst_case_check_ops()
        );
    }

    // Client-side containment detection descends at most h levels.
    let pbsr5 = PyramidComputer::new(PyramidConfig::three_by_three(5)).compute(cell, &alarms);
    for p in [Point::new(4.5, 4.5), Point::new(1.0, 4.2), Point::new(0.9, 8.0)] {
        let (inside, levels) = pbsr5.contains_with_cost(p);
        println!(
            "point {p}: {} (descended {levels} level{})",
            if inside { "safe" } else { "blocked" },
            if levels == 1 { "" } else { "s" }
        );
    }
    Ok(())
}
