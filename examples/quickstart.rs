//! Quickstart: install spatial alarms, compute a safe region for a mobile
//! subscriber, and watch the distributed contract in action — while the
//! subscriber stays inside the region, no alarm evaluation is needed
//! anywhere in the system.
//!
//! Run with: `cargo run --example quickstart`

use spatial_alarms::alarms::{AlarmId, AlarmIndex, AlarmScope, SpatialAlarm, SubscriberId};
use spatial_alarms::core::{MwpsrComputer, SafeRegion};
use spatial_alarms::geometry::{Grid, MotionPdf, Point, Rect};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 10 km x 10 km city with a 2 km grid overlay.
    let universe = Rect::new(0.0, 0.0, 10_000.0, 10_000.0)?;
    let grid = Grid::new(universe, 2_000.0)?;

    // Install a few alarms for subscriber 7: "alert me within 500 m of the
    // dry-clean store", plus a public road-hazard alert.
    let me = SubscriberId(7);
    let alarms = vec![
        SpatialAlarm::around_static_target(
            AlarmId(0),
            Point::new(3_200.0, 2_800.0), // the dry-clean store
            500.0,
            AlarmScope::Private { owner: me },
        )?,
        SpatialAlarm::around_static_target(
            AlarmId(1),
            Point::new(1_200.0, 3_600.0), // pothole field on the highway
            300.0,
            AlarmScope::Public { owner: SubscriberId(0) },
        )?,
        SpatialAlarm::around_static_target(
            AlarmId(2),
            Point::new(8_500.0, 8_500.0), // someone else's private alarm
            400.0,
            AlarmScope::Private { owner: SubscriberId(9) },
        )?,
    ];
    let index = AlarmIndex::build(alarms);

    // The subscriber drives east through the first grid cell.
    let position = Point::new(2_100.0, 3_000.0);
    let heading = 0.0; // due east
    let cell = grid.cell_rect(grid.cell_of(position));

    // Server side: gather the relevant alarms intersecting the cell and
    // compute the maximum weighted perimeter rectangular safe region.
    let relevant = index.relevant_intersecting(me, cell);
    println!("relevant alarms in the current cell: {}", relevant.len());
    for alarm in &relevant {
        println!("  {} region {}", alarm.id(), alarm.region());
    }

    let computer = MwpsrComputer::new(MotionPdf::new(1.0, 32)?);
    let obstacle_rects: Vec<Rect> = relevant.iter().map(|a| a.region()).collect();
    let region = computer.compute(position, heading, cell, &obstacle_rects);

    println!("\nsafe region: {}", region.rect());
    println!("encoded size: {} bits", region.encoded_bits());
    println!("containment check cost: {} comparisons", region.worst_case_check_ops());

    // Client side: monitor the position locally. No server contact while
    // the position stays inside.
    for step in 0..6 {
        let pos = Point::new(position.x + step as f64 * 150.0, position.y);
        let inside = region.contains(pos);
        println!(
            "t={step:>2}s position ({:>6.0}, {:>6.0}) -> {}",
            pos.x,
            pos.y,
            if inside { "inside safe region, stay silent" } else { "EXIT: contact server" }
        );
        if !inside {
            break;
        }
    }
    Ok(())
}
