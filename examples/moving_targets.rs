//! Moving-target alarms (taxonomy classes (2)/(3)): "alert me when I am
//! near vehicle X" — the alarm region follows another moving subscriber,
//! requiring server-based coordination (§1).
//!
//! Builds a world with both static and moving alarms, runs the MWPSR
//! strategy wrapped in the moving-target coordinator, and shows that the
//! 100% accuracy guarantee survives while the coordination overhead stays
//! visible in the message counts.
//!
//! Run with: `cargo run --release --example moving_targets`

use spatial_alarms::sim::{SimulationConfig, SimulationHarness, StrategyKind};

fn main() {
    let mut config = SimulationConfig::scaled(0.01);
    config.duration_s = 600.0;
    config.moving_alarms = 12;
    config.moving_alarm_half_extent_m = 250.0;

    println!(
        "world: {} vehicles, {} static alarms, {} moving-target alarms",
        config.fleet.vehicles, config.workload.alarms, config.moving_alarms
    );
    let harness = SimulationHarness::build(&config);
    let table = harness.moving_alarms().expect("moving alarms configured");
    let static_count = harness.index().len() as u64;

    let moving_firings = harness
        .ground_truth()
        .events()
        .iter()
        .filter(|e| e.alarm.0 >= static_count)
        .count();
    println!(
        "ground truth: {} firings total, {} from moving-target alarms",
        harness.ground_truth().len(),
        moving_firings
    );
    for (i, alarm) in table.alarms().iter().enumerate().take(4) {
        println!(
            "  {} follows vehicle {:?} ({})",
            alarm.id(),
            table.target_of(i),
            if alarm.is_public() { "public" } else { "private" }
        );
    }

    // A static-only baseline world for comparison.
    let mut static_config = config.clone();
    static_config.moving_alarms = 0;
    let static_harness = SimulationHarness::build(&static_config);

    let kind = StrategyKind::Mwpsr { y: 1.0, z: 32 };
    let with_moving = harness.run(kind);
    let without = static_harness.run(kind);
    with_moving.assert_accurate();
    without.assert_accurate();

    println!("\nMWPSR with moving-target coordination:");
    println!(
        "  messages: {} (static-only world: {})",
        with_moving.metrics.uplink_messages, without.metrics.uplink_messages
    );
    println!(
        "  triggers: {} (static-only world: {})",
        with_moving.metrics.triggers, without.metrics.triggers
    );
    println!("  accuracy: 100% in both worlds");
    println!(
        "\ncoordination cost: {} extra uplink messages for {} moving alarms",
        with_moving.metrics.uplink_messages - without.metrics.uplink_messages,
        config.moving_alarms
    );
}
