//! Live server demo: start the in-process safe-region server, connect
//! three clients running different strategies — MWPSR rectangles, PBSR
//! pyramid bitmaps (height 5) and the OPT alarm-push baseline — and
//! stream a 60-second slice of the road-network trace through them.
//!
//! Every message crosses the real wire codec; every firing is diffed
//! against the simulator's ground truth at the end.
//!
//! Run with: `cargo run --release --example live_server`

use spatial_alarms::server::wire::StrategySpec;
use spatial_alarms::server::{replay_in_proc, ReplayConfig, ServerConfig, TraceMode};
use spatial_alarms::sim::{SimulationConfig, SimulationHarness};

fn main() {
    // The smoke-test town with exactly three vehicles — one per client.
    let mut config = SimulationConfig::smoke_test();
    config.fleet.vehicles = 3;
    println!("building world + ground truth …");
    let harness = SimulationHarness::build(&config);
    println!(
        "  {} alarms, {}x{} grid cells, {} ground-truth firings over the full trace\n",
        harness.index().len(),
        harness.grid().cols(),
        harness.grid().rows(),
        harness.ground_truth().events().len(),
    );

    let replay_cfg = ReplayConfig {
        steps: Some(60), // one minute at 1 Hz
        server: ServerConfig { num_shards: 4, queue_capacity: 64 },
        trace_mode: TraceMode::Full,
        strategies: vec![
            StrategySpec::Mwpsr,
            StrategySpec::Pbsr { height: 5 },
            StrategySpec::Opt,
        ],
    };
    println!("replaying {} steps through the live server …\n", 60);
    let outcome = replay_in_proc(&harness, &replay_cfg).expect("in-proc transport cannot fail");

    println!(
        "{:<12} {:>8} {:>9} {:>7} {:>7} {:>9} {:>10}",
        "client", "uplinks", "installs", "pushes", "fires", "bytes up", "bytes down"
    );
    for (user, strategy, stats) in &outcome.clients {
        let label = match strategy {
            StrategySpec::Mwpsr => "MWPSR".to_string(),
            StrategySpec::Pbsr { height } => format!("PBSR h={height}"),
            StrategySpec::Opt => "OPT".to_string(),
            StrategySpec::SafePeriod => "safe-period".to_string(),
        };
        println!(
            "{:<12} {:>8} {:>9} {:>7} {:>7} {:>9} {:>10}   (subscriber {})",
            label,
            stats.uplinks,
            stats.region_installs,
            stats.alarm_pushes,
            stats.deliveries + stats.client_fires,
            stats.bytes_up,
            stats.bytes_down,
            user.0,
        );
    }

    // The same Prometheus text a live `StatsRequest` scrape returns —
    // counters, queue gauges, and the per-algorithm latency summaries.
    println!("\n--- final metric state (Prometheus text exposition) ---");
    print!("{}", spatial_alarms::obs::render_snapshot(&outcome.metrics));

    match &outcome.verification {
        Ok(()) => println!(
            "\naccuracy: 100% — all {} firings match the ground truth exactly",
            outcome.fired.len()
        ),
        Err(e) => println!("\nACCURACY VIOLATION: {e}"),
    }
}
