//! Workspace-local subset of `proptest` for offline builds. Supports what
//! the workspace's property tests use: the `proptest!` macro with an
//! optional `#![proptest_config(...)]` header, range/tuple/`Just` strategies,
//! `prop_map`, weighted and unweighted `prop_oneof!`, `prop::collection::vec`,
//! and the `prop_assert*` macros.
//!
//! Differences from the real crate, deliberately accepted for a test-only
//! stub: no shrinking (a failing case panics with the generated values in
//! scope rather than a minimized counterexample), and case generation is
//! seeded deterministically from the test's module path and case index, so
//! failures reproduce exactly across runs.

pub mod test_runner {
    /// Per-test configuration; only the case count is honoured.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic per-case generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator seeded from the test identity and case index, so
        /// every run of a test replays the same case sequence.
        pub fn for_case(test_name: &str, case: u32) -> TestRng {
            let mut state = 0xcbf2_9ce4_8422_2325u64 ^ (case as u64).wrapping_mul(0x9e37);
            for b in test_name.bytes() {
                state ^= b as u64;
                state = state.wrapping_mul(0x0000_0100_0000_01b3);
            }
            let mut rng = TestRng { state };
            rng.next_u64();
            rng
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform float in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform integer in `[0, bound)`; `bound` must be positive.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "empty range");
            self.next_u64() % bound
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    /// A recipe producing values of [`Strategy::Value`].
    pub trait Strategy {
        /// The produced type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            let inner = self;
            BoxedStrategy { generate: Rc::new(move |rng| inner.generate(rng)) }
        }
    }

    /// Always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::boxed`].
    #[derive(Clone)]
    pub struct BoxedStrategy<T> {
        generate: Rc<dyn Fn(&mut TestRng) -> T>,
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (self.generate)(rng)
        }
    }

    /// Weighted choice between boxed strategies (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<(u32, BoxedStrategy<T>)>,
    }

    impl<T> Union<T> {
        /// A union over `(weight, strategy)` pairs.
        ///
        /// # Panics
        ///
        /// Panics when `options` is empty or all weights are zero.
        pub fn new(options: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
            let total: u64 = options.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "prop_oneof! needs at least one positive weight");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let total: u64 = self.options.iter().map(|(w, _)| *w as u64).sum();
            let mut pick = rng.below(total);
            for (w, strat) in &self.options {
                if pick < *w as u64 {
                    return strat.generate(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weights cover the sampled value")
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range");
            self.start + (self.end - self.start) * rng.unit_f64()
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start() <= self.end(), "empty range");
            self.start() + (self.end() - self.start()) * rng.unit_f64()
        }
    }

    macro_rules! int_strategy {
        ($($ty:ty),*) => {$(
            impl Strategy for Range<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add(rng.below(span) as $ty)
                }
            }

            impl Strategy for RangeInclusive<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start() <= self.end(), "empty range");
                    let span = (*self.end() as u64)
                        .wrapping_sub(*self.start() as u64)
                        .wrapping_add(1);
                    if span == 0 {
                        return rng.next_u64() as $ty;
                    }
                    self.start().wrapping_add(rng.below(span) as $ty)
                }
            }
        )*};
    }

    int_strategy!(u8, u16, u32, u64, usize, i32, i64);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
    tuple_strategy!(A, B, C, D, E, F, G);
    tuple_strategy!(A, B, C, D, E, F, G, H);
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Admissible lengths for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        /// Inclusive.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange { min: r.start, max: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange { min: *r.start(), max: *r.end() }
        }
    }

    /// A strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64 + 1;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The glob-import surface used by the tests.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespace mirror of the real crate's `prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines property tests: each `fn` runs its body once per generated case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr)
      $( $(#[$meta:meta])* fn $name:ident ( $($params:tt)* ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $config;
                for __case in 0..__cfg.cases {
                    let mut __rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    $crate::__proptest_bind!(__rng, $($params)*);
                    $body
                }
            }
        )*
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident) => {};
    ($rng:ident,) => {};
    ($rng:ident, $binding:ident in $strat:expr) => {
        let $binding = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
    };
    ($rng:ident, $binding:ident in $strat:expr, $($rest:tt)*) => {
        let $binding = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
        $crate::__proptest_bind!($rng, $($rest)*);
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Weighted (`w => strategy`) or uniform choice between strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( (($weight) as u32, $crate::strategy::Strategy::boxed($strat)) ),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( (1u32, $crate::strategy::Strategy::boxed($strat)) ),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Op {
        Add(u32),
        Clear,
    }

    fn arb_op() -> impl Strategy<Value = Op> {
        prop_oneof![
            3 => (1u32..100).prop_map(Op::Add),
            1 => Just(Op::Clear),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn ranges_and_tuples_stay_in_bounds(
            x in 0.0..10.0f64,
            pair in (1u32..5, 0usize..=3),
            ops in prop::collection::vec(arb_op(), 1..20),
        ) {
            prop_assert!((0.0..10.0).contains(&x));
            prop_assert!((1..5).contains(&pair.0) && pair.1 <= 3);
            prop_assert!(!ops.is_empty() && ops.len() < 20);
            for op in &ops {
                if let Op::Add(n) = op {
                    prop_assert!((1..100).contains(n), "bad {n}");
                }
            }
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(v in 5u64..6) {
            prop_assert_eq!(v, 5);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = crate::test_runner::TestRng::for_case("x", 3);
        let mut b = crate::test_runner::TestRng::for_case("x", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::test_runner::TestRng::for_case("x", 4);
        assert_ne!(b.next_u64(), c.next_u64());
    }
}
