//! Workspace-local subset of the `bytes` crate for offline builds. Backed
//! by plain `Vec<u8>` — no refcounted slices — which is all the workspace
//! needs: building wire payloads (`BytesMut` + [`BufMut`]) and reading them
//! back (`Buf` over `&[u8]`). Multi-byte integers go over the wire
//! big-endian, matching the real crate's `put_*`/`get_*` defaults.

use std::ops::Deref;

/// An immutable byte buffer.
#[derive(Debug, Clone, PartialEq, Eq, Default, Hash)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes { data: data.to_vec() }
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Bytes {
        Bytes { data }
    }
}

impl From<Bytes> for Vec<u8> {
    fn from(b: Bytes) -> Vec<u8> {
        b.data
    }
}

/// A growable byte buffer.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(capacity: usize) -> BytesMut {
        BytesMut { data: Vec::with_capacity(capacity) }
    }

    /// Number of bytes written.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Freezes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Write access to a byte sink. Integers are appended big-endian.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian u16.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian u32.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian u64.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian f32.
    fn put_f32(&mut self, v: f32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian f64.
    fn put_f64(&mut self, v: f64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Read access to a byte source. Integers are consumed big-endian.
///
/// # Panics
///
/// All getters panic when the source has too few bytes remaining, like the
/// real crate.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// The unread bytes.
    fn chunk(&self) -> &[u8];
    /// Skips `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// True when any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a big-endian u16.
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        b.copy_from_slice(&self.chunk()[..2]);
        self.advance(2);
        u16::from_be_bytes(b)
    }

    /// Reads a big-endian u32.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        b.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_be_bytes(b)
    }

    /// Reads a big-endian u64.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_be_bytes(b)
    }

    /// Reads a big-endian f32.
    fn get_f32(&mut self) -> f32 {
        f32::from_bits(self.get_u32())
    }

    /// Reads a big-endian f64.
    fn get_f64(&mut self) -> f64 {
        f64::from_bits(self.get_u64())
    }

    /// Copies `dst.len()` bytes out.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_widths() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u8(7);
        buf.put_u16(0xBEEF);
        buf.put_u32(0xDEAD_BEEF);
        buf.put_u64(0x0123_4567_89AB_CDEF);
        buf.put_f64(-1.5);
        let frozen = buf.freeze();
        assert_eq!(frozen.len(), 1 + 2 + 4 + 8 + 8);
        let mut cursor: &[u8] = frozen.as_ref();
        assert_eq!(cursor.get_u8(), 7);
        assert_eq!(cursor.get_u16(), 0xBEEF);
        assert_eq!(cursor.get_u32(), 0xDEAD_BEEF);
        assert_eq!(cursor.get_u64(), 0x0123_4567_89AB_CDEF);
        assert_eq!(cursor.get_f64(), -1.5);
        assert!(!cursor.has_remaining());
    }

    #[test]
    fn big_endian_layout() {
        let mut buf = Vec::new();
        buf.put_u32(1);
        assert_eq!(buf, [0, 0, 0, 1]);
    }
}
