//! Workspace-local serde stub for offline builds: the real serde is not
//! vendorable in this container, and the workspace only uses
//! `#[derive(Serialize, Deserialize)]` as forward-compatible markers (no
//! serializer backend is wired up yet). The traits are plain markers and
//! the derives expand to nothing; swapping the real serde back in later is
//! a one-line Cargo.toml change.

pub use serde_derive::{Deserialize, Serialize};

/// Marker standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker standing in for `serde::Deserialize<'de>`.
pub trait Deserialize<'de> {}
