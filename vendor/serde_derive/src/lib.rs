//! No-op `Serialize`/`Deserialize` derives for the offline serde stub.
//!
//! The workspace uses the derives purely as markers today (no serializer
//! backend ships in the offline container), so expanding to nothing keeps
//! every annotated type compiling without pulling in syn/quote.

use proc_macro::TokenStream;

/// Accepts and discards a `#[derive(Serialize)]` invocation.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts and discards a `#[derive(Deserialize)]` invocation.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
