//! Workspace-local, dependency-free reimplementation of the subset of the
//! `rand` 0.8 API this repository uses. The container building this
//! workspace has no access to crates.io, so the workspace vendors the few
//! external crates it needs as minimal source-compatible packages.
//!
//! Fidelity matters here: the simulation worlds (road networks, alarm
//! workloads, fleet traces) are generated from seeded `SmallRng` streams,
//! and several tests assert statistical properties of those worlds. The
//! implementation therefore mirrors rand 0.8.5 bit-for-bit for the paths in
//! use:
//!
//! - `SmallRng` is xoshiro256++ with the SplitMix64 `seed_from_u64` fill,
//! - integer `gen_range` uses the widening-multiply rejection sampler,
//! - float `gen_range` uses the 52-bit mantissa `[1, 2)` mapping,
//! - `gen_bool` uses the fixed-point Bernoulli comparison.

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// A seedable generator.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a half-open or inclusive range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli trial with success probability `p`.
    ///
    /// # Panics
    ///
    /// Panics when `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p} out of range");
        if p == 1.0 {
            return true;
        }
        const SCALE: f64 = 2.0 * (1u64 << 63) as f64;
        self.next_u64() < (p * SCALE) as u64
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

/// Converts 52 random mantissa bits into a float in `[1, 2)`.
#[inline]
fn mantissa_to_1_2(bits52: u64) -> f64 {
    f64::from_bits((1023u64 << 52) | bits52)
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> f64 {
        let (low, high) = (self.start, self.end);
        assert!(low < high, "cannot sample empty range {low}..{high}");
        let scale = high - low;
        loop {
            let value1_2 = mantissa_to_1_2(rng.next_u64() >> 12);
            let res = (value1_2 - 1.0) * scale + low;
            if res < high {
                return res;
            }
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> f64 {
        let (low, high) = (*self.start(), *self.end());
        assert!(low <= high, "cannot sample empty range {low}..={high}");
        // rand 0.8.5 UniformFloat::new_inclusive + sample.
        let max_rand = mantissa_to_1_2(u64::MAX >> 12) - 1.0;
        let mut scale = (high - low) / max_rand;
        while scale * max_rand + low > high {
            scale = f64::from_bits(scale.to_bits() - 1);
        }
        let value1_2 = mantissa_to_1_2(rng.next_u64() >> 12);
        (value1_2 - 1.0) * scale + low
    }
}

macro_rules! uniform_int_32 {
    ($ty:ty) => {
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $ty {
                let (low, high) = (self.start, self.end);
                assert!(low < high, "cannot sample empty range");
                let range = high.wrapping_sub(low) as u32;
                let zone = (range << range.leading_zeros()).wrapping_sub(1);
                loop {
                    let v = rng.next_u32();
                    let m = (v as u64).wrapping_mul(range as u64);
                    let (hi, lo) = ((m >> 32) as u32, m as u32);
                    if lo <= zone {
                        return low.wrapping_add(hi as $ty);
                    }
                }
            }
        }
        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $ty {
                let (low, high) = (*self.start(), *self.end());
                assert!(low <= high, "cannot sample empty range");
                let range = (high.wrapping_sub(low) as u32).wrapping_add(1);
                if range == 0 {
                    return rng.next_u32() as $ty;
                }
                let zone = (range << range.leading_zeros()).wrapping_sub(1);
                loop {
                    let v = rng.next_u32();
                    let m = (v as u64).wrapping_mul(range as u64);
                    let (hi, lo) = ((m >> 32) as u32, m as u32);
                    if lo <= zone {
                        return low.wrapping_add(hi as $ty);
                    }
                }
            }
        }
    };
}

macro_rules! uniform_int_64 {
    ($ty:ty) => {
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $ty {
                let (low, high) = (self.start, self.end);
                assert!(low < high, "cannot sample empty range");
                let range = high.wrapping_sub(low) as u64;
                let zone = (range << range.leading_zeros()).wrapping_sub(1);
                loop {
                    let v = rng.next_u64();
                    let m = (v as u128).wrapping_mul(range as u128);
                    let (hi, lo) = ((m >> 64) as u64, m as u64);
                    if lo <= zone {
                        return low.wrapping_add(hi as $ty);
                    }
                }
            }
        }
        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $ty {
                let (low, high) = (*self.start(), *self.end());
                assert!(low <= high, "cannot sample empty range");
                let range = (high.wrapping_sub(low) as u64).wrapping_add(1);
                if range == 0 {
                    return rng.next_u64() as $ty;
                }
                let zone = (range << range.leading_zeros()).wrapping_sub(1);
                loop {
                    let v = rng.next_u64();
                    let m = (v as u128).wrapping_mul(range as u128);
                    let (hi, lo) = ((m >> 64) as u64, m as u64);
                    if lo <= zone {
                        return low.wrapping_add(hi as $ty);
                    }
                }
            }
        }
    };
}

uniform_int_32!(u32);
uniform_int_32!(i32);
uniform_int_64!(u64);
uniform_int_64!(i64);
uniform_int_64!(usize);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The small fast generator of rand 0.8 on 64-bit targets:
    /// xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(mut state: u64) -> SmallRng {
            // SplitMix64 state fill, as in rand 0.8.5.
            const PHI: u64 = 0x9e37_79b9_7f4a_7c15;
            let mut s = [0u64; 4];
            for word in &mut s {
                state = state.wrapping_add(PHI);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                *word = z ^ (z >> 31);
            }
            SmallRng { s }
        }
    }

    impl SmallRng {
        /// Test-only constructor from raw xoshiro256++ state words.
        #[doc(hidden)]
        pub fn from_raw_state(s: [u64; 4]) -> SmallRng {
            SmallRng { s }
        }

        /// Test-only view of the raw state words.
        #[doc(hidden)]
        pub fn raw_state(&self) -> [u64; 4] {
            self.s
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            // The lowest bits have some linear dependencies, so use the
            // upper bits (matches rand 0.8.5).
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result =
                self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Alias kept for API compatibility: the standard generator is not
    /// cryptographic in this offline build.
    pub type StdRng = SmallRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    /// Reference vector of the xoshiro256++ engine with state {1, 2, 3, 4},
    /// produced by the canonical C implementation
    /// (<https://prng.di.unimi.it/xoshiro256plusplus.c>); identical to the
    /// vector rand 0.8.5 / rand_xoshiro test against.
    #[test]
    fn xoshiro_reference_vector() {
        let mut rng = SmallRng::from_raw_state([1, 2, 3, 4]);
        let expected: [u64; 10] = [
            41943041,
            58720359,
            3588806011781223,
            3591011842654386,
            9228616714210784205,
            9973669472204895162,
            14011001112246962877,
            12406186145184390807,
            15849039046786891736,
            10450023813501588000,
        ];
        for &e in &expected {
            assert_eq!(rng.next_u64(), e);
        }
    }

    /// `seed_from_u64` is SplitMix64; the state fill for seed 0 is the
    /// canonical SplitMix64 output sequence.
    #[test]
    fn seed_fill_is_splitmix64() {
        let rng = SmallRng::seed_from_u64(0);
        assert_eq!(
            rng.raw_state(),
            [
                0xE220_A839_7B1D_CDAF,
                0x6E78_9E6A_A1B9_65F4,
                0x06C4_5D18_8009_454F,
                0xF88B_B8A8_724C_81EC,
            ]
        );
    }

    #[test]
    fn deterministic_across_instances() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    use super::RngCore;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let f = rng.gen_range(-3.5..9.25f64);
            assert!((-3.5..9.25).contains(&f));
            let g = rng.gen_range(2.0..=3.0f64);
            assert!((2.0..=3.0).contains(&g));
            let u = rng.gen_range(5u32..17);
            assert!((5..17).contains(&u));
            let s = rng.gen_range(0usize..=3);
            assert!(s <= 3);
        }
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = SmallRng::seed_from_u64(99);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((4_000..6_000).contains(&hits), "hits {hits}");
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
    }

    #[test]
    fn small_ranges_hit_every_value() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0u32..4) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
