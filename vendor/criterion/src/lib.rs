//! Workspace-local subset of `criterion` for offline builds. Keeps the API
//! the workspace's benches use (`Criterion`, groups, `BenchmarkId`,
//! `Throughput`, `criterion_group!`/`criterion_main!`) but replaces the
//! statistical engine with a short timed loop: every benchmark runs for a
//! handful of iterations and prints a mean time. That keeps `cargo test`
//! (which executes `harness = false` bench targets) fast while still
//! smoke-testing every benchmark body end to end.

use std::fmt;
use std::time::{Duration, Instant};

/// How work is counted for a group (accepted, echoed in output).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name and/or parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId { label: format!("{}/{}", function_name.into(), parameter) }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId { label: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Runs the measured closure.
#[derive(Debug, Default)]
pub struct Bencher {
    /// Mean nanoseconds per iteration of the last `iter` call.
    last_ns: f64,
}

/// Iteration budget per benchmark: whichever of these is hit first.
const MAX_ITERS: u32 = 20;
const MAX_TIME: Duration = Duration::from_millis(200);

impl Bencher {
    /// Times `routine` over a short loop.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        let mut iters = 0u32;
        loop {
            std::hint::black_box(routine());
            iters += 1;
            if iters >= MAX_ITERS || start.elapsed() >= MAX_TIME {
                break;
            }
        }
        self.last_ns = start.elapsed().as_nanos() as f64 / iters as f64;
    }
}

fn report(label: &str, bencher: &Bencher) {
    let ns = bencher.last_ns;
    if ns >= 1.0e6 {
        println!("bench {label:<50} {:>12.3} ms", ns / 1.0e6);
    } else {
        println!("bench {label:<50} {:>12.1} ns", ns);
    }
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: &str,
        mut f: F,
    ) -> &mut Criterion {
        let mut b = Bencher::default();
        f(&mut b);
        report(name, &b);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _criterion: self, name: name.to_string() }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Declares the per-iteration work volume (echoed only).
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the stub's loop is already short.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: BenchmarkId,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b);
        report(&format!("{}/{}", self.name, id), &b);
        self
    }

    /// Runs one benchmark with an explicit input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id), &b);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a callable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_bodies_execute() {
        let mut ran = 0u32;
        let mut c = Criterion::default();
        c.bench_function("unit/increment", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
        let mut group = c.benchmark_group("group");
        group.throughput(Throughput::Elements(4)).sample_size(10);
        group.bench_with_input(BenchmarkId::new("param", 3), &3u32, |b, &n| {
            b.iter(|| n * 2)
        });
        group.bench_function(BenchmarkId::from_parameter("plain"), |b| b.iter(|| 1 + 1));
        group.finish();
    }
}
