//! Workspace-local subset of `crossbeam` for offline builds: MPMC channels
//! built on `Mutex<VecDeque>` + condvars. Much slower than the real lock-free
//! implementation under contention, but semantically equivalent for the
//! operations the workspace uses: `bounded`/`unbounded`, `try_send`/`send`,
//! `try_recv`/`recv`/`recv_timeout`, clonable endpoints, and disconnect
//! detection when one side drops.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        capacity: Option<usize>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// The sending half of a channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of a channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error of [`Sender::try_send`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The bounded queue is at capacity.
        Full(T),
        /// Every receiver is gone.
        Disconnected(T),
    }

    impl<T> TrySendError<T> {
        /// Recovers the unsent message.
        pub fn into_inner(self) -> T {
            match self {
                TrySendError::Full(v) | TrySendError::Disconnected(v) => v,
            }
        }

        /// True for the [`TrySendError::Full`] variant.
        pub fn is_full(&self) -> bool {
            matches!(self, TrySendError::Full(_))
        }
    }

    impl<T> fmt::Display for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => write!(f, "sending on a full channel"),
                TrySendError::Disconnected(_) => write!(f, "sending on a disconnected channel"),
            }
        }
    }

    /// Error of [`Sender::send`]: every receiver is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error of [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message is ready.
        Empty,
        /// Every sender is gone and the queue is drained.
        Disconnected,
    }

    /// Error of [`Receiver::recv`]: every sender is gone and the queue is
    /// drained.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error of [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The deadline passed with no message.
        Timeout,
        /// Every sender is gone and the queue is drained.
        Disconnected,
    }

    /// A channel that holds at most `capacity` in-flight messages.
    pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        with_capacity(Some(capacity))
    }

    /// A channel with no capacity bound.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                capacity,
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (Sender { shared: Arc::clone(&shared) }, Receiver { shared })
    }

    fn lock<T>(shared: &Shared<T>) -> std::sync::MutexGuard<'_, State<T>> {
        shared.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    impl<T> Sender<T> {
        /// Enqueues without blocking, failing when full or disconnected.
        ///
        /// # Errors
        ///
        /// [`TrySendError::Full`] when a bounded queue is at capacity,
        /// [`TrySendError::Disconnected`] when every receiver is gone.
        pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
            let mut state = lock(&self.shared);
            if state.receivers == 0 {
                return Err(TrySendError::Disconnected(msg));
            }
            if let Some(cap) = state.capacity {
                if state.queue.len() >= cap {
                    return Err(TrySendError::Full(msg));
                }
            }
            state.queue.push_back(msg);
            drop(state);
            self.shared.not_empty.notify_one();
            Ok(())
        }

        /// Enqueues, blocking while a bounded queue is full.
        ///
        /// # Errors
        ///
        /// [`SendError`] when every receiver is gone.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut state = lock(&self.shared);
            loop {
                if state.receivers == 0 {
                    return Err(SendError(msg));
                }
                let full = state
                    .capacity
                    .is_some_and(|cap| state.queue.len() >= cap);
                if !full {
                    state.queue.push_back(msg);
                    drop(state);
                    self.shared.not_empty.notify_one();
                    return Ok(());
                }
                state = self
                    .shared
                    .not_full
                    .wait(state)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Number of queued messages.
        pub fn len(&self) -> usize {
            lock(&self.shared).queue.len()
        }

        /// True when no messages are queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// True when a bounded queue is at capacity.
        pub fn is_full(&self) -> bool {
            let state = lock(&self.shared);
            state.capacity.is_some_and(|cap| state.queue.len() >= cap)
        }
    }

    impl<T> Receiver<T> {
        /// Dequeues without blocking.
        ///
        /// # Errors
        ///
        /// [`TryRecvError::Empty`] when nothing is ready,
        /// [`TryRecvError::Disconnected`] when drained with no senders left.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = lock(&self.shared);
            match state.queue.pop_front() {
                Some(v) => {
                    drop(state);
                    self.shared.not_full.notify_one();
                    Ok(v)
                }
                None if state.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Dequeues, blocking until a message arrives.
        ///
        /// # Errors
        ///
        /// [`RecvError`] when drained with no senders left.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = lock(&self.shared);
            loop {
                if let Some(v) = state.queue.pop_front() {
                    drop(state);
                    self.shared.not_full.notify_one();
                    return Ok(v);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self
                    .shared
                    .not_empty
                    .wait(state)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Dequeues, blocking up to `timeout`.
        ///
        /// # Errors
        ///
        /// [`RecvTimeoutError::Timeout`] when the deadline passes,
        /// [`RecvTimeoutError::Disconnected`] when drained with no senders.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut state = lock(&self.shared);
            loop {
                if let Some(v) = state.queue.pop_front() {
                    drop(state);
                    self.shared.not_full.notify_one();
                    return Ok(v);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _) = self
                    .shared
                    .not_empty
                    .wait_timeout(state, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                state = guard;
            }
        }

        /// Number of queued messages.
        pub fn len(&self) -> usize {
            lock(&self.shared).queue.len()
        }

        /// True when no messages are queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Drains messages until every sender is gone.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    /// Blocking iterator over received messages.
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            lock(&self.shared).senders += 1;
            Sender { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            lock(&self.shared).receivers += 1;
            Receiver { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = lock(&self.shared);
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = lock(&self.shared);
            state.receivers -= 1;
            if state.receivers == 0 {
                drop(state);
                self.shared.not_full.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, unbounded, RecvTimeoutError, TryRecvError, TrySendError};
    use std::time::Duration;

    #[test]
    fn bounded_try_send_reports_full_without_blocking() {
        let (tx, rx) = bounded::<u32>(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        match tx.try_send(3) {
            Err(TrySendError::Full(v)) => assert_eq!(v, 3),
            other => panic!("expected Full, got {other:?}"),
        }
        assert_eq!(rx.try_recv(), Ok(1));
        tx.try_send(3).unwrap();
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Ok(3));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn disconnect_is_observable_from_both_sides() {
        let (tx, rx) = unbounded::<u32>();
        drop(rx);
        assert!(matches!(tx.try_send(1), Err(TrySendError::Disconnected(1))));
        let (tx, rx) = unbounded::<u32>();
        tx.try_send(9).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(9));
        assert!(rx.recv().is_err());
    }

    #[test]
    fn cross_thread_delivery_preserves_order() {
        let (tx, rx) = bounded::<u32>(4);
        let producer = std::thread::spawn(move || {
            for i in 0..1000 {
                tx.send(i).unwrap();
            }
        });
        let got: Vec<u32> = rx.iter().collect();
        producer.join().unwrap();
        assert_eq!(got, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn recv_timeout_expires() {
        let (_tx, rx) = unbounded::<u32>();
        let err = rx.recv_timeout(Duration::from_millis(20)).unwrap_err();
        assert_eq!(err, RecvTimeoutError::Timeout);
    }
}
