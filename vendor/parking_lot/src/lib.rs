//! Workspace-local subset of `parking_lot` for offline builds: `Mutex` and
//! `RwLock` with the parking_lot API shape — `lock()`/`read()`/`write()`
//! return guards directly, no poisoning — implemented as thin wrappers over
//! `std::sync`. Poison errors are swallowed by design: parking_lot has no
//! poisoning, so a panicking holder must not wedge every later user.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock without poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Mutex<T> {
        Mutex { inner: sync::Mutex::new(value) }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires the lock only if it is free right now.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A readers-writer lock without poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wraps a value.
    pub fn new(value: T) -> RwLock<T> {
        RwLock { inner: sync::RwLock::new(value) }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires shared read access only if no writer holds or is waiting
    /// for the lock right now.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::{Mutex, RwLock};
    use std::sync::Arc;

    #[test]
    fn mutex_provides_exclusive_access() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8_000);
    }

    #[test]
    fn rwlock_allows_concurrent_reads() {
        let l = RwLock::new(41);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 82);
        }
        *l.write() += 1;
        assert_eq!(*l.read(), 42);
    }

    #[test]
    fn try_read_fails_only_under_a_writer() {
        let l = RwLock::new(5);
        {
            let _w = l.write();
            // A writer holds the lock: try_read must refuse, not block.
            assert!(l.try_read().is_none());
        }
        assert_eq!(*l.try_read().expect("lock is free"), 5);
        {
            let _r = l.read();
            // Readers coexist.
            assert_eq!(*l.try_read().expect("read locks are shared"), 5);
        }
    }

    #[test]
    fn lock_survives_a_panicking_holder() {
        let m = Arc::new(Mutex::new(7));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 7, "no poisoning in the parking_lot API");
    }
}
