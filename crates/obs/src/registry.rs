//! The metric registry: named counters, gauges and histograms.
//!
//! Registration (`counter`, `gauge`, `histogram` and their `_with`
//! label-carrying variants) takes a short write lock and returns a
//! pre-resolved handle; the hot path then touches only that handle's
//! atomics. Asking twice for the same `(name, labels)` returns a handle
//! to the same underlying metric, so independent subsystems may share a
//! series without coordinating.
//!
//! Snapshots ([`Registry::snapshot`]) clone the current value of every
//! registered series into plain data — the input of both the Prometheus
//! serializer and the wire-level `StatsReply`.

use crate::histogram::{Histogram, HistogramSnapshot};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Identity of one metric series: a name plus ordered label pairs.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricKey {
    /// Metric name (Prometheus-style, e.g. `sa_cache_hits_total`).
    pub name: String,
    /// Label pairs, in registration order.
    pub labels: Vec<(String, String)>,
}

impl MetricKey {
    fn new(name: &str, labels: &[(&str, &str)]) -> MetricKey {
        MetricKey {
            name: name.to_string(),
            labels: labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect(),
        }
    }

    /// The value of label `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }
}

/// A monotonically increasing counter handle.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A gauge handle: a value that moves both ways.
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    cell: Arc<AtomicI64>,
}

impl Gauge {
    /// Adds one.
    pub fn inc(&self) {
        self.cell.fetch_add(1, Ordering::Relaxed);
    }

    /// Subtracts one.
    pub fn dec(&self) {
        self.cell.fetch_sub(1, Ordering::Relaxed);
    }

    /// Sets the value outright.
    pub fn set(&self, v: i64) {
        self.cell.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.cell.load(Ordering::Relaxed)
    }
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<MetricKey, Counter>,
    gauges: BTreeMap<MetricKey, Gauge>,
    histograms: BTreeMap<MetricKey, Histogram>,
}

/// The registry (see the module docs). Cheap to share behind an `Arc`.
#[derive(Debug, Default)]
pub struct Registry {
    inner: RwLock<Inner>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Get-or-create the unlabelled counter `name`.
    pub fn counter(&self, name: &str) -> Counter {
        self.counter_with(name, &[])
    }

    /// Get-or-create the counter `name` with `labels`.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let key = MetricKey::new(name, labels);
        self.inner.write().expect("registry poisoned").counters.entry(key).or_default().clone()
    }

    /// Get-or-create the unlabelled gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.gauge_with(name, &[])
    }

    /// Get-or-create the gauge `name` with `labels`.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let key = MetricKey::new(name, labels);
        self.inner.write().expect("registry poisoned").gauges.entry(key).or_default().clone()
    }

    /// Get-or-create the unlabelled histogram `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        self.histogram_with(name, &[])
    }

    /// Get-or-create the histogram `name` with `labels`.
    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        let key = MetricKey::new(name, labels);
        self.inner
            .write()
            .expect("registry poisoned")
            .histograms
            .entry(key)
            .or_default()
            .clone()
    }

    /// Live handles to every registered histogram series — the
    /// federation aggregator walks these and [`Histogram::merge`]s them
    /// into its own series without re-registering every name.
    pub fn histograms(&self) -> Vec<(MetricKey, Histogram)> {
        let inner = self.inner.read().expect("registry poisoned");
        inner.histograms.iter().map(|(k, h)| (k.clone(), h.clone())).collect()
    }

    /// Clones every registered series' current value into plain data.
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.inner.read().expect("registry poisoned");
        Snapshot {
            counters: inner.counters.iter().map(|(k, c)| (k.clone(), c.get())).collect(),
            gauges: inner.gauges.iter().map(|(k, g)| (k.clone(), g.get())).collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, h)| (k.clone(), h.snapshot()))
                .collect(),
        }
    }
}

/// Point-in-time copy of a whole registry, sorted by metric key.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Counter series and their values.
    pub counters: Vec<(MetricKey, u64)>,
    /// Gauge series and their values.
    pub gauges: Vec<(MetricKey, i64)>,
    /// Histogram series and their snapshots.
    pub histograms: Vec<(MetricKey, HistogramSnapshot)>,
}

impl Snapshot {
    /// The value of the first counter named `name` whose labels contain
    /// every pair in `labels`.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        self.counters
            .iter()
            .find(|(k, _)| k.name == name && labels.iter().all(|(lk, lv)| k.label(lk) == Some(*lv)))
            .map(|(_, v)| *v)
    }

    /// The value of the first matching gauge (same matching rule as
    /// [`Snapshot::counter`]).
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Option<i64> {
        self.gauges
            .iter()
            .find(|(k, _)| k.name == name && labels.iter().all(|(lk, lv)| k.label(lk) == Some(*lv)))
            .map(|(_, v)| *v)
    }

    /// The first matching histogram snapshot (same matching rule as
    /// [`Snapshot::counter`]).
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(k, _)| k.name == name && labels.iter().all(|(lk, lv)| k.label(lk) == Some(*lv)))
            .map(|(_, v)| v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_key_returns_the_same_metric() {
        let r = Registry::new();
        r.counter("hits").add(3);
        r.counter("hits").add(4);
        assert_eq!(r.counter("hits").get(), 7);
        // Different labels are different series.
        r.counter_with("hits", &[("shard", "0")]).inc();
        assert_eq!(r.counter_with("hits", &[("shard", "0")]).get(), 1);
        assert_eq!(r.counter("hits").get(), 7);
    }

    #[test]
    fn gauges_move_both_ways() {
        let r = Registry::new();
        let g = r.gauge("depth");
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.get(), 1);
        g.set(-5);
        assert_eq!(r.gauge("depth").get(), -5);
    }

    #[test]
    fn snapshot_finds_by_name_and_label_subset() {
        let r = Registry::new();
        r.counter_with("q_full", &[("shard", "1"), ("kind", "loc")]).add(9);
        r.gauge_with("q_depth", &[("shard", "1")]).set(4);
        r.histogram_with("lat", &[("algo", "mwpsr")]).record(100);
        let snap = r.snapshot();
        assert_eq!(snap.counter("q_full", &[("shard", "1")]), Some(9));
        assert_eq!(snap.counter("q_full", &[("shard", "2")]), None);
        assert_eq!(snap.gauge("q_depth", &[]), Some(4));
        assert_eq!(snap.histogram("lat", &[("algo", "mwpsr")]).unwrap().count, 1);
        assert!(snap.histogram("lat", &[("algo", "pbsr")]).is_none());
    }

    #[test]
    fn handles_survive_registry_snapshots() {
        let r = Registry::new();
        let c = r.counter("x");
        let before = r.snapshot();
        c.add(2);
        let after = r.snapshot();
        assert_eq!(before.counter("x", &[]), Some(0));
        assert_eq!(after.counter("x", &[]), Some(2));
    }
}
