//! sa-obs: the workspace's unified observability substrate.
//!
//! The paper's whole evaluation is a measurement story — server CPU per
//! alarm check, messaging cost, client energy, safe-region hit ratios —
//! yet before this crate the live runtime exposed four ad-hoc atomic
//! counters and the simulator kept its own incompatible accounting. This
//! crate is the single substrate both now publish through:
//!
//! * [`Registry`] — named, label-carrying counters / gauges / histograms.
//!   Registration takes a short lock; every subsequent increment is one
//!   atomic RMW on a pre-resolved handle, so instrumented hot paths never
//!   contend on the registry itself.
//! * [`Histogram`] — log-bucketed (HDR-style) latency histograms with
//!   lossless small-value buckets, bounded relative error thereafter, and
//!   p50/p90/p99/max snapshots. Concurrent recorders never lose counts.
//! * [`TraceRing`] — a per-shard, fixed-capacity, drop-oldest event ring
//!   with a merged text dump, for post-mortem debugging of replay
//!   mismatches without a debugger attached.
//! * [`render`] — the Prometheus text exposition format, used both by the
//!   wire-level `StatsRequest` scrape and by the offline drivers, so a
//!   live server and a replay log read identically.
//!
//! Everything is std-only by design: any crate in the workspace can adopt
//! instrumentation without inheriting new synchronization dependencies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod histogram;
pub mod prometheus;
pub mod registry;
pub mod trace;

pub use histogram::{Histogram, HistogramSnapshot};
pub use prometheus::{render, render_snapshot};
pub use registry::{Counter, Gauge, MetricKey, Registry, Snapshot};
pub use trace::{TraceEvent, TraceRing};
