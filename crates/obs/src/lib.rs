//! sa-obs: the workspace's unified observability substrate.
//!
//! The paper's whole evaluation is a measurement story — server CPU per
//! alarm check, messaging cost, client energy, safe-region hit ratios —
//! yet before this crate the live runtime exposed four ad-hoc atomic
//! counters and the simulator kept its own incompatible accounting. This
//! crate is the single substrate both now publish through:
//!
//! * [`Registry`] — named, label-carrying counters / gauges / histograms.
//!   Registration takes a short lock; every subsequent increment is one
//!   atomic RMW on a pre-resolved handle, so instrumented hot paths never
//!   contend on the registry itself.
//! * [`Histogram`] — log-bucketed (HDR-style) latency histograms with
//!   lossless small-value buckets, bounded relative error thereafter, and
//!   p50/p90/p99/max snapshots. Concurrent recorders never lose counts.
//! * [`TraceRing`] — a per-shard, fixed-capacity, drop-oldest event ring
//!   with a merged text dump, for post-mortem debugging of replay
//!   mismatches without a debugger attached.
//! * [`SpanRecorder`] — typed causal spans keyed by
//!   `{trace_id, span_id, parent}`, with deterministic data-plane trace
//!   derivation ([`trace_id_for`]) so the paper's bit-accounted frames
//!   stay byte-identical; [`assemble`] / [`chrome_trace_json`] merge
//!   many members' buffers into one Perfetto-loadable timeline.
//! * [`Exemplars`] — per-histogram-bucket trace ids linking a p99
//!   readout to a trace that actually landed in that bucket.
//! * [`FlightBundle`] — the divergence flight recorder: span trees,
//!   ring dumps and registry snapshots rendered as one forensic text.
//! * [`render`] — the Prometheus text exposition format, used both by the
//!   wire-level `StatsRequest` scrape and by the offline drivers, so a
//!   live server and a replay log read identically.
//!
//! Everything is std-only by design: any crate in the workspace can adopt
//! instrumentation without inheriting new synchronization dependencies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exemplar;
pub mod export;
pub mod flight;
pub mod histogram;
pub mod prometheus;
pub mod registry;
pub mod span;
pub mod trace;

pub use exemplar::{Exemplar, Exemplars};
pub use export::{assemble, chrome_trace_json, render_tree, TraceTree};
pub use flight::FlightBundle;
pub use histogram::{Histogram, HistogramSnapshot};
pub use prometheus::{render, render_snapshot};
pub use registry::{Counter, Gauge, MetricKey, Registry, Snapshot};
pub use span::{
    client_root_span, dispatch_span, trace_id_for, Span, SpanKind, SpanRecorder, TraceCtx,
    TraceMode,
};
pub use trace::{TimeSource, TraceEvent, TraceRing};
