//! Prometheus text exposition (version 0.0.4 of the format).
//!
//! Counters and gauges render as-is; histograms render as summaries —
//! `{quantile="…"}` series plus `_sum`, `_count` and a non-standard
//! `_max` gauge (exact, not bucketed). Durations are recorded in
//! nanoseconds throughout the workspace, so latency metric names carry a
//! `_ns` suffix by convention rather than pretending to be seconds.
//!
//! The same renderer backs the wire-level `StatsReply` scrape and the
//! offline drivers, so "what the example printed" and "what the scrape
//! returned" can be diffed directly.

use crate::registry::{MetricKey, Registry, Snapshot};
use std::fmt::Write as _;

fn write_labels(out: &mut String, key: &MetricKey, extra: Option<(&str, &str)>) {
    if key.labels.is_empty() && extra.is_none() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (k, v) in &key.labels {
        if !first {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{v}\"");
        first = false;
    }
    if let Some((k, v)) = extra {
        if !first {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{v}\"");
    }
    out.push('}');
}

fn type_line(out: &mut String, last: &mut Option<String>, name: &str, kind: &str) {
    if last.as_deref() != Some(name) {
        let _ = writeln!(out, "# TYPE {name} {kind}");
        *last = Some(name.to_string());
    }
}

/// Renders a snapshot in the Prometheus text format.
pub fn render_snapshot(snap: &Snapshot) -> String {
    let mut out = String::new();
    let mut last: Option<String> = None;
    for (key, value) in &snap.counters {
        type_line(&mut out, &mut last, &key.name, "counter");
        out.push_str(&key.name);
        write_labels(&mut out, key, None);
        let _ = writeln!(out, " {value}");
    }
    for (key, value) in &snap.gauges {
        type_line(&mut out, &mut last, &key.name, "gauge");
        out.push_str(&key.name);
        write_labels(&mut out, key, None);
        let _ = writeln!(out, " {value}");
    }
    for (key, h) in &snap.histograms {
        type_line(&mut out, &mut last, &key.name, "summary");
        for (q, v) in [("0.5", h.p50), ("0.9", h.p90), ("0.99", h.p99)] {
            out.push_str(&key.name);
            write_labels(&mut out, key, Some(("quantile", q)));
            let _ = writeln!(out, " {v}");
        }
        for (suffix, v) in [("_sum", h.sum), ("_count", h.count), ("_max", h.max)] {
            out.push_str(&key.name);
            out.push_str(suffix);
            write_labels(&mut out, key, None);
            let _ = writeln!(out, " {v}");
        }
    }
    out
}

/// Snapshots `registry` and renders it (see [`render_snapshot`]).
pub fn render(registry: &Registry) -> String {
    render_snapshot(&registry.snapshot())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    #[test]
    fn renders_all_three_metric_kinds() {
        let r = Registry::new();
        r.counter_with("sa_hits_total", &[("kind", "cache")]).add(12);
        r.gauge_with("sa_depth", &[("shard", "0")]).set(3);
        let h = r.histogram_with("sa_lat_ns", &[("algo", "mwpsr")]);
        for v in [100u64, 200, 300] {
            h.record(v);
        }
        let text = render(&r);
        assert!(text.contains("# TYPE sa_hits_total counter"));
        assert!(text.contains("sa_hits_total{kind=\"cache\"} 12"));
        assert!(text.contains("# TYPE sa_depth gauge"));
        assert!(text.contains("sa_depth{shard=\"0\"} 3"));
        assert!(text.contains("# TYPE sa_lat_ns summary"));
        assert!(text.contains("sa_lat_ns{algo=\"mwpsr\",quantile=\"0.5\"}"));
        assert!(text.contains("sa_lat_ns_count{algo=\"mwpsr\"} 3"));
        assert!(text.contains("sa_lat_ns_sum{algo=\"mwpsr\"} 600"));
        assert!(text.contains("sa_lat_ns_max{algo=\"mwpsr\"} 300"));
    }

    #[test]
    fn type_lines_are_emitted_once_per_name() {
        let r = Registry::new();
        r.counter_with("sa_q_full_total", &[("shard", "0")]).inc();
        r.counter_with("sa_q_full_total", &[("shard", "1")]).inc();
        let text = render(&r);
        assert_eq!(text.matches("# TYPE sa_q_full_total counter").count(), 1);
        assert!(text.contains("sa_q_full_total{shard=\"0\"} 1"));
        assert!(text.contains("sa_q_full_total{shard=\"1\"} 1"));
    }

    #[test]
    fn unlabelled_series_have_no_brace_pair() {
        let r = Registry::new();
        r.counter("sa_plain_total").add(5);
        assert!(render(&r).contains("\nsa_plain_total 5\n") || render(&r).starts_with("# TYPE"));
        assert!(render(&r).contains("sa_plain_total 5"));
    }
}
