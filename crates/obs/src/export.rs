//! Cross-member trace assembly and Chrome trace-event export.
//!
//! Every federation member (and the client-side router) records spans
//! independently; this module merges those buffers into causally
//! ordered per-trace trees and renders them two ways:
//!
//! * [`chrome_trace_json`] — the Chrome trace-event format (an array of
//!   `ph: "X"` complete events), loadable in Perfetto / `chrome://tracing`.
//!   `pid` carries the member, `tid` the shard, `args` the hex trace and
//!   span ids, so one federation run reads as one timeline with a row
//!   per member.
//! * [`render_tree`] — an indented text tree per trace, the
//!   screenshot-equivalent rendering used in bug reports and docs.
//!
//! Assembly is pure data work over [`Span`] values: group by trace id,
//! index spans by id, parent links make the edges. A parent id that no
//! recorded span carries (e.g. the root fell off a drop-oldest buffer)
//! makes its child a *dangling root* — [`TraceTree::is_connected`]
//! then reports false, which is exactly the signal the federation
//! acceptance test keys on.

use crate::span::Span;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One assembled trace: the spans of a single trace id, indexed for
/// tree walks.
#[derive(Debug, Clone)]
pub struct TraceTree {
    /// The trace id all spans share.
    pub trace_id: u64,
    /// The trace's spans, start-time ordered.
    pub spans: Vec<Span>,
    /// Indexes into `spans` of the roots: spans whose parent is 0 or
    /// references no recorded span.
    pub roots: Vec<usize>,
    /// `children[i]` = indexes into `spans` of span `i`'s children,
    /// start-time ordered.
    pub children: Vec<Vec<usize>>,
}

impl TraceTree {
    /// True when the trace reconstructs as a single tree: exactly one
    /// root and every span reachable from it.
    pub fn is_connected(&self) -> bool {
        self.roots.len() == 1 && !self.spans.is_empty()
    }

    /// Distinct members that recorded at least one span of this trace.
    pub fn members(&self) -> Vec<u32> {
        let mut m: Vec<u32> = self.spans.iter().map(|s| s.member).collect();
        m.sort_unstable();
        m.dedup();
        m
    }
}

/// Groups `spans` (from any number of members, in any order) into
/// per-trace trees, trace-id ascending.
pub fn assemble(spans: &[Span]) -> Vec<TraceTree> {
    let mut by_trace: BTreeMap<u64, Vec<Span>> = BTreeMap::new();
    for s in spans {
        by_trace.entry(s.ctx.trace_id).or_default().push(*s);
    }
    by_trace
        .into_iter()
        .map(|(trace_id, mut spans)| {
            spans.sort_by_key(|s| (s.start_us, s.ctx.span_id));
            let by_id: BTreeMap<u64, usize> =
                spans.iter().enumerate().map(|(i, s)| (s.ctx.span_id, i)).collect();
            let mut roots = Vec::new();
            let mut children: Vec<Vec<usize>> = vec![Vec::new(); spans.len()];
            for (i, s) in spans.iter().enumerate() {
                match by_id.get(&s.ctx.parent) {
                    // A self-parenting span (malformed) is a root, not a cycle.
                    Some(&p) if p != i => children[p].push(i),
                    _ => roots.push(i),
                }
            }
            TraceTree { trace_id, spans, roots, children }
        })
        .collect()
}

/// Renders assembled traces as indented text trees — one block per
/// trace, each line `kind [member/shard] +start dur a b`.
pub fn render_tree(trees: &[TraceTree]) -> String {
    let mut out = String::new();
    for tree in trees {
        let _ = writeln!(
            out,
            "trace {:#018x} ({} spans, members {:?}{})",
            tree.trace_id,
            tree.spans.len(),
            tree.members(),
            if tree.is_connected() { "" } else { ", DISCONNECTED" }
        );
        for &root in &tree.roots {
            render_node(&mut out, tree, root, 1);
        }
    }
    out
}

fn render_node(out: &mut String, tree: &TraceTree, i: usize, depth: usize) {
    let s = &tree.spans[i];
    let _ = writeln!(
        out,
        "{}{} [m{}/s{}] +{}us {}us a={} b={}",
        "  ".repeat(depth),
        s.kind.name(),
        s.member,
        s.shard,
        s.start_us,
        s.dur_us,
        s.a,
        s.b
    );
    for &c in &tree.children[i] {
        render_node(out, tree, c, depth + 1);
    }
}

/// Renders `spans` as Chrome trace-event JSON (the `traceEvents` array
/// format Perfetto loads directly). Every span becomes one complete
/// (`ph: "X"`) event; `pid` = member, `tid` = shard.
pub fn chrome_trace_json(spans: &[Span]) -> String {
    let mut sorted: Vec<&Span> = spans.iter().collect();
    sorted.sort_by_key(|s| (s.start_us, s.ctx.span_id));
    let mut out = String::from("{\"traceEvents\":[\n");
    for (i, s) in sorted.iter().enumerate() {
        let comma = if i + 1 == sorted.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "{{\"name\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{},\"tid\":{},\
             \"args\":{{\"trace\":\"{:#018x}\",\"span\":\"{:#018x}\",\"parent\":\"{:#018x}\",\
             \"a\":{},\"b\":{}}}}}{comma}",
            s.kind.name(),
            s.start_us,
            s.dur_us,
            s.member,
            s.shard,
            s.ctx.trace_id,
            s.ctx.span_id,
            s.ctx.parent,
            s.a,
            s.b
        );
    }
    out.push_str("]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{SpanKind, TraceCtx};

    fn span(trace: u64, id: u64, parent: u64, member: u32, start: u64, kind: SpanKind) -> Span {
        Span {
            ctx: TraceCtx { trace_id: trace, span_id: id, parent },
            kind,
            start_us: start,
            dur_us: 3,
            member,
            shard: 0,
            a: 0,
            b: 0,
        }
    }

    /// A realistic handoff-shaped trace: client root, old owner's
    /// dispatch, both handoff legs on their members, the new owner's
    /// redelivery.
    fn handoff_spans() -> Vec<Span> {
        vec![
            span(9, 100, 0, 100, 0, SpanKind::ClientUpdate),
            span(9, 101, 100, 0, 1, SpanKind::UpdateDispatch),
            span(9, 102, 101, 0, 2, SpanKind::HandoffExport),
            span(9, 103, 101, 1, 3, SpanKind::HandoffImport),
            span(9, 104, 101, 0, 4, SpanKind::HandoffRelease),
            span(9, 105, 103, 1, 5, SpanKind::Redelivery),
        ]
    }

    #[test]
    fn assembly_reconstructs_one_connected_multi_member_tree() {
        let trees = assemble(&handoff_spans());
        assert_eq!(trees.len(), 1);
        let t = &trees[0];
        assert!(t.is_connected(), "one root, all spans reachable");
        assert_eq!(t.members(), vec![0, 1, 100]);
        let text = render_tree(&trees);
        assert!(text.contains("client_update"));
        assert!(text.contains("    handoff_import [m1/s0]"), "import nests under dispatch");
        assert!(!text.contains("DISCONNECTED"));
    }

    #[test]
    fn assembly_is_order_independent() {
        // Property: any seeded interleaving of the members' buffers
        // reconstructs the identical tree — cross-member merge order
        // must not matter.
        let base = handoff_spans();
        let reference = render_tree(&assemble(&base));
        let mut rng = 0xD15E_A5E5u64;
        for _ in 0..100 {
            let mut shuffled = base.clone();
            for i in (1..shuffled.len()).rev() {
                rng ^= rng << 13;
                rng ^= rng >> 7;
                rng ^= rng << 17;
                shuffled.swap(i, (rng % (i as u64 + 1)) as usize);
            }
            let trees = assemble(&shuffled);
            assert!(trees[0].is_connected());
            assert_eq!(render_tree(&trees), reference, "shuffle must not change the tree");
        }
    }

    #[test]
    fn a_missing_parent_reports_disconnected() {
        let mut spans = handoff_spans();
        spans.retain(|s| s.ctx.span_id != 101); // drop the dispatch span
        let trees = assemble(&spans);
        assert!(!trees[0].is_connected(), "orphans make extra roots");
        assert!(render_tree(&trees).contains("DISCONNECTED"));
    }

    #[test]
    fn traces_do_not_bleed_into_each_other() {
        let mut spans = handoff_spans();
        spans.push(span(10, 200, 0, 2, 0, SpanKind::ClientUpdate));
        let trees = assemble(&spans);
        assert_eq!(trees.len(), 2);
        assert_eq!(trees[0].trace_id, 9);
        assert_eq!(trees[1].trace_id, 10);
        assert!(trees.iter().all(TraceTree::is_connected));
    }

    #[test]
    fn chrome_json_has_one_complete_event_per_span() {
        let json = chrome_trace_json(&handoff_spans());
        assert!(json.starts_with("{\"traceEvents\":["));
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 6);
        assert!(json.contains("\"name\":\"handoff_import\""));
        assert!(json.contains("\"pid\":100"), "the router pseudo-member appears as a pid");
        assert!(json.contains("\"trace\":\"0x0000000000000009\""));
        assert!(json.trim_end().ends_with("]}"));
    }
}
