//! Per-shard event rings for post-mortem debugging.
//!
//! Each shard owns a fixed-capacity ring; recording appends and, at
//! capacity, drops the oldest event — steady-state tracing costs one
//! short per-shard lock and zero allocation, and a misbehaving shard can
//! never crowd out its siblings' history. [`TraceRing::dump`] merges all
//! shards into one time-sorted text log, the thing you paste into a bug
//! report when a replay diverges from the ground truth.
//!
//! Timestamps come from a [`TimeSource`] so a runtime driven by a
//! virtual clock produces byte-identical dumps per seed; the default
//! source is wall-clock (`Instant`-anchored) for standalone use.

use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;
use std::sync::Mutex;
use std::time::Instant;

/// Where trace timestamps come from: a shared closure returning
/// microseconds on some monotonic axis.
///
/// sa-obs cannot depend on the server's `Clock` seam (the dependency
/// points the other way), so the seam is threaded in as a closure: the
/// server wraps its clock, tests wrap a counter, and standalone users
/// take [`TimeSource::system`].
#[derive(Clone)]
pub struct TimeSource {
    now_us: Arc<dyn Fn() -> u64 + Send + Sync>,
}

impl TimeSource {
    /// A source reading `now_us` — typically a closure over a shared
    /// clock, converting its nanoseconds to microseconds.
    pub fn new(now_us: impl Fn() -> u64 + Send + Sync + 'static) -> TimeSource {
        TimeSource { now_us: Arc::new(now_us) }
    }

    /// The wall-clock source: microseconds since the source was created.
    pub fn system() -> TimeSource {
        let start = Instant::now();
        TimeSource::new(move || u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX))
    }

    /// Current time in microseconds.
    pub fn now_us(&self) -> u64 {
        (self.now_us)()
    }
}

impl fmt::Debug for TimeSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TimeSource").finish_non_exhaustive()
    }
}

/// One recorded event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Microseconds on the ring's [`TimeSource`] axis.
    pub t_us: u64,
    /// The shard (or pseudo-shard, e.g. the router) that recorded it.
    pub shard: usize,
    /// Static event label (`"trigger"`, `"overload"`, …).
    pub label: &'static str,
    /// First event operand (meaning depends on `label`).
    pub a: u64,
    /// Second event operand.
    pub b: u64,
}

/// The per-shard, drop-oldest event rings (see the module docs).
#[derive(Debug)]
pub struct TraceRing {
    shards: Vec<Mutex<VecDeque<TraceEvent>>>,
    capacity: usize,
    time: TimeSource,
}

impl TraceRing {
    /// A ring set of `shards` rings holding `capacity` events each, on
    /// the wall clock ([`TimeSource::system`]).
    ///
    /// # Panics
    ///
    /// Panics when `shards` or `capacity` is zero.
    pub fn new(shards: usize, capacity: usize) -> TraceRing {
        TraceRing::with_time_source(shards, capacity, TimeSource::system())
    }

    /// A ring set reading timestamps from `time` — the deterministic
    /// constructor: under a virtual clock, identical schedules give
    /// byte-identical dumps.
    ///
    /// # Panics
    ///
    /// Panics when `shards` or `capacity` is zero.
    pub fn with_time_source(shards: usize, capacity: usize, time: TimeSource) -> TraceRing {
        assert!(shards > 0, "need at least one shard ring");
        assert!(capacity > 0, "rings must hold at least one event");
        TraceRing {
            shards: (0..shards).map(|_| Mutex::new(VecDeque::with_capacity(capacity))).collect(),
            capacity,
            time,
        }
    }

    /// Number of per-shard rings.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Records one event on `shard`'s ring, dropping that ring's oldest
    /// event when full. Out-of-range shards are clamped to the last ring
    /// (the router's pseudo-shard) rather than panicking — tracing must
    /// never take a hot path down.
    pub fn event(&self, shard: usize, label: &'static str, a: u64, b: u64) {
        let t_us = self.time.now_us();
        let ring = &self.shards[shard.min(self.shards.len() - 1)];
        let mut ring = ring.lock().expect("trace ring poisoned");
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(TraceEvent { t_us, shard, label, a, b });
    }

    /// Total events currently retained across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().expect("trace ring poisoned").len()).sum()
    }

    /// True when nothing has been recorded (or everything dropped).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All retained events merged across shards, time-sorted.
    pub fn events(&self) -> Vec<TraceEvent> {
        let mut all: Vec<TraceEvent> = self
            .shards
            .iter()
            .flat_map(|s| s.lock().expect("trace ring poisoned").iter().copied().collect::<Vec<_>>())
            .collect();
        all.sort_by_key(|e| e.t_us);
        all
    }

    /// The merged text dump: one `+t_us shard label a b` line per event.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        for e in self.events() {
            out.push_str(&format!(
                "+{:>10}us shard={} {:<12} a={} b={}\n",
                e.t_us, e.shard, e.label, e.a, e.b
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn rings_drop_oldest_per_shard() {
        let ring = TraceRing::new(2, 3);
        for i in 0..5 {
            ring.event(0, "a", i, 0);
        }
        ring.event(1, "b", 99, 0);
        assert_eq!(ring.len(), 4, "shard 0 capped at 3 events, shard 1 holds 1");
        let events = ring.events();
        let shard0: Vec<u64> = events.iter().filter(|e| e.shard == 0).map(|e| e.a).collect();
        assert_eq!(shard0, vec![2, 3, 4], "oldest events dropped first");
        assert!(events.iter().any(|e| e.shard == 1 && e.a == 99));
    }

    #[test]
    fn out_of_range_shards_clamp_instead_of_panicking() {
        let ring = TraceRing::new(2, 4);
        ring.event(17, "weird", 1, 2);
        let events = ring.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].shard, 17, "the event remembers the claimed shard");
    }

    #[test]
    fn dump_is_time_sorted_text() {
        let ring = TraceRing::new(1, 8);
        ring.event(0, "first", 1, 2);
        ring.event(0, "second", 3, 4);
        let dump = ring.dump();
        let first = dump.find("first").expect("first event present");
        let second = dump.find("second").expect("second event present");
        assert!(first < second, "events appear in time order");
        assert!(dump.contains("a=3 b=4"));
        assert!(!ring.is_empty());
    }

    /// A counter-backed source: each record is a distinct, reproducible
    /// timestamp, mimicking a virtual clock.
    fn ticking() -> TimeSource {
        let tick = AtomicU64::new(0);
        TimeSource::new(move || tick.fetch_add(7, Ordering::Relaxed))
    }

    #[test]
    fn injected_time_source_makes_dumps_reproducible() {
        let record = |ring: &TraceRing| {
            ring.event(0, "alpha", 1, 2);
            ring.event(1, "beta", 3, 4);
            ring.event(0, "gamma", 5, 6);
        };
        let a = TraceRing::with_time_source(2, 8, ticking());
        let b = TraceRing::with_time_source(2, 8, ticking());
        record(&a);
        record(&b);
        assert_eq!(a.dump(), b.dump(), "identical schedules give byte-identical dumps");
        assert!(a.dump().starts_with("+         0us shard=0 alpha"));
    }
}
