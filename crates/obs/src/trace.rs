//! Per-shard event rings for post-mortem debugging.
//!
//! Each shard owns a fixed-capacity ring; recording appends and, at
//! capacity, drops the oldest event — steady-state tracing costs one
//! short per-shard lock and zero allocation, and a misbehaving shard can
//! never crowd out its siblings' history. [`TraceRing::dump`] merges all
//! shards into one time-sorted text log, the thing you paste into a bug
//! report when a replay diverges from the ground truth.

use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::Instant;

/// One recorded event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Microseconds since the ring was created.
    pub t_us: u64,
    /// The shard (or pseudo-shard, e.g. the router) that recorded it.
    pub shard: usize,
    /// Static event label (`"trigger"`, `"overload"`, …).
    pub label: &'static str,
    /// First event operand (meaning depends on `label`).
    pub a: u64,
    /// Second event operand.
    pub b: u64,
}

/// The per-shard, drop-oldest event rings (see the module docs).
#[derive(Debug)]
pub struct TraceRing {
    shards: Vec<Mutex<VecDeque<TraceEvent>>>,
    capacity: usize,
    start: Instant,
}

impl TraceRing {
    /// A ring set of `shards` rings holding `capacity` events each.
    ///
    /// # Panics
    ///
    /// Panics when `shards` or `capacity` is zero.
    pub fn new(shards: usize, capacity: usize) -> TraceRing {
        assert!(shards > 0, "need at least one shard ring");
        assert!(capacity > 0, "rings must hold at least one event");
        TraceRing {
            shards: (0..shards).map(|_| Mutex::new(VecDeque::with_capacity(capacity))).collect(),
            capacity,
            start: Instant::now(),
        }
    }

    /// Number of per-shard rings.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Records one event on `shard`'s ring, dropping that ring's oldest
    /// event when full. Out-of-range shards are clamped to the last ring
    /// (the router's pseudo-shard) rather than panicking — tracing must
    /// never take a hot path down.
    pub fn event(&self, shard: usize, label: &'static str, a: u64, b: u64) {
        let t_us = u64::try_from(self.start.elapsed().as_micros()).unwrap_or(u64::MAX);
        let ring = &self.shards[shard.min(self.shards.len() - 1)];
        let mut ring = ring.lock().expect("trace ring poisoned");
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(TraceEvent { t_us, shard, label, a, b });
    }

    /// Total events currently retained across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().expect("trace ring poisoned").len()).sum()
    }

    /// True when nothing has been recorded (or everything dropped).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All retained events merged across shards, time-sorted.
    pub fn events(&self) -> Vec<TraceEvent> {
        let mut all: Vec<TraceEvent> = self
            .shards
            .iter()
            .flat_map(|s| s.lock().expect("trace ring poisoned").iter().copied().collect::<Vec<_>>())
            .collect();
        all.sort_by_key(|e| e.t_us);
        all
    }

    /// The merged text dump: one `+t_us shard label a b` line per event.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        for e in self.events() {
            out.push_str(&format!(
                "+{:>10}us shard={} {:<12} a={} b={}\n",
                e.t_us, e.shard, e.label, e.a, e.b
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rings_drop_oldest_per_shard() {
        let ring = TraceRing::new(2, 3);
        for i in 0..5 {
            ring.event(0, "a", i, 0);
        }
        ring.event(1, "b", 99, 0);
        assert_eq!(ring.len(), 4, "shard 0 capped at 3 events, shard 1 holds 1");
        let events = ring.events();
        let shard0: Vec<u64> = events.iter().filter(|e| e.shard == 0).map(|e| e.a).collect();
        assert_eq!(shard0, vec![2, 3, 4], "oldest events dropped first");
        assert!(events.iter().any(|e| e.shard == 1 && e.a == 99));
    }

    #[test]
    fn out_of_range_shards_clamp_instead_of_panicking() {
        let ring = TraceRing::new(2, 4);
        ring.event(17, "weird", 1, 2);
        let events = ring.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].shard, 17, "the event remembers the claimed shard");
    }

    #[test]
    fn dump_is_time_sorted_text() {
        let ring = TraceRing::new(1, 8);
        ring.event(0, "first", 1, 2);
        ring.event(0, "second", 3, 4);
        let dump = ring.dump();
        let first = dump.find("first").expect("first event present");
        let second = dump.find("second").expect("second event present");
        assert!(first < second, "events appear in time order");
        assert!(dump.contains("a=3 b=4"));
        assert!(!ring.is_empty());
    }
}
