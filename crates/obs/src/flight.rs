//! The divergence flight recorder: one forensic bundle per failure.
//!
//! When a replay or verification run diverges from ground truth, the
//! scattered evidence — which spans led up to the divergent firing,
//! what each member's trace ring held, what the counters said — used to
//! be a bare trace-ring text append. A [`FlightBundle`] gathers all
//! three into one renderable document so the failure message *is* the
//! forensic record: the assembled span trees around the divergence,
//! every member's ring dump, and every member's registry snapshot in
//! Prometheus text.

use crate::export::{assemble, render_tree};
use crate::prometheus::render_snapshot;
use crate::registry::Snapshot;
use crate::span::Span;
use std::fmt::Write as _;

/// Everything gathered at a divergence (see the module docs).
#[derive(Debug, Clone, Default)]
pub struct FlightBundle {
    /// The verification error that triggered the recorder.
    pub reason: String,
    /// Spans collected from every member and router, merged.
    pub spans: Vec<Span>,
    /// `(source label, trace-ring dump)` per member.
    pub rings: Vec<(String, String)>,
    /// `(source label, registry snapshot)` per member.
    pub snapshots: Vec<(String, Snapshot)>,
}

impl FlightBundle {
    /// A bundle seeded with the triggering error.
    pub fn new(reason: impl Into<String>) -> FlightBundle {
        FlightBundle { reason: reason.into(), ..FlightBundle::default() }
    }

    /// Renders the bundle as one text document: the reason, the
    /// assembled span trees, then per-source ring dumps and snapshots.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.reason);
        let _ = writeln!(out, "\n=== flight recorder ===");
        let trees = assemble(&self.spans);
        if trees.is_empty() {
            let _ = writeln!(out, "\n-- span trees: none recorded --");
        } else {
            let _ = writeln!(out, "\n-- span trees ({} traces) --", trees.len());
            out.push_str(&render_tree(&trees));
        }
        for (label, dump) in &self.rings {
            let _ = writeln!(out, "\n-- trace ring: {label} --");
            if dump.is_empty() {
                let _ = writeln!(out, "(empty)");
            } else {
                out.push_str(dump);
            }
        }
        for (label, snap) in &self.snapshots {
            let _ = writeln!(out, "\n-- registry snapshot: {label} --");
            out.push_str(&render_snapshot(snap));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;
    use crate::span::{SpanKind, TraceCtx};

    #[test]
    fn render_carries_reason_trees_rings_and_snapshots() {
        let registry = Registry::new();
        registry.counter("sa_fired_total").add(3);
        let mut bundle = FlightBundle::new("fired #4 expected (1,2) got (1,3)");
        bundle.spans.push(Span {
            ctx: TraceCtx { trace_id: 7, span_id: 1, parent: 0 },
            kind: SpanKind::ClientUpdate,
            start_us: 0,
            dur_us: 2,
            member: 0,
            shard: 0,
            a: 0,
            b: 0,
        });
        bundle.rings.push(("member 0".to_string(), "+0us shard=0 trigger a=1 b=2\n".to_string()));
        bundle.rings.push(("member 1".to_string(), String::new()));
        bundle.snapshots.push(("member 0".to_string(), registry.snapshot()));
        let text = bundle.render();
        assert!(text.starts_with("fired #4 expected (1,2) got (1,3)"));
        assert!(text.contains("=== flight recorder ==="));
        assert!(text.contains("span trees (1 traces)"));
        assert!(text.contains("client_update"));
        assert!(text.contains("-- trace ring: member 0 --"));
        assert!(text.contains("(empty)"), "empty rings say so instead of vanishing");
        assert!(text.contains("sa_fired_total 3"));
    }
}
