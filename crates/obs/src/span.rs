//! Typed causal spans and the per-process span recorder.
//!
//! A span is one timed unit of work — an update dispatch, a shard queue
//! wait, a safe-region computation, a handoff leg — keyed by a
//! [`TraceCtx`]: the trace it belongs to, its own span id, and its
//! parent's span id. Spans recorded on different federation members are
//! merged after the fact into one causally ordered tree (see
//! [`crate::export`]).
//!
//! # Context propagation without wire changes
//!
//! The paper's cost model charges every data-plane frame an exact bit
//! count, so the data plane cannot grow a trace-context header. Instead
//! the context is **derived**: [`trace_id_for`]`(session, seq)` is a
//! pure hash every member computes identically, and the root/dispatch
//! span ids are pure functions of it ([`client_root_span`],
//! [`dispatch_span`]) — so the client's root span and the owner's
//! dispatch span join up in assembly although no byte crossed the wire
//! for it. Only federation *control* exchanges (handoff legs, topology
//! pushes — outside the paper's cost model) carry an explicit context
//! extension. Retries reuse `(session, seq)` and therefore land in the
//! same trace, which is exactly the story a forensic reader wants.
//!
//! # Recording
//!
//! [`SpanRecorder`] mirrors the trace-ring design: per-lane
//! drop-oldest buffers behind short mutexes, a [`TraceMode`] gate read
//! with one atomic load when tracing is off, and fresh span ids minted
//! from an atomic counter namespaced by member id so ids never collide
//! across the federation.

use crate::trace::TimeSource;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Mutex;

/// The causal identity of one span.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceCtx {
    /// The trace (one client request's causal story) this span is in.
    pub trace_id: u64,
    /// This span's id, unique within the trace.
    pub span_id: u64,
    /// The parent span's id; 0 marks a root.
    pub parent: u64,
}

/// What kind of work a span timed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanKind {
    /// The client-side root: one routed position update, including any
    /// redirect bounces.
    ClientUpdate,
    /// A member's handling of one update (router entry → reply).
    UpdateDispatch,
    /// Queue wait between router submit and shard-worker pickup.
    ShardWait,
    /// One safe-region computation (any strategy).
    RegionCompute,
    /// One region-cache probe.
    CacheLookup,
    /// One `WrongOwner` bounce absorbed by the client-side router.
    RedirectHop,
    /// The export leg of a session handoff (old owner).
    HandoffExport,
    /// The import leg of a session handoff (new owner).
    HandoffImport,
    /// The release leg of a session handoff (old owner).
    HandoffRelease,
    /// The coordinator pushing a new epoch to one member.
    TopologyPush,
    /// A member installing a pushed topology epoch.
    TopologyInstall,
    /// Redelivery of unacknowledged firings on a resync.
    Redelivery,
}

impl SpanKind {
    /// Stable display name (used in Chrome trace JSON and tree dumps).
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::ClientUpdate => "client_update",
            SpanKind::UpdateDispatch => "update_dispatch",
            SpanKind::ShardWait => "shard_wait",
            SpanKind::RegionCompute => "region_compute",
            SpanKind::CacheLookup => "cache_lookup",
            SpanKind::RedirectHop => "redirect_hop",
            SpanKind::HandoffExport => "handoff_export",
            SpanKind::HandoffImport => "handoff_import",
            SpanKind::HandoffRelease => "handoff_release",
            SpanKind::TopologyPush => "topology_push",
            SpanKind::TopologyInstall => "topology_install",
            SpanKind::Redelivery => "redelivery",
        }
    }
}

/// One recorded span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Causal identity.
    pub ctx: TraceCtx,
    /// What was timed.
    pub kind: SpanKind,
    /// Start, microseconds on the recorder's [`TimeSource`] axis.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
    /// Federation member (or pseudo-member for routers) that recorded it.
    pub member: u32,
    /// Shard within the member (0 when not shard-scoped).
    pub shard: u32,
    /// First operand (meaning depends on `kind`: session, epoch, cell…).
    pub a: u64,
    /// Second operand.
    pub b: u64,
}

/// How much the recorder keeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceMode {
    /// Record nothing; the per-span cost is one relaxed atomic load.
    Off,
    /// Record every Nth trace (by `trace_id % n == 0`); `Sampled(1)`
    /// behaves like `Full`.
    Sampled(u64),
    /// Record every span.
    #[default]
    Full,
}

const MODE_OFF: u8 = 0;
const MODE_SAMPLED: u8 = 1;
const MODE_FULL: u8 = 2;

/// The per-process span recorder (see the module docs).
#[derive(Debug)]
pub struct SpanRecorder {
    lanes: Vec<Mutex<VecDeque<Span>>>,
    capacity: usize,
    time: TimeSource,
    mode: AtomicU8,
    sample_n: AtomicU64,
    member: AtomicU64,
    next_span: AtomicU64,
}

impl SpanRecorder {
    /// A recorder with `lanes` drop-oldest buffers of `capacity` spans
    /// each, reading timestamps from `time`, initially in
    /// [`TraceMode::Full`]. Lanes shard the recording lock the same way
    /// trace rings do — pass the shard count plus one for the router.
    ///
    /// # Panics
    ///
    /// Panics when `lanes` or `capacity` is zero.
    pub fn new(lanes: usize, capacity: usize, time: TimeSource) -> SpanRecorder {
        assert!(lanes > 0, "need at least one span lane");
        assert!(capacity > 0, "lanes must hold at least one span");
        SpanRecorder {
            lanes: (0..lanes).map(|_| Mutex::new(VecDeque::with_capacity(capacity))).collect(),
            capacity,
            time,
            mode: AtomicU8::new(MODE_FULL),
            sample_n: AtomicU64::new(1),
            member: AtomicU64::new(0),
            next_span: AtomicU64::new(1),
        }
    }

    /// Switches the recording mode. Takes effect for subsequent spans;
    /// already-buffered spans stay.
    pub fn set_mode(&self, mode: TraceMode) {
        match mode {
            TraceMode::Off => self.mode.store(MODE_OFF, Ordering::Relaxed),
            TraceMode::Sampled(n) => {
                self.sample_n.store(n.max(1), Ordering::Relaxed);
                self.mode.store(MODE_SAMPLED, Ordering::Relaxed);
            }
            TraceMode::Full => self.mode.store(MODE_FULL, Ordering::Relaxed),
        }
    }

    /// Sets the member id stamped on recorded spans (and namespacing
    /// fresh span ids). Call once when the process learns its
    /// federation id.
    pub fn set_member(&self, member: u32) {
        self.member.store(u64::from(member), Ordering::Relaxed);
    }

    /// The member id spans are stamped with.
    pub fn member(&self) -> u32 {
        self.member.load(Ordering::Relaxed) as u32
    }

    /// Whether spans of `trace_id` are currently recorded — the gate an
    /// instrumentation site checks before paying for a clock read.
    pub fn enabled(&self, trace_id: u64) -> bool {
        match self.mode.load(Ordering::Relaxed) {
            MODE_OFF => false,
            MODE_FULL => true,
            _ => trace_id.is_multiple_of(self.sample_n.load(Ordering::Relaxed)),
        }
    }

    /// Current time in microseconds on the recorder's axis.
    pub fn now_us(&self) -> u64 {
        self.time.now_us()
    }

    /// Mints a globally unique span id: the member id (plus one, so
    /// member 0 and "no namespace" differ) in the top 16 bits, an atomic
    /// counter below.
    pub fn fresh_span_id(&self) -> u64 {
        let member = self.member.load(Ordering::Relaxed) + 1;
        (member << 48) | (self.next_span.fetch_add(1, Ordering::Relaxed) & 0xFFFF_FFFF_FFFF)
    }

    /// Records one span on `lane` (clamped like trace-ring shards),
    /// dropping that lane's oldest span at capacity. Callers should
    /// check [`SpanRecorder::enabled`] first; this method re-checks so
    /// an unguarded call in a cold path stays correct.
    pub fn record(&self, lane: usize, span: Span) {
        if !self.enabled(span.ctx.trace_id) {
            return;
        }
        let lane = &self.lanes[lane.min(self.lanes.len() - 1)];
        let mut lane = lane.lock().expect("span lane poisoned");
        if lane.len() == self.capacity {
            lane.pop_front();
        }
        lane.push_back(span);
    }

    /// All retained spans merged across lanes, ordered by start time
    /// (stable across runs under a virtual clock: ties keep lane order).
    pub fn spans(&self) -> Vec<Span> {
        let mut all: Vec<Span> = self
            .lanes
            .iter()
            .flat_map(|l| l.lock().expect("span lane poisoned").iter().copied().collect::<Vec<_>>())
            .collect();
        all.sort_by_key(|s| (s.start_us, s.ctx.span_id));
        all
    }

    /// Total spans currently retained.
    pub fn len(&self) -> usize {
        self.lanes.iter().map(|l| l.lock().expect("span lane poisoned").len()).sum()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The deterministic trace id of the data-plane request `(session, seq)`
/// — FNV-1a over both, so every member (and the client router) derives
/// the same id with no wire bytes spent. Never 0.
pub fn trace_id_for(session: u32, seq: u32) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for b in session.to_be_bytes().into_iter().chain(seq.to_be_bytes()) {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h.max(1)
}

/// The span id of the client-side root span of `trace_id` — derived, so
/// a member can parent its dispatch span under the client root without
/// the id crossing the wire.
pub fn client_root_span(trace_id: u64) -> u64 {
    trace_id ^ 0x5EED_0000_0000_0001
}

/// The span id of `member`'s dispatch span within `trace_id` — derived,
/// so shard-level child spans on the member and redirect hops on the
/// client agree on the parent without coordination.
pub fn dispatch_span(trace_id: u64, member: u32) -> u64 {
    trace_id
        .rotate_left(17)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(u64::from(member))
        .max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    fn ticking() -> TimeSource {
        let tick = AtomicU64::new(0);
        TimeSource::new(move || tick.fetch_add(10, Ordering::Relaxed))
    }

    fn span(recorder: &SpanRecorder, trace_id: u64, kind: SpanKind) -> Span {
        Span {
            ctx: TraceCtx { trace_id, span_id: recorder.fresh_span_id(), parent: 0 },
            kind,
            start_us: recorder.now_us(),
            dur_us: 5,
            member: recorder.member(),
            shard: 0,
            a: 0,
            b: 0,
        }
    }

    #[test]
    fn derived_ids_are_pure_and_distinct() {
        assert_eq!(trace_id_for(7, 42), trace_id_for(7, 42));
        assert_ne!(trace_id_for(7, 42), trace_id_for(7, 43));
        assert_ne!(trace_id_for(7, 42), trace_id_for(8, 42));
        let t = trace_id_for(7, 42);
        assert_ne!(client_root_span(t), dispatch_span(t, 0));
        assert_ne!(dispatch_span(t, 0), dispatch_span(t, 1));
        assert_eq!(dispatch_span(t, 2), dispatch_span(t, 2));
        assert_ne!(t, 0);
    }

    #[test]
    fn off_mode_records_nothing_and_full_records_all() {
        let r = SpanRecorder::new(2, 8, ticking());
        r.set_mode(TraceMode::Off);
        assert!(!r.enabled(1));
        r.record(0, span(&r, 1, SpanKind::ClientUpdate));
        assert!(r.is_empty());
        r.set_mode(TraceMode::Full);
        assert!(r.enabled(1));
        r.record(0, span(&r, 1, SpanKind::ClientUpdate));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn sampled_mode_gates_by_trace_id() {
        let r = SpanRecorder::new(1, 16, ticking());
        r.set_mode(TraceMode::Sampled(4));
        assert!(r.enabled(8));
        assert!(!r.enabled(9));
        r.record(0, span(&r, 8, SpanKind::RegionCompute));
        r.record(0, span(&r, 9, SpanKind::RegionCompute));
        assert_eq!(r.len(), 1, "only the sampled trace is retained");
        // Sampled(0) clamps to every-trace rather than dividing by zero.
        r.set_mode(TraceMode::Sampled(0));
        assert!(r.enabled(9));
    }

    #[test]
    fn lanes_drop_oldest_and_out_of_range_lanes_clamp() {
        let r = SpanRecorder::new(2, 2, ticking());
        for i in 0..4 {
            let mut s = span(&r, 1, SpanKind::ShardWait);
            s.a = i;
            r.record(0, s);
        }
        r.record(99, span(&r, 1, SpanKind::ClientUpdate));
        assert_eq!(r.len(), 3, "lane 0 capped at 2, clamped lane holds 1");
        let kept: Vec<u64> =
            r.spans().iter().filter(|s| s.kind == SpanKind::ShardWait).map(|s| s.a).collect();
        assert_eq!(kept, vec![2, 3]);
    }

    #[test]
    fn fresh_span_ids_are_namespaced_by_member() {
        let a = SpanRecorder::new(1, 4, ticking());
        let b = SpanRecorder::new(1, 4, ticking());
        a.set_member(0);
        b.set_member(1);
        assert_eq!(a.member(), 0);
        let ida = a.fresh_span_id();
        let idb = b.fresh_span_id();
        assert_ne!(ida, idb, "same counter value, different namespaces");
        assert_eq!(ida >> 48, 1, "member 0 occupies namespace 1");
        assert_eq!(idb >> 48, 2);
    }
}
