//! Log-bucketed concurrent histograms (HDR-style).
//!
//! Values up to `2^SUB_BITS − 1` get their own bucket (lossless); beyond
//! that each power-of-two octave is split into `2^SUB_BITS` linear
//! sub-buckets, bounding the relative quantization error at
//! `2^-SUB_BITS` (12.5% with the default 3 sub-bucket bits). The layout
//! is the classic high-dynamic-range one: bucket widths double once per
//! octave, so 496 buckets cover the whole `u64` range in 4 KB of
//! atomics.
//!
//! Recording is a single `fetch_add` per bucket plus three bookkeeping
//! RMWs (count, sum, max) — no locks, no allocation — so concurrent
//! recorders interleave freely and never lose counts. Snapshots read the
//! bucket array with relaxed loads; a snapshot taken while recorders are
//! active is some valid interleaving, and quantiles are computed against
//! the bucket total observed *in that snapshot* so they are internally
//! consistent.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Sub-bucket resolution: each octave splits into `2^SUB_BITS` buckets.
const SUB_BITS: u32 = 3;
/// Sub-buckets per octave.
const SUBS: usize = 1 << SUB_BITS;
/// Total bucket count: the `SUBS` lossless small-value buckets plus
/// `SUBS` per octave for octaves `SUB_BITS..=63`.
const BUCKETS: usize = SUBS * (64 - SUB_BITS as usize + 1);

/// Index of the bucket holding `v`.
fn bucket_of(v: u64) -> usize {
    if v < SUBS as u64 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros(); // >= SUB_BITS
    let shift = msb - SUB_BITS;
    let sub = (v >> shift) as usize & (SUBS - 1);
    SUBS + ((msb - SUB_BITS) as usize) * SUBS + sub
}

/// Smallest value landing in bucket `i`.
fn bucket_low(i: usize) -> u64 {
    if i < SUBS {
        return i as u64;
    }
    let k = i - SUBS;
    let octave = (k / SUBS) as u32;
    let sub = (k % SUBS) as u64;
    (1u64 << (octave + SUB_BITS)) + (sub << octave)
}

/// Largest value landing in bucket `i`.
fn bucket_high(i: usize) -> u64 {
    if i + 1 >= BUCKETS {
        return u64::MAX;
    }
    bucket_low(i + 1) - 1
}

/// The width of bucket `i` (number of distinct values it merges).
pub fn bucket_width(i: usize) -> u64 {
    bucket_high(i).wrapping_sub(bucket_low(i)).wrapping_add(1)
}

/// The width of the bucket that would hold `v` — the quantization bound
/// a reported quantile carries.
pub fn width_at(v: u64) -> u64 {
    bucket_width(bucket_of(v))
}

/// Index of the bucket holding `v` — the public face of the bucket
/// layout, shared with the exemplar store so "the bucket a value landed
/// in" means the same thing in both.
pub fn bucket_index(v: u64) -> usize {
    bucket_of(v)
}

/// Total number of buckets in the layout.
pub fn bucket_count() -> usize {
    BUCKETS
}

#[derive(Debug)]
pub(crate) struct HistogramCore {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl HistogramCore {
    fn new() -> HistogramCore {
        HistogramCore {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// A shared handle to one histogram. Cloning is cheap and all clones
/// record into the same buckets.
#[derive(Debug, Clone)]
pub struct Histogram {
    core: Arc<HistogramCore>,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// A fresh, unregistered histogram (registries hand out registered
    /// ones; this is for standalone use and tests).
    pub fn new() -> Histogram {
        Histogram { core: Arc::new(HistogramCore::new()) }
    }

    /// Records one value.
    pub fn record(&self, v: u64) {
        self.core.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.core.count.fetch_add(1, Ordering::Relaxed);
        self.core.sum.fetch_add(v, Ordering::Relaxed);
        self.core.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records a duration in whole nanoseconds (saturating at `u64::MAX`).
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Number of recorded values so far.
    pub fn count(&self) -> u64 {
        self.core.count.load(Ordering::Relaxed)
    }

    /// Adds every recorded value of `other` into `self`, bucket-wise —
    /// the federation aggregation: summing member histograms bucket by
    /// bucket gives exactly the histogram a single process would have
    /// recorded (the layout is identical everywhere), so merged
    /// quantiles carry the same one-bucket-width error bound as local
    /// ones. `other` is read with relaxed loads; merging a live
    /// histogram folds in some valid point-in-time interleaving.
    pub fn merge(&self, other: &Histogram) {
        for (mine, theirs) in self.core.buckets.iter().zip(&other.core.buckets) {
            let n = theirs.load(Ordering::Relaxed);
            if n != 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.core.count.fetch_add(other.core.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.core.sum.fetch_add(other.core.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.core.max.fetch_max(other.core.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Adds every value a [`HistogramSnapshot`] recorded into `self`,
    /// bucket-wise — [`Histogram::merge`] for snapshots. Snapshots carry
    /// their sparse bucket counts precisely so that a histogram captured
    /// in one process (or one bench run) can be folded, exactly, into a
    /// live registry elsewhere: the scaling bench uses this to build
    /// per-scale labeled roll-ups from per-run snapshots.
    pub fn absorb(&self, snap: &HistogramSnapshot) {
        for &(i, n) in &snap.buckets {
            if let Some(bucket) = self.core.buckets.get(i as usize) {
                bucket.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.core.count.fetch_add(snap.count, Ordering::Relaxed);
        self.core.sum.fetch_add(snap.sum, Ordering::Relaxed);
        self.core.max.fetch_max(snap.max, Ordering::Relaxed);
    }

    /// A consistent snapshot with precomputed quantiles.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> =
            self.core.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        let total: u64 = buckets.iter().sum();
        let quantile = |q: f64| -> u64 {
            if total == 0 {
                return 0;
            }
            // Rank of the q-quantile element, 1-based, clamped into range.
            let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
            let mut seen = 0u64;
            for (i, &c) in buckets.iter().enumerate() {
                seen += c;
                if seen >= rank {
                    // Midpoint of the bucket: at most half a bucket width
                    // from every value the bucket merged.
                    let low = bucket_low(i);
                    return low + (bucket_high(i) - low) / 2;
                }
            }
            bucket_high(BUCKETS - 1)
        };
        HistogramSnapshot {
            count: total,
            sum: self.core.sum.load(Ordering::Relaxed),
            max: self.core.max.load(Ordering::Relaxed),
            p50: quantile(0.50),
            p90: quantile(0.90),
            p99: quantile(0.99),
            buckets: buckets
                .iter()
                .enumerate()
                .filter(|(_, &c)| c != 0)
                .map(|(i, &c)| (i as u32, c))
                .collect(),
        }
    }
}

/// Point-in-time view of one histogram.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Values recorded (as summed over the bucket array at snapshot time).
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Largest recorded value (exact, not bucketed).
    pub max: u64,
    /// Median estimate (bucket midpoint).
    pub p50: u64,
    /// 90th-percentile estimate (bucket midpoint).
    pub p90: u64,
    /// 99th-percentile estimate (bucket midpoint).
    pub p99: u64,
    /// Sparse non-zero bucket counts, `(bucket index, count)` in index
    /// order — enough to reconstruct the full distribution exactly (see
    /// [`Histogram::absorb`]). The quantile fields above are derived
    /// from these same counts.
    pub buckets: Vec<(u32, u64)>,
}

impl HistogramSnapshot {
    /// Mean of the recorded values, 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// The exact quantile of a value multiset under the same rank rule the
/// bucketed estimate uses — the reference the property tests (and any
/// future accuracy audit) compare against.
pub fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    assert!(!sorted.is_empty(), "quantile of an empty set");
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout_is_contiguous_and_monotone() {
        // Every bucket's low is the previous bucket's high + 1, and
        // bucket_of inverts bucket_low/high at both edges.
        for i in 0..BUCKETS - 1 {
            assert_eq!(bucket_low(i + 1), bucket_high(i) + 1, "gap after bucket {i}");
            assert_eq!(bucket_of(bucket_low(i)), i);
            assert_eq!(bucket_of(bucket_high(i)), i);
        }
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn small_values_are_lossless() {
        for v in 0..SUBS as u64 {
            assert_eq!(bucket_width(bucket_of(v)), 1, "value {v} must have its own bucket");
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        for &v in &[9u64, 100, 1_000, 123_456, 1 << 40, u64::MAX / 3] {
            let w = width_at(v);
            assert!(
                (w as f64) <= (v as f64) * 0.126,
                "bucket width {w} too coarse for {v}"
            );
        }
    }

    #[test]
    fn snapshot_quantiles_track_exact_ones() {
        let h = Histogram::new();
        let mut values: Vec<u64> = (1..=10_000u64).map(|i| i * 37 % 90_001 + 1).collect();
        for &v in &values {
            h.record(v);
        }
        values.sort_unstable();
        let snap = h.snapshot();
        assert_eq!(snap.count, 10_000);
        for (q, est) in [(0.50, snap.p50), (0.90, snap.p90), (0.99, snap.p99)] {
            let exact = exact_quantile(&values, q);
            let tolerance = width_at(exact);
            assert!(
                est.abs_diff(exact) <= tolerance,
                "q={q}: estimate {est} vs exact {exact}, tolerance {tolerance}"
            );
        }
        assert_eq!(snap.max, *values.last().unwrap());
    }

    #[test]
    fn merged_quantiles_match_pooled_exact_within_one_bucket_width() {
        // Property over seeded pseudo-random member splits: merging N
        // member histograms bucket-wise must estimate the *pooled*
        // quantiles within one bucket width, exactly as if one process
        // had recorded everything.
        let mut rng = 0x5EED_CAFEu64;
        let mut next = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        for _case in 0..50 {
            let members: Vec<Histogram> = (0..3).map(|_| Histogram::new()).collect();
            let mut pooled: Vec<u64> = Vec::new();
            let values = 200 + (next() % 800) as usize;
            for _ in 0..values {
                let v = next() % 5_000_000 + 1;
                members[(next() % 3) as usize].record(v);
                pooled.push(v);
            }
            pooled.sort_unstable();
            let merged = Histogram::new();
            for m in &members {
                merged.merge(m);
            }
            let snap = merged.snapshot();
            assert_eq!(snap.count, pooled.len() as u64);
            assert_eq!(snap.sum, pooled.iter().sum::<u64>());
            assert_eq!(snap.max, *pooled.last().unwrap());
            for (q, est) in [(0.50, snap.p50), (0.90, snap.p90), (0.99, snap.p99)] {
                let exact = exact_quantile(&pooled, q);
                let tolerance = width_at(exact);
                assert!(
                    est.abs_diff(exact) <= tolerance,
                    "q={q}: merged {est} vs pooled exact {exact}, tolerance {tolerance}"
                );
            }
        }
    }

    #[test]
    fn absorbing_a_snapshot_equals_merging_the_histogram() {
        // A snapshot carries its sparse buckets, so absorb must be
        // exactly as faithful as a live bucket-wise merge.
        let source = Histogram::new();
        for v in [0u64, 3, 7, 512, 513, 90_000, 90_000, u64::MAX / 5] {
            source.record(v);
        }
        let via_merge = Histogram::new();
        via_merge.merge(&source);
        let via_absorb = Histogram::new();
        via_absorb.absorb(&source.snapshot());
        assert_eq!(via_absorb.snapshot(), via_merge.snapshot());
        // Absorbing accumulates, like merge.
        via_absorb.absorb(&source.snapshot());
        assert_eq!(via_absorb.snapshot().count, 2 * source.snapshot().count);
    }

    #[test]
    fn empty_histogram_snapshots_to_zeros() {
        let snap = Histogram::new().snapshot();
        assert_eq!(snap, HistogramSnapshot::default());
        assert_eq!(snap.mean(), 0.0);
    }

    #[test]
    fn duration_recording_uses_nanoseconds() {
        let h = Histogram::new();
        h.record_duration(Duration::from_micros(5));
        let snap = h.snapshot();
        assert_eq!(snap.count, 1);
        // 5000 ns lands in a bucket no wider than 12.5% of the value.
        assert!(snap.p50.abs_diff(5_000) <= width_at(5_000));
    }
}
