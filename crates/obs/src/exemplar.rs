//! Histogram exemplars: one trace id remembered per latency bucket.
//!
//! A quantile answers *how slow*; an exemplar answers *which request* —
//! each histogram bucket keeps the trace id of the last value that
//! landed in it, so a p99 readout links straight to the span tree of a
//! request that actually exhibited that latency. The storage is one
//! atomic pair per bucket (same 496-bucket layout as
//! [`crate::histogram`]), recorded with two relaxed stores: a torn
//! value/trace pairing across a race is acceptable for forensics and
//! costs nothing on the hot path.

use crate::histogram::{bucket_count, bucket_index};
use std::sync::atomic::{AtomicU64, Ordering};

/// One exemplar readout: the observed value and the trace that produced
/// it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Exemplar {
    /// The recorded value (nanoseconds for latency series).
    pub value: u64,
    /// The trace id active when the value was recorded.
    pub trace_id: u64,
}

/// Per-bucket last-exemplar storage for one histogram series.
#[derive(Debug)]
pub struct Exemplars {
    values: Vec<AtomicU64>,
    traces: Vec<AtomicU64>,
}

impl Default for Exemplars {
    fn default() -> Exemplars {
        Exemplars::new()
    }
}

impl Exemplars {
    /// Empty storage (one slot per histogram bucket).
    pub fn new() -> Exemplars {
        Exemplars {
            values: (0..bucket_count()).map(|_| AtomicU64::new(0)).collect(),
            traces: (0..bucket_count()).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Remembers `trace_id` as the latest exemplar of `value`'s bucket.
    /// A `trace_id` of 0 (untraced) is skipped so a traced exemplar is
    /// never overwritten by an untraced one.
    pub fn observe(&self, value: u64, trace_id: u64) {
        if trace_id == 0 {
            return;
        }
        let i = bucket_index(value);
        self.values[i].store(value, Ordering::Relaxed);
        self.traces[i].store(trace_id, Ordering::Relaxed);
    }

    /// The exemplar of the bucket containing `value`, if one was
    /// recorded — pass a snapshot's p99 to get the trace that landed in
    /// the p99 bucket.
    pub fn for_value(&self, value: u64) -> Option<Exemplar> {
        let i = bucket_index(value);
        let trace_id = self.traces[i].load(Ordering::Relaxed);
        if trace_id == 0 {
            return None;
        }
        Some(Exemplar { value: self.values[i].load(Ordering::Relaxed), trace_id })
    }

    /// Every recorded exemplar, bucket-ascending (i.e. value-ascending).
    pub fn all(&self) -> Vec<Exemplar> {
        (0..bucket_count())
            .filter_map(|i| {
                let trace_id = self.traces[i].load(Ordering::Relaxed);
                (trace_id != 0)
                    .then(|| Exemplar { value: self.values[i].load(Ordering::Relaxed), trace_id })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observe_then_lookup_round_trips_through_the_bucket() {
        let e = Exemplars::new();
        e.observe(5_000, 0xAB);
        // Any value in the same bucket finds the exemplar.
        let hit = e.for_value(5_000).expect("exemplar recorded");
        assert_eq!(hit, Exemplar { value: 5_000, trace_id: 0xAB });
        assert!(e.for_value(1).is_none(), "other buckets stay empty");
    }

    #[test]
    fn later_observations_win_and_untraced_ones_do_not_clobber() {
        let e = Exemplars::new();
        e.observe(5_000, 1);
        e.observe(5_001, 2);
        assert_eq!(e.for_value(5_000).unwrap().trace_id, 2, "last trace wins in a bucket");
        e.observe(5_002, 0);
        assert_eq!(e.for_value(5_000).unwrap().trace_id, 2, "untraced values are skipped");
        assert_eq!(e.all().len(), 1);
    }
}
