//! Histogram correctness properties.
//!
//! 1. For any recorded value sequence, every bucketed quantile estimate
//!    is within one bucket width of the exact quantile computed from the
//!    raw values under the same rank rule.
//! 2. Concurrent recording from 8 threads loses no counts: the bucket
//!    array, the count cell and the per-bucket totals all agree with the
//!    number of values recorded.

use proptest::prelude::*;
use sa_obs::histogram::{exact_quantile, width_at};
use sa_obs::Histogram;
use std::sync::Arc;

/// Values spanning the lossless range, the log-bucketed mid range and
/// the far tail, so quantiles land in buckets of every width class.
fn value_strategy() -> impl Strategy<Value = u64> {
    prop_oneof![
        0u64..8,
        8u64..10_000,
        10_000u64..100_000_000,
        (0u64..1 << 40).prop_map(|v| v.saturating_mul(16)),
    ]
}

proptest! {
    #[test]
    fn bucketed_quantiles_are_within_one_bucket_width(
        values in prop::collection::vec(value_strategy(), 1..400usize)
    ) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let snap = h.snapshot();
        prop_assert_eq!(snap.count, values.len() as u64);
        prop_assert_eq!(snap.max, *sorted.last().unwrap());
        for (q, est) in [(0.50, snap.p50), (0.90, snap.p90), (0.99, snap.p99)] {
            let exact = exact_quantile(&sorted, q);
            // The estimate is the midpoint of the bucket that holds the
            // rank, and the exact quantile lies in that same bucket, so
            // they can differ by at most that bucket's width.
            let tolerance = width_at(exact);
            prop_assert!(
                est.abs_diff(exact) <= tolerance,
                "q={} estimate {} vs exact {} (tolerance {}) over {} values",
                q, est, exact, tolerance, values.len()
            );
        }
    }

    #[test]
    fn sum_is_exact_not_bucketed(
        values in prop::collection::vec(0u64..1_000_000, 1..200usize)
    ) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        prop_assert_eq!(h.snapshot().sum, values.iter().sum::<u64>());
    }
}

#[test]
fn concurrent_recording_from_8_threads_loses_no_counts() {
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 50_000;
    let h = Arc::new(Histogram::new());
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let h = Arc::clone(&h);
            std::thread::spawn(move || {
                // Each thread hits a distinct deterministic value stream so
                // the threads collide on some buckets and not others.
                let mut x = (t as u64).wrapping_mul(0x9e37_79b9) | 1;
                for _ in 0..PER_THREAD {
                    x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
                    h.record(x >> 40);
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("recorder thread panicked");
    }
    let snap = h.snapshot();
    assert_eq!(
        snap.count,
        THREADS as u64 * PER_THREAD,
        "bucket totals must account for every recorded value"
    );
    assert_eq!(h.count(), THREADS as u64 * PER_THREAD);
    assert!(snap.p50 <= snap.p90 && snap.p90 <= snap.p99, "quantiles are monotone");
    // p99 is a bucket midpoint, so it may poke past the exact max by at
    // most the max's own bucket width.
    assert!(snap.p99 <= snap.max + width_at(snap.max));
}
