//! CI driver for the sa-verify fuzzing sweeps.
//!
//! Runs the cheap differential oracle over a wide seed range, then
//! drives a slice of end-to-end schedule seeds through the full
//! deterministic harness (virtual clock, chaos plans, batching, the
//! transcript oracle), then the named federation schedules (partition
//! handoff during a disconnect window, repartition during a batch
//! cadence — each run twice for digest determinism). Any violation is
//! minimized, rendered as a `#[test]` reproducer next to the report,
//! and turns the exit code nonzero so the CI job fails loudly.
//!
//! Usage: `verify_fuzz [--seeds N] [--schedule-seeds N] [--start S]
//! [--budget-s SECS] [--out PATH]`
//!
//! `--budget-s` bounds the *schedule* sweep by wall clock: seeds past
//! the budget are skipped (and counted in the report) rather than
//! failing the run, so a slow CI runner degrades coverage, not health.

use sa_fed::{gating_cases, run_fed_case};
use sa_verify::{differential_seed, fuzz_schedule};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

struct Opts {
    seeds: u64,
    schedule_seeds: u64,
    start: u64,
    budget_s: f64,
    out: PathBuf,
}

fn parse_args() -> Opts {
    let mut opts = Opts {
        seeds: 1_000,
        schedule_seeds: 32,
        start: 0,
        budget_s: 600.0,
        out: PathBuf::from("BENCH_verify_fuzz.json"),
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| panic!("missing value for {flag}"));
        match flag.as_str() {
            "--seeds" => opts.seeds = value().parse().expect("--seeds expects an integer"),
            "--schedule-seeds" => {
                opts.schedule_seeds =
                    value().parse().expect("--schedule-seeds expects an integer");
            }
            "--start" => opts.start = value().parse().expect("--start expects an integer"),
            "--budget-s" => {
                opts.budget_s = value().parse().expect("--budget-s expects seconds");
            }
            "--out" => opts.out = PathBuf::from(value()),
            "--help" | "-h" => {
                eprintln!(
                    "usage: verify_fuzz [--seeds N] [--schedule-seeds N] [--start S] \
                     [--budget-s SECS] [--out PATH]"
                );
                std::process::exit(0);
            }
            other => panic!("unknown flag {other}"),
        }
    }
    opts
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            '\n' => vec!['\\', 'n'],
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

fn main() {
    let opts = parse_args();
    let started = Instant::now();

    // Phase 1: wide differential sweep. Cheap enough that the budget is
    // not consulted; a violation here is a first-class failure.
    let mut differential_failures: Vec<String> = Vec::new();
    for seed in opts.start..opts.start.saturating_add(opts.seeds) {
        if let Err(v) = differential_seed(seed) {
            eprintln!("DIFFERENTIAL VIOLATION: {v}");
            differential_failures.push(v);
        }
    }
    let differential_seconds = started.elapsed().as_secs_f64();

    // Phase 2: end-to-end schedule seeds, minimized on failure, bounded
    // by the wall-clock budget.
    let schedule_started = Instant::now();
    let mut report = sa_verify::FuzzReport::default();
    let mut skipped = 0u64;
    for seed in opts.start..opts.start.saturating_add(opts.schedule_seeds) {
        if schedule_started.elapsed().as_secs_f64() > opts.budget_s {
            skipped = opts.start + opts.schedule_seeds - seed;
            break;
        }
        let one = fuzz_schedule([seed], true);
        report.seeds_run += one.seeds_run;
        report.failures.extend(one.failures);
    }
    let schedule_seconds = schedule_started.elapsed().as_secs_f64();

    // Phase 3: the named federation schedules. Pinned configs, each run
    // twice inside `run_fed_case` (exactness + digest determinism +
    // scenario coverage); small enough that the budget is not consulted.
    let fed_started = Instant::now();
    let mut fed_failures: Vec<String> = Vec::new();
    let mut fed_cases: Vec<(sa_fed::FedCaseOutcome, bool)> = Vec::new();
    for case in gating_cases() {
        let outcome = run_fed_case(&case);
        let passed = outcome.passed();
        // Keep each case's causal trace as a CI artifact, pass or fail.
        if !outcome.trace_json.is_empty() {
            let path = opts.out.with_file_name(format!("TRACE_{}.json", outcome.name));
            std::fs::write(&path, &outcome.trace_json).expect("writing the trace artifact");
        }
        if let Some(failure) = &outcome.failure {
            // A divergence failure carries the rendered flight bundle
            // (span trees, trace rings, registry snapshots) — persist
            // it whole rather than losing it to a truncated log line.
            let path = opts.out.with_file_name(format!("FLIGHT_{}.txt", outcome.name));
            std::fs::write(&path, failure).expect("writing the flight bundle");
            let v = format!("federation case '{}': {failure}", outcome.name);
            eprintln!("FEDERATION VIOLATION: {v}");
            eprintln!("flight bundle: {}", path.display());
            fed_failures.push(v);
        }
        fed_cases.push((outcome, passed));
    }
    let fed_seconds = fed_started.elapsed().as_secs_f64();

    // Emit each minimized reproducer next to the report.
    for f in &report.failures {
        let path = opts.out.with_file_name(format!("repro_seed_{}.rs", f.seed));
        std::fs::write(&path, &f.reproducer).expect("writing the reproducer artifact");
        eprintln!("SCHEDULE VIOLATION (seed {}): {}\nreproducer: {}", f.seed, f.violation, path.display());
    }

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"differential_seeds\": {},", opts.seeds);
    let _ = writeln!(json, "  \"differential_failures\": {},", differential_failures.len());
    let _ = writeln!(json, "  \"differential_seconds\": {differential_seconds:.3},");
    let _ = writeln!(json, "  \"schedule_seeds_requested\": {},", opts.schedule_seeds);
    let _ = writeln!(json, "  \"schedule_seeds_run\": {},", report.seeds_run);
    let _ = writeln!(json, "  \"schedule_seeds_skipped_budget\": {skipped},");
    let _ = writeln!(json, "  \"schedule_seconds\": {schedule_seconds:.3},");
    let _ = writeln!(json, "  \"start\": {},", opts.start);
    let _ = writeln!(json, "  \"federation_seconds\": {fed_seconds:.3},");
    let _ = writeln!(json, "  \"federation_cases\": [");
    for (i, (outcome, passed)) in fed_cases.iter().enumerate() {
        let comma = if i + 1 == fed_cases.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{ \"name\": \"{}\", \"passed\": {passed}, \"digest\": \"{:#018x}\", \
             \"deterministic\": {}, \"handoffs\": {}, \"redirects\": {}, \
             \"repartitioned\": {}, \"injected\": {} }}{comma}",
            outcome.name,
            outcome.digest,
            outcome.deterministic,
            outcome.handoffs,
            outcome.redirects,
            outcome.repartitioned,
            outcome.injected
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"failures\": [");
    let all: Vec<String> = differential_failures
        .iter()
        .cloned()
        .chain(report.failures.iter().map(|f| f.violation.clone()))
        .chain(fed_failures.iter().cloned())
        .collect();
    for (i, v) in all.iter().enumerate() {
        let comma = if i + 1 == all.len() { "" } else { "," };
        let _ = writeln!(json, "    \"{}\"{comma}", json_escape(v));
    }
    let _ = writeln!(json, "  ]");
    json.push_str("}\n");
    std::fs::write(&opts.out, &json).expect("writing the fuzz report");

    let clean = differential_failures.is_empty() && report.is_clean() && fed_failures.is_empty();
    println!(
        "verify_fuzz: {} differential seeds in {:.1}s, {} schedule seeds in {:.1}s \
         ({} skipped by budget), {} federation cases in {:.1}s, {} violations → {}",
        opts.seeds,
        differential_seconds,
        report.seeds_run,
        schedule_seconds,
        skipped,
        fed_cases.len(),
        fed_seconds,
        all.len(),
        opts.out.display()
    );
    if !clean {
        std::process::exit(1);
    }
}
