//! Replays a seeded fleet against a live multi-member federation —
//! partitioned ownership, session handoffs on boundary crossings, one
//! mid-run repartition under a lossy fault plan — and writes
//! `BENCH_federation_replay.json`: per-partition update throughput,
//! handoff/redirect counts, the final topology epoch, and the
//! transcript digest.
//!
//! This is the federation counterpart of `chaos_replay`: the run aborts
//! (exit 1) unless the fired sequence matches `sa_sim::GroundTruth`
//! exactly and a second run reproduces the same byte-transcript digest.
//!
//! Usage: `federation_replay [--partitions N] [--vehicles N] [--alarms N]
//!   [--steps N] [--seed S] [--preset lossy|partitioned|duplicating|clean]
//!   [--repartition-at STEP|never] [--out PATH]`

use sa_fed::{fed_replay, FedReplayConfig};
use sa_server::wire::StrategySpec;
use sa_server::FaultPlan;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

struct Opts {
    partitions: u32,
    vehicles: usize,
    alarms: usize,
    steps: u32,
    seed: u64,
    preset: String,
    repartition_at: Option<u32>,
    out: PathBuf,
}

fn parse_args() -> Opts {
    let mut opts = Opts {
        partitions: 3,
        vehicles: 4,
        alarms: 24,
        steps: 96,
        seed: 0xFEDBEEF,
        preset: "lossy".to_string(),
        repartition_at: Some(48),
        out: PathBuf::from("BENCH_federation_replay.json"),
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| panic!("missing value for {flag}"));
        match flag.as_str() {
            "--partitions" => {
                opts.partitions = value().parse().expect("--partitions expects an integer")
            }
            "--vehicles" => opts.vehicles = value().parse().expect("--vehicles expects an integer"),
            "--alarms" => opts.alarms = value().parse().expect("--alarms expects an integer"),
            "--steps" => opts.steps = value().parse().expect("--steps expects an integer"),
            "--seed" => opts.seed = value().parse().expect("--seed expects an integer"),
            "--preset" => opts.preset = value(),
            "--repartition-at" => {
                let v = value();
                opts.repartition_at = if v == "never" {
                    None
                } else {
                    Some(v.parse().expect("--repartition-at expects a step or 'never'"))
                };
            }
            "--out" => opts.out = PathBuf::from(value()),
            "--help" | "-h" => {
                eprintln!(
                    "usage: federation_replay [--partitions N] [--vehicles N] [--alarms N] \
                     [--steps N] [--seed S] [--preset lossy|partitioned|duplicating|clean] \
                     [--repartition-at STEP|never] [--out PATH]"
                );
                std::process::exit(0);
            }
            other => panic!("unknown flag {other}"),
        }
    }
    assert!(opts.partitions >= 2, "--partitions must be at least 2 for a federation");
    assert!(opts.steps > 0, "--steps must be positive");
    opts
}

fn main() {
    let opts = parse_args();
    let plan = FaultPlan::preset(&opts.preset, opts.seed)
        .unwrap_or_else(|| panic!("unknown preset {:?}", opts.preset));
    let cfg = FedReplayConfig {
        partitions: opts.partitions,
        vehicles: opts.vehicles,
        alarms: opts.alarms,
        steps: opts.steps,
        seed: opts.seed,
        plan,
        batch_every: 0,
        repartition_at: opts.repartition_at,
        num_shards: 2,
        queue_capacity: 64,
        strategies: vec![
            StrategySpec::Mwpsr,
            StrategySpec::Pbsr { height: 5 },
            StrategySpec::Opt,
            StrategySpec::SafePeriod,
        ],
    };

    let started = Instant::now();
    let outcome = fed_replay(&cfg).expect("no fatal transport errors");
    let wall_seconds = started.elapsed().as_secs_f64();
    if let Err(e) = &outcome.verification {
        // The rendered divergence flight bundle (span trees, trace
        // rings, registry snapshots) is the forensic artifact — keep it.
        let flight = PathBuf::from("FLIGHT_federation_replay.txt");
        std::fs::write(&flight, e).expect("writing the flight bundle");
        eprintln!("federation replay diverged from ground truth:\n{e}");
        eprintln!("flight bundle written to {}", flight.display());
        std::process::exit(1);
    }
    // The merged causal trace of the run, loadable in Perfetto /
    // chrome://tracing.
    std::fs::write("TRACE_federation_replay.json", &outcome.trace_json)
        .expect("writing the trace export");
    println!(
        "trace export → TRACE_federation_replay.json ({} spans, {} bytes)",
        outcome.spans.len(),
        outcome.trace_json.len()
    );
    let rerun = fed_replay(&cfg).expect("no fatal transport errors on the rerun");
    if rerun.digest != outcome.digest {
        eprintln!(
            "federation replay is nondeterministic: {:#018x} vs {:#018x}",
            outcome.digest, rerun.digest
        );
        std::process::exit(1);
    }

    let total_updates: u64 = outcome.per_partition_updates.iter().sum();
    let throughput = total_updates as f64 / wall_seconds.max(1e-9);

    // Hand-rolled JSON: the vendored serde stub has no serializer.
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"partitions\": {},", opts.partitions);
    let _ = writeln!(json, "  \"vehicles\": {},", opts.vehicles);
    let _ = writeln!(json, "  \"alarms\": {},", opts.alarms);
    let _ = writeln!(json, "  \"steps\": {},", outcome.steps);
    let _ = writeln!(json, "  \"seed\": {},", opts.seed);
    let _ = writeln!(json, "  \"preset\": \"{}\",", opts.preset);
    let _ = writeln!(json, "  \"wall_seconds\": {wall_seconds:.6},");
    let _ = writeln!(json, "  \"fired\": {},", outcome.fired.len());
    let _ = writeln!(json, "  \"digest\": \"{:#018x}\",", outcome.digest);
    let _ = writeln!(json, "  \"deterministic\": true,");
    let _ = writeln!(json, "  \"total_updates\": {total_updates},");
    let _ = writeln!(json, "  \"throughput_updates_per_sec\": {throughput:.3},");
    let _ = writeln!(json, "  \"per_partition_updates\": {{");
    for (i, n) in outcome.per_partition_updates.iter().enumerate() {
        let comma = if i + 1 == outcome.per_partition_updates.len() { "" } else { "," };
        let per_sec = *n as f64 / wall_seconds.max(1e-9);
        let _ = writeln!(
            json,
            "    \"{i}\": {{ \"updates\": {n}, \"updates_per_sec\": {per_sec:.3} }}{comma}"
        );
    }
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"handoffs\": {},", outcome.handoffs);
    let _ = writeln!(json, "  \"redirects\": {},", outcome.redirects);
    let _ = writeln!(json, "  \"wrong_owner_bounces\": {},", outcome.wrong_owner_bounces);
    let _ = writeln!(json, "  \"repartitioned\": {},", outcome.repartitioned);
    let _ = writeln!(json, "  \"final_epoch\": {},", outcome.final_epoch);
    let _ = writeln!(json, "  \"injected_faults_total\": {}", outcome.injected_total);
    json.push_str("}\n");

    std::fs::write(&opts.out, &json).expect("writing the benchmark report");
    println!(
        "federation-replayed {} steps × {} vehicles over {} partitions under '{}' in {:.2}s: \
         {:.0} updates/s, {} handoffs, {} redirects, epoch {}, digest {:#018x} → {}",
        outcome.steps,
        opts.vehicles,
        opts.partitions,
        opts.preset,
        wall_seconds,
        throughput,
        outcome.handoffs,
        outcome.redirects,
        outcome.final_epoch,
        outcome.digest,
        opts.out.display()
    );
}
