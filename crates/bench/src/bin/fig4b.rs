//! Figure 4(b): server processing time (alarm processing vs safe-region
//! computation vs total) for the weighted perimeter approach (y = 1,
//! z = 32) as the grid cell size sweeps {0.4, 0.625, 1.11, 2.5, 10} km².
//!
//! Paper shape: alarm-processing time falls with cell size (fewer location
//! messages reach the index), safe-region-computation time rises (more
//! alarms intersect each larger cell), and the total bottoms out at an
//! interior cell size (2.5 km² in the paper).

use sa_bench::{append_csv, averaged_runs, render_table, BenchOpts};
use sa_sim::{SimulationHarness, StrategyKind};

fn main() {
    let opts = BenchOpts::from_args();
    let cell_sizes = [0.4, 0.625, 1.11, 2.5, 10.0];
    let kind = StrategyKind::Mwpsr { y: 1.0, z: 32 };

    let base: Vec<SimulationHarness> =
        (0..opts.seeds).map(|seed| SimulationHarness::build(&opts.config(seed))).collect();

    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    for &cell in &cell_sizes {
        let avg = averaged_runs(&opts, kind, |seed| base[seed as usize].with_cell_area(cell));
        rows.push(vec![
            format!("{cell}"),
            format!("{:.3}", avg.alarm_minutes),
            format!("{:.3}", avg.region_minutes),
            format!("{:.3}", avg.total_minutes()),
        ]);
        csv_rows.push(format!(
            "{cell},{:.5},{:.5},{:.5}",
            avg.alarm_minutes,
            avg.region_minutes,
            avg.total_minutes()
        ));
    }

    println!(
        "{}",
        render_table(
            "Figure 4(b): server processing time (minutes) vs grid cell size, MWPSR y=1 z=32",
            &["Cell (km²)", "Alarm Processing", "Safe Region Computation", "Total"],
            &rows,
        )
    );

    if let Some(path) = &opts.csv {
        append_csv(path, "cell_km2,alarm_min,region_min,total_min", &csv_rows)
            .expect("csv write failed");
    }
}
