//! Ablation experiments for the design choices DESIGN.md calls out:
//!
//! 1. **Sound vs Hu–Xu–Lee \[10\] rectangles** — the paper's §5 claim that
//!    the prior approach "leads to alarm misses and erroneous safe
//!    regions": the legacy variant is run through the full accuracy check
//!    and its misses are counted.
//! 2. **PBSR unicast vs broadcast (§4.2)** — the downlink cost of shipping
//!    full per-user bitmaps vs broadcasting precomputed public bitmaps per
//!    cell with per-user personal overlays.
//! 3. **Weighted vs non-weighted perimeter** — the Figure 4(a) margin.
//!
//! Accepts the shared options (`--scale`, `--seeds`, `--duration`, `--csv`).

use sa_bench::{render_table, BenchOpts};
use sa_sim::{SimulationHarness, StrategyKind};

fn main() {
    let opts = BenchOpts::from_args();
    let harness = SimulationHarness::build(&opts.config(0));
    let gt = harness.ground_truth().len();
    println!(
        "world: {} vehicles, {} alarms, {} ground-truth firings\n",
        harness.config().fleet.vehicles,
        harness.config().workload.alarms,
        gt
    );

    // --- Ablation 1: sound vs legacy Hu–Xu–Lee rectangles -----------------
    // The §5 claim: \[10\] "leads to alarm misses and erroneous safe regions"
    // when alarm regions overlap or cross the axes through the subscriber.
    // Measured directly: sample subscriber positions from the workload,
    // compute both variants, and count regions whose closed extent reaches
    // into some relevant alarm's interior (a subscriber standing there
    // stays silent while the alarm should fire).
    {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        use sa_alarms::SubscriberId;
        use sa_core::MwpsrComputer;
        use sa_geometry::{Point, Rect};

        let grid = harness.grid();
        let index = harness.index();
        let computer = MwpsrComputer::non_weighted();
        let mut rng = SmallRng::seed_from_u64(0xAB1A_0001);
        let universe = grid.universe();
        let trials = 4_000usize;
        let mut legacy_bad = 0usize;
        let mut sound_bad = 0usize;
        for _ in 0..trials {
            let user = SubscriberId(rng.gen_range(0..harness.config().fleet.vehicles as u32));
            let pos = Point::new(
                rng.gen_range(universe.min_x()..universe.max_x()),
                rng.gen_range(universe.min_y()..universe.max_y()),
            );
            let cell = grid.cell_rect(grid.cell_of(pos));
            let obstacles: Vec<Rect> = index
                .relevant_intersecting(user, cell)
                .iter()
                .map(|a| a.region())
                .filter(|r| !r.contains_point_strict(pos))
                .collect();
            if obstacles.is_empty() {
                continue;
            }
            let legacy = computer.compute_hu_xu_lee(pos, 0.0, cell, &obstacles).rect();
            if obstacles.iter().any(|o| legacy.intersects_interior(o)) {
                legacy_bad += 1;
            }
            let sound = computer.compute(pos, 0.0, cell, &obstacles).rect();
            if obstacles.iter().any(|o| sound.intersects_interior(o)) {
                sound_bad += 1;
            }
        }
        println!(
            "{}",
            render_table(
                "Ablation 1: erroneous safe regions (the fix over [10]), 4000 sampled scenarios",
                &["variant", "erroneous regions", "rate"],
                &[
                    vec![
                        "sound (this paper)".into(),
                        format!("{sound_bad}"),
                        format!("{:.2}%", 100.0 * sound_bad as f64 / trials as f64),
                    ],
                    vec![
                        "Hu-Xu-Lee [10]".into(),
                        format!("{legacy_bad}"),
                        format!("{:.2}%", 100.0 * legacy_bad as f64 / trials as f64),
                    ],
                ],
            )
        );
        assert_eq!(sound_bad, 0, "the sound variant must never err");
    }

    // End-to-end, the erroneous legacy regions are degenerate (zero-width
    // slivers), so clients exit them immediately and the damage rarely
    // converts into missed alarms — but the run is checked anyway.
    let sound = harness.run(StrategyKind::MwpsrNonWeighted);
    let legacy = harness.run(StrategyKind::MwpsrLegacyHuXuLee);
    sound.assert_accurate();
    println!(
        "end-to-end: sound fired {}/{gt}, legacy fired {}/{gt} ({})\n",
        sound.fired.len(),
        legacy.fired.len(),
        if legacy.accuracy_ok { "accurate on this trace" } else { "INACCURATE" }
    );

    // --- Ablation 2: PBSR unicast vs broadcast ---------------------------
    let unicast = harness.run(StrategyKind::Pbsr { height: 5 });
    let broadcast = harness.run(StrategyKind::PbsrBroadcast { height: 5 });
    unicast.assert_accurate();
    broadcast.assert_accurate();
    println!(
        "{}",
        render_table(
            "Ablation 2: PBSR h=5 downlink accounting (§4.2 broadcast optimization)",
            &["variant", "downlink Mbit", "downlink msgs", "uplink msgs"],
            &[
                vec![
                    "unicast full bitmaps".into(),
                    format!("{:.3}", unicast.metrics.downlink_bits as f64 / 1.0e6),
                    format!("{}", unicast.metrics.downlink_messages),
                    format!("{}", unicast.metrics.uplink_messages),
                ],
                vec![
                    "broadcast public + overlay".into(),
                    format!("{:.3}", broadcast.metrics.downlink_bits as f64 / 1.0e6),
                    format!("{}", broadcast.metrics.downlink_messages),
                    format!("{}", broadcast.metrics.uplink_messages),
                ],
            ],
        )
    );

    // --- Ablation 3: weighted vs non-weighted perimeter ------------------
    let mut rows = Vec::new();
    for (name, kind) in [
        ("non-weighted", StrategyKind::MwpsrNonWeighted),
        ("y=1, z=4", StrategyKind::Mwpsr { y: 1.0, z: 4 }),
        ("y=1, z=32", StrategyKind::Mwpsr { y: 1.0, z: 32 }),
    ] {
        let run = harness.run(kind);
        run.assert_accurate();
        rows.push(vec![name.to_string(), format!("{}", run.metrics.uplink_messages)]);
    }
    println!(
        "{}",
        render_table(
            "Ablation 3: steady-motion weighting (Figure 4(a) margin)",
            &["variant", "uplink messages"],
            &rows,
        )
    );
}
