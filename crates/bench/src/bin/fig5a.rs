//! Figure 5(a): number of client-to-server messages for the bitmap
//! safe-region approaches as the pyramid height sweeps h = 1 (GBSR) … 7,
//! for 1%, 10% and 20% public alarms.
//!
//! Paper shape: GBSR (h = 1) is by far the worst — its coarse bitmap
//! strands clients in blocked cells where they must report every sample;
//! messages drop sharply as h grows; higher public-alarm density degrades
//! every height.

use sa_bench::{append_csv, averaged_runs, render_table, BenchOpts};
use sa_sim::{SimulationHarness, StrategyKind};

fn main() {
    let opts = BenchOpts::from_args();
    let heights = [1u32, 2, 3, 4, 5, 6, 7];
    let public_pcts = [0.01, 0.10, 0.20];

    // One harness per (public %, seed); heights share it.
    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    let mut harnesses: Vec<Vec<SimulationHarness>> = Vec::new();
    for &pct in &public_pcts {
        harnesses.push(
            (0..opts.seeds)
                .map(|seed| {
                    let mut config = opts.config(seed);
                    config.workload.public_fraction = pct;
                    SimulationHarness::build(&config)
                })
                .collect(),
        );
    }

    for &h in &heights {
        let mut row = vec![format!("{h}")];
        for (pi, &pct) in public_pcts.iter().enumerate() {
            let avg = averaged_runs(&opts, StrategyKind::Pbsr { height: h }, |seed| {
                &harnesses[pi][seed as usize]
            });
            row.push(format!("{:.4}", avg.uplink_messages / 1.0e6));
            csv_rows.push(format!("{h},{pct},{}", avg.uplink_messages));
        }
        rows.push(row);
    }

    println!(
        "{}",
        render_table(
            "Figure 5(a): client-to-server messages (millions) vs pyramid height",
            &["h", "1% public", "10% public", "20% public"],
            &rows,
        )
    );

    if let Some(path) = &opts.csv {
        append_csv(path, "height,public_fraction,messages", &csv_rows).expect("csv write failed");
    }
}
