//! Open-loop load generator over real TCP sockets against the
//! readiness-driven reactor — the coordinated-omission-free tail-latency
//! bench (`BENCH_live_tcp.json`).
//!
//! Unlike the closed-loop replay drivers (which wait for each response
//! before sending the next request, so server stalls silently slow the
//! *offered* load), this generator precomputes a Poisson arrival
//! schedule at a fixed rate and sends each location update at its
//! scheduled instant whether or not earlier responses have arrived
//! (writes are pipelined per connection). RTT is measured from the
//! *scheduled* send time, so queueing delay the server causes is charged
//! to the server — the standard fix for coordinated omission (see
//! PERFORMANCE.md §5).
//!
//! Every trace sample is sent, every trigger delivery is recorded, and
//! the observed firings must match `sa_sim::GroundTruth` exactly — load
//! testing never excuses a wrong answer.
//!
//! Usage: `live_tcp [--scale F] [--steps N] [--rate R] [--workers W]
//! [--seed S] [--shards N] [--queue N] [--out PATH] [--check]
//! [--max-p99-ms MS]`

use sa_roadnet::Fleet;
use sa_server::netfront::{FrameReader, WriteQueue};
use sa_server::wire::{
    frame, pack_motion, quantize_m, read_frame, write_frame, Request, Response, StrategySpec,
};
use sa_server::{Reactor, ReactorConfig, Server, ServerConfig};
use sa_sim::{FiredEvent, GroundTruth, SimulationConfig, SimulationHarness};
use std::fmt::Write as _;
use std::io::Read as _;
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Opts {
    scale: f64,
    steps: u32,
    rate: f64,
    workers: usize,
    seed: u64,
    shards: usize,
    queue: usize,
    out: PathBuf,
    check: bool,
    max_p99_ms: f64,
}

fn parse_args() -> Opts {
    let mut opts = Opts {
        scale: 0.02,
        steps: 20,
        rate: 4_000.0,
        workers: 4,
        seed: 0x011F_E7C9,
        shards: 4,
        queue: 256,
        out: PathBuf::from("BENCH_live_tcp.json"),
        check: false,
        max_p99_ms: 250.0,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| panic!("missing value for {flag}"));
        match flag.as_str() {
            "--scale" => opts.scale = value().parse().expect("--scale expects a float"),
            "--steps" => opts.steps = value().parse().expect("--steps expects an integer"),
            "--rate" => opts.rate = value().parse().expect("--rate expects a float"),
            "--workers" => opts.workers = value().parse().expect("--workers expects an integer"),
            "--seed" => opts.seed = value().parse().expect("--seed expects an integer"),
            "--shards" => opts.shards = value().parse().expect("--shards expects an integer"),
            "--queue" => opts.queue = value().parse().expect("--queue expects an integer"),
            "--out" => opts.out = PathBuf::from(value()),
            "--check" => opts.check = true,
            "--max-p99-ms" => {
                opts.max_p99_ms = value().parse().expect("--max-p99-ms expects a float");
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: live_tcp [--scale F] [--steps N] [--rate R] [--workers W] \
                     [--seed S] [--shards N] [--queue N] [--out PATH] [--check] [--max-p99-ms MS]"
                );
                std::process::exit(0);
            }
            other => panic!("unknown flag {other}"),
        }
    }
    assert!(opts.steps > 0, "--steps must be positive");
    assert!(opts.rate > 0.0, "--rate must be positive");
    assert!(opts.workers > 0, "--workers must be positive");
    opts
}

/// One scheduled open-loop send: vehicle `conn` transmits its step-`step`
/// sample at `at_ns` (relative to the run's start anchor).
#[derive(Debug, Clone, Copy)]
struct Event {
    at_ns: u64,
    conn: u32,
    step: u32,
}

/// One request in flight on a connection, keyed by its wire sequence
/// number; responses per connection arrive in request order.
#[derive(Debug, Clone, Copy)]
struct InFlight {
    seq: u32,
    scheduled_ns: u64,
}

/// Per-connection generator state.
struct Conn {
    stream: TcpStream,
    reader: FrameReader,
    writer: WriteQueue,
    in_flight: std::collections::VecDeque<InFlight>,
    /// (alarm, step) deliveries observed on this connection.
    fired: Vec<(u64, u32)>,
}

/// What one worker thread brings back.
#[derive(Default)]
struct WorkerOutcome {
    /// (vehicle, alarm, step) firings.
    fired: Vec<(u32, u64, u32)>,
    /// RTTs measured from the scheduled arrival instant, in ns.
    rtt_ns: Vec<u64>,
    /// How late each send left relative to its schedule, in ns.
    send_lag_ns: Vec<u64>,
    overloads: u64,
    protocol_errors: u64,
}

/// Deterministic xorshift for the schedule (inter-arrival draws and the
/// per-step send-order shuffle) so two runs offer identical load.
struct Xor64(u64);

impl Xor64 {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    /// Uniform in (0, 1].
    fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64 + f64::MIN_POSITIVE
    }
}

fn main() {
    let opts = parse_args();

    // Simulation world, trimmed to the requested number of steps.
    let mut config = SimulationConfig::scaled(opts.scale);
    config.duration_s = f64::from(opts.steps) * config.sample_period_s;
    let harness = SimulationHarness::build(&config);
    let vehicles = config.fleet.vehicles;
    let dt = config.sample_period_s;

    // Pre-roll the trace: positions[step][vehicle].
    let mut fleet = Fleet::new(harness.network(), &config.fleet);
    let mut trace: Vec<Vec<(f64, f64, f64, f64)>> = Vec::with_capacity(opts.steps as usize);
    let mut samples = Vec::new();
    for _ in 0..opts.steps {
        fleet.step_into(dt, &mut samples);
        let mut row = vec![(0.0, 0.0, 0.0, 0.0); vehicles];
        for s in &samples {
            row[s.vehicle.0 as usize] = (s.pos.x, s.pos.y, s.heading, s.speed);
        }
        trace.push(row);
    }

    // Server + reactor.
    let server = Server::start(
        harness.grid().clone(),
        harness.index().alarms().to_vec(),
        harness.v_max(),
        ServerConfig { num_shards: opts.shards, queue_capacity: opts.queue },
    );
    let reactor_cfg = ReactorConfig {
        workers: 2,
        max_conns: vehicles + 16,
        ..ReactorConfig::default()
    };
    let mut reactor =
        Reactor::bind(Arc::clone(&server), reactor_cfg).expect("bind the reactor on loopback");
    let addr = reactor.addr();

    // Dial every connection and run the Hello handshake closed-loop (it
    // is session setup, not measured load), then flip to nonblocking for
    // the open-loop phase.
    let mut conns: Vec<Conn> = (0..vehicles as u32)
        .map(|v| {
            let mut stream = TcpStream::connect(addr).expect("dial the reactor");
            stream.set_nodelay(true).expect("set nodelay");
            let hello =
                Request::Hello { seq: 0, user: v, strategy: StrategySpec::Pbsr { height: 3 } };
            write_frame(&mut stream, &hello.encode()).expect("send Hello");
            let body = read_frame(&mut stream)
                .expect("read Hello ack")
                .expect("server must answer Hello");
            let resp = Response::decode(&body).expect("decode Hello ack");
            assert!(matches!(resp, Response::Ack { seq: 0 }), "unexpected Hello answer: {resp:?}");
            stream.set_nonblocking(true).expect("set nonblocking");
            Conn {
                stream,
                reader: FrameReader::new(),
                writer: WriteQueue::new(1 << 20),
                in_flight: std::collections::VecDeque::new(),
                fired: Vec::new(),
            }
        })
        .collect();

    // Poisson arrival schedule: exponential inter-arrivals at `rate`,
    // assigned to vehicles in a per-step-shuffled round-robin order.
    let mut rng = Xor64(opts.seed | 1);
    let mut schedule: Vec<Event> = Vec::with_capacity(opts.steps as usize * vehicles);
    let mut t_ns = 0u64;
    let mut order: Vec<u32> = (0..vehicles as u32).collect();
    for step in 0..opts.steps {
        // Fisher–Yates with the schedule RNG.
        for i in (1..order.len()).rev() {
            let j = (rng.next() % (i as u64 + 1)) as usize;
            order.swap(i, j);
        }
        for &conn in &order {
            let gap_s = -rng.unit().ln() / opts.rate;
            t_ns += (gap_s * 1e9) as u64;
            schedule.push(Event { at_ns: t_ns, conn, step });
        }
    }
    let offered_duration_s = t_ns as f64 / 1e9;

    // Partition connections (and their events) across worker threads.
    let workers = opts.workers.min(vehicles);
    let mut worker_conns: Vec<Vec<(u32, Conn)>> = (0..workers).map(|_| Vec::new()).collect();
    for (v, conn) in conns.drain(..).enumerate() {
        worker_conns[v % workers].push((v as u32, conn));
    }
    let mut worker_events: Vec<Vec<Event>> = (0..workers).map(|_| Vec::new()).collect();
    for ev in &schedule {
        worker_events[ev.conn as usize % workers].push(*ev);
    }

    let started = Instant::now();
    let outcomes: Vec<WorkerOutcome> = std::thread::scope(|scope| {
        let handles: Vec<_> = worker_conns
            .drain(..)
            .zip(worker_events.drain(..))
            .map(|(conns, events)| {
                let trace = &trace;
                scope.spawn(move || drive_worker(conns, events, trace, started))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("generator worker")).collect()
    });
    let wall_seconds = started.elapsed().as_secs_f64();

    // Aggregate.
    let mut fired: Vec<FiredEvent> = Vec::new();
    let mut rtt_ns: Vec<u64> = Vec::new();
    let mut send_lag_ns: Vec<u64> = Vec::new();
    let mut overloads = 0u64;
    let mut protocol_errors = 0u64;
    for o in outcomes {
        fired.extend(o.fired.iter().map(|&(v, a, s)| FiredEvent {
            subscriber: sa_alarms::SubscriberId(v),
            alarm: sa_alarms::AlarmId(a),
            step: s,
        }));
        rtt_ns.extend(o.rtt_ns);
        send_lag_ns.extend(o.send_lag_ns);
        overloads += o.overloads;
        protocol_errors += o.protocol_errors;
    }

    // Percentiles through sa-obs, the same histogram machinery the
    // server-side RTT numbers use.
    let registry = sa_obs::Registry::new();
    let rtt_hist = registry.histogram("sa_live_rtt_ns");
    let lag_hist = registry.histogram("sa_live_send_lag_ns");
    for &v in &rtt_ns {
        rtt_hist.record(v);
    }
    for &v in &send_lag_ns {
        lag_hist.record(v);
    }
    let rtt = rtt_hist.snapshot();
    let lag = lag_hist.snapshot();

    // Ground truth: every update was sent, so the observed firings must
    // match the reference exactly (restricted to the driven prefix).
    let expected: Vec<FiredEvent> = harness
        .ground_truth()
        .events()
        .iter()
        .filter(|e| e.step < opts.steps)
        .cloned()
        .collect();
    let verification = GroundTruth::new(expected.clone()).verify(&fired);
    let divergence = verification.as_ref().err().cloned().unwrap_or_default();

    let degraded = reactor.degraded_admissions();
    reactor.shutdown();
    server.shutdown();

    let events = schedule.len();
    let p99_ms = rtt.p99 as f64 / 1e6;
    let achieved_rate = events as f64 / wall_seconds.max(1e-9);

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"connections\": {vehicles},");
    let _ = writeln!(json, "  \"steps\": {},", opts.steps);
    let _ = writeln!(json, "  \"events\": {events},");
    let _ = writeln!(json, "  \"offered_rate_per_sec\": {:.3},", opts.rate);
    let _ = writeln!(json, "  \"offered_duration_seconds\": {offered_duration_s:.6},");
    let _ = writeln!(json, "  \"achieved_rate_per_sec\": {achieved_rate:.3},");
    let _ = writeln!(json, "  \"wall_seconds\": {wall_seconds:.6},");
    let _ = writeln!(json, "  \"rtt_ns\": {{");
    let _ = writeln!(json, "    \"p50\": {},", rtt.p50);
    let _ = writeln!(json, "    \"p90\": {},", rtt.p90);
    let _ = writeln!(json, "    \"p99\": {},", rtt.p99);
    let _ = writeln!(json, "    \"max\": {},", rtt.max);
    let _ = writeln!(json, "    \"count\": {}", rtt.count);
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"send_lag_ns\": {{");
    let _ = writeln!(json, "    \"p50\": {},", lag.p50);
    let _ = writeln!(json, "    \"p99\": {},", lag.p99);
    let _ = writeln!(json, "    \"max\": {}", lag.max);
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"expected_firings\": {},", expected.len());
    let _ = writeln!(json, "  \"observed_firings\": {},", fired.len());
    let _ = writeln!(json, "  \"ground_truth_divergent\": {},", verification.is_err());
    let _ = writeln!(json, "  \"overloads\": {overloads},");
    let _ = writeln!(json, "  \"protocol_errors\": {protocol_errors},");
    let _ = writeln!(json, "  \"degraded_admissions\": {degraded}");
    json.push_str("}\n");
    std::fs::write(&opts.out, &json).expect("writing the benchmark report");

    println!(
        "live_tcp: {vehicles} conns × {} steps = {events} events at {:.0}/s offered \
         ({achieved_rate:.0}/s achieved) in {wall_seconds:.2}s: \
         rtt p50={}ns p99={}ns ({p99_ms:.2}ms), {}/{} firings, \
         {overloads} overloads, {degraded} degraded admissions → {}",
        opts.steps,
        opts.rate,
        rtt.p50,
        rtt.p99,
        fired.len(),
        expected.len(),
        opts.out.display()
    );

    if verification.is_err() {
        eprintln!("GROUND TRUTH DIVERGENCE:\n{divergence}");
    }
    if opts.check {
        let mut failed = false;
        if p99_ms > opts.max_p99_ms {
            eprintln!("CHECK FAILED: rtt p99 {p99_ms:.2}ms > {:.2}ms", opts.max_p99_ms);
            failed = true;
        }
        if verification.is_err() {
            eprintln!("CHECK FAILED: observed firings diverge from ground truth");
            failed = true;
        }
        if protocol_errors > 0 {
            eprintln!("CHECK FAILED: {protocol_errors} protocol errors");
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        println!("check passed: p99 {p99_ms:.2}ms <= {:.2}ms, zero divergence", opts.max_p99_ms);
    }
}

/// Runs one worker's connections through its slice of the schedule.
fn drive_worker(
    mut conns: Vec<(u32, Conn)>,
    events: Vec<Event>,
    trace: &[Vec<(f64, f64, f64, f64)>],
    started: Instant,
) -> WorkerOutcome {
    let mut out = WorkerOutcome::default();
    // conn id -> slot index.
    let slot: std::collections::HashMap<u32, usize> =
        conns.iter().enumerate().map(|(i, (v, _))| (*v, i)).collect();
    let mut buf = vec![0u8; 64 * 1024];
    let mut next = 0usize;

    loop {
        let now_ns = started.elapsed().as_nanos() as u64;

        // Dispatch every due event: open loop — never wait for responses.
        while next < events.len() && events[next].at_ns <= now_ns {
            let ev = events[next];
            next += 1;
            let (x, y, heading, speed) = trace[ev.step as usize][ev.conn as usize];
            let seq = ev.step + 1;
            let req = Request::LocationUpdate {
                seq,
                x_fx: quantize_m(x),
                y_fx: quantize_m(y),
                motion: pack_motion(heading, speed),
            };
            let conn = &mut conns[slot[&ev.conn]].1;
            conn.writer.push_frame(frame(&req.encode()).to_vec());
            conn.in_flight.push_back(InFlight { seq, scheduled_ns: ev.at_ns });
            out.send_lag_ns.push(now_ns.saturating_sub(ev.at_ns));
        }

        // Pump every connection: flush pending writes, drain responses.
        let mut in_flight_total = 0usize;
        for (vehicle, conn) in &mut conns {
            if !conn.writer.is_empty() {
                conn.writer.write_some(&mut conn.stream).expect("write to the reactor");
            }
            loop {
                match conn.stream.read(&mut buf) {
                    Ok(0) => panic!("reactor closed connection {vehicle} mid-run"),
                    Ok(n) => {
                        let arrived_ns = started.elapsed().as_nanos() as u64;
                        conn.reader.push(&buf[..n], arrived_ns);
                        if n < buf.len() {
                            break;
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(e) => panic!("read from the reactor: {e}"),
                }
            }
            let done_ns = started.elapsed().as_nanos() as u64;
            while let Some(body) = conn.reader.next_frame(done_ns).expect("reactor frames are bounded") {
                let resp = Response::decode(&body).expect("decode server response");
                match resp {
                    Response::TriggerDelivery { seq, alarm } => {
                        conn.fired.push((u64::from(alarm), seq - 1));
                    }
                    resp if resp.is_terminal() => {
                        if matches!(resp, Response::Overloaded { .. }) {
                            out.overloads += 1;
                        }
                        if matches!(resp, Response::Error { .. }) {
                            out.protocol_errors += 1;
                        }
                        let echoed = match &resp {
                            Response::Ack { seq }
                            | Response::RectInstall { seq, .. }
                            | Response::BitmapInstall { seq, .. }
                            | Response::AlarmPush { seq, .. }
                            | Response::Overloaded { seq }
                            | Response::Error { seq, .. } => Some(*seq),
                            _ => None,
                        };
                        match conn.in_flight.pop_front() {
                            Some(inflight) => {
                                if echoed.is_some_and(|s| s != inflight.seq) {
                                    out.protocol_errors += 1;
                                }
                                // Coordinated-omission-free: measured from
                                // the scheduled arrival, not the send.
                                out.rtt_ns.push(done_ns.saturating_sub(inflight.scheduled_ns));
                            }
                            None => out.protocol_errors += 1,
                        }
                    }
                    _ => out.protocol_errors += 1,
                }
            }
            in_flight_total += conn.in_flight.len();
        }

        if next >= events.len() && in_flight_total == 0 {
            break;
        }
        // Sleep to the earlier of: next scheduled event, a short poll
        // tick (responses may still be in flight).
        let now_ns = started.elapsed().as_nanos() as u64;
        let wait_ns = if next < events.len() {
            events[next].at_ns.saturating_sub(now_ns).min(200_000)
        } else {
            200_000
        };
        if wait_ns > 10_000 {
            std::thread::sleep(Duration::from_nanos(wait_ns));
        }
    }

    for (vehicle, conn) in conns {
        for (alarm, step) in conn.fired {
            out.fired.push((vehicle, alarm, step));
        }
    }
    out
}
