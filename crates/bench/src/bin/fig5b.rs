//! Figure 5(b): client energy consumption (mWh) for the bitmap safe-region
//! approaches as the pyramid height sweeps h = 1 (GBSR) … 7, for 1%, 10%
//! and 20% public alarms.
//!
//! Paper shape: energy is low and height-insensitive at low public-alarm
//! density; at higher densities deeper pyramids cost noticeably more
//! because containment detections descend more levels (the paper reports
//! 2–3 detections/s for GBSR vs 6–7 for h = 7 at 20% public).

use sa_bench::{append_csv, averaged_runs, render_table, BenchOpts};
use sa_sim::{SimulationHarness, StrategyKind};

fn main() {
    let opts = BenchOpts::from_args();
    let heights = [1u32, 2, 3, 4, 5, 6, 7];
    let public_pcts = [0.01, 0.10, 0.20];

    let mut harnesses: Vec<Vec<SimulationHarness>> = Vec::new();
    for &pct in &public_pcts {
        harnesses.push(
            (0..opts.seeds)
                .map(|seed| {
                    let mut config = opts.config(seed);
                    config.workload.public_fraction = pct;
                    SimulationHarness::build(&config)
                })
                .collect(),
        );
    }

    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    for &h in &heights {
        let mut row = vec![format!("{h}")];
        for (pi, &pct) in public_pcts.iter().enumerate() {
            let avg = averaged_runs(&opts, StrategyKind::Pbsr { height: h }, |seed| {
                &harnesses[pi][seed as usize]
            });
            row.push(format!("{:.2}", avg.check_energy_mwh));
            csv_rows.push(format!("{h},{pct},{:.4}", avg.check_energy_mwh));
        }
        rows.push(row);
    }

    println!(
        "{}",
        render_table(
            "Figure 5(b): client energy consumption (mWh) vs pyramid height",
            &["h", "1% public", "10% public", "20% public"],
            &rows,
        )
    );

    if let Some(path) = &opts.csv {
        append_csv(path, "height,public_fraction,energy_mwh", &csv_rows)
            .expect("csv write failed");
    }
}
