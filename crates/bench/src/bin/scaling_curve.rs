//! The scaling-exponent bench: sweeps the batched replay across scale
//! points and worker counts, fits per-core throughput to a power law,
//! and writes `BENCH_scaling_curve.json` — plus a Prometheus text dump
//! of per-scale RTT histograms (`BENCH_scaling_curve.prom`).
//!
//! The question this answers is not "how fast is the server" (that is
//! `scale_replay`'s constant) but "how fast does it *get slower*": for
//! each worker count, `updates_per_sec / workers` is fitted against the
//! workload scale on log-log axes (see [`sa_bench::fit_power_law`]),
//! and the *worst* fitted exponent across worker counts is the number
//! CI gates on. An exponent of 0 is perfect scaling of per-core
//! throughput; the gate fails when the exponent regresses below
//! `--min-exponent`, independently of the constant, so a change that
//! keeps small-scale numbers flat while degrading the growth law still
//! fails the build.
//!
//! Scale points use [`SimulationConfig::paper_fraction`], so values
//! above `1.0` grow past the paper's §5.1 setup (10.0 = the
//! 100k-subscriber sweep, 100.0 = 1M) with the universe held fixed —
//! rising density, the regime the exponent probes.
//!
//! The report also carries a word-parallel vs bit-at-a-time
//! `BitVec::intersection_ones` micro-benchmark, pinning the measured
//! speedup of the u64-block hot path the region pipeline runs on.
//!
//! Sweep usage:
//! `scaling_curve [--scales F,F,..] [--workers N,N,..] [--steps N]
//!                [--out PATH] [--prom PATH]`
//!
//! Gate usage (reads a previously written report, exits non-zero on
//! regression):
//! `scaling_curve --check PATH --min-exponent F`

use sa_bench::{fit_power_law, render_table, PowerLawFit};
use sa_core::BitVec;
use sa_obs::{render_snapshot, Registry};
use sa_server::wire::StrategySpec;
use sa_server::{replay_batched_in_proc, ReplayConfig, ServerConfig, TraceMode};
use sa_sim::{SimulationConfig, SimulationHarness};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

struct Opts {
    scales: Vec<f64>,
    workers: Vec<usize>,
    steps: u32,
    out: PathBuf,
    prom: PathBuf,
    check: Option<PathBuf>,
    min_exponent: f64,
}

fn parse_list<T: std::str::FromStr>(raw: &str, flag: &str) -> Vec<T> {
    raw.split(',')
        .filter(|s| !s.is_empty())
        .map(|s| s.trim().parse().unwrap_or_else(|_| panic!("bad value {s:?} in {flag}")))
        .collect()
}

fn parse_args() -> Opts {
    let mut opts = Opts {
        scales: vec![0.05, 0.1, 0.2, 0.4],
        workers: vec![1, 2, 4],
        steps: 60,
        out: PathBuf::from("BENCH_scaling_curve.json"),
        prom: PathBuf::from("BENCH_scaling_curve.prom"),
        check: None,
        min_exponent: f64::NEG_INFINITY,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| panic!("missing value for {flag}"));
        match flag.as_str() {
            "--scales" => opts.scales = parse_list(&value(), "--scales"),
            "--workers" => opts.workers = parse_list(&value(), "--workers"),
            "--steps" => opts.steps = value().parse().expect("--steps expects an integer"),
            "--out" => opts.out = PathBuf::from(value()),
            "--prom" => opts.prom = PathBuf::from(value()),
            "--check" => opts.check = Some(PathBuf::from(value())),
            "--min-exponent" => {
                opts.min_exponent = value().parse().expect("--min-exponent expects a float");
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: scaling_curve [--scales F,F,..] [--workers N,N,..] [--steps N] \
                     [--out PATH] [--prom PATH] | --check PATH --min-exponent F"
                );
                std::process::exit(0);
            }
            other => panic!("unknown flag {other}"),
        }
    }
    if opts.check.is_none() {
        assert!(
            opts.scales.len() >= 2,
            "need at least two scale points to fit an exponent"
        );
        assert!(
            opts.scales.iter().all(|s| s.is_finite() && *s > 0.0),
            "--scales must be positive and finite"
        );
        assert!(
            !opts.workers.is_empty() && opts.workers.iter().all(|w| *w > 0),
            "--workers must be positive"
        );
        assert!(opts.steps > 0, "--steps must be positive");
    }
    opts
}

/// One measured sweep point.
struct CurvePoint {
    scale: f64,
    workers: usize,
    vehicles: usize,
    alarms: usize,
    wall_seconds: f64,
    updates: u64,
    updates_per_sec: f64,
    rtt_p50: u64,
    rtt_p99: u64,
}

impl CurvePoint {
    fn per_core(&self) -> f64 {
        self.updates_per_sec / self.workers as f64
    }
}

/// Word-parallel vs bit-at-a-time `intersection_ones` over the same
/// pseudo-random pair, best-of-3 timing each way.
fn bitvec_microbench() -> (usize, u32, f64, f64) {
    const BITS: usize = 100_000;
    const REPS: u32 = 200;
    let mut seed = 0x5CA1_AB1E_u64;
    let mut next = move || {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        seed
    };
    let mut a = BitVec::with_capacity(BITS);
    let mut b = BitVec::with_capacity(BITS);
    for _ in 0..BITS {
        a.push(next() % 3 == 0);
        b.push(next() % 2 == 0);
    }
    let time_best_of_3 = |f: &dyn Fn() -> usize| -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let started = Instant::now();
            let mut checksum = 0usize;
            for _ in 0..REPS {
                checksum = checksum.wrapping_add(f());
            }
            let ns = started.elapsed().as_nanos() as f64 / f64::from(REPS);
            assert!(checksum > 0, "the benched intersection must be non-empty");
            best = best.min(ns);
        }
        best
    };
    let word_parallel_ns = time_best_of_3(&|| a.intersection_ones(&b));
    let scalar_ns = time_best_of_3(&|| {
        (0..BITS)
            .filter(|&i| a.get(i).unwrap_or(false) && b.get(i).unwrap_or(false))
            .count()
    });
    (BITS, REPS, word_parallel_ns, scalar_ns)
}

/// Pulls `"worst_exponent": <float>` out of a report this binary wrote.
fn read_worst_exponent(report: &str) -> Option<f64> {
    let tail = report.split("\"worst_exponent\":").nth(1)?;
    let raw: String = tail
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E'))
        .collect();
    raw.parse().ok()
}

/// Gate mode: compare the stored worst exponent against the floor.
fn run_check(path: &PathBuf, min_exponent: f64) -> ! {
    assert!(
        min_exponent.is_finite(),
        "--check requires --min-exponent (the exponent floor to enforce)"
    );
    let report = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    let worst = read_worst_exponent(&report)
        .unwrap_or_else(|| panic!("{} has no \"worst_exponent\" field", path.display()));
    if worst < min_exponent {
        eprintln!(
            "SCALING REGRESSION: fitted per-core throughput exponent {worst:.4} fell below \
             the floor {min_exponent:.4} (0 = perfect scaling; more negative = per-core \
             throughput decays faster with workload scale).\n\
             Inspect the \"points\" and \"fits\" sections of {} to see which worker count \
             and scale range degraded.",
            path.display()
        );
        std::process::exit(1);
    }
    println!(
        "scaling exponent ok: worst fitted exponent {worst:.4} >= floor {min_exponent:.4}"
    );
    std::process::exit(0);
}

fn main() {
    let opts = parse_args();
    if let Some(path) = &opts.check {
        run_check(path, opts.min_exponent);
    }

    let mut scales = opts.scales.clone();
    scales.sort_by(|a, b| a.partial_cmp(b).expect("scales are finite"));
    let registry = Registry::new();
    let mut points: Vec<CurvePoint> = Vec::new();

    for &scale in &scales {
        let sim = SimulationConfig::paper_fraction(scale);
        eprintln!(
            "scale {scale}: building harness ({} vehicles × {} alarms, {} steps)",
            sim.fleet.vehicles,
            sim.workload.alarms,
            opts.steps
        );
        let harness = SimulationHarness::build(&sim);
        for &workers in &opts.workers {
            let cfg = ReplayConfig {
                steps: Some(opts.steps),
                server: ServerConfig::default(),
                trace_mode: TraceMode::Off,
                strategies: vec![
                    StrategySpec::Mwpsr,
                    StrategySpec::Pbsr { height: 5 },
                    StrategySpec::Opt,
                    StrategySpec::SafePeriod,
                ],
            };
            let started = Instant::now();
            let outcome = replay_batched_in_proc(&harness, &cfg, workers)
                .expect("in-proc transport must hold");
            let wall = started.elapsed().as_secs_f64();
            outcome.assert_accurate();
            let rtt = outcome
                .metrics
                .histogram("sa_update_rtt_ns", &[])
                .expect("the replay must have recorded round-trip latencies");
            // Per-scale histogram roll-up: fold this run's RTT snapshot,
            // bucket-exactly, into a labeled histogram in the bench's
            // own registry (rendered to the .prom sidecar below).
            registry
                .histogram_with(
                    "sa_update_rtt_ns",
                    &[("scale", &format!("{scale}")), ("workers", &format!("{workers}"))],
                )
                .absorb(&rtt);
            let updates_per_sec =
                outcome.server.location_updates as f64 / wall.max(1e-9);
            eprintln!(
                "  workers {workers}: {:.0} updates/s ({:.0}/core) in {wall:.2}s",
                updates_per_sec,
                updates_per_sec / workers as f64
            );
            points.push(CurvePoint {
                scale,
                workers,
                vehicles: outcome.clients.len(),
                alarms: sim.workload.alarms,
                wall_seconds: wall,
                updates: outcome.server.location_updates,
                updates_per_sec,
                rtt_p50: rtt.p50,
                rtt_p99: rtt.p99,
            });
        }
    }

    // One fit per worker count: per-core throughput vs scale.
    let fits: Vec<(usize, PowerLawFit)> = opts
        .workers
        .iter()
        .filter_map(|&w| {
            let series: Vec<(f64, f64)> = points
                .iter()
                .filter(|p| p.workers == w)
                .map(|p| (p.scale, p.per_core()))
                .collect();
            fit_power_law(&series).map(|fit| (w, fit))
        })
        .collect();
    assert!(!fits.is_empty(), "no worker series produced a fittable curve");
    let worst = fits
        .iter()
        .map(|(_, f)| f.exponent)
        .fold(f64::INFINITY, f64::min);

    let (bits, reps, word_parallel_ns, scalar_ns) = bitvec_microbench();
    let bitvec_speedup = scalar_ns / word_parallel_ns.max(1e-9);

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"steps\": {},", opts.steps);
    let _ = writeln!(
        json,
        "  \"scales\": [{}],",
        scales.iter().map(|s| s.to_string()).collect::<Vec<_>>().join(", ")
    );
    let _ = writeln!(
        json,
        "  \"workers\": [{}],",
        opts.workers.iter().map(|w| w.to_string()).collect::<Vec<_>>().join(", ")
    );
    json.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        let comma = if i + 1 < points.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"scale\": {}, \"workers\": {}, \"vehicles\": {}, \"alarms\": {}, \
             \"wall_seconds\": {:.6}, \"location_updates\": {}, \"updates_per_sec\": {:.3}, \
             \"per_core_updates_per_sec\": {:.3}, \"rtt_p50_ns\": {}, \"rtt_p99_ns\": {}}}{comma}",
            p.scale,
            p.workers,
            p.vehicles,
            p.alarms,
            p.wall_seconds,
            p.updates,
            p.updates_per_sec,
            p.per_core(),
            p.rtt_p50,
            p.rtt_p99,
        );
    }
    json.push_str("  ],\n");
    json.push_str("  \"fits\": [\n");
    for (i, (w, fit)) in fits.iter().enumerate() {
        let comma = if i + 1 < fits.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"workers\": {w}, \"exponent\": {:.6}, \"coefficient\": {:.3}, \
             \"r_squared\": {:.6}}}{comma}",
            fit.exponent, fit.coefficient, fit.r_squared
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(json, "  \"worst_exponent\": {worst:.6},");
    let _ = writeln!(json, "  \"bitvec_intersection\": {{");
    let _ = writeln!(json, "    \"bits\": {bits},");
    let _ = writeln!(json, "    \"reps\": {reps},");
    let _ = writeln!(json, "    \"word_parallel_ns\": {word_parallel_ns:.1},");
    let _ = writeln!(json, "    \"scalar_ns\": {scalar_ns:.1},");
    let _ = writeln!(json, "    \"speedup\": {bitvec_speedup:.2}");
    json.push_str("  }\n}\n");
    std::fs::write(&opts.out, &json).expect("writing the scaling report");
    std::fs::write(&opts.prom, render_snapshot(&registry.snapshot()))
        .expect("writing the per-scale histogram dump");

    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                format!("{}", p.scale),
                format!("{}", p.workers),
                format!("{}", p.vehicles),
                format!("{:.0}", p.updates_per_sec),
                format!("{:.0}", p.per_core()),
                format!("{}", p.rtt_p99),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            "scaling curve",
            &["scale", "workers", "vehicles", "upd/s", "upd/s/core", "rtt p99 ns"],
            &rows,
        )
    );
    for (w, fit) in &fits {
        println!(
            "fit workers={w}: per-core upd/s ≈ {:.0} · scale^{:.3} (r²={:.3})",
            fit.coefficient, fit.exponent, fit.r_squared
        );
    }
    println!(
        "worst exponent {worst:.4}; bitvec intersection word-parallel {word_parallel_ns:.0}ns \
         vs scalar {scalar_ns:.0}ns ({bitvec_speedup:.1}× speedup) → {}",
        opts.out.display()
    );
}
