//! Replays the smoke-test trace through fault-injected transports and
//! resilient clients, and writes `BENCH_chaos_replay.json`: throughput
//! under faults, reconnect-RTT percentiles (from the client-side
//! `sa_client_reconnect_rtt_ns` histogram), the degraded-time fraction,
//! and the injected-fault counts by kind.
//!
//! This is the chaos counterpart of `server_replay`: same trace, same
//! ground-truth cross-check (the run aborts if any alarm is lost,
//! duplicated, or mistimed), but every exchange passes through a
//! seeded `FaultyTransport` and the plan's disconnect windows.
//!
//! Usage: `chaos_replay [--steps N] [--preset lossy|partitioned|duplicating|clean] [--seed S] [--out PATH]`

use sa_server::chaos::{chaos_replay_in_proc, ChaosConfig, FaultPlan};
use sa_server::wire::StrategySpec;
use sa_server::{ReplayConfig, ServerConfig, TraceMode};
use sa_sim::{SimulationConfig, SimulationHarness};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

struct Opts {
    steps: u32,
    preset: String,
    seed: u64,
    out: PathBuf,
}

fn parse_args() -> Opts {
    let mut opts = Opts {
        steps: 240,
        preset: "lossy".to_string(),
        seed: 0xC0FFEE,
        out: PathBuf::from("BENCH_chaos_replay.json"),
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| panic!("missing value for {flag}"));
        match flag.as_str() {
            "--steps" => opts.steps = value().parse().expect("--steps expects an integer"),
            "--preset" => opts.preset = value(),
            "--seed" => opts.seed = value().parse().expect("--seed expects an integer"),
            "--out" => opts.out = PathBuf::from(value()),
            "--help" | "-h" => {
                eprintln!(
                    "usage: chaos_replay [--steps N] \
                     [--preset lossy|partitioned|duplicating|clean] [--seed S] [--out PATH]"
                );
                std::process::exit(0);
            }
            other => panic!("unknown flag {other}"),
        }
    }
    assert!(opts.steps > 0, "--steps must be positive");
    opts
}

fn main() {
    let opts = parse_args();
    let plan = FaultPlan::preset(&opts.preset, opts.seed)
        .unwrap_or_else(|| panic!("unknown preset {:?}", opts.preset));
    let harness = SimulationHarness::build(&SimulationConfig::smoke_test());
    let cfg = ChaosConfig {
        replay: ReplayConfig {
            steps: Some(opts.steps),
            server: ServerConfig::default(),
            trace_mode: TraceMode::Full,
            strategies: vec![
                StrategySpec::Mwpsr,
                StrategySpec::Pbsr { height: 5 },
                StrategySpec::Opt,
                StrategySpec::SafePeriod,
            ],
        },
        plan,
        policy: None,
    };

    let started = Instant::now();
    let outcome = chaos_replay_in_proc(&harness, &cfg).expect("no fatal transport errors");
    let wall_seconds = started.elapsed().as_secs_f64();
    outcome.replay.assert_accurate();

    let replay = &outcome.replay;
    let reconnect = replay
        .metrics
        .histogram("sa_client_reconnect_rtt_ns", &[])
        .unwrap_or_default();
    let degraded_seconds = replay.metrics.counter("sa_client_degraded_seconds", &[]).unwrap_or(0);
    let throughput = replay.server.location_updates as f64 / wall_seconds.max(1e-9);

    // Hand-rolled JSON: the vendored serde stub has no serializer, and
    // the shape here is flat enough not to need one.
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"preset\": \"{}\",", opts.preset);
    let _ = writeln!(json, "  \"seed\": {},", opts.seed);
    let _ = writeln!(json, "  \"steps\": {},", replay.steps);
    let _ = writeln!(json, "  \"vehicles\": {},", replay.clients.len());
    let _ = writeln!(json, "  \"wall_seconds\": {wall_seconds:.6},");
    let _ = writeln!(json, "  \"location_updates\": {},", replay.server.location_updates);
    let _ = writeln!(json, "  \"triggers\": {},", replay.server.triggers);
    let _ = writeln!(json, "  \"throughput_updates_per_sec\": {throughput:.3},");
    let _ = writeln!(json, "  \"injected_faults_total\": {},", outcome.injected_total);
    let _ = writeln!(json, "  \"injected_faults\": {{");
    for (i, (kind, n)) in outcome.injected.iter().enumerate() {
        let comma = if i + 1 == outcome.injected.len() { "" } else { "," };
        let _ = writeln!(json, "    \"{kind}\": {n}{comma}");
    }
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"client_retries\": {},", outcome.retries);
    let _ = writeln!(json, "  \"client_resyncs\": {},", outcome.resyncs);
    let _ = writeln!(json, "  \"degraded_fraction\": {:.6},", outcome.degraded_fraction);
    let _ = writeln!(json, "  \"degraded_seconds\": {degraded_seconds},");
    let _ = writeln!(json, "  \"reconnect_rtt_ns\": {{");
    let _ = writeln!(json, "    \"p50\": {},", reconnect.p50);
    let _ = writeln!(json, "    \"p90\": {},", reconnect.p90);
    let _ = writeln!(json, "    \"p99\": {},", reconnect.p99);
    let _ = writeln!(json, "    \"max\": {},", reconnect.max);
    let _ = writeln!(json, "    \"count\": {}", reconnect.count);
    let _ = writeln!(json, "  }}");
    json.push_str("}\n");

    std::fs::write(&opts.out, &json).expect("writing the benchmark report");
    println!(
        "chaos-replayed {} steps × {} vehicles under '{}' in {:.2}s: \
         {:.0} updates/s, {} faults injected, {} retries, {:.1}% degraded, \
         reconnect p99={}ns → {}",
        replay.steps,
        replay.clients.len(),
        opts.preset,
        wall_seconds,
        throughput,
        outcome.injected_total,
        outcome.retries,
        100.0 * outcome.degraded_fraction,
        reconnect.p99,
        opts.out.display()
    );
}
