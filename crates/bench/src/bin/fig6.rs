//! Figure 6: safe-region approaches vs the other strategies at 1%, 10% and
//! 20% public alarms. Four panels:
//!
//! - (a) client-to-server messages ×10⁶ for MWPSR, PBSR(h=5), SP, OPT
//!   (PRD is reported separately — it sends *every* sample),
//! - (b) downstream bandwidth (Mbps) for MWPSR, PBSR, OPT,
//! - (c) client energy consumption (mWh) for MWPSR, PBSR, OPT,
//! - (d) server processing time split (alarm processing / safe-region
//!   computation) for PR, MW, PB, SP, OP at 1% and 10% public.
//!
//! Paper shapes: OPT < safe regions < SP ≪ PRD on messages (SP ≈ 2–3× the
//! safe-region approaches); OPT ≫ PBSR/MWPSR on bandwidth and energy; PRD's
//! server load dwarfs everything and is density-insensitive.
//!
//! Pass `--part a|b|c|d|all` (default `all`).

use sa_bench::{append_csv, averaged_runs, render_table, AveragedRun, BenchOpts};
use sa_sim::{SimulationHarness, StrategyKind};
use std::collections::HashMap;

fn main() {
    // Extract --part before the shared parser sees it.
    let mut part = "all".to_string();
    let raw: Vec<String> = std::env::args().collect();
    let mut filtered = vec![raw[0].clone()];
    let mut i = 1;
    while i < raw.len() {
        if raw[i] == "--part" {
            part = raw.get(i + 1).expect("--part expects a|b|c|d|all").clone();
            i += 2;
        } else {
            filtered.push(raw[i].clone());
            i += 1;
        }
    }
    // Re-inject the filtered args for BenchOpts.
    let opts = parse_opts(&filtered);

    let public_pcts = [0.01, 0.10, 0.20];
    let strategies: [(&str, StrategyKind); 6] = [
        ("PRD", StrategyKind::Periodic),
        ("MWPSR", StrategyKind::Mwpsr { y: 1.0, z: 32 }),
        ("PBSR", StrategyKind::Pbsr { height: 5 }),
        ("PBSR-B", StrategyKind::PbsrBroadcast { height: 5 }),
        ("SP", StrategyKind::SafePeriod),
        ("OPT", StrategyKind::Optimal),
    ];

    let harnesses: Vec<Vec<SimulationHarness>> = public_pcts
        .iter()
        .map(|&pct| {
            (0..opts.seeds)
                .map(|seed| {
                    let mut config = opts.config(seed);
                    config.workload.public_fraction = pct;
                    SimulationHarness::build(&config)
                })
                .collect()
        })
        .collect();

    // Run everything once, reuse per panel.
    let mut results: HashMap<(&str, usize), AveragedRun> = HashMap::new();
    for (pi, _) in public_pcts.iter().enumerate() {
        for (name, kind) in &strategies {
            let avg = averaged_runs(&opts, *kind, |seed| &harnesses[pi][seed as usize]);
            results.insert((*name, pi), avg);
        }
    }
    let get = |name: &'static str, pi: usize| -> &AveragedRun {
        results.get(&(name, pi)).expect("run exists")
    };

    let pct_label = ["1", "10", "20"];
    let mut csv_rows = Vec::new();

    if part == "all" || part == "a" {
        let mut rows = Vec::new();
        for name in ["MWPSR", "PBSR", "SP", "OPT"] {
            let mut row = vec![name.to_string()];
            for pi in 0..3 {
                row.push(format!("{:.4}", get(name, pi).uplink_messages / 1.0e6));
            }
            rows.push(row);
        }
        println!(
            "{}",
            render_table(
                "Figure 6(a): client-to-server messages (millions) by % public alarms",
                &["Strategy", "1%", "10%", "20%"],
                &rows,
            )
        );
        println!(
            "(PRD sends every sample: {:.2}M messages at every density)\n",
            get("PRD", 1).uplink_messages / 1.0e6
        );
    }

    if part == "all" || part == "b" {
        let mut rows = Vec::new();
        for name in ["MWPSR", "PBSR", "PBSR-B", "OPT"] {
            let mut row = vec![name.to_string()];
            for pi in 0..3 {
                row.push(format!("{:.4}", get(name, pi).downlink_mbps));
            }
            rows.push(row);
        }
        println!(
            "{}",
            render_table(
                "Figure 6(b): downstream bandwidth (Mbps) by % public alarms",
                &["Strategy", "1%", "10%", "20%"],
                &rows,
            )
        );
        println!(
            "(PBSR-B is PBSR with the paper's §4.2 public-bitmap broadcast optimization;\n\
              its per-epoch broadcast of every cell's public bitmap is included)\n"
        );
    }

    if part == "all" || part == "c" {
        let mut rows = Vec::new();
        for name in ["MWPSR", "PBSR", "OPT"] {
            let mut row = vec![name.to_string()];
            for pi in 0..3 {
                row.push(format!("{:.2}", get(name, pi).check_energy_mwh));
            }
            rows.push(row);
        }
        println!(
            "{}",
            render_table(
                "Figure 6(c): client energy consumption (mWh) by % public alarms",
                &["Strategy", "1%", "10%", "20%"],
                &rows,
            )
        );
    }

    if part == "all" || part == "d" {
        let mut rows = Vec::new();
        for (pi, pct) in pct_label.iter().enumerate().take(2) {
            for (label, name) in
                [("PR", "PRD"), ("MW", "MWPSR"), ("PB", "PBSR"), ("SP", "SP"), ("OP", "OPT")]
            {
                let avg = get(name, pi);
                rows.push(vec![
                    format!("{pct}%"),
                    label.to_string(),
                    format!("{:.3}", avg.alarm_minutes),
                    format!("{:.3}", avg.region_minutes),
                    format!("{:.3}", avg.total_minutes()),
                ]);
            }
        }
        println!(
            "{}",
            render_table(
                "Figure 6(d): server processing time (minutes) by % public alarms",
                &["Public", "Strategy", "Alarm Processing", "Safe Region Computation", "Total"],
                &rows,
            )
        );
    }

    for (pi, pct) in public_pcts.iter().enumerate() {
        for (name, _) in &strategies {
            let avg = get(name, pi);
            csv_rows.push(format!(
                "{pct},{name},{},{:.5},{:.4},{:.5},{:.5}",
                avg.uplink_messages,
                avg.downlink_mbps,
                avg.client_energy_mwh,
                avg.alarm_minutes,
                avg.region_minutes
            ));
        }
    }
    if let Some(path) = &opts.csv {
        append_csv(
            path,
            "public_fraction,strategy,messages,downlink_mbps,energy_mwh,alarm_min,region_min",
            &csv_rows,
        )
        .expect("csv write failed");
    }
}

/// Parses the shared options from an explicit argument vector.
fn parse_opts(args: &[String]) -> BenchOpts {
    let mut opts = BenchOpts::default();
    let mut i = 1;
    while i < args.len() {
        let flag = &args[i];
        let value = |i: usize| {
            args.get(i + 1)
                .unwrap_or_else(|| panic!("missing value for {flag}"))
        };
        match flag.as_str() {
            "--scale" => opts.scale = value(i).parse().expect("--scale expects a float"),
            "--seeds" => opts.seeds = value(i).parse().expect("--seeds expects an integer"),
            "--duration" => opts.duration_s = value(i).parse().expect("--duration expects seconds"),
            "--csv" => opts.csv = Some(value(i).into()),
            other => panic!("unknown flag {other}"),
        }
        i += 2;
    }
    opts
}
