//! Prices the tracing instrumentation: the same smoke-test replay is
//! driven through the in-process live server with spans off, sampled
//! (1-in-16 traces) and fully on, and `BENCH_trace_overhead.json`
//! reports the wall times and relative overheads. The run **fails
//! (exit 1)** when full
//! tracing costs more than the budgeted fraction of the untraced run,
//! so a regression that puts allocation or locking on the update hot
//! path under `TraceMode::Full` turns CI red.
//!
//! Both runs still cross-check the fired-alarm sequence against the
//! simulator's ground truth: an instrumentation mode must never change
//! what fires.
//!
//! Usage: `trace_overhead [--steps N] [--rounds N] [--budget-pct P]
//!   [--out PATH]`

use sa_server::wire::StrategySpec;
use sa_server::{replay_in_proc, ReplayConfig, ServerConfig, TraceMode};
use sa_sim::{SimulationConfig, SimulationHarness};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

struct Opts {
    steps: u32,
    rounds: u32,
    budget_pct: f64,
    out: PathBuf,
}

fn parse_args() -> Opts {
    let mut opts = Opts {
        steps: 300,
        rounds: 3,
        budget_pct: 10.0,
        out: PathBuf::from("BENCH_trace_overhead.json"),
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| panic!("missing value for {flag}"));
        match flag.as_str() {
            "--steps" => opts.steps = value().parse().expect("--steps expects an integer"),
            "--rounds" => opts.rounds = value().parse().expect("--rounds expects an integer"),
            "--budget-pct" => {
                opts.budget_pct = value().parse().expect("--budget-pct expects a percentage")
            }
            "--out" => opts.out = PathBuf::from(value()),
            "--help" | "-h" => {
                eprintln!(
                    "usage: trace_overhead [--steps N] [--rounds N] [--budget-pct P] [--out PATH]"
                );
                std::process::exit(0);
            }
            other => panic!("unknown flag {other}"),
        }
    }
    assert!(opts.steps > 0, "--steps must be positive");
    assert!(opts.rounds > 0, "--rounds must be positive");
    opts
}

fn cfg_for(steps: u32, mode: TraceMode) -> ReplayConfig {
    ReplayConfig {
        steps: Some(steps),
        server: ServerConfig::default(),
        trace_mode: mode,
        strategies: vec![
            StrategySpec::Mwpsr,
            StrategySpec::Pbsr { height: 5 },
            StrategySpec::Opt,
            StrategySpec::SafePeriod,
        ],
    }
}

/// Best-of-`rounds` wall time for one mode. Minimum, not mean: the
/// floor is the instrumentation cost, everything above it is scheduler
/// noise — and noise inflates Off and Full alike.
fn best_wall_seconds(harness: &SimulationHarness, steps: u32, rounds: u32, mode: TraceMode) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..rounds {
        let cfg = cfg_for(steps, mode);
        let started = Instant::now();
        let outcome = replay_in_proc(harness, &cfg).expect("in-proc transport must hold");
        let wall = started.elapsed().as_secs_f64();
        outcome.assert_accurate();
        best = best.min(wall);
    }
    best
}

fn main() {
    let opts = parse_args();
    let harness = SimulationHarness::build(&SimulationConfig::smoke_test());

    // Interleave-free ordering is fine here: best-of-N per mode already
    // absorbs warm-up asymmetry (the first Off round pays page-in).
    let off = best_wall_seconds(&harness, opts.steps, opts.rounds, TraceMode::Off);
    let sampled = best_wall_seconds(&harness, opts.steps, opts.rounds, TraceMode::Sampled(16));
    let full = best_wall_seconds(&harness, opts.steps, opts.rounds, TraceMode::Full);
    let overhead_pct = (full - off) / off.max(1e-9) * 100.0;
    let sampled_overhead_pct = (sampled - off) / off.max(1e-9) * 100.0;
    let within_budget = overhead_pct <= opts.budget_pct;

    // Hand-rolled JSON: the vendored serde stub has no serializer.
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"steps\": {},", opts.steps);
    let _ = writeln!(json, "  \"rounds\": {},", opts.rounds);
    let _ = writeln!(json, "  \"off_wall_seconds\": {off:.6},");
    let _ = writeln!(json, "  \"sampled_16_wall_seconds\": {sampled:.6},");
    let _ = writeln!(json, "  \"full_wall_seconds\": {full:.6},");
    let _ = writeln!(json, "  \"sampled_16_overhead_pct\": {sampled_overhead_pct:.3},");
    let _ = writeln!(json, "  \"overhead_pct\": {overhead_pct:.3},");
    let _ = writeln!(json, "  \"budget_pct\": {:.3},", opts.budget_pct);
    let _ = writeln!(json, "  \"within_budget\": {within_budget}");
    json.push_str("}\n");
    std::fs::write(&opts.out, &json).expect("writing the benchmark report");

    println!(
        "trace_overhead: off {off:.3}s, sampled/16 {sampled:.3}s, full {full:.3}s → \
         {overhead_pct:+.2}% (budget {:.1}%) over {} steps × best-of-{} → {}",
        opts.budget_pct,
        opts.steps,
        opts.rounds,
        opts.out.display()
    );
    if !within_budget {
        eprintln!(
            "full tracing exceeds its overhead budget: {overhead_pct:.2}% > {:.2}%",
            opts.budget_pct
        );
        std::process::exit(1);
    }
}
