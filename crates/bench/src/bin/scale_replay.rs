//! Paper-scale replay through the live server's batched update path,
//! writing `BENCH_scale_replay.json`.
//!
//! Where `server_replay` measures the per-request path on the smoke
//! trace, this binary answers "can the runtime carry the paper's §5.1
//! workload?": a proportional fraction of the full hour (10,000 vehicles
//! × 10,000 alarms at `--scale 1.0`, the CI default `--scale 0.1` being
//! 1,000 × 1,000) driven through [`sa_server::replay_batched_in_proc`]
//! by N parallel workers, one `Request::Batch` frame per worker per
//! step. Every firing is still cross-checked against the simulator's
//! ground truth before anything is reported.
//!
//! To keep the batching honest, the same config is also replayed over a
//! truncated step prefix (`--baseline-steps`, default 300) through the
//! per-request driver, and the report carries the updates/sec ratio.
//! The baseline is truncated because at paper scale the per-request
//! path is exactly what this binary exists to prove too slow to gate on.
//!
//! Usage: `scale_replay [--scale F] [--steps N] [--workers N]
//!                      [--baseline-steps N] [--out PATH]`

use sa_server::wire::StrategySpec;
use sa_server::{replay_batched_in_proc, replay_in_proc, ReplayConfig, ServerConfig, TraceMode};
use sa_sim::{SimulationConfig, SimulationHarness};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

struct Opts {
    scale: f64,
    steps: Option<u32>,
    workers: usize,
    baseline_steps: u32,
    out: PathBuf,
}

fn parse_args() -> Opts {
    let default_workers =
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut opts = Opts {
        scale: 0.1,
        steps: None,
        workers: default_workers,
        baseline_steps: 300,
        out: PathBuf::from("BENCH_scale_replay.json"),
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value =
            || args.next().unwrap_or_else(|| panic!("missing value for {flag}"));
        match flag.as_str() {
            "--scale" => opts.scale = value().parse().expect("--scale expects a float"),
            "--steps" => {
                opts.steps = Some(value().parse().expect("--steps expects an integer"));
            }
            "--workers" => {
                opts.workers = value().parse().expect("--workers expects an integer");
            }
            "--baseline-steps" => {
                opts.baseline_steps =
                    value().parse().expect("--baseline-steps expects an integer");
            }
            "--out" => opts.out = PathBuf::from(value()),
            "--help" | "-h" => {
                eprintln!(
                    "usage: scale_replay [--scale F] [--steps N] [--workers N] \
                     [--baseline-steps N] [--out PATH]"
                );
                std::process::exit(0);
            }
            other => panic!("unknown flag {other}"),
        }
    }
    assert!(
        opts.scale.is_finite() && opts.scale > 0.0,
        "--scale must be positive and finite (values above 1 grow past paper scale)"
    );
    assert!(opts.workers > 0, "--workers must be positive");
    opts
}

fn hit_ratio(hits: u64, misses: u64) -> f64 {
    let lookups = hits + misses;
    if lookups == 0 { 0.0 } else { hits as f64 / lookups as f64 }
}

fn main() {
    let opts = parse_args();
    let sim = SimulationConfig::paper_fraction(opts.scale);
    eprintln!(
        "building harness: {} vehicles × {} alarms, {} steps at scale {}",
        sim.fleet.vehicles,
        sim.workload.alarms,
        sim.steps(),
        opts.scale
    );
    let harness = SimulationHarness::build(&sim);
    let cfg = ReplayConfig {
        steps: opts.steps,
        server: ServerConfig::default(),
        trace_mode: TraceMode::Full,
        strategies: vec![
            StrategySpec::Mwpsr,
            StrategySpec::Pbsr { height: 5 },
            StrategySpec::Opt,
            StrategySpec::SafePeriod,
        ],
    };

    let started = Instant::now();
    let outcome = replay_batched_in_proc(&harness, &cfg, opts.workers)
        .expect("in-proc transport must hold");
    let wall_seconds = started.elapsed().as_secs_f64();
    outcome.assert_accurate();

    let rtt = outcome
        .metrics
        .histogram("sa_update_rtt_ns", &[])
        .expect("the replay must have recorded round-trip latencies");
    let steps_per_sec = outcome.steps as f64 / wall_seconds.max(1e-9);
    let updates_per_sec = outcome.server.location_updates as f64 / wall_seconds.max(1e-9);
    let cache_ratio = hit_ratio(outcome.cache.hits, outcome.cache.misses);

    // Per-request baseline over a truncated prefix of the same trace.
    let (baseline_steps, baseline_updates_per_sec) = if opts.baseline_steps == 0 {
        (0, 0.0)
    } else {
        let base_cfg = ReplayConfig {
            steps: Some(opts.baseline_steps.min(outcome.steps)),
            ..cfg.clone()
        };
        let base_started = Instant::now();
        let base =
            replay_in_proc(&harness, &base_cfg).expect("in-proc transport must hold");
        let base_wall = base_started.elapsed().as_secs_f64();
        base.assert_accurate();
        (base.steps, base.server.location_updates as f64 / base_wall.max(1e-9))
    };
    let speedup = if baseline_updates_per_sec > 0.0 {
        updates_per_sec / baseline_updates_per_sec
    } else {
        0.0
    };

    // Hand-rolled JSON: the vendored serde stub has no serializer, and
    // the shape here is flat enough not to need one.
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"scale\": {},", opts.scale);
    let _ = writeln!(json, "  \"vehicles\": {},", outcome.clients.len());
    let _ = writeln!(json, "  \"alarms\": {},", sim.workload.alarms);
    let _ = writeln!(json, "  \"workers\": {},", opts.workers);
    let _ = writeln!(json, "  \"steps\": {},", outcome.steps);
    let _ = writeln!(json, "  \"wall_seconds\": {wall_seconds:.6},");
    let _ = writeln!(json, "  \"steps_per_sec\": {steps_per_sec:.3},");
    let _ = writeln!(json, "  \"location_updates\": {},", outcome.server.location_updates);
    let _ = writeln!(json, "  \"updates_per_sec\": {updates_per_sec:.3},");
    let _ = writeln!(json, "  \"triggers\": {},", outcome.server.triggers);
    let _ = writeln!(json, "  \"update_rtt_ns\": {{");
    let _ = writeln!(json, "    \"p50\": {},", rtt.p50);
    let _ = writeln!(json, "    \"p90\": {},", rtt.p90);
    let _ = writeln!(json, "    \"p99\": {},", rtt.p99);
    let _ = writeln!(json, "    \"max\": {},", rtt.max);
    let _ = writeln!(json, "    \"count\": {}", rtt.count);
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"cache_hit_ratio\": {cache_ratio:.6},");
    let _ = writeln!(json, "  \"cache_hits\": {},", outcome.cache.hits);
    let _ = writeln!(json, "  \"cache_misses\": {},", outcome.cache.misses);
    let _ = writeln!(json, "  \"baseline_steps\": {baseline_steps},");
    let _ = writeln!(
        json,
        "  \"baseline_updates_per_sec\": {baseline_updates_per_sec:.3},"
    );
    let _ = writeln!(json, "  \"batched_vs_per_request_speedup\": {speedup:.3}");
    json.push_str("}\n");

    std::fs::write(&opts.out, &json).expect("writing the benchmark report");
    println!(
        "batched replay: {} steps × {} vehicles in {:.2}s ({:.1} steps/s, \
         {:.0} updates/s, rtt p99={}ns, cache hit ratio {:.1}%); \
         per-request baseline {:.0} updates/s over {} steps → {:.1}× speedup → {}",
        outcome.steps,
        outcome.clients.len(),
        wall_seconds,
        steps_per_sec,
        updates_per_sec,
        rtt.p99,
        100.0 * cache_ratio,
        baseline_updates_per_sec,
        baseline_steps,
        speedup,
        opts.out.display()
    );
}
