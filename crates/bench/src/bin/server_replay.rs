//! Replays the smoke-test trace through the in-process live server and
//! writes `BENCH_server_replay.json`: throughput, end-to-end
//! location-update latency percentiles (from the server's
//! `sa_update_rtt_ns` histogram), and the public-bitmap cache hit ratio.
//!
//! This is the live-runtime counterpart of the simulator-driven `fig*`
//! binaries: the same trace, but real threads, real queues, and the real
//! wire codec on the path. Every run still cross-checks the fired-alarm
//! sequence against the simulator's ground truth before reporting.
//!
//! Usage: `server_replay [--steps N] [--out PATH]`

use sa_server::wire::StrategySpec;
use sa_server::{replay_in_proc, ReplayConfig, ServerConfig, TraceMode};
use sa_sim::{SimulationConfig, SimulationHarness};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

struct Opts {
    steps: u32,
    out: PathBuf,
}

fn parse_args() -> Opts {
    let mut opts = Opts { steps: 300, out: PathBuf::from("BENCH_server_replay.json") };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value =
            || args.next().unwrap_or_else(|| panic!("missing value for {flag}"));
        match flag.as_str() {
            "--steps" => opts.steps = value().parse().expect("--steps expects an integer"),
            "--out" => opts.out = PathBuf::from(value()),
            "--help" | "-h" => {
                eprintln!("usage: server_replay [--steps N] [--out PATH]");
                std::process::exit(0);
            }
            other => panic!("unknown flag {other}"),
        }
    }
    assert!(opts.steps > 0, "--steps must be positive");
    opts
}

fn main() {
    let opts = parse_args();
    let harness = SimulationHarness::build(&SimulationConfig::smoke_test());
    let cfg = ReplayConfig {
        steps: Some(opts.steps),
        server: ServerConfig::default(),
        trace_mode: TraceMode::Full,
        strategies: vec![
            StrategySpec::Mwpsr,
            StrategySpec::Pbsr { height: 5 },
            StrategySpec::Opt,
            StrategySpec::SafePeriod,
        ],
    };

    let started = Instant::now();
    let outcome = replay_in_proc(&harness, &cfg).expect("in-proc transport must hold");
    let wall_seconds = started.elapsed().as_secs_f64();
    outcome.assert_accurate();

    let rtt = outcome
        .metrics
        .histogram("sa_update_rtt_ns", &[])
        .expect("the replay must have recorded round-trip latencies");
    let uplinks: u64 = outcome.clients.iter().map(|(_, _, s)| s.uplinks).sum();
    let cache_lookups = outcome.cache.hits + outcome.cache.misses;
    let cache_hit_ratio = if cache_lookups == 0 {
        0.0
    } else {
        outcome.cache.hits as f64 / cache_lookups as f64
    };
    let throughput = outcome.server.location_updates as f64 / wall_seconds.max(1e-9);

    // Hand-rolled JSON: the vendored serde stub has no serializer, and
    // the shape here is flat enough not to need one.
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"steps\": {},", outcome.steps);
    let _ = writeln!(json, "  \"vehicles\": {},", outcome.clients.len());
    let _ = writeln!(json, "  \"wall_seconds\": {wall_seconds:.6},");
    let _ = writeln!(json, "  \"location_updates\": {},", outcome.server.location_updates);
    let _ = writeln!(json, "  \"uplinks\": {uplinks},");
    let _ = writeln!(json, "  \"triggers\": {},", outcome.server.triggers);
    let _ = writeln!(json, "  \"throughput_updates_per_sec\": {throughput:.3},");
    let _ = writeln!(json, "  \"update_rtt_ns\": {{");
    let _ = writeln!(json, "    \"p50\": {},", rtt.p50);
    let _ = writeln!(json, "    \"p90\": {},", rtt.p90);
    let _ = writeln!(json, "    \"p99\": {},", rtt.p99);
    let _ = writeln!(json, "    \"max\": {},", rtt.max);
    let _ = writeln!(json, "    \"count\": {}", rtt.count);
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"cache_hit_ratio\": {cache_hit_ratio:.6},");
    let _ = writeln!(json, "  \"cache_hits\": {},", outcome.cache.hits);
    let _ = writeln!(json, "  \"cache_misses\": {}", outcome.cache.misses);
    json.push_str("}\n");

    std::fs::write(&opts.out, &json).expect("writing the benchmark report");
    println!(
        "replayed {} steps × {} vehicles in {:.2}s: {:.0} updates/s, \
         rtt p50={}ns p99={}ns, cache hit ratio {:.1}% → {}",
        outcome.steps,
        outcome.clients.len(),
        wall_seconds,
        throughput,
        rtt.p50,
        rtt.p99,
        100.0 * cache_hit_ratio,
        opts.out.display()
    );
}
