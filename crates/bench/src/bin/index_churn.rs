//! The alarm-index churn bench: how much does live install/deactivate
//! traffic cost concurrent readers, and what does STR bulk loading buy
//! at build time? Writes `BENCH_index_churn.json`.
//!
//! Two phases:
//!
//! 1. **Bulk load** — build the same R*-tree over N alarm rectangles
//!    twice: once with [`RStarTree::bulk_load`] (Sort-Tile-Recursive
//!    packing) and once with the one-at-a-time insert loop the index
//!    used before. Reports both wall times and the speedup; at the
//!    default 1M entries STR should be well over 5× faster because it
//!    does one sort pass instead of a million top-down descents with
//!    forced-reinsert churn.
//!
//! 2. **Churn** — a [`VersionedAlarmIndex`] serving the server's real
//!    read mix through an epoch-cached snapshot: one grid-cell
//!    `relevant_intersecting` (the read every MWPSR/PBSR/OPT
//!    safe-region computation issues) followed by a point
//!    `relevant_at_visit` trigger probe, timed as one query. The
//!    p50/p99 per-query latency is measured twice — index quiescent,
//!    then with a paced writer thread pushing install/deactivate ops
//!    at `--churn-rate` per second. Readers never take a lock on the
//!    steady path (one atomic epoch load per query), so the p99 ratio
//!    between the two runs is the whole cost of snapshot churn: delta
//!    scans, cache refreshes after each publish, and the memory
//!    traffic of generation merges.
//!
//! Sweep usage:
//! `index_churn [--alarms N] [--base N] [--churn-rate N]
//!              [--merge-threshold N] [--seconds F] [--out PATH]`
//!
//! Gate usage (fails the run in place, for CI):
//! `index_churn ... --min-bulk-speedup F --max-churn-ratio F`

use sa_alarms::{
    AlarmId, AlarmScope, SnapshotCache, SpatialAlarm, SubscriberId, VersionedAlarmIndex,
};
use sa_geometry::{Point, Rect};
use sa_index::RStarTree;
use sa_obs::Registry;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Universe edge in metres (100 km, matching the paper's road-network
/// extent order of magnitude).
const UNIVERSE_M: f64 = 100_000.0;

struct Opts {
    /// Entry count for the bulk-load-vs-insert-loop phase.
    alarms: usize,
    /// Alarm count the churn phase starts from.
    base: usize,
    /// Target write ops per second for the churn-on run.
    churn_rate: u64,
    /// Delta size that triggers a generation merge.
    merge_threshold: usize,
    /// Wall seconds of query traffic per churn mode.
    seconds: f64,
    out: PathBuf,
    min_bulk_speedup: f64,
    max_churn_ratio: f64,
}

fn parse_args() -> Opts {
    let mut opts = Opts {
        alarms: 1_000_000,
        base: 20_000,
        churn_rate: 10_000,
        merge_threshold: 64,
        seconds: 3.0,
        out: PathBuf::from("BENCH_index_churn.json"),
        min_bulk_speedup: f64::NEG_INFINITY,
        max_churn_ratio: f64::INFINITY,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| panic!("missing value for {flag}"));
        match flag.as_str() {
            "--alarms" => opts.alarms = value().parse().expect("--alarms expects an integer"),
            "--base" => opts.base = value().parse().expect("--base expects an integer"),
            "--churn-rate" => {
                opts.churn_rate = value().parse().expect("--churn-rate expects an integer");
            }
            "--merge-threshold" => {
                opts.merge_threshold =
                    value().parse().expect("--merge-threshold expects an integer");
            }
            "--seconds" => opts.seconds = value().parse().expect("--seconds expects a float"),
            "--out" => opts.out = PathBuf::from(value()),
            "--min-bulk-speedup" => {
                opts.min_bulk_speedup =
                    value().parse().expect("--min-bulk-speedup expects a float");
            }
            "--max-churn-ratio" => {
                opts.max_churn_ratio =
                    value().parse().expect("--max-churn-ratio expects a float");
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: index_churn [--alarms N] [--base N] [--churn-rate N] \
                     [--merge-threshold N] [--seconds F] [--out PATH] \
                     [--min-bulk-speedup F] [--max-churn-ratio F]"
                );
                std::process::exit(0);
            }
            other => panic!("unknown flag {other}"),
        }
    }
    assert!(opts.alarms > 0, "--alarms must be positive");
    assert!(opts.base > 0, "--base must be positive");
    assert!(opts.churn_rate > 0, "--churn-rate must be positive");
    assert!(opts.merge_threshold > 0, "--merge-threshold must be positive");
    assert!(opts.seconds > 0.0, "--seconds must be positive");
    opts
}

/// Deterministic xorshift stream, so both tree builds and both churn
/// runs see identical geometry.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    /// Uniform in [lo, hi).
    fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

fn alarm_rect(rng: &mut Rng) -> Rect {
    let half = rng.range(20.0, 250.0);
    let cx = rng.range(half, UNIVERSE_M - half);
    let cy = rng.range(half, UNIVERSE_M - half);
    Rect::new(cx - half, cy - half, cx + half, cy + half).expect("generated rect is valid")
}

fn alarm(id: u64, rng: &mut Rng) -> SpatialAlarm {
    let region = alarm_rect(rng);
    let owner = SubscriberId((rng.next() % 8) as u32);
    // Mostly public so reader probes do real tree work; a private tail
    // keeps the per-subscriber path warm too.
    let scope = if rng.next().is_multiple_of(4) {
        AlarmScope::Private { owner }
    } else {
        AlarmScope::Public { owner }
    };
    SpatialAlarm::around_static_target(AlarmId(id), region.center(), region.width() / 2.0, scope)
        .expect("generated alarm is valid")
}

/// Phase 1: STR bulk load vs the insert loop over identical entries.
fn bulk_phase(n: usize) -> (f64, f64) {
    let mut rng = Rng(0x0BAD_5EED_0000_0001);
    let entries: Vec<(Rect, u64)> = (0..n).map(|i| (alarm_rect(&mut rng), i as u64)).collect();

    let started = Instant::now();
    let bulk: RStarTree<u64> = RStarTree::bulk_load(entries.clone());
    let bulk_s = started.elapsed().as_secs_f64();
    assert_eq!(bulk.len(), n);

    let started = Instant::now();
    let mut grown: RStarTree<u64> = RStarTree::new();
    for &(rect, id) in &entries {
        grown.insert(rect, id);
    }
    let insert_s = started.elapsed().as_secs_f64();
    assert_eq!(grown.len(), n);

    // Same answers on a spot-check query, so neither timing is of a
    // broken build.
    let probe = Rect::new(40_000.0, 40_000.0, 42_000.0, 42_000.0).unwrap();
    let mut a: Vec<u64> = bulk.search_intersecting(probe).into_iter().copied().collect();
    let mut b: Vec<u64> = grown.search_intersecting(probe).into_iter().copied().collect();
    a.sort_unstable();
    b.sort_unstable();
    assert_eq!(a, b, "bulk-loaded and insert-grown trees disagree");
    (bulk_s, insert_s)
}

/// One churn-phase measurement: per-read-kind latency quantiles over
/// `seconds` of probes, with an optional paced writer alongside. The
/// region read (one grid cell of `relevant_intersecting`) is the
/// gated number — it is what every safe-region computation pays; the
/// point trigger probe is reported alongside.
struct ChurnRun {
    queries: u64,
    region_p50_ns: u64,
    region_p99_ns: u64,
    probe_p50_ns: u64,
    probe_p99_ns: u64,
    write_ops: u64,
    achieved_rate: f64,
}

fn churn_run(
    index: &VersionedAlarmIndex,
    next_id: &AtomicU64,
    seconds: f64,
    churn_rate: Option<u64>,
) -> ChurnRun {
    let registry = Registry::new();
    let region_hist = registry.histogram("index_churn_region_read_ns");
    let probe_hist = registry.histogram("index_churn_trigger_probe_ns");
    let stop = AtomicBool::new(false);
    let write_ops = AtomicU64::new(0);
    let deadline = Duration::from_secs_f64(seconds);

    let mut queries = 0u64;
    let mut achieved_rate = 0.0;
    std::thread::scope(|scope| {
        if let Some(rate) = churn_rate {
            let achieved = &mut achieved_rate;
            let (stop, write_ops) = (&stop, &write_ops);
            scope.spawn(move || {
                // Paced writer: batches of ops against a wall-clock
                // schedule, alternating installs with deactivates of a
                // pseudo-random live id.
                let mut rng = Rng(0xC0FF_EE00_DEAD_0003);
                let batch = 64u64.min(rate);
                let started = Instant::now();
                let mut done = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    for k in 0..batch {
                        if k % 2 == 0 {
                            let id = next_id.fetch_add(1, Ordering::Relaxed);
                            index
                                .try_install(alarm(id, &mut rng))
                                .expect("writer ids are dense by construction");
                        } else {
                            let live = next_id.load(Ordering::Relaxed);
                            index.deactivate(AlarmId(rng.next() % live));
                        }
                    }
                    done += batch;
                    write_ops.store(done, Ordering::Relaxed);
                    // Sleep off any lead over the schedule.
                    let due = Duration::from_secs_f64(done as f64 / rate as f64);
                    let elapsed = started.elapsed();
                    if due > elapsed {
                        std::thread::sleep(due - elapsed);
                    }
                }
                *achieved = done as f64 / started.elapsed().as_secs_f64();
            });
        }

        let mut cache: SnapshotCache<sa_alarms::AlarmSnapshot> = SnapshotCache::new();
        let mut rng = Rng(0xFACE_0FF0_0000_0002);
        let mut sink = 0usize;
        const CELL_M: f64 = 1_000.0;
        let cells = (UNIVERSE_M / CELL_M) as u64;
        // Unrecorded warmup: fault in the index pages and warm the
        // allocator so the measured tail is churn, not cold-start.
        let warmup = Instant::now();
        while warmup.elapsed() < deadline.mul_f64(0.15) {
            let p = Point::new(rng.range(0.0, UNIVERSE_M), rng.range(0.0, UNIVERSE_M));
            let snap = index.load_cached(&mut cache);
            snap.relevant_at_visit(SubscriberId(0), p, |_| sink += 1);
        }
        let started = Instant::now();
        while started.elapsed() < deadline {
            let user = SubscriberId((rng.next() % 8) as u32);
            // One safe-region cell read plus one trigger probe inside
            // it — the per-update alarm-index traffic of a live server.
            let (cx, cy) = (rng.next() % cells, rng.next() % cells);
            let cell = Rect::new(
                cx as f64 * CELL_M,
                cy as f64 * CELL_M,
                (cx + 1) as f64 * CELL_M,
                (cy + 1) as f64 * CELL_M,
            )
            .expect("grid cells are valid rects");
            let p = Point::new(
                rng.range(cell.min_x(), cell.max_x()),
                rng.range(cell.min_y(), cell.max_y()),
            );
            let q = Instant::now();
            let snap = index.load_cached(&mut cache);
            sink += snap.relevant_intersecting(user, cell).len();
            region_hist.record_duration(q.elapsed());
            let q = Instant::now();
            let snap = index.load_cached(&mut cache);
            snap.relevant_at_visit(user, p, |_| sink += 1);
            probe_hist.record_duration(q.elapsed());
            queries += 2;
        }
        stop.store(true, Ordering::Relaxed);
        // Keep the probe loop from being optimized away.
        assert!(sink < usize::MAX);
    });

    let region = region_hist.snapshot();
    let probe = probe_hist.snapshot();
    ChurnRun {
        queries,
        region_p50_ns: region.p50,
        region_p99_ns: region.p99,
        probe_p50_ns: probe.p50,
        probe_p99_ns: probe.p99,
        write_ops: write_ops.load(Ordering::Relaxed),
        achieved_rate,
    }
}

fn main() {
    let opts = parse_args();

    eprintln!("bulk phase: {} entries, STR vs insert loop", opts.alarms);
    let (bulk_s, insert_s) = bulk_phase(opts.alarms);
    let speedup = insert_s / bulk_s.max(1e-9);
    eprintln!("  bulk {bulk_s:.3}s, insert loop {insert_s:.3}s ({speedup:.1}× speedup)");

    eprintln!(
        "churn phase: {} base alarms, merge threshold {}, {:.1}s per mode",
        opts.base, opts.merge_threshold, opts.seconds
    );
    let mut rng = Rng(0x5EED_0000_0000_0004);
    let base: Vec<SpatialAlarm> = (0..opts.base).map(|i| alarm(i as u64, &mut rng)).collect();
    let index = VersionedAlarmIndex::with_merge_threshold(base, opts.merge_threshold)
        .expect("base ids are dense by construction");
    let next_id = AtomicU64::new(opts.base as u64);

    let quiet = churn_run(&index, &next_id, opts.seconds, None);
    eprintln!(
        "  churn off: {} reads, region p50 {}ns p99 {}ns, probe p50 {}ns p99 {}ns",
        quiet.queries,
        quiet.region_p50_ns,
        quiet.region_p99_ns,
        quiet.probe_p50_ns,
        quiet.probe_p99_ns
    );
    let churned = churn_run(&index, &next_id, opts.seconds, Some(opts.churn_rate));
    eprintln!(
        "  churn on:  {} reads, region p50 {}ns p99 {}ns, probe p50 {}ns p99 {}ns \
         ({} write ops, {:.0}/s achieved)",
        churned.queries,
        churned.region_p50_ns,
        churned.region_p99_ns,
        churned.probe_p50_ns,
        churned.probe_p99_ns,
        churned.write_ops,
        churned.achieved_rate
    );
    let ratio = churned.region_p99_ns as f64 / (quiet.region_p99_ns as f64).max(1.0);
    let probe_ratio = churned.probe_p99_ns as f64 / (quiet.probe_p99_ns as f64).max(1.0);

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bulk_load\": {{");
    let _ = writeln!(json, "    \"alarms\": {},", opts.alarms);
    let _ = writeln!(json, "    \"bulk_seconds\": {bulk_s:.6},");
    let _ = writeln!(json, "    \"insert_loop_seconds\": {insert_s:.6},");
    let _ = writeln!(json, "    \"speedup\": {speedup:.2}");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"churn\": {{");
    let _ = writeln!(json, "    \"base_alarms\": {},", opts.base);
    let _ = writeln!(json, "    \"merge_threshold\": {},", opts.merge_threshold);
    let _ = writeln!(json, "    \"seconds_per_mode\": {},", opts.seconds);
    let _ = writeln!(json, "    \"target_write_ops_per_sec\": {},", opts.churn_rate);
    let _ = writeln!(json, "    \"achieved_write_ops_per_sec\": {:.0},", churned.achieved_rate);
    let _ = writeln!(json, "    \"write_ops\": {},", churned.write_ops);
    let _ = writeln!(json, "    \"reads_off\": {},", quiet.queries);
    let _ = writeln!(json, "    \"reads_on\": {},", churned.queries);
    let _ = writeln!(json, "    \"region_p50_off_ns\": {},", quiet.region_p50_ns);
    let _ = writeln!(json, "    \"region_p99_off_ns\": {},", quiet.region_p99_ns);
    let _ = writeln!(json, "    \"region_p50_on_ns\": {},", churned.region_p50_ns);
    let _ = writeln!(json, "    \"region_p99_on_ns\": {},", churned.region_p99_ns);
    let _ = writeln!(json, "    \"probe_p50_off_ns\": {},", quiet.probe_p50_ns);
    let _ = writeln!(json, "    \"probe_p99_off_ns\": {},", quiet.probe_p99_ns);
    let _ = writeln!(json, "    \"probe_p50_on_ns\": {},", churned.probe_p50_ns);
    let _ = writeln!(json, "    \"probe_p99_on_ns\": {},", churned.probe_p99_ns);
    let _ = writeln!(json, "    \"probe_p99_ratio\": {probe_ratio:.3},");
    let _ = writeln!(json, "    \"p99_ratio\": {ratio:.3}");
    let _ = writeln!(json, "  }}");
    json.push_str("}\n");
    std::fs::write(&opts.out, &json).expect("writing the churn report");
    println!(
        "bulk speedup {speedup:.1}×; churn-on region-read p99 {}ns = {ratio:.2}× \
         churn-off {}ns → {}",
        churned.region_p99_ns,
        quiet.region_p99_ns,
        opts.out.display()
    );

    let mut failed = false;
    if speedup < opts.min_bulk_speedup {
        eprintln!(
            "BULK LOAD REGRESSION: STR speedup {speedup:.2}× fell below the floor {:.2}×",
            opts.min_bulk_speedup
        );
        failed = true;
    }
    if ratio > opts.max_churn_ratio {
        eprintln!(
            "CHURN REGRESSION: churn-on region-read p99 is {ratio:.2}× the quiescent p99, \
             above the ceiling {:.2}× — snapshot publishes are bleeding into the read path",
            opts.max_churn_ratio
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
