//! Figure 4(a): number of client-to-server messages for the rectangular
//! safe-region approaches, sweeping the grid cell size
//! {0.4, 0.625, 1.11, 2.5, 10} km² against the non-weighted and the
//! weighted (y = 1, z ∈ {4, 16, 32}) maximum perimeter variants.
//!
//! Paper shape: the weighted variants consistently (if narrowly) beat the
//! non-weighted one; messages drop as the cell grows; every variant sends
//! under ~3% of the raw location samples.

use sa_bench::{append_csv, averaged_runs, render_table, BenchOpts};
use sa_sim::{SimulationHarness, StrategyKind};

fn main() {
    let opts = BenchOpts::from_args();
    let cell_sizes = [0.4, 0.625, 1.11, 2.5, 10.0];
    let variants: [(&str, StrategyKind); 4] = [
        ("Non-Weighted", StrategyKind::MwpsrNonWeighted),
        ("y=1,z=4", StrategyKind::Mwpsr { y: 1.0, z: 4 }),
        ("y=1,z=16", StrategyKind::Mwpsr { y: 1.0, z: 16 }),
        ("y=1,z=32", StrategyKind::Mwpsr { y: 1.0, z: 32 }),
    ];

    // Build one harness per seed and re-grid it per cell size, so every
    // column sees the identical trace.
    let base: Vec<SimulationHarness> =
        (0..opts.seeds).map(|seed| SimulationHarness::build(&opts.config(seed))).collect();

    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    let mut total_samples = 0.0;
    for &cell in &cell_sizes {
        let mut row = vec![format!("{cell}")];
        for (name, kind) in &variants {
            let avg = averaged_runs(&opts, *kind, |seed| {
                base[seed as usize].with_cell_area(cell)
            });
            row.push(format!("{:.4}", avg.uplink_messages / 1.0e6));
            let csv_name = name.replace(',', ";");
            csv_rows.push(format!(
                "{cell},{csv_name},{},{:.2}",
                avg.uplink_messages,
                avg.message_percentage()
            ));
            total_samples = avg.total_samples;
        }
        rows.push(row);
    }

    println!(
        "{}",
        render_table(
            "Figure 4(a): client-to-server messages (millions) vs grid cell size",
            &["Cell (km²)", "Non-Weighted", "y=1,z=4", "y=1,z=16", "y=1,z=32"],
            &rows,
        )
    );
    println!(
        "trace samples: {:.2}M (periodic would send all of them)",
        total_samples / 1.0e6
    );

    if let Some(path) = &opts.csv {
        append_csv(path, "cell_km2,variant,messages,pct_of_samples", &csv_rows)
            .expect("csv write failed");
    }
}
