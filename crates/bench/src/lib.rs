//! Shared plumbing for the experiment binaries that regenerate every table
//! and figure of the paper's §5 evaluation (see `DESIGN.md` §3 for the
//! experiment index and `EXPERIMENTS.md` for recorded results).
//!
//! Each `fig*` binary accepts:
//!
//! - `--scale F` — workload scale relative to the paper (default `0.05`:
//!   500 vehicles / 500 alarms; `1.0` = the paper's 10,000 / 10,000),
//! - `--seeds N` — number of independent traces to average over
//!   (default 1; the paper averages "over a number of such traces"),
//! - `--duration S` — simulated seconds (default 3600, the paper's hour),
//! - `--csv PATH` — also append machine-readable rows to `PATH`.

#![forbid(unsafe_code)]

use sa_sim::{RunReport, SimulationConfig, SimulationHarness, StrategyKind};
use std::fmt::Write as _;
use std::path::PathBuf;

/// Command-line options shared by all experiment binaries.
#[derive(Debug, Clone)]
pub struct BenchOpts {
    /// Workload scale relative to the paper's setup.
    pub scale: f64,
    /// Number of independent traces to average over.
    pub seeds: u32,
    /// Simulated duration in seconds.
    pub duration_s: f64,
    /// Optional CSV output path.
    pub csv: Option<PathBuf>,
}

impl Default for BenchOpts {
    fn default() -> BenchOpts {
        BenchOpts { scale: 0.05, seeds: 1, duration_s: 3_600.0, csv: None }
    }
}

impl BenchOpts {
    /// Parses `std::env::args`; panics with a usage message on bad input.
    pub fn from_args() -> BenchOpts {
        let mut opts = BenchOpts::default();
        let mut args = std::env::args().skip(1);
        while let Some(flag) = args.next() {
            let mut value = || {
                args.next()
                    .unwrap_or_else(|| panic!("missing value for {flag}"))
            };
            match flag.as_str() {
                "--scale" => opts.scale = value().parse().expect("--scale expects a float"),
                "--seeds" => opts.seeds = value().parse().expect("--seeds expects an integer"),
                "--duration" => {
                    opts.duration_s = value().parse().expect("--duration expects seconds")
                }
                "--csv" => opts.csv = Some(PathBuf::from(value())),
                "--help" | "-h" => {
                    eprintln!("usage: [--scale F] [--seeds N] [--duration S] [--csv PATH]");
                    std::process::exit(0);
                }
                other => panic!("unknown flag {other}"),
            }
        }
        assert!(opts.scale > 0.0 && opts.scale <= 1.0, "--scale must be in (0, 1]");
        assert!(opts.seeds >= 1, "--seeds must be at least 1");
        opts
    }

    /// The base simulation config at this scale/duration, with trace seed
    /// `seed_index` (0-based).
    pub fn config(&self, seed_index: u32) -> SimulationConfig {
        let mut config = SimulationConfig::scaled(self.scale);
        config.duration_s = self.duration_s;
        config.fleet.seed ^= (seed_index as u64) << 32;
        config.workload.seed ^= (seed_index as u64) << 32;
        config
    }
}

/// A run averaged over the configured number of seeded traces. Every
/// individual run must pass the 100% accuracy check. The closure may
/// return either owned harnesses (e.g. re-gridded copies) or references to
/// prebuilt ones.
pub fn averaged_runs<H: std::borrow::Borrow<SimulationHarness>>(
    opts: &BenchOpts,
    kind: StrategyKind,
    harness_for_seed: impl Fn(u32) -> H,
) -> AveragedRun {
    let mut acc = AveragedRun::default();
    for seed in 0..opts.seeds {
        let harness = harness_for_seed(seed);
        let harness = harness.borrow();
        let report = harness.run(kind);
        report.assert_accurate();
        acc.add(&report, harness.total_samples());
    }
    acc.finalize(opts.seeds);
    acc
}

/// Metric averages across seeded traces.
#[derive(Debug, Clone, Default)]
pub struct AveragedRun {
    /// Mean uplink message count.
    pub uplink_messages: f64,
    /// Mean downlink megabits per second.
    pub downlink_mbps: f64,
    /// Mean client energy (mWh, default energy model, radio included).
    pub client_energy_mwh: f64,
    /// Mean containment-detection-only client energy (mWh) — the Figure
    /// 5(b)/6(c) measure.
    pub check_energy_mwh: f64,
    /// Mean server alarm-processing minutes (default cost model).
    pub alarm_minutes: f64,
    /// Mean server safe-region-computation minutes.
    pub region_minutes: f64,
    /// Mean total trace samples (for "% of samples sent" readouts).
    pub total_samples: f64,
    /// Mean triggers fired.
    pub triggers: f64,
}

impl AveragedRun {
    fn add(&mut self, report: &RunReport, total_samples: u64) {
        let energy = sa_sim::EnergyModel::default();
        let cost = sa_sim::ServerCostModel::default();
        let (alarm_min, region_min) = report.server_minutes(&cost);
        self.uplink_messages += report.metrics.uplink_messages as f64;
        self.downlink_mbps += report.downlink_mbps();
        self.client_energy_mwh += report.client_energy_mwh(&energy);
        self.check_energy_mwh += report.metrics.client_check_energy_mwh(&energy);
        self.alarm_minutes += alarm_min;
        self.region_minutes += region_min;
        self.total_samples += total_samples as f64;
        self.triggers += report.metrics.triggers as f64;
    }

    fn finalize(&mut self, seeds: u32) {
        let n = seeds as f64;
        self.uplink_messages /= n;
        self.downlink_mbps /= n;
        self.client_energy_mwh /= n;
        self.check_energy_mwh /= n;
        self.alarm_minutes /= n;
        self.region_minutes /= n;
        self.total_samples /= n;
        self.triggers /= n;
    }

    /// Total server minutes.
    pub fn total_minutes(&self) -> f64 {
        self.alarm_minutes + self.region_minutes
    }

    /// Uplink messages as a percentage of raw trace samples.
    pub fn message_percentage(&self) -> f64 {
        100.0 * self.uplink_messages / self.total_samples.max(1.0)
    }
}

/// Renders an aligned text table.
pub fn render_table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "=== {title} ===");
    let line = |cells: &[String], widths: &[usize]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    let _ = writeln!(out, "{}", line(&header_cells, &widths));
    let _ = writeln!(out, "{}", "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    for row in rows {
        let _ = writeln!(out, "{}", line(row, &widths));
    }
    out
}

/// A fitted power law `y = coefficient · x^exponent`, from a log-log
/// least-squares regression. Produced by [`fit_power_law`]; consumed by
/// the `scaling_curve` bench, whose CI gate fails when the fitted
/// throughput `exponent` regresses below tolerance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerLawFit {
    /// The slope in log-log space: 0 = flat (perfect scaling of
    /// per-core throughput), negative = throughput decays with scale.
    pub exponent: f64,
    /// The value of `y` the fit predicts at `x = 1`.
    pub coefficient: f64,
    /// Coefficient of determination of the log-log regression in
    /// `[0, 1]`; 1 means the points sit exactly on a power law.
    pub r_squared: f64,
}

impl PowerLawFit {
    /// The fitted prediction at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.coefficient * x.powf(self.exponent)
    }
}

/// Fits `y = c · x^e` to `(x, y)` points by ordinary least squares on
/// `(log10 x, log10 y)`. Pure and deterministic: the same points give
/// bit-identical fits on every run (the determinism the `scaling_fit`
/// regression test pins).
///
/// Returns `None` when fewer than two points remain after dropping
/// non-finite or non-positive coordinates (logs would be undefined), or
/// when all remaining `x` are equal (the slope is then unconstrained).
pub fn fit_power_law(points: &[(f64, f64)]) -> Option<PowerLawFit> {
    let logs: Vec<(f64, f64)> = points
        .iter()
        .filter(|(x, y)| x.is_finite() && y.is_finite() && *x > 0.0 && *y > 0.0)
        .map(|(x, y)| (x.log10(), y.log10()))
        .collect();
    if logs.len() < 2 {
        return None;
    }
    let n = logs.len() as f64;
    let mean_x = logs.iter().map(|(x, _)| x).sum::<f64>() / n;
    let mean_y = logs.iter().map(|(_, y)| y).sum::<f64>() / n;
    let ss_xx: f64 = logs.iter().map(|(x, _)| (x - mean_x) * (x - mean_x)).sum();
    let ss_xy: f64 = logs.iter().map(|(x, y)| (x - mean_x) * (y - mean_y)).sum();
    if ss_xx == 0.0 {
        return None;
    }
    let exponent = ss_xy / ss_xx;
    let intercept = mean_y - exponent * mean_x;
    let ss_tot: f64 = logs.iter().map(|(_, y)| (y - mean_y) * (y - mean_y)).sum();
    let ss_res: f64 = logs
        .iter()
        .map(|(x, y)| {
            let r = y - (exponent * x + intercept);
            r * r
        })
        .sum();
    let r_squared = if ss_tot == 0.0 { 1.0 } else { (1.0 - ss_res / ss_tot).clamp(0.0, 1.0) };
    Some(PowerLawFit { exponent, coefficient: 10f64.powf(intercept), r_squared })
}

/// Appends CSV rows (with a header when the file is new).
pub fn append_csv(path: &std::path::Path, header: &str, rows: &[String]) -> std::io::Result<()> {
    use std::io::Write as _;
    let new = !path.exists();
    let mut file = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
    if new {
        writeln!(file, "{header}")?;
    }
    for row in rows {
        writeln!(file, "{row}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_opts_are_laptop_sized() {
        let o = BenchOpts::default();
        assert!(o.scale <= 0.1);
        assert_eq!(o.seeds, 1);
        let c = o.config(0);
        c.validate();
    }

    #[test]
    fn seed_index_changes_trace_but_not_shape() {
        let o = BenchOpts::default();
        let a = o.config(0);
        let b = o.config(1);
        assert_ne!(a.fleet.seed, b.fleet.seed);
        assert_eq!(a.fleet.vehicles, b.fleet.vehicles);
        assert_eq!(a.workload.alarms, b.workload.alarms);
    }

    #[test]
    fn fit_recovers_an_exact_power_law() {
        // y = 3 x^0.8 exactly: the fit must recover both parameters and
        // report a perfect r².
        let points: Vec<(f64, f64)> =
            [0.5f64, 1.0, 2.0, 4.0, 8.0].iter().map(|&x| (x, 3.0 * x.powf(0.8))).collect();
        let fit = fit_power_law(&points).unwrap();
        assert!((fit.exponent - 0.8).abs() < 1e-9, "exponent {}", fit.exponent);
        assert!((fit.coefficient - 3.0).abs() < 1e-9, "coefficient {}", fit.coefficient);
        assert!(fit.r_squared > 1.0 - 1e-12);
        assert!((fit.predict(16.0) - 3.0 * 16.0f64.powf(0.8)).abs() < 1e-6);
    }

    #[test]
    fn fit_handles_noise_and_reports_imperfect_r_squared() {
        let points = [(1.0, 10.0), (2.0, 5.3), (4.0, 2.4), (8.0, 1.3)];
        let fit = fit_power_law(&points).unwrap();
        // Roughly y = 10/x.
        assert!((-1.1..=-0.9).contains(&fit.exponent), "exponent {}", fit.exponent);
        assert!(fit.r_squared < 1.0 && fit.r_squared > 0.9);
    }

    #[test]
    fn fit_rejects_degenerate_inputs() {
        assert!(fit_power_law(&[]).is_none());
        assert!(fit_power_law(&[(1.0, 2.0)]).is_none(), "one point");
        assert!(fit_power_law(&[(1.0, 2.0), (1.0, 4.0)]).is_none(), "vertical line");
        // Non-positive and non-finite points are dropped, not logged.
        assert!(fit_power_law(&[(0.0, 2.0), (-1.0, 4.0), (2.0, f64::NAN)]).is_none());
        let fit = fit_power_law(&[(0.0, 5.0), (1.0, 2.0), (2.0, 2.0), (4.0, 2.0)]).unwrap();
        assert!(fit.exponent.abs() < 1e-12, "flat line fits exponent 0");
    }

    #[test]
    fn render_table_aligns_columns() {
        let s = render_table(
            "demo",
            &["name", "value"],
            &[vec!["a".into(), "1".into()], vec!["long-name".into(), "2".into()]],
        );
        assert!(s.contains("demo"));
        assert!(s.contains("long-name"));
        let lines: Vec<&str> = s.lines().collect();
        // Header and data lines align on the right edge.
        assert_eq!(lines[1].len(), lines[3].len());
    }
}
