//! Shared plumbing for the experiment binaries that regenerate every table
//! and figure of the paper's §5 evaluation (see `DESIGN.md` §3 for the
//! experiment index and `EXPERIMENTS.md` for recorded results).
//!
//! Each `fig*` binary accepts:
//!
//! - `--scale F` — workload scale relative to the paper (default `0.05`:
//!   500 vehicles / 500 alarms; `1.0` = the paper's 10,000 / 10,000),
//! - `--seeds N` — number of independent traces to average over
//!   (default 1; the paper averages "over a number of such traces"),
//! - `--duration S` — simulated seconds (default 3600, the paper's hour),
//! - `--csv PATH` — also append machine-readable rows to `PATH`.

#![forbid(unsafe_code)]

use sa_sim::{RunReport, SimulationConfig, SimulationHarness, StrategyKind};
use std::fmt::Write as _;
use std::path::PathBuf;

/// Command-line options shared by all experiment binaries.
#[derive(Debug, Clone)]
pub struct BenchOpts {
    /// Workload scale relative to the paper's setup.
    pub scale: f64,
    /// Number of independent traces to average over.
    pub seeds: u32,
    /// Simulated duration in seconds.
    pub duration_s: f64,
    /// Optional CSV output path.
    pub csv: Option<PathBuf>,
}

impl Default for BenchOpts {
    fn default() -> BenchOpts {
        BenchOpts { scale: 0.05, seeds: 1, duration_s: 3_600.0, csv: None }
    }
}

impl BenchOpts {
    /// Parses `std::env::args`; panics with a usage message on bad input.
    pub fn from_args() -> BenchOpts {
        let mut opts = BenchOpts::default();
        let mut args = std::env::args().skip(1);
        while let Some(flag) = args.next() {
            let mut value = || {
                args.next()
                    .unwrap_or_else(|| panic!("missing value for {flag}"))
            };
            match flag.as_str() {
                "--scale" => opts.scale = value().parse().expect("--scale expects a float"),
                "--seeds" => opts.seeds = value().parse().expect("--seeds expects an integer"),
                "--duration" => {
                    opts.duration_s = value().parse().expect("--duration expects seconds")
                }
                "--csv" => opts.csv = Some(PathBuf::from(value())),
                "--help" | "-h" => {
                    eprintln!("usage: [--scale F] [--seeds N] [--duration S] [--csv PATH]");
                    std::process::exit(0);
                }
                other => panic!("unknown flag {other}"),
            }
        }
        assert!(opts.scale > 0.0 && opts.scale <= 1.0, "--scale must be in (0, 1]");
        assert!(opts.seeds >= 1, "--seeds must be at least 1");
        opts
    }

    /// The base simulation config at this scale/duration, with trace seed
    /// `seed_index` (0-based).
    pub fn config(&self, seed_index: u32) -> SimulationConfig {
        let mut config = SimulationConfig::scaled(self.scale);
        config.duration_s = self.duration_s;
        config.fleet.seed ^= (seed_index as u64) << 32;
        config.workload.seed ^= (seed_index as u64) << 32;
        config
    }
}

/// A run averaged over the configured number of seeded traces. Every
/// individual run must pass the 100% accuracy check. The closure may
/// return either owned harnesses (e.g. re-gridded copies) or references to
/// prebuilt ones.
pub fn averaged_runs<H: std::borrow::Borrow<SimulationHarness>>(
    opts: &BenchOpts,
    kind: StrategyKind,
    harness_for_seed: impl Fn(u32) -> H,
) -> AveragedRun {
    let mut acc = AveragedRun::default();
    for seed in 0..opts.seeds {
        let harness = harness_for_seed(seed);
        let harness = harness.borrow();
        let report = harness.run(kind);
        report.assert_accurate();
        acc.add(&report, harness.total_samples());
    }
    acc.finalize(opts.seeds);
    acc
}

/// Metric averages across seeded traces.
#[derive(Debug, Clone, Default)]
pub struct AveragedRun {
    /// Mean uplink message count.
    pub uplink_messages: f64,
    /// Mean downlink megabits per second.
    pub downlink_mbps: f64,
    /// Mean client energy (mWh, default energy model, radio included).
    pub client_energy_mwh: f64,
    /// Mean containment-detection-only client energy (mWh) — the Figure
    /// 5(b)/6(c) measure.
    pub check_energy_mwh: f64,
    /// Mean server alarm-processing minutes (default cost model).
    pub alarm_minutes: f64,
    /// Mean server safe-region-computation minutes.
    pub region_minutes: f64,
    /// Mean total trace samples (for "% of samples sent" readouts).
    pub total_samples: f64,
    /// Mean triggers fired.
    pub triggers: f64,
}

impl AveragedRun {
    fn add(&mut self, report: &RunReport, total_samples: u64) {
        let energy = sa_sim::EnergyModel::default();
        let cost = sa_sim::ServerCostModel::default();
        let (alarm_min, region_min) = report.server_minutes(&cost);
        self.uplink_messages += report.metrics.uplink_messages as f64;
        self.downlink_mbps += report.downlink_mbps();
        self.client_energy_mwh += report.client_energy_mwh(&energy);
        self.check_energy_mwh += report.metrics.client_check_energy_mwh(&energy);
        self.alarm_minutes += alarm_min;
        self.region_minutes += region_min;
        self.total_samples += total_samples as f64;
        self.triggers += report.metrics.triggers as f64;
    }

    fn finalize(&mut self, seeds: u32) {
        let n = seeds as f64;
        self.uplink_messages /= n;
        self.downlink_mbps /= n;
        self.client_energy_mwh /= n;
        self.check_energy_mwh /= n;
        self.alarm_minutes /= n;
        self.region_minutes /= n;
        self.total_samples /= n;
        self.triggers /= n;
    }

    /// Total server minutes.
    pub fn total_minutes(&self) -> f64 {
        self.alarm_minutes + self.region_minutes
    }

    /// Uplink messages as a percentage of raw trace samples.
    pub fn message_percentage(&self) -> f64 {
        100.0 * self.uplink_messages / self.total_samples.max(1.0)
    }
}

/// Renders an aligned text table.
pub fn render_table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "=== {title} ===");
    let line = |cells: &[String], widths: &[usize]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    let _ = writeln!(out, "{}", line(&header_cells, &widths));
    let _ = writeln!(out, "{}", "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    for row in rows {
        let _ = writeln!(out, "{}", line(row, &widths));
    }
    out
}

/// Appends CSV rows (with a header when the file is new).
pub fn append_csv(path: &std::path::Path, header: &str, rows: &[String]) -> std::io::Result<()> {
    use std::io::Write as _;
    let new = !path.exists();
    let mut file = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
    if new {
        writeln!(file, "{header}")?;
    }
    for row in rows {
        writeln!(file, "{row}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_opts_are_laptop_sized() {
        let o = BenchOpts::default();
        assert!(o.scale <= 0.1);
        assert_eq!(o.seeds, 1);
        let c = o.config(0);
        c.validate();
    }

    #[test]
    fn seed_index_changes_trace_but_not_shape() {
        let o = BenchOpts::default();
        let a = o.config(0);
        let b = o.config(1);
        assert_ne!(a.fleet.seed, b.fleet.seed);
        assert_eq!(a.fleet.vehicles, b.fleet.vehicles);
        assert_eq!(a.workload.alarms, b.workload.alarms);
    }

    #[test]
    fn render_table_aligns_columns() {
        let s = render_table(
            "demo",
            &["name", "value"],
            &[vec!["a".into(), "1".into()], vec!["long-name".into(), "2".into()]],
        );
        assert!(s.contains("demo"));
        assert!(s.contains("long-name"));
        let lines: Vec<&str> = s.lines().collect();
        // Header and data lines align on the right edge.
        assert_eq!(lines[1].len(), lines[3].len());
    }
}
