//! Pins the determinism of the `scaling_curve` exponent pipeline: when
//! the per-run wall times come from a [`VirtualClock`] instead of a
//! real one, the whole chain — clock reads → throughput points →
//! [`fit_power_law`] — must produce **bit-identical** fits on every
//! run. This is what lets `sa-verify`-style harnesses assert on fitted
//! exponents without tolerances.

use sa_bench::fit_power_law;
use sa_server::{Clock, VirtualClock};
use std::time::Duration;

/// A miniature of the `scaling_curve` sweep: for each scale point,
/// "run" a replay whose duration is a deterministic function of scale
/// (modelling per-core throughput ∝ scale^-0.25), timed through the
/// virtual clock, and fit the resulting points.
fn fitted_exponent_bits(clock: &VirtualClock) -> (u64, u64, u64) {
    let scales = [0.05f64, 0.1, 0.2, 0.4, 0.8];
    let mut points = Vec::new();
    for &scale in &scales {
        let updates = (10_000.0 * scale) as u64;
        // Per-update cost grows with scale^0.25 → throughput exponent -0.25.
        let per_update_ns = (1_000.0 * scale.powf(0.25)) as u64;
        let started = clock.now_ns();
        clock.sleep(Duration::from_nanos(updates * per_update_ns));
        let wall_s = (clock.now_ns() - started) as f64 / 1e9;
        points.push((scale, updates as f64 / wall_s));
    }
    let fit = fit_power_law(&points).expect("five positive points must fit");
    (
        fit.exponent.to_bits(),
        fit.coefficient.to_bits(),
        fit.r_squared.to_bits(),
    )
}

#[test]
fn exponent_fit_is_bit_identical_under_virtual_clock() {
    let first = fitted_exponent_bits(&VirtualClock::new());
    for _ in 0..10 {
        assert_eq!(
            fitted_exponent_bits(&VirtualClock::new()),
            first,
            "the virtual-clock fit pipeline must be bit-deterministic"
        );
    }
    // And the fit itself lands where the synthetic cost model says.
    let exponent = f64::from_bits(first.0);
    assert!(
        (-0.27..=-0.23).contains(&exponent),
        "synthetic scale^-0.25 throughput fitted {exponent}"
    );
}

#[test]
fn virtual_clock_wall_times_do_not_depend_on_real_time() {
    // Interleave real-time delays between the two measurements; the
    // virtual clock must not see them.
    let clock = VirtualClock::new();
    let a = fitted_exponent_bits(&clock);
    std::thread::sleep(Duration::from_millis(20));
    let b = fitted_exponent_bits(&clock);
    assert_eq!(a, b);
}
