//! Criterion micro-benchmarks for the R*-tree alarm index: point queries
//! (the per-location-update trigger check) and range queries (the per-cell
//! alarm gathering for safe-region computation), at the paper's 10,000
//! alarm scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sa_alarms::{AlarmIndex, AlarmWorkload, SubscriberId, WorkloadConfig};
use sa_geometry::{Point, Rect};
use sa_index::RStarTree;
use std::hint::black_box;

fn paper_index() -> AlarmIndex {
    let workload = AlarmWorkload::generate(&WorkloadConfig::default());
    AlarmIndex::build(workload.alarms().to_vec())
}

fn bench_point_queries(c: &mut Criterion) {
    let index = paper_index();
    let mut rng = SmallRng::seed_from_u64(17);
    let points: Vec<Point> = (0..512)
        .map(|_| Point::new(rng.gen_range(0.0..31_623.0), rng.gen_range(0.0..31_623.0)))
        .collect();
    c.bench_function("rstar/point_query_10k_alarms", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % points.len();
            let (hits, _) = index.relevant_at(SubscriberId(42), black_box(points[i]));
            black_box(hits.len())
        })
    });
}

fn bench_range_queries(c: &mut Criterion) {
    let index = paper_index();
    let mut group = c.benchmark_group("rstar/range_query_10k_alarms");
    for cell_km2 in [0.4, 2.5, 10.0] {
        let side = (cell_km2 * 1.0e6f64).sqrt();
        let mut rng = SmallRng::seed_from_u64(23);
        let cells: Vec<Rect> = (0..256)
            .map(|_| {
                let x = rng.gen_range(0.0..31_623.0 - side);
                let y = rng.gen_range(0.0..31_623.0 - side);
                Rect::new(x, y, x + side, y + side).unwrap()
            })
            .collect();
        group.bench_with_input(
            BenchmarkId::new("cell_km2", format!("{cell_km2}")),
            &cells,
            |b, cells| {
                let mut i = 0usize;
                b.iter(|| {
                    i = (i + 1) % cells.len();
                    let hits = index.relevant_intersecting(SubscriberId(42), black_box(cells[i]));
                    black_box(hits.len())
                })
            },
        );
    }
    group.finish();
}

fn bench_insert_remove(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(31);
    let rects: Vec<Rect> = (0..10_000)
        .map(|_| {
            let x = rng.gen_range(0.0..31_000.0);
            let y = rng.gen_range(0.0..31_000.0);
            Rect::new(x, y, x + rng.gen_range(50.0..500.0), y + rng.gen_range(50.0..500.0))
                .unwrap()
        })
        .collect();
    c.bench_function("rstar/build_10k", |b| {
        b.iter(|| {
            let mut tree: RStarTree<usize> = RStarTree::new();
            for (i, r) in rects.iter().enumerate() {
                tree.insert(*r, i);
            }
            black_box(tree.len())
        })
    });
}

criterion_group!(benches, bench_point_queries, bench_range_queries, bench_insert_remove);
criterion_main!(benches);
