//! Criterion micro-benchmarks for the *client-side* containment detection
//! cost per safe-region representation — the quantity the paper's energy
//! model is built on (§2.1 "Fast Containment Check"): a rectangle costs 4
//! comparisons, a pyramid bitmap at most one indexed probe per level.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sa_core::{MwpsrComputer, PyramidComputer, PyramidConfig, RectSafeRegion, SafeRegion};
use sa_geometry::{Point, Rect};
use std::hint::black_box;

fn obstacles(n: usize, seed: u64) -> Vec<Rect> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let x = rng.gen_range(0.0..1_400.0);
            let y = rng.gen_range(0.0..1_400.0);
            let w = rng.gen_range(40.0..240.0);
            let h = rng.gen_range(40.0..240.0);
            Rect::new(x, y, (x + w).min(1_581.0), (y + h).min(1_581.0)).unwrap()
        })
        .collect()
}

fn probe_points(seed: u64) -> Vec<Point> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..256)
        .map(|_| Point::new(rng.gen_range(0.0..1_581.0), rng.gen_range(0.0..1_581.0)))
        .collect()
}

fn bench_rect_containment(c: &mut Criterion) {
    let cell = Rect::new(0.0, 0.0, 1_581.0, 1_581.0).unwrap();
    let obs = obstacles(24, 3);
    let region: RectSafeRegion =
        MwpsrComputer::non_weighted().compute(Point::new(700.0, 700.0), 0.0, cell, &obs);
    let points = probe_points(5);
    c.bench_function("containment/rect", |b| {
        b.iter(|| {
            let mut inside = 0usize;
            for p in &points {
                if region.contains(black_box(*p)) {
                    inside += 1;
                }
            }
            black_box(inside)
        })
    });
}

fn bench_bitmap_containment(c: &mut Criterion) {
    let cell = Rect::new(0.0, 0.0, 1_581.0, 1_581.0).unwrap();
    let obs = obstacles(24, 3);
    let points = probe_points(5);

    let mut group = c.benchmark_group("containment/bitmap");
    for h in [1u32, 3, 5, 7] {
        let region = PyramidComputer::new(PyramidConfig::three_by_three(h)).compute(cell, &obs);
        group.bench_with_input(BenchmarkId::new("height", h), &region, |b, region| {
            b.iter(|| {
                let mut inside = 0usize;
                for p in &points {
                    if region.contains(black_box(*p)) {
                        inside += 1;
                    }
                }
                black_box(inside)
            })
        });
    }
    group.finish();
}

fn bench_opt_client_evaluation(c: &mut Criterion) {
    // The OPT client's per-fix work: test every alarm in the cell.
    let points = probe_points(9);
    let mut group = c.benchmark_group("containment/opt_alarm_set");
    for n in [4usize, 16, 64] {
        let obs = obstacles(n, 11);
        group.bench_with_input(BenchmarkId::new("alarms", n), &obs, |b, obs| {
            b.iter(|| {
                let mut hits = 0usize;
                for p in &points {
                    for r in obs {
                        if r.contains_point_strict(black_box(*p)) {
                            hits += 1;
                        }
                    }
                }
                black_box(hits)
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_rect_containment,
    bench_bitmap_containment,
    bench_opt_client_evaluation
);
criterion_main!(benches);
