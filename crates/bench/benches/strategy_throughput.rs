//! Criterion benchmark for end-to-end strategy throughput: how many
//! location samples per second each processing strategy sustains on a
//! small shared world. This is the simulator-level analogue of the
//! server-scalability argument of §5 — periodic processing pays an index
//! probe per sample, safe-region strategies amortize almost everything
//! into client-local checks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sa_sim::{SimulationConfig, SimulationHarness, StrategyKind};
use std::hint::black_box;

fn bench_strategies(c: &mut Criterion) {
    // A small world: 12 vehicles x 240 s = 2,880 samples per run.
    let config = SimulationConfig::smoke_test();
    let harness = SimulationHarness::build(&config);
    let samples = harness.total_samples();

    let mut group = c.benchmark_group("strategy_throughput");
    group.throughput(Throughput::Elements(samples));
    group.sample_size(10);
    for (name, kind) in [
        ("PRD", StrategyKind::Periodic),
        ("SP", StrategyKind::SafePeriod),
        ("MWPSR", StrategyKind::Mwpsr { y: 1.0, z: 32 }),
        ("PBSR_h5", StrategyKind::Pbsr { height: 5 }),
        ("OPT", StrategyKind::Optimal),
    ] {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                let report = harness.run(kind);
                black_box(report.metrics.uplink_messages)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_strategies);
criterion_main!(benches);
