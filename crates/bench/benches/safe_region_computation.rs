//! Criterion micro-benchmarks for server-side safe-region computation:
//! MWPSR (rectangular, §3) and PBSR (pyramid bitmap, §4) as functions of
//! the number of alarm regions intersecting the grid cell and the pyramid
//! height. These measure the real wall-clock cost that the simulation's
//! operation-count model abstracts (see `DESIGN.md` §4).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sa_core::{MwpsrComputer, PyramidComputer, PyramidConfig};
use sa_geometry::{MotionPdf, Point, Rect};
use std::hint::black_box;

fn obstacles(n: usize, seed: u64) -> Vec<Rect> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let x = rng.gen_range(0.0..1_400.0);
            let y = rng.gen_range(0.0..1_400.0);
            let w = rng.gen_range(40.0..240.0);
            let h = rng.gen_range(40.0..240.0);
            Rect::new(x, y, (x + w).min(1_581.0), (y + h).min(1_581.0)).unwrap()
        })
        .collect()
}

fn bench_mwpsr(c: &mut Criterion) {
    let cell = Rect::new(0.0, 0.0, 1_581.0, 1_581.0).unwrap();
    let user = Point::new(790.0, 820.0);
    let weighted = MwpsrComputer::new(MotionPdf::new(1.0, 32).unwrap());
    let plain = MwpsrComputer::non_weighted();

    let mut group = c.benchmark_group("mwpsr_compute");
    for n in [4usize, 16, 64, 256] {
        let obs = obstacles(n, 42);
        group.bench_with_input(BenchmarkId::new("weighted_z32", n), &obs, |b, obs| {
            b.iter(|| black_box(weighted.compute(user, 0.3, cell, obs)))
        });
        group.bench_with_input(BenchmarkId::new("non_weighted", n), &obs, |b, obs| {
            b.iter(|| black_box(plain.compute(user, 0.3, cell, obs)))
        });
    }
    group.finish();
}

fn bench_pbsr(c: &mut Criterion) {
    let cell = Rect::new(0.0, 0.0, 1_581.0, 1_581.0).unwrap();
    let obs = obstacles(24, 7);

    let mut group = c.benchmark_group("pbsr_compute");
    for h in [1u32, 3, 5, 7] {
        let computer = PyramidComputer::new(PyramidConfig::three_by_three(h));
        group.bench_with_input(BenchmarkId::new("height", h), &obs, |b, obs| {
            b.iter(|| black_box(computer.compute(cell, obs)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mwpsr, bench_pbsr);
criterion_main!(benches);
