//! Property-based end-to-end tests: for randomized small worlds (random
//! seeds, alarm densities, region sizes, grid cells, sampling rates), every
//! processing strategy must fire the exact ground-truth alarm sequence.
//! This is the strongest claim the system makes, exercised over a much
//! wider configuration space than the deterministic smoke tests.

use proptest::prelude::*;
use sa_geometry::Rect;
use sa_roadnet::{FleetConfig, NetworkConfig};
use sa_sim::{SimulationConfig, SimulationHarness, StrategyKind};

fn arb_config() -> impl Strategy<Value = SimulationConfig> {
    (
        0u64..10_000,          // world seed
        20usize..120,          // alarms
        0.05..0.35f64,         // public fraction
        40.0..300.0f64,        // min region half extent
        0.3..2.0f64,           // cell area km²
        1u32..3,               // sample period (1 or 2 s)
        0usize..4,             // moving alarms
    )
        .prop_map(|(seed, alarms, public, min_extent, cell, period, moving)| {
            let network = NetworkConfig { seed: seed ^ 0xAB, ..NetworkConfig::small_test() };
            let universe = Rect::new(0.0, 0.0, network.universe_side_m, network.universe_side_m)
                .expect("universe is valid");
            let mut config = SimulationConfig::smoke_test();
            config.network = network;
            config.fleet = FleetConfig { vehicles: 8, seed: seed ^ 0xCD, ..FleetConfig::default() };
            config.workload.alarms = alarms;
            config.workload.subscribers = 8;
            config.workload.universe = universe;
            config.workload.public_fraction = public;
            config.workload.region_half_extent_m = (min_extent, min_extent + 150.0);
            config.workload.seed = seed ^ 0xEF;
            config.cell_area_km2 = cell;
            config.sample_period_s = period as f64;
            config.duration_s = 180.0;
            config.moving_alarms = moving;
            config
        })
}

proptest! {
    // Each case builds a world and runs several strategies; keep the case
    // count modest.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn every_strategy_is_accurate_on_random_worlds(config in arb_config()) {
        let harness = SimulationHarness::build(&config);
        for kind in [
            StrategyKind::Periodic,
            StrategyKind::SafePeriod,
            StrategyKind::Mwpsr { y: 1.0, z: 16 },
            StrategyKind::MwpsrNonWeighted,
            StrategyKind::Pbsr { height: 2 },
            StrategyKind::Pbsr { height: 5 },
            StrategyKind::PbsrBroadcast { height: 4 },
            StrategyKind::Optimal,
        ] {
            let report = harness.run(kind);
            prop_assert!(
                report.accuracy_ok,
                "{} inaccurate on seed world: {}",
                kind.label(),
                report.accuracy_error.unwrap_or_default()
            );
        }
    }

    #[test]
    fn safe_regions_always_beat_periodic_on_messages(config in arb_config()) {
        // Static-only comparison: the moving-target coordinator adds its
        // own reports uniformly on top of every strategy.
        let mut config = config;
        config.moving_alarms = 0;
        let harness = SimulationHarness::build(&config);
        let prd = harness.run(StrategyKind::Periodic);
        let mwpsr = harness.run(StrategyKind::Mwpsr { y: 1.0, z: 16 });
        prop_assert!(prd.accuracy_ok && mwpsr.accuracy_ok);
        prop_assert_eq!(prd.metrics.uplink_messages, harness.total_samples());
        prop_assert!(
            mwpsr.metrics.uplink_messages <= prd.metrics.uplink_messages,
            "MWPSR {} > PRD {}", mwpsr.metrics.uplink_messages, prd.metrics.uplink_messages
        );
    }
}
