//! Distributed spatial-alarm processing simulation (paper §5).
//!
//! This crate wires the substrates together into the paper's evaluation
//! harness: vehicles move on the road network, alarms sit in the server's
//! R*-tree, and a *processing strategy* decides who evaluates what, when,
//! and at what cost. Five strategies are implemented:
//!
//! | Strategy | Paper name | Where alarms are evaluated |
//! |----------|-----------|----------------------------|
//! | [`StrategyKind::Periodic`] | PRD | server, on every location sample |
//! | [`StrategyKind::SafePeriod`] | SP | server, after adaptive silent periods |
//! | [`StrategyKind::Mwpsr`] | MWPSR | client monitors a rectangular safe region |
//! | [`StrategyKind::Pbsr`] | GBSR / PBSR | client monitors a bitmap safe region |
//! | [`StrategyKind::Optimal`] | OPT | client holds every relevant alarm in its cell |
//!
//! A [`SimulationHarness`] builds the shared world (network, alarm index,
//! grid, ground truth) once, then [`SimulationHarness::run`] executes a
//! strategy over the identical trace and returns a [`RunReport`] with the
//! evaluation's four metric families: client-to-server messages, downstream
//! bandwidth, client energy and server processing time. Every run is
//! checked against the ground-truth alarm sequence — the paper's "100% of
//! the alarms are triggered in all scenarios" requirement is an assertion,
//! not an aspiration.
//!
//! Runs shard the fleet across threads (vehicle state is seeded per vehicle
//! id, so sharding cannot change the trace).
//!
//! # Example
//!
//! ```
//! use sa_sim::{SimulationConfig, SimulationHarness, StrategyKind};
//!
//! let config = SimulationConfig::smoke_test();
//! let harness = SimulationHarness::build(&config);
//! let report = harness.run(StrategyKind::Mwpsr { y: 1.0, z: 32 });
//! assert!(report.accuracy_ok);
//! assert!(report.metrics.uplink_messages < harness.total_samples());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod energy;
mod engine;
mod ground_truth;
mod message;
mod metrics;
pub mod moving;
mod server;
mod servercost;
pub mod strategy;

pub use config::SimulationConfig;
pub use energy::EnergyModel;
pub use engine::{RunReport, SimulationHarness};
pub use ground_truth::{FiredEvent, GroundTruth};
pub use message::payload;
pub use moving::{MovingAlarmTable, MovingAwareStrategy, MovingCoordinator};
pub use metrics::{Metrics, ServerOps};
pub use server::ServerCtx;
pub use servercost::ServerCostModel;
pub use strategy::StrategyKind;
