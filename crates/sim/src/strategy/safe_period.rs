use crate::message::payload;
use crate::strategy::Strategy;
use crate::ServerCtx;
use sa_alarms::SubscriberId;
use sa_roadnet::TraceSample;
use std::collections::HashMap;

/// SP — safe-period processing (Bamba et al., HiPC'08 \[3\]): on each
/// contact, the server computes how long the client could not possibly
/// reach any relevant unfired alarm region under pessimistic motion
/// assumptions (straight-line travel at the system-wide maximum speed),
/// and the client stays silent for that long.
///
/// The pessimism is what the paper's §5 blames for SP's 2–3× higher message
/// volume compared to safe regions: real clients rarely drive straight at
/// `v_max` toward the nearest alarm, so the granted periods are short.
#[derive(Debug, Default)]
pub struct SafePeriodStrategy {
    /// Per-subscriber step before which the client stays silent.
    silent_until: HashMap<SubscriberId, u32>,
}

impl SafePeriodStrategy {
    /// Creates the strategy.
    pub fn new() -> SafePeriodStrategy {
        SafePeriodStrategy::default()
    }
}

impl Strategy for SafePeriodStrategy {
    fn on_sample(&mut self, step: u32, sample: &TraceSample, server: &mut ServerCtx<'_>) {
        server.metrics.samples += 1;
        let user = SubscriberId(sample.vehicle.0);
        if let Some(&until) = self.silent_until.get(&user) {
            if step < until {
                return;
            }
        }
        // Safe period expired: report, let the server evaluate and grant a
        // new period.
        server.metrics.uplink_messages += 1;
        server.check_triggers(step, user, sample.pos);
        let period_s = server.compute_safe_period(user, sample.pos);
        // Silence for floor(period / dt) samples (≥ 1): rounding *up* could
        // let the client slip inside an alarm region before its next report.
        let silent_steps = (period_s.max(0.0) / server.sample_period_s()).floor() as u32;
        self.silent_until.insert(user, step + silent_steps.max(1));
        server.send_downlink(payload::SAFE_PERIOD_BITS);
    }

    fn name(&self) -> &'static str {
        "SP"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_alarms::{AlarmId, AlarmIndex, AlarmScope, SpatialAlarm};
    use sa_geometry::{Grid, Point, Rect};
    use sa_roadnet::VehicleId;

    fn world() -> (AlarmIndex, Grid) {
        let universe = Rect::new(0.0, 0.0, 10_000.0, 10_000.0).unwrap();
        let index = AlarmIndex::build(vec![SpatialAlarm::around_static_target(
            AlarmId(0),
            Point::new(9_000.0, 9_000.0),
            100.0,
            AlarmScope::Public { owner: SubscriberId(0) },
        )
        .unwrap()]);
        let grid = Grid::new(universe, 1_000.0).unwrap();
        (index, grid)
    }

    fn sample_at(step: u32, x: f64, y: f64) -> TraceSample {
        TraceSample {
            time: step as f64,
            vehicle: VehicleId(0),
            pos: Point::new(x, y),
            heading: 0.0,
            speed: 10.0,
        }
    }

    #[test]
    fn far_client_is_granted_long_silence() {
        let (index, grid) = world();
        let mut server = ServerCtx::new(&index, &grid, 30.0, 1.0);
        let mut strategy = SafePeriodStrategy::new();
        // A client parked far from the only alarm reports once, then stays
        // silent for a long stretch.
        for step in 0..200u32 {
            strategy.on_sample(step, &sample_at(step, 100.0, 100.0), &mut server);
        }
        assert_eq!(server.metrics.uplink_messages, 1, "one report suffices");
        assert_eq!(server.metrics.samples, 200);
    }

    #[test]
    fn client_near_alarm_reports_frequently() {
        let (index, grid) = world();
        let mut server = ServerCtx::new(&index, &grid, 30.0, 1.0);
        let mut strategy = SafePeriodStrategy::new();
        // 150 m from the region edge at v_max 30 → periods of ~5 samples.
        for step in 0..50u32 {
            strategy.on_sample(step, &sample_at(step, 8_750.0, 9_000.0), &mut server);
        }
        let msgs = server.metrics.uplink_messages;
        assert!((5..=15).contains(&msgs), "messages {msgs}");
    }

    #[test]
    fn entering_the_region_fires_exactly_once() {
        let (index, grid) = world();
        let mut server = ServerCtx::new(&index, &grid, 30.0, 1.0);
        let mut strategy = SafePeriodStrategy::new();
        // Drive straight into the alarm region at 25 m/s (within v_max).
        for step in 0..120u32 {
            let x = 6_500.0 + step as f64 * 25.0;
            strategy.on_sample(step, &sample_at(step, x, 9_000.0), &mut server);
        }
        assert_eq!(server.metrics.triggers, 1);
        // The firing step matches first strict entry: x > 8900 → step 97.
        assert_eq!(server.fired_events()[0].step, 97);
    }
}
