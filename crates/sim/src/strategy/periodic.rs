use crate::message::payload;
use crate::strategy::Strategy;
use crate::ServerCtx;
use sa_alarms::SubscriberId;
use sa_roadnet::TraceSample;

/// PRD — periodic evaluation, the naive server-centric baseline: every
/// client transmits every location sample, and the server evaluates each
/// one against the alarm index. Simple, accurate, and responsible for the
/// ~60 million messages per trace the paper reports.
#[derive(Debug, Default)]
pub struct PeriodicStrategy {
    _private: (),
}

impl PeriodicStrategy {
    /// Creates the strategy.
    pub fn new() -> PeriodicStrategy {
        PeriodicStrategy::default()
    }
}

impl Strategy for PeriodicStrategy {
    fn on_sample(&mut self, step: u32, sample: &TraceSample, server: &mut ServerCtx<'_>) {
        server.metrics.samples += 1;
        server.metrics.uplink_messages += 1;
        let _ = payload::LOCATION_UPDATE_BITS; // uplink is counted, not weighed
        server.check_triggers(step, SubscriberId(sample.vehicle.0), sample.pos);
    }

    fn name(&self) -> &'static str {
        "PRD"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_alarms::{AlarmId, AlarmIndex, AlarmScope, SpatialAlarm};
    use sa_geometry::{Grid, Point, Rect};
    use sa_roadnet::VehicleId;

    #[test]
    fn every_sample_becomes_a_message() {
        let universe = Rect::new(0.0, 0.0, 1_000.0, 1_000.0).unwrap();
        let index = AlarmIndex::build(vec![SpatialAlarm::around_static_target(
            AlarmId(0),
            Point::new(500.0, 500.0),
            100.0,
            AlarmScope::Public { owner: SubscriberId(0) },
        )
        .unwrap()]);
        let grid = Grid::new(universe, 500.0).unwrap();
        let mut server = ServerCtx::new(&index, &grid, 30.0, 1.0);
        let mut strategy = PeriodicStrategy::new();
        for step in 0..10u32 {
            let sample = TraceSample {
                time: step as f64,
                vehicle: VehicleId(0),
                pos: Point::new(100.0 + step as f64 * 50.0, 500.0),
                heading: 0.0,
                speed: 50.0,
            };
            strategy.on_sample(step, &sample, &mut server);
        }
        assert_eq!(server.metrics.uplink_messages, 10);
        assert_eq!(server.metrics.samples, 10);
        // The vehicle crossed the alarm region: exactly one firing.
        assert_eq!(server.metrics.triggers, 1);
    }
}
