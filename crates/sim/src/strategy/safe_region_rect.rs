use crate::message::payload;
use crate::strategy::Strategy;
use crate::ServerCtx;
use sa_alarms::SubscriberId;
use sa_core::{MwpsrComputer, RectSafeRegion, SafeRegion};
use sa_roadnet::TraceSample;
use std::collections::HashMap;

/// MWPSR — the distributed rectangular safe-region strategy (§3).
///
/// The client checks each GPS fix against its current rectangle (4
/// comparisons). While inside, *nothing* happens anywhere in the system.
/// On exit, it uplinks one location update; the server evaluates triggers,
/// computes a fresh maximum weighted perimeter rectangle scoped to the
/// client's grid cell, and downlinks it (128-bit payload).
#[derive(Debug)]
pub struct RectStrategy {
    computer: MwpsrComputer,
    /// Use the broken Hu–Xu–Lee \[10\] computation (ablation only: this
    /// variant *misses alarms* under overlapping / axis-straddling
    /// regions, exactly as §5 claims).
    legacy: bool,
    regions: HashMap<SubscriberId, RectSafeRegion>,
}

impl RectStrategy {
    /// Creates the strategy around a configured MWPSR computer.
    pub fn new(computer: MwpsrComputer) -> RectStrategy {
        RectStrategy { computer, legacy: false, regions: HashMap::new() }
    }

    /// The Hu–Xu–Lee \[10\] ablation variant. Accuracy checks are expected to
    /// fail for it — that failure *is* the result.
    pub fn new_legacy_hu_xu_lee(computer: MwpsrComputer) -> RectStrategy {
        RectStrategy { computer, legacy: true, regions: HashMap::new() }
    }
}

impl Strategy for RectStrategy {
    fn on_sample(&mut self, step: u32, sample: &TraceSample, server: &mut ServerCtx<'_>) {
        server.metrics.samples += 1;
        let user = SubscriberId(sample.vehicle.0);

        // Client-side containment detection.
        if let Some(region) = self.regions.get(&user) {
            server.metrics.client_checks += 1;
            server.metrics.client_check_ops += region.worst_case_check_ops() as u64;
            if region.contains(sample.pos) {
                return;
            }
        }

        // Outside the safe region (or no region yet): contact the server.
        server.metrics.uplink_messages += 1;
        server.check_triggers(step, user, sample.pos);

        let grid = server.grid();
        let cell = grid.cell_rect(grid.cell_of(sample.pos));
        let obstacles = server.unfired_obstacles_in(user, cell);
        // Charge the skyline construction: candidates in four quadrants
        // plus sorting (≈ n log n) plus the greedy pass.
        let n = obstacles.len() as u64;
        server.metrics.server.region_compute_ops +=
            4 * n + n * (64 - n.leading_zeros() as u64).max(1) + 8;
        server.metrics.server.region_computations += 1;

        let region = if self.legacy {
            self.computer.compute_hu_xu_lee(sample.pos, sample.heading, cell, &obstacles)
        } else {
            self.computer.compute(sample.pos, sample.heading, cell, &obstacles)
        };
        server.send_downlink(payload::REGION_HEADER_BITS + region.encoded_bits());
        self.regions.insert(user, region);
    }

    fn name(&self) -> &'static str {
        "MWPSR"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_alarms::{AlarmId, AlarmIndex, AlarmScope, SpatialAlarm};
    use sa_geometry::{Grid, MotionPdf, Point, Rect};
    use sa_roadnet::VehicleId;

    fn world() -> (AlarmIndex, Grid) {
        let universe = Rect::new(0.0, 0.0, 10_000.0, 10_000.0).unwrap();
        let index = AlarmIndex::build(vec![
            SpatialAlarm::around_static_target(
                AlarmId(0),
                Point::new(5_000.0, 500.0),
                200.0,
                AlarmScope::Public { owner: SubscriberId(0) },
            )
            .unwrap(),
            SpatialAlarm::around_static_target(
                AlarmId(1),
                Point::new(2_000.0, 4_000.0),
                300.0,
                AlarmScope::Public { owner: SubscriberId(0) },
            )
            .unwrap(),
        ]);
        let grid = Grid::new(universe, 2_000.0).unwrap();
        (index, grid)
    }

    fn drive(strategy: &mut RectStrategy, server: &mut ServerCtx<'_>, path: impl Iterator<Item = (f64, f64)>) {
        for (step, (x, y)) in path.enumerate() {
            let sample = TraceSample {
                time: step as f64,
                vehicle: VehicleId(0),
                pos: Point::new(x, y),
                heading: 0.0,
                speed: 15.0,
            };
            strategy.on_sample(step as u32, &sample, server);
        }
    }

    #[test]
    fn silent_while_inside_safe_region() {
        let (index, grid) = world();
        let mut server = ServerCtx::new(&index, &grid, 30.0, 1.0);
        let mut strategy = RectStrategy::new(MwpsrComputer::non_weighted());
        // Loiter far from both alarms inside one grid cell.
        drive(&mut strategy, &mut server, (0..100).map(|i| (8_500.0 + (i % 10) as f64, 8_500.0)));
        assert_eq!(server.metrics.uplink_messages, 1, "only the initial contact");
        assert_eq!(server.metrics.triggers, 0);
        // The client checked its position locally every sample after setup.
        assert_eq!(server.metrics.client_checks, 99);
    }

    #[test]
    fn crossing_an_alarm_region_fires_at_the_right_step() {
        let (index, grid) = world();
        let mut server = ServerCtx::new(&index, &grid, 30.0, 1.0);
        let mut strategy = RectStrategy::new(MwpsrComputer::new(MotionPdf::new(1.0, 32).unwrap()));
        // Drive east along y=500 through alarm 0 ([4800, 5200] x [300, 700]).
        drive(&mut strategy, &mut server, (0..200).map(|i| (3_000.0 + i as f64 * 15.0, 500.0)));
        assert_eq!(server.metrics.triggers, 1);
        // First strict entry: x > 4800 → i = 121 (x = 4815).
        assert_eq!(server.fired_events()[0].step, 121);
        // Far fewer messages than samples.
        assert!(server.metrics.uplink_messages < 40, "messages {}", server.metrics.uplink_messages);
    }

    #[test]
    fn region_renewal_happens_on_cell_exit() {
        let (index, grid) = world();
        let mut server = ServerCtx::new(&index, &grid, 30.0, 1.0);
        let mut strategy = RectStrategy::new(MwpsrComputer::non_weighted());
        // Cross several alarm-free cells: each crossing costs one message.
        drive(&mut strategy, &mut server, (0..100).map(|i| (500.0 + i as f64 * 90.0, 8_500.0)));
        // 500 → 9410 m crosses cells at 2000, 4000, 6000, 8000.
        assert_eq!(server.metrics.uplink_messages, 5);
        assert_eq!(server.metrics.downlink_messages, 5);
        assert_eq!(server.metrics.triggers, 0);
    }
}
