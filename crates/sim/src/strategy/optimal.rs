use crate::message::payload;
use crate::strategy::Strategy;
use crate::ServerCtx;
use sa_alarms::{AlarmId, SubscriberId};
use sa_geometry::{CellId, Rect};
use sa_roadnet::TraceSample;
use std::collections::HashMap;

/// Pushed alarm-set entry: `(alarm, region, relevant)`.
type PushedAlarm = (AlarmId, Rect, bool);

/// OPT — the optimal baseline described at the start of §4: the server
/// pushes the grid cell and every alarm overlapping it, giving the client
/// "the complete knowledge of all alarms in its vicinity".
///
/// The client evaluates every pushed alarm on every GPS fix (expensive —
/// Figure 6(c)) and contacts the server only to notify a trigger or to
/// fetch the alarm set of a newly entered cell, so it transmits the fewest
/// messages (Figure 6(a)) at the price of the largest downlink payloads
/// (Figure 6(b)) and heavy load on weak clients in alarm-dense areas.
/// Irrelevant alarms (other users' private alarms) are spatially tested
/// like any other but never fire for this subscriber.
#[derive(Debug, Default)]
pub struct OptimalStrategy {
    /// Per subscriber: current cell and pushed `(alarm, region, relevant)`
    /// entries.
    sets: HashMap<SubscriberId, (CellId, Vec<PushedAlarm>)>,
}

impl OptimalStrategy {
    /// Creates the strategy.
    pub fn new() -> OptimalStrategy {
        OptimalStrategy::default()
    }
}

impl Strategy for OptimalStrategy {
    fn on_sample(&mut self, step: u32, sample: &TraceSample, server: &mut ServerCtx<'_>) {
        server.metrics.samples += 1;
        let user = SubscriberId(sample.vehicle.0);
        let cell_now = server.grid().cell_of(sample.pos);

        let known = self.sets.get(&user).map(|(cell, _)| *cell);
        if known != Some(cell_now) {
            // Cell transition: the server evaluates this sample and pushes
            // the new cell's relevant unfired alarms.
            server.metrics.uplink_messages += 1;
            server.check_triggers(step, user, sample.pos);
            let rect = server.grid().cell_rect(cell_now);
            let set = server.all_unfired_alarm_set_in(user, rect);
            server.metrics.server.region_computations += 1;
            server.send_downlink(payload::REGION_HEADER_BITS + set.len() * payload::ALARM_PUSH_BITS);
            self.sets.insert(user, (cell_now, set));
            return;
        }

        // Client-side evaluation of the full pushed alarm set.
        let (_, set) = self.sets.get_mut(&user).expect("set exists for known cell");
        server.metrics.client_checks += 1;
        server.metrics.client_check_ops += 4 * set.len() as u64;
        let mut fired: Vec<AlarmId> = Vec::new();
        set.retain(|(id, region, relevant)| {
            if region.contains_point_strict(sample.pos) {
                if *relevant {
                    fired.push(*id);
                }
                // Spatially satisfied alarms leave the working set either
                // way: relevant ones fired, irrelevant ones can never fire
                // for this subscriber.
                false
            } else {
                true
            }
        });
        for id in fired {
            // Trigger notification to the server.
            server.metrics.uplink_messages += 1;
            let _ = payload::TRIGGER_NOTIFY_BITS;
            server.record_client_fire(step, user, id);
        }
    }

    fn name(&self) -> &'static str {
        "OPT"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_alarms::{AlarmIndex, AlarmScope, SpatialAlarm};
    use sa_geometry::{Grid, Point};
    use sa_roadnet::VehicleId;

    fn world() -> (AlarmIndex, Grid) {
        let universe = Rect::new(0.0, 0.0, 8_000.0, 8_000.0).unwrap();
        let index = AlarmIndex::build(vec![
            SpatialAlarm::around_static_target(
                AlarmId(0),
                Point::new(1_000.0, 1_000.0),
                300.0,
                AlarmScope::Public { owner: SubscriberId(0) },
            )
            .unwrap(),
            SpatialAlarm::around_static_target(
                AlarmId(1),
                Point::new(1_400.0, 1_000.0),
                250.0,
                AlarmScope::Public { owner: SubscriberId(0) },
            )
            .unwrap(),
        ]);
        let grid = Grid::new(universe, 2_000.0).unwrap();
        (index, grid)
    }

    fn drive(server: &mut ServerCtx<'_>, path: impl Iterator<Item = (f64, f64)>) {
        let mut strategy = OptimalStrategy::new();
        for (step, (x, y)) in path.enumerate() {
            let sample = TraceSample {
                time: step as f64,
                vehicle: VehicleId(0),
                pos: Point::new(x, y),
                heading: 0.0,
                speed: 15.0,
            };
            strategy.on_sample(step as u32, &sample, server);
        }
    }

    #[test]
    fn messages_only_on_cell_changes_and_triggers() {
        let (index, grid) = world();
        let mut server = ServerCtx::new(&index, &grid, 30.0, 1.0);
        // Drive through both alarms within one cell, then into the next cell.
        drive(&mut server, (0..220).map(|i| (200.0 + i as f64 * 10.0, 1_000.0)));
        // Uplink: initial fetch + 2 trigger notifications + 1 cell change at
        // x = 2000 (then none until x = 2400 end... path ends at 2390).
        assert_eq!(server.metrics.triggers, 2);
        assert_eq!(server.metrics.uplink_messages, 4);
        // Two downlink alarm-set pushes + 2 trigger deliveries.
        assert_eq!(server.metrics.downlink_messages, 4);
    }

    #[test]
    fn firing_steps_match_strict_entry() {
        let (index, grid) = world();
        let mut server = ServerCtx::new(&index, &grid, 30.0, 1.0);
        drive(&mut server, (0..220).map(|i| (200.0 + i as f64 * 10.0, 1_000.0)));
        let mut events = server.fired_events().to_vec();
        events.sort_unstable();
        // Alarm 0 region x > 700 → step 51 (x = 710); alarm 1 region
        // x > 1150 → step 96 (x = 1160).
        assert_eq!(events[0].alarm, AlarmId(0));
        assert_eq!(events[0].step, 51);
        assert_eq!(events[1].alarm, AlarmId(1));
        assert_eq!(events[1].step, 96);
    }

    #[test]
    fn client_ops_scale_with_alarm_set_size() {
        let (index, grid) = world();
        let mut dense = ServerCtx::new(&index, &grid, 30.0, 1.0);
        // Stay in the alarm-dense cell.
        drive(&mut dense, (0..100).map(|i| (300.0, 300.0 + (i % 7) as f64)));
        let empty_index = AlarmIndex::build(vec![]);
        let mut sparse = ServerCtx::new(&empty_index, &grid, 30.0, 1.0);
        drive(&mut sparse, (0..100).map(|i| (300.0, 300.0 + (i % 7) as f64)));
        assert!(dense.metrics.client_check_ops > sparse.metrics.client_check_ops);
    }
}
