use crate::message::payload;
use crate::strategy::Strategy;
use crate::ServerCtx;
use sa_alarms::SubscriberId;
use sa_core::{BitmapSafeRegion, PyramidComputer, SafeRegion};
use sa_geometry::CellId;
use sa_roadnet::TraceSample;
use std::collections::HashMap;

/// GBSR / PBSR — the distributed bitmap safe-region strategy (§4).
///
/// The client holds a pyramid bitmap of its base grid cell and checks each
/// GPS fix with a bounded descent (≤ `h` levels). Following §4.2:
///
/// - inside a safe (1) cell: fully silent;
/// - inside the base cell but in a blocked (0) cell: the client reports
///   each sample so the server can evaluate triggers, but **no safe-region
///   recomputation or retransmission happens** unless an alarm actually
///   fires (then the fired region joins the safe region — the "quick
///   update");
/// - outside the base cell: full recomputation for the new cell.
///
/// Two downlink accounting modes:
///
/// - **unicast** ([`BitmapStrategy::new`]): every recomputation ships the
///   full per-user bitmap,
/// - **broadcast** ([`BitmapStrategy::new_broadcast`]): the paper's §4.2
///   optimization — per-cell *public-alarm* bitmaps are precomputed and
///   broadcast once per epoch (charged by the engine), so each recompute
///   unicasts only the user's personal (private/shared) overlay bitmap and
///   each quick update ships a 128-bit patch. Client-side monitoring is
///   identical: the conjunction of the public and personal bitmaps equals
///   the combined bitmap.
#[derive(Debug)]
pub struct BitmapStrategy {
    computer: PyramidComputer,
    broadcast_public: bool,
    regions: HashMap<SubscriberId, (CellId, BitmapSafeRegion)>,
}

impl BitmapStrategy {
    /// Per-user unicast accounting (full bitmap per recompute).
    pub fn new(computer: PyramidComputer) -> BitmapStrategy {
        BitmapStrategy { computer, broadcast_public: false, regions: HashMap::new() }
    }

    /// Broadcast accounting per §4.2 (public bitmaps amortized across all
    /// clients; engine charges the per-cell broadcast once).
    pub fn new_broadcast(computer: PyramidComputer) -> BitmapStrategy {
        BitmapStrategy { computer, broadcast_public: true, regions: HashMap::new() }
    }

    /// Recomputes and ships the bitmap for `user` in `cell`.
    fn recompute(
        &mut self,
        server: &mut ServerCtx<'_>,
        user: SubscriberId,
        cell: CellId,
        cell_rect: sa_geometry::Rect,
        quick_update: bool,
    ) {
        if self.broadcast_public {
            let (public, personal) = server.unfired_obstacles_split(user, cell_rect);
            // The client monitors the conjunction of the broadcast public
            // bitmap and its personal overlay, which is semantically the
            // combined bitmap.
            let mut all = public;
            all.extend_from_slice(&personal);
            let (region, _) = self.computer.compute_with_cost(cell_rect, &all);
            // Server-side online work: only the personal overlay (the
            // public bitmap is precomputed offline, per the paper).
            let (overlay, overlay_ops) = self.computer.compute_with_cost(cell_rect, &personal);
            server.metrics.server.region_cell_tests += overlay_ops;
            server.metrics.server.region_computations += 1;
            if quick_update {
                // Patch: "alarm X is now part of your safe region".
                server.send_downlink(payload::REGION_HEADER_BITS + 128);
            } else {
                server.send_downlink(payload::REGION_HEADER_BITS + overlay.bitmap_size());
            }
            self.regions.insert(user, (cell, region));
        } else {
            let obstacles = server.unfired_obstacles_in(user, cell_rect);
            let (region, ops) = self.computer.compute_with_cost(cell_rect, &obstacles);
            server.metrics.server.region_cell_tests += ops;
            server.metrics.server.region_computations += 1;
            server.send_downlink(payload::REGION_HEADER_BITS + region.encoded_bits());
            self.regions.insert(user, (cell, region));
        }
    }
}

impl Strategy for BitmapStrategy {
    fn on_sample(&mut self, step: u32, sample: &TraceSample, server: &mut ServerCtx<'_>) {
        server.metrics.samples += 1;
        let user = SubscriberId(sample.vehicle.0);

        if let Some((cell, region)) = self.regions.get(&user) {
            let (inside, levels) = region.contains_with_cost(sample.pos);
            server.metrics.client_checks += 1;
            server.metrics.client_check_ops += 4 + levels as u64;
            if inside {
                return;
            }
            let cell_now = server.grid().cell_of(sample.pos);
            if cell_now == *cell {
                // Blocked sub-cell of the same base cell: report so the
                // server can evaluate, but only refresh the region when an
                // alarm fired (§4.2 quick update).
                server.metrics.uplink_messages += 1;
                let fired = server.check_triggers(step, user, sample.pos);
                if !fired.is_empty() {
                    let rect = server.grid().cell_rect(cell_now);
                    self.recompute(server, user, cell_now, rect, true);
                }
                return;
            }
        }

        // First contact or base-cell exit: full recomputation.
        server.metrics.uplink_messages += 1;
        server.check_triggers(step, user, sample.pos);
        let cell_now = server.grid().cell_of(sample.pos);
        let rect = server.grid().cell_rect(cell_now);
        self.recompute(server, user, cell_now, rect, false);
    }

    fn name(&self) -> &'static str {
        if self.broadcast_public {
            "PBSR-broadcast"
        } else {
            "PBSR"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_alarms::{AlarmId, AlarmIndex, AlarmScope, SpatialAlarm};
    use sa_core::PyramidConfig;
    use sa_geometry::{Grid, Point, Rect};
    use sa_roadnet::VehicleId;

    fn world() -> (AlarmIndex, Grid) {
        let universe = Rect::new(0.0, 0.0, 9_000.0, 9_000.0).unwrap();
        let index = AlarmIndex::build(vec![SpatialAlarm::around_static_target(
            AlarmId(0),
            Point::new(1_500.0, 1_500.0),
            400.0,
            AlarmScope::Public { owner: SubscriberId(0) },
        )
        .unwrap()]);
        let grid = Grid::new(universe, 3_000.0).unwrap();
        (index, grid)
    }

    fn run_path(
        strategy: &mut BitmapStrategy,
        server: &mut ServerCtx<'_>,
        path: impl Iterator<Item = (f64, f64)>,
    ) {
        for (step, (x, y)) in path.enumerate() {
            let sample = TraceSample {
                time: step as f64,
                vehicle: VehicleId(0),
                pos: Point::new(x, y),
                heading: 0.0,
                speed: 15.0,
            };
            strategy.on_sample(step as u32, &sample, server);
        }
    }

    fn unicast(height: u32) -> BitmapStrategy {
        BitmapStrategy::new(PyramidComputer::new(PyramidConfig::three_by_three(height)))
    }

    #[test]
    fn silent_in_safe_subcells() {
        let (index, grid) = world();
        let mut server = ServerCtx::new(&index, &grid, 30.0, 1.0);
        // Loiter in the alarm-free north-east of the first cell.
        let mut s = unicast(3);
        run_path(&mut s, &mut server, (0..100).map(|i| (2_500.0 + (i % 5) as f64, 2_500.0)));
        assert_eq!(server.metrics.uplink_messages, 1);
        assert_eq!(server.metrics.downlink_messages, 1);
    }

    #[test]
    fn coarse_pyramid_reports_more_than_fine_pyramid() {
        // The Figure 5(a) effect: GBSR's coarse bitmap leaves clients in
        // blocked cells, forcing per-sample reports; taller pyramids carve
        // out finer safe regions.
        let (index, grid) = world();
        // Approach the alarm ([1100, 1900]²) from the west along y = 1200
        // without ever entering it: the coarse bitmap blocks the whole
        // 1000 m sub-cell containing the alarm corner, the fine one only
        // the last ~12 m.
        let path = || (0..150).map(|i| (200.0 + i as f64 * 6.0, 1_200.0));
        let mut coarse_server = ServerCtx::new(&index, &grid, 30.0, 1.0);
        run_path(&mut unicast(1), &mut coarse_server, path());
        let mut fine_server = ServerCtx::new(&index, &grid, 30.0, 1.0);
        run_path(&mut unicast(5), &mut fine_server, path());
        assert!(
            coarse_server.metrics.uplink_messages > fine_server.metrics.uplink_messages,
            "coarse {} vs fine {}",
            coarse_server.metrics.uplink_messages,
            fine_server.metrics.uplink_messages
        );
    }

    #[test]
    fn firing_matches_strict_entry_and_triggers_quick_update() {
        let (index, grid) = world();
        let mut server = ServerCtx::new(&index, &grid, 30.0, 1.0);
        // Drive east along y=1500 into the alarm region [1100, 1900]².
        let mut s = unicast(4);
        run_path(&mut s, &mut server, (0..200).map(|i| (200.0 + i as f64 * 10.0, 1_500.0)));
        assert_eq!(server.metrics.triggers, 1);
        // First strict entry: x > 1100 → step 91 (x = 1110).
        assert_eq!(server.fired_events()[0].step, 91);
        // After the quick update the fired region is safe: the client goes
        // silent again while crossing the rest of the region, so messages
        // stay far below the sample count.
        assert!(
            server.metrics.uplink_messages < 120,
            "messages {}",
            server.metrics.uplink_messages
        );
    }

    #[test]
    fn deeper_pyramids_cost_more_client_ops_per_check() {
        let (index, grid) = world();
        let path = || (0..100).map(|i| (1_050.0 + (i % 20) as f64, 1_050.0));
        let mut shallow = ServerCtx::new(&index, &grid, 30.0, 1.0);
        run_path(&mut unicast(1), &mut shallow, path());
        let mut deep = ServerCtx::new(&index, &grid, 30.0, 1.0);
        run_path(&mut unicast(6), &mut deep, path());
        let shallow_avg =
            shallow.metrics.client_check_ops as f64 / shallow.metrics.client_checks.max(1) as f64;
        let deep_avg =
            deep.metrics.client_check_ops as f64 / deep.metrics.client_checks.max(1) as f64;
        assert!(deep_avg > shallow_avg, "deep {deep_avg} vs shallow {shallow_avg}");
    }

    #[test]
    fn broadcast_mode_fires_identically_but_ships_fewer_unicast_bits() {
        let (index, grid) = world();
        let path = || (0..200).map(|i| (200.0 + i as f64 * 10.0, 1_500.0));
        let mut uni_server = ServerCtx::new(&index, &grid, 30.0, 1.0);
        run_path(&mut unicast(5), &mut uni_server, path());
        let mut bc_server = ServerCtx::new(&index, &grid, 30.0, 1.0);
        let mut bc = BitmapStrategy::new_broadcast(PyramidComputer::new(
            PyramidConfig::three_by_three(5),
        ));
        run_path(&mut bc, &mut bc_server, path());
        // Identical firing behaviour and message counts…
        assert_eq!(uni_server.fired_events(), bc_server.fired_events());
        assert_eq!(uni_server.metrics.uplink_messages, bc_server.metrics.uplink_messages);
        // …but the per-user downlink shrinks to overlays and patches (the
        // public bitmaps ride the broadcast channel, charged per epoch by
        // the engine).
        assert!(
            bc_server.metrics.downlink_bits < uni_server.metrics.downlink_bits,
            "broadcast {} vs unicast {}",
            bc_server.metrics.downlink_bits,
            uni_server.metrics.downlink_bits
        );
    }
}
