//! The spatial-alarm processing strategies compared in §5: the two
//! server-centric baselines (periodic, safe-period), the two distributed
//! safe-region techniques (MWPSR rectangles, GBSR/PBSR bitmaps) and the
//! client-omniscient optimal bound.

mod optimal;
mod periodic;
mod safe_period;
mod safe_region_bitmap;
mod safe_region_rect;

pub use optimal::OptimalStrategy;
pub use periodic::PeriodicStrategy;
pub use safe_period::SafePeriodStrategy;
pub use safe_region_bitmap::BitmapStrategy;
pub use safe_region_rect::RectStrategy;

use crate::ServerCtx;
use sa_core::{MwpsrComputer, PyramidComputer, PyramidConfig};
use sa_geometry::MotionPdf;
use sa_roadnet::TraceSample;
use serde::{Deserialize, Serialize};

/// A processing strategy: decides, per location sample, what the client
/// does locally and what reaches the server.
///
/// Implementations own their per-subscriber state; one instance serves all
/// subscribers of one simulation shard.
pub trait Strategy {
    /// Processes one location sample of one subscriber.
    fn on_sample(&mut self, step: u32, sample: &TraceSample, server: &mut ServerCtx<'_>);

    /// The strategy's display name (matching the paper's abbreviations).
    fn name(&self) -> &'static str;
}

/// Strategy selection for [`crate::SimulationHarness::run`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum StrategyKind {
    /// PRD: the client reports every sample; the server evaluates each
    /// report against the alarm index.
    Periodic,
    /// SP: the server grants adaptive silent periods based on pessimistic
    /// motion bounds (Bamba et al., HiPC'08 \[3\]).
    SafePeriod,
    /// MWPSR: maximum weighted perimeter rectangular safe regions with
    /// steadiness parameters `y`, `z` (§3).
    Mwpsr {
        /// Steadiness weight (`y/z < 1`).
        y: f64,
        /// Angular granularity.
        z: u32,
    },
    /// The non-weighted maximum perimeter rectangle (the improved \[10\]
    /// baseline of Figure 4(a)).
    MwpsrNonWeighted,
    /// The *broken* Hu–Xu–Lee \[10\] rectangle (no overlap / axis-straddling
    /// handling). Ablation only: it misses alarms, reproducing the §5
    /// claim; its runs fail the accuracy check by design.
    MwpsrLegacyHuXuLee,
    /// GBSR/PBSR: pyramid bitmap safe regions with a `3 × 3` split and the
    /// given height (`1` = GBSR, Figure 5 sweeps 1–7, Figure 6 uses 5).
    Pbsr {
        /// Pyramid height `h`.
        height: u32,
    },
    /// PBSR with the §4.2 public-alarm broadcast optimization: per-cell
    /// public bitmaps are precomputed and broadcast once per epoch (the
    /// engine charges that downlink), so recomputations unicast only the
    /// personal overlay. Identical firing behaviour to [`StrategyKind::Pbsr`].
    PbsrBroadcast {
        /// Pyramid height `h`.
        height: u32,
    },
    /// GBSR with an explicit single-level `u × v` grid (Figure 3(c) uses
    /// 9×9).
    Gbsr {
        /// Horizontal split factor.
        u: u32,
        /// Vertical split factor.
        v: u32,
    },
    /// OPT: every relevant alarm in the client's grid cell is pushed to the
    /// client, which evaluates them locally (§4 intro).
    Optimal,
}

impl StrategyKind {
    /// Short label matching the paper's figures.
    pub fn label(&self) -> String {
        match self {
            StrategyKind::Periodic => "PRD".into(),
            StrategyKind::SafePeriod => "SP".into(),
            StrategyKind::Mwpsr { y, z } => format!("MWPSR(y={y},z={z})"),
            StrategyKind::MwpsrNonWeighted => "MWPSR(non-weighted)".into(),
            StrategyKind::MwpsrLegacyHuXuLee => "HXL[10]".into(),
            StrategyKind::Pbsr { height } => format!("PBSR(h={height})"),
            StrategyKind::PbsrBroadcast { height } => format!("PBSR-B(h={height})"),
            StrategyKind::Gbsr { u, v } => format!("GBSR({u}x{v})"),
            StrategyKind::Optimal => "OPT".into(),
        }
    }

    /// Instantiates the strategy for one shard.
    ///
    /// # Panics
    ///
    /// Panics when the parameters are invalid (e.g. `y/z ≥ 1`).
    pub fn build(&self) -> Box<dyn Strategy> {
        match *self {
            StrategyKind::Periodic => Box::new(PeriodicStrategy::new()),
            StrategyKind::SafePeriod => Box::new(SafePeriodStrategy::new()),
            StrategyKind::Mwpsr { y, z } => Box::new(RectStrategy::new(MwpsrComputer::new(
                MotionPdf::new(y, z).expect("valid steadiness parameters"),
            ))),
            StrategyKind::MwpsrNonWeighted => {
                Box::new(RectStrategy::new(MwpsrComputer::non_weighted()))
            }
            StrategyKind::MwpsrLegacyHuXuLee => {
                Box::new(RectStrategy::new_legacy_hu_xu_lee(MwpsrComputer::non_weighted()))
            }
            StrategyKind::Pbsr { height } => Box::new(BitmapStrategy::new(PyramidComputer::new(
                PyramidConfig::three_by_three(height),
            ))),
            StrategyKind::PbsrBroadcast { height } => Box::new(BitmapStrategy::new_broadcast(
                PyramidComputer::new(PyramidConfig::three_by_three(height)),
            )),
            StrategyKind::Gbsr { u, v } => {
                Box::new(BitmapStrategy::new(PyramidComputer::new(PyramidConfig::gbsr(u, v))))
            }
            StrategyKind::Optimal => Box::new(OptimalStrategy::new()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper_abbreviations() {
        assert_eq!(StrategyKind::Periodic.label(), "PRD");
        assert_eq!(StrategyKind::SafePeriod.label(), "SP");
        assert_eq!(StrategyKind::Optimal.label(), "OPT");
        assert_eq!(StrategyKind::Pbsr { height: 5 }.label(), "PBSR(h=5)");
        assert!(StrategyKind::Mwpsr { y: 1.0, z: 32 }.label().contains("z=32"));
    }

    #[test]
    fn build_produces_named_strategies() {
        for kind in [
            StrategyKind::Periodic,
            StrategyKind::SafePeriod,
            StrategyKind::Mwpsr { y: 1.0, z: 32 },
            StrategyKind::MwpsrNonWeighted,
            StrategyKind::Pbsr { height: 3 },
            StrategyKind::Gbsr { u: 9, v: 9 },
            StrategyKind::Optimal,
        ] {
            let s = kind.build();
            assert!(!s.name().is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "valid steadiness")]
    fn build_rejects_bad_pdf_parameters() {
        StrategyKind::Mwpsr { y: 64.0, z: 4 }.build();
    }
}
