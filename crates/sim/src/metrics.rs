use crate::{EnergyModel, ServerCostModel};
use serde::{Deserialize, Serialize};

/// Operation counters for the two server cost centres the paper separates
/// in Figures 4(b) and 6(d): *alarm processing* (trigger checks against the
/// R*-tree) and *safe region computation*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ServerOps {
    /// R*-tree nodes visited by trigger-check (point) queries.
    pub alarm_query_nodes: u64,
    /// Entry rectangles tested by trigger-check queries.
    pub alarm_query_entries: u64,
    /// Location updates the server processed.
    pub location_updates: u64,
    /// R*-tree nodes visited while gathering alarms for safe-region /
    /// safe-period / alarm-set computation.
    pub region_query_nodes: u64,
    /// Entry rectangles tested by those gathering queries.
    pub region_query_entries: u64,
    /// Primitive operations spent computing safe regions (candidate
    /// processing, skyline assembly) or safe periods.
    pub region_compute_ops: u64,
    /// Cheap rectangle-vs-rectangle tests performed during bitmap
    /// safe-region construction (charged like index entry tests).
    pub region_cell_tests: u64,
    /// Number of safe-region (or safe-period / alarm-set) computations.
    pub region_computations: u64,
}

impl ServerOps {
    /// Merges counters from another shard.
    pub fn merge(&mut self, other: &ServerOps) {
        self.alarm_query_nodes += other.alarm_query_nodes;
        self.alarm_query_entries += other.alarm_query_entries;
        self.location_updates += other.location_updates;
        self.region_query_nodes += other.region_query_nodes;
        self.region_query_entries += other.region_query_entries;
        self.region_compute_ops += other.region_compute_ops;
        self.region_cell_tests += other.region_cell_tests;
        self.region_computations += other.region_computations;
    }
}

/// Aggregate counters for one strategy run — the raw material for every
/// figure of the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Metrics {
    /// Client → server messages (Figures 4(a), 5(a), 6(a)).
    pub uplink_messages: u64,
    /// Server → client messages.
    pub downlink_messages: u64,
    /// Server → client payload bits (Figure 6(b)).
    pub downlink_bits: u64,
    /// Client-side primitive operations spent on containment checks /
    /// client-side alarm evaluation (Figures 5(b), 6(c)).
    pub client_check_ops: u64,
    /// Client-side containment checks / alarm evaluations performed.
    pub client_checks: u64,
    /// Position samples processed.
    pub samples: u64,
    /// Alarms triggered ((alarm, subscriber) pairs).
    pub triggers: u64,
    /// Server-side operation counters.
    pub server: ServerOps,
}

impl Metrics {
    /// Merges counters from another shard.
    pub fn merge(&mut self, other: &Metrics) {
        self.uplink_messages += other.uplink_messages;
        self.downlink_messages += other.downlink_messages;
        self.downlink_bits += other.downlink_bits;
        self.client_check_ops += other.client_check_ops;
        self.client_checks += other.client_checks;
        self.samples += other.samples;
        self.triggers += other.triggers;
        self.server.merge(&other.server);
    }

    /// Average downstream bandwidth in Mbps over a run of `duration_s`
    /// seconds (Figure 6(b)).
    ///
    /// # Panics
    ///
    /// Panics when `duration_s` is not positive.
    pub fn downlink_mbps(&self, duration_s: f64) -> f64 {
        assert!(duration_s > 0.0, "duration must be positive");
        self.downlink_bits as f64 / duration_s / 1.0e6
    }

    /// Total client energy in mWh under `model`, including radio costs.
    pub fn client_energy_mwh(&self, model: &EnergyModel) -> f64 {
        self.client_check_energy_mwh(model)
            + model.tx_message_mwh * self.uplink_messages as f64
            + model.rx_bit_mwh * self.downlink_bits as f64
    }

    /// Client energy spent purely on containment detection / client-side
    /// alarm evaluation, in mWh — the quantity Figures 5(b) and 6(c)
    /// report ("energy used to determine client position within the safe
    /// region").
    pub fn client_check_energy_mwh(&self, model: &EnergyModel) -> f64 {
        model.check_base_mwh * self.client_checks as f64
            + model.check_op_mwh * self.client_check_ops as f64
    }

    /// Server time spent on alarm processing, in minutes, under `model`
    /// (the dark bars of Figures 4(b), 6(d)).
    pub fn alarm_processing_minutes(&self, model: &ServerCostModel) -> f64 {
        (self.server.alarm_query_nodes as f64 * model.node_visit_us
            + self.server.alarm_query_entries as f64 * model.entry_test_us
            + self.server.location_updates as f64 * model.update_handling_us)
            / 60.0e6
    }

    /// Server time spent computing safe regions (or safe periods / OPT
    /// alarm sets), in minutes (the light bars of Figures 4(b), 6(d)).
    pub fn safe_region_minutes(&self, model: &ServerCostModel) -> f64 {
        (self.server.region_query_nodes as f64 * model.node_visit_us
            + self.server.region_query_entries as f64 * model.entry_test_us
            + self.server.region_cell_tests as f64 * model.entry_test_us
            + self.server.region_compute_ops as f64 * model.region_op_us)
            / 60.0e6
    }

    /// Total server processing time in minutes.
    pub fn total_server_minutes(&self, model: &ServerCostModel) -> f64 {
        self.alarm_processing_minutes(model) + self.safe_region_minutes(model)
    }

    /// Publishes the counters onto an [`sa_obs::Registry`] as
    /// `{strategy="…"}`-labelled counters, so a simulator run is
    /// scrapeable/renderable through the same exposition path as the live
    /// server. Counters are monotonic: publish a finished run's metrics
    /// once per registry (publishing twice adds, it does not overwrite).
    pub fn publish(&self, registry: &sa_obs::Registry, strategy: &str) {
        let labels = [("strategy", strategy)];
        let series: [(&str, u64); 10] = [
            ("sa_sim_uplink_messages_total", self.uplink_messages),
            ("sa_sim_downlink_messages_total", self.downlink_messages),
            ("sa_sim_downlink_bits_total", self.downlink_bits),
            ("sa_sim_client_check_ops_total", self.client_check_ops),
            ("sa_sim_client_checks_total", self.client_checks),
            ("sa_sim_samples_total", self.samples),
            ("sa_sim_triggers_total", self.triggers),
            ("sa_sim_server_location_updates_total", self.server.location_updates),
            ("sa_sim_server_region_computations_total", self.server.region_computations),
            (
                "sa_sim_server_region_compute_ops_total",
                self.server.region_compute_ops,
            ),
        ];
        for (name, value) in series {
            registry.counter_with(name, &labels).add(value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_metrics() -> Metrics {
        Metrics {
            uplink_messages: 100,
            downlink_messages: 40,
            downlink_bits: 8_000_000,
            client_check_ops: 5_000,
            client_checks: 1_000,
            samples: 10_000,
            triggers: 7,
            server: ServerOps {
                alarm_query_nodes: 600,
                alarm_query_entries: 2_400,
                location_updates: 100,
                region_query_nodes: 300,
                region_query_entries: 900,
                region_compute_ops: 1_500,
                region_cell_tests: 700,
                region_computations: 40,
            },
        }
    }

    #[test]
    fn merge_adds_all_fields() {
        let mut a = sample_metrics();
        let b = sample_metrics();
        a.merge(&b);
        assert_eq!(a.uplink_messages, 200);
        assert_eq!(a.downlink_bits, 16_000_000);
        assert_eq!(a.server.region_compute_ops, 3_000);
        assert_eq!(a.server.region_cell_tests, 1_400);
        assert_eq!(a.triggers, 14);
    }

    #[test]
    fn bandwidth_uses_megabits() {
        let m = sample_metrics();
        // 8 Mbit over 8 seconds = 1 Mbps.
        assert!((m.downlink_mbps(8.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn energy_is_monotone_in_work() {
        let model = EnergyModel::default();
        let base = sample_metrics().client_energy_mwh(&model);
        let mut heavier = sample_metrics();
        heavier.client_check_ops *= 10;
        assert!(heavier.client_energy_mwh(&model) > base);
    }

    #[test]
    fn server_minutes_split_is_additive() {
        let model = ServerCostModel::default();
        let m = sample_metrics();
        let total = m.total_server_minutes(&model);
        assert!(
            (total - m.alarm_processing_minutes(&model) - m.safe_region_minutes(&model)).abs()
                < 1e-15
        );
        assert!(total > 0.0);
    }

    #[test]
    #[should_panic(expected = "duration")]
    fn bandwidth_rejects_zero_duration() {
        sample_metrics().downlink_mbps(0.0);
    }

    #[test]
    fn publish_labels_series_by_strategy() {
        let registry = sa_obs::Registry::new();
        sample_metrics().publish(&registry, "pbsr");
        sample_metrics().publish(&registry, "opt");
        let snap = registry.snapshot();
        assert_eq!(
            snap.counter("sa_sim_uplink_messages_total", &[("strategy", "pbsr")]),
            Some(100)
        );
        assert_eq!(
            snap.counter("sa_sim_server_region_computations_total", &[("strategy", "opt")]),
            Some(40)
        );
        let text = sa_obs::render_snapshot(&snap);
        assert!(text.contains("sa_sim_triggers_total{strategy=\"pbsr\"} 7"));
    }
}
