//! Wire-size accounting for every message class the strategies exchange.
//!
//! The evaluation charges *uplink* traffic by message count (Figures 4(a),
//! 5(a), 6(a)) and *downlink* traffic by payload bits (Figure 6(b)), so the
//! constants here fix the units of those plots.

/// Payload sizes in bits.
pub mod payload {
    /// Client → server location update: subscriber id (32) + position
    /// (2 × 32) + heading and speed packed (32).
    pub const LOCATION_UPDATE_BITS: usize = 128;

    /// Client → server alarm-trigger notification (OPT evaluates alarms
    /// client-side): subscriber id + alarm id.
    pub const TRIGGER_NOTIFY_BITS: usize = 64;

    /// Server → client trigger delivery: alarm id + flags.
    pub const TRIGGER_DELIVERY_BITS: usize = 64;

    /// Header on any server → client safe-region or alarm-set payload:
    /// message type + sequence (32) and grid-cell id (32).
    pub const REGION_HEADER_BITS: usize = 64;

    /// One alarm pushed to an OPT client: alarm id (32) + rectangle
    /// (4 × 32).
    pub const ALARM_PUSH_BITS: usize = 160;

    /// Server → client safe-period grant: period in ms (32).
    pub const SAFE_PERIOD_BITS: usize = 32;
}

#[cfg(test)]
mod tests {
    use super::payload::*;

    #[test]
    fn uplink_messages_are_small() {
        // Uplink messages must be payload-light; the evaluation counts them
        // rather than weighing them.
        assert!(LOCATION_UPDATE_BITS <= 256);
        assert!(TRIGGER_NOTIFY_BITS <= LOCATION_UPDATE_BITS);
    }

    #[test]
    fn downlink_sizes_reflect_content() {
        // An OPT alarm push carries a full rectangle and dwarfs a
        // safe-period grant.
        assert!(ALARM_PUSH_BITS > SAFE_PERIOD_BITS);
        assert_eq!(ALARM_PUSH_BITS, 32 + 4 * 32);
    }
}
