use serde::{Deserialize, Serialize};

/// Server processing-time model (paper Figures 4(b), 6(d)).
///
/// The paper reports wall-clock minutes on its testbed; we substitute a
/// deterministic operation-cost model (see `DESIGN.md` §4): every counted
/// server operation is charged a fixed cost in microseconds, and the
/// totals are reported in "server minutes". The *split* between alarm
/// processing and safe-region computation and its response to cell size /
/// strategy — the properties the figures argue about — are preserved
/// exactly; the absolute scale is calibrated to land in the figures'
/// 0–15 minute range at paper scale.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServerCostModel {
    /// Cost of visiting one R*-tree node, µs.
    pub node_visit_us: f64,
    /// Cost of testing one entry rectangle, µs.
    pub entry_test_us: f64,
    /// Fixed cost of handling one location update (parse, session lookup),
    /// µs.
    pub update_handling_us: f64,
    /// Cost of one safe-region computation primitive (candidate-point
    /// processing, bitmap cell test, safe-period distance evaluation), µs.
    pub region_op_us: f64,
}

impl Default for ServerCostModel {
    fn default() -> ServerCostModel {
        ServerCostModel {
            node_visit_us: 1.2,
            entry_test_us: 0.15,
            update_handling_us: 6.0,
            region_op_us: 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn periodic_paper_scale_lands_in_figure_6d_range() {
        // Periodic at paper scale: 36M updates, each a point query visiting
        // a handful of nodes.
        let m = ServerCostModel::default();
        let updates = 36.0e6;
        let minutes = (updates * (m.update_handling_us + 4.0 * m.node_visit_us + 60.0 * m.entry_test_us)) / 60.0e6;
        assert!(
            (5.0..60.0).contains(&minutes),
            "periodic server time {minutes} minutes"
        );
    }

    #[test]
    fn costs_are_positive() {
        let m = ServerCostModel::default();
        assert!(m.node_visit_us > 0.0);
        assert!(m.entry_test_us > 0.0);
        assert!(m.update_handling_us > 0.0);
        assert!(m.region_op_us > 0.0);
    }
}
