use crate::{
    EnergyModel, FiredEvent, GroundTruth, Metrics, ServerCostModel, ServerCtx, SimulationConfig,
    StrategyKind,
};
use sa_alarms::{AlarmIndex, AlarmWorkload, SubscriberId};
use sa_geometry::Grid;
use sa_roadnet::{generate_network, Fleet, RoadClass, RoadNetwork};

/// The result of running one strategy over the shared trace.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// The strategy that ran.
    pub kind: StrategyKind,
    /// Aggregate counters.
    pub metrics: Metrics,
    /// The firings the strategy produced.
    pub fired: Vec<FiredEvent>,
    /// Whether the firings matched the ground truth exactly (set and
    /// timing) — the paper's 100%-accuracy requirement.
    pub accuracy_ok: bool,
    /// Discrepancy description when `accuracy_ok` is false.
    pub accuracy_error: Option<String>,
    /// Simulated duration in seconds (for bandwidth normalization).
    pub duration_s: f64,
}

impl RunReport {
    /// Downstream bandwidth in Mbps (Figure 6(b)).
    pub fn downlink_mbps(&self) -> f64 {
        self.metrics.downlink_mbps(self.duration_s)
    }

    /// Client energy in mWh under `model` (Figures 5(b), 6(c)).
    pub fn client_energy_mwh(&self, model: &EnergyModel) -> f64 {
        self.metrics.client_energy_mwh(model)
    }

    /// Server time split `(alarm processing, safe-region computation)` in
    /// minutes under `model` (Figures 4(b), 6(d)).
    pub fn server_minutes(&self, model: &ServerCostModel) -> (f64, f64) {
        (
            self.metrics.alarm_processing_minutes(model),
            self.metrics.safe_region_minutes(model),
        )
    }

    /// Panics with the discrepancy description unless the run was 100%
    /// accurate. Used by tests and benches.
    ///
    /// # Panics
    ///
    /// Panics when the run missed, mistimed or spuriously fired an alarm.
    pub fn assert_accurate(&self) {
        if !self.accuracy_ok {
            panic!(
                "strategy {} violated the 100% accuracy requirement: {}",
                self.kind.label(),
                self.accuracy_error.as_deref().unwrap_or("unknown discrepancy")
            );
        }
    }
}

/// The shared world of one evaluation: road network, alarm index, grid
/// overlay and the ground-truth alarm sequence. Build once, run every
/// strategy against it.
#[derive(Debug)]
pub struct SimulationHarness {
    config: SimulationConfig,
    network: RoadNetwork,
    index: AlarmIndex,
    grid: Grid,
    ground_truth: GroundTruth,
    v_max: f64,
    /// Moving-target alarms (empty table when `config.moving_alarms == 0`).
    moving: Option<crate::MovingAlarmTable>,
}

impl SimulationHarness {
    /// Generates the world and derives the ground truth from the
    /// high-frequency trace (one sharded replay).
    ///
    /// # Panics
    ///
    /// Panics when the configuration is inconsistent (see
    /// [`SimulationConfig::validate`]).
    pub fn build(config: &SimulationConfig) -> SimulationHarness {
        config.validate();
        let network = generate_network(&config.network);
        let workload = AlarmWorkload::generate(&config.workload);
        let index = AlarmIndex::build(workload.alarms().to_vec());
        let grid = Grid::with_cell_area_km2(config.universe(), config.cell_area_km2)
            .expect("cell area is validated positive");
        let v_max = RoadClass::Highway.speed_mps() * config.fleet.max_speed_factor;
        let moving = if config.moving_alarms > 0 {
            Some(Self::generate_moving_alarms(config, &network, workload.alarms().len()))
        } else {
            None
        };

        let mut harness = SimulationHarness {
            config: config.clone(),
            network,
            index,
            grid,
            ground_truth: GroundTruth::default(),
            v_max,
            moving,
        };
        let events = harness.replay(|_, _| {}, true);
        harness.ground_truth = GroundTruth::new(events.1);
        harness
    }

    /// Generates the moving-target alarms (taxonomy classes (2)/(3)) and
    /// precomputes their targets' trajectories. Scopes alternate between
    /// public ("alert everyone near vehicle X") and private to a random
    /// subscriber; ids continue after the static workload.
    fn generate_moving_alarms(
        config: &SimulationConfig,
        network: &RoadNetwork,
        first_id: usize,
    ) -> crate::MovingAlarmTable {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        use sa_alarms::{AlarmId, AlarmScope, AlarmTarget, SpatialAlarm};

        let mut rng = SmallRng::seed_from_u64(config.workload.seed ^ 0x4D56_414C);
        let vehicles = config.fleet.vehicles as u32;
        let extent = config.moving_alarm_half_extent_m;
        let alarms: Vec<SpatialAlarm> = (0..config.moving_alarms)
            .map(|i| {
                let target = SubscriberId(rng.gen_range(0..vehicles));
                let owner = SubscriberId(rng.gen_range(0..vehicles));
                let scope = if i % 2 == 0 {
                    AlarmScope::Public { owner }
                } else {
                    AlarmScope::Private { owner }
                };
                SpatialAlarm::new(
                    AlarmId((first_id + i) as u64),
                    sa_geometry::Rect::centered_square(sa_geometry::Point::new(0.0, 0.0), extent)
                        .expect("positive extent"),
                    AlarmTarget::Moving(target),
                    scope,
                )
            })
            .collect();
        crate::MovingAlarmTable::build(
            network,
            &config.fleet,
            config.steps() as u32,
            config.sample_period_s,
            alarms,
        )
    }

    /// The moving-target alarm table, when configured.
    pub fn moving_alarms(&self) -> Option<&crate::MovingAlarmTable> {
        self.moving.as_ref()
    }

    /// The configuration this harness was built from.
    pub fn config(&self) -> &SimulationConfig {
        &self.config
    }

    /// A harness over the *same* world (network, alarms, trace, ground
    /// truth) with a different grid cell size — the Figure 4 sweep without
    /// re-deriving the grid-independent ground truth.
    ///
    /// # Panics
    ///
    /// Panics when `cell_area_km2` is not positive.
    pub fn with_cell_area(&self, cell_area_km2: f64) -> SimulationHarness {
        let mut config = self.config.clone();
        config.cell_area_km2 = cell_area_km2;
        let grid = Grid::with_cell_area_km2(config.universe(), cell_area_km2)
            .expect("cell area must be positive");
        SimulationHarness {
            config,
            network: self.network.clone(),
            index: AlarmIndex::build(self.index.alarms().to_vec()),
            grid,
            ground_truth: self.ground_truth.clone(),
            v_max: self.v_max,
            moving: self.moving.clone(),
        }
    }

    /// The alarm index (shared, read-only).
    pub fn index(&self) -> &AlarmIndex {
        &self.index
    }

    /// The grid overlay.
    pub fn grid(&self) -> &Grid {
        self.grid_ref()
    }

    fn grid_ref(&self) -> &Grid {
        &self.grid
    }

    /// The ground-truth alarm sequence.
    pub fn ground_truth(&self) -> &GroundTruth {
        &self.ground_truth
    }

    /// The generated road network (shared, read-only).
    pub fn network(&self) -> &RoadNetwork {
        &self.network
    }

    /// The maximum speed any vehicle in this world can reach, in m/s —
    /// the bound the safe-period strategy divides distances by.
    pub fn v_max(&self) -> f64 {
        self.v_max
    }

    /// Total number of location samples in the trace (the message count of
    /// a maximally naive client).
    pub fn total_samples(&self) -> u64 {
        self.config.steps() as u64 * self.config.fleet.vehicles as u64
    }

    /// Runs `kind` over the shared trace and reports metrics plus the
    /// accuracy verdict.
    pub fn run(&self, kind: StrategyKind) -> RunReport {
        let (mut metrics, fired) = self.run_shards(kind);
        if let StrategyKind::PbsrBroadcast { height } = kind {
            self.charge_public_broadcast(&mut metrics, height);
        }
        let verdict = self.ground_truth.verify(&fired);
        RunReport {
            kind,
            metrics,
            fired,
            accuracy_ok: verdict.is_ok(),
            accuracy_error: verdict.err(),
            duration_s: self.config.duration_s,
        }
    }

    /// The §4.2 broadcast: every grid cell's public-alarm bitmap is
    /// precomputed and broadcast once per epoch. Charged to the downlink
    /// totals after the per-user runs (the per-user strategies only
    /// unicast personal overlays).
    fn charge_public_broadcast(&self, metrics: &mut Metrics, height: u32) {
        use sa_core::{PyramidComputer, PyramidConfig};
        let computer = PyramidComputer::new(PyramidConfig::three_by_three(height));
        let public_rects: Vec<sa_geometry::Rect> = self
            .index
            .alarms()
            .iter()
            .filter(|a| a.is_public())
            .map(|a| a.region())
            .collect();
        for row in 0..self.grid.rows() {
            for col in 0..self.grid.cols() {
                let rect = self.grid.cell_rect(sa_geometry::CellId { col, row });
                let local: Vec<sa_geometry::Rect> =
                    public_rects.iter().filter(|r| r.intersects(&rect)).copied().collect();
                let region = computer.compute(rect, &local);
                metrics.downlink_messages += 1;
                metrics.downlink_bits += (crate::payload::REGION_HEADER_BITS
                    + region.bitmap_size()) as u64;
                // Precomputation is offline per the paper; it is not charged
                // to the online safe-region-computation time.
            }
        }
    }

    /// Executes the strategy over vehicle shards in parallel.
    fn run_shards(&self, kind: StrategyKind) -> (Metrics, Vec<FiredEvent>) {
        let shards = self.shard_ranges();
        let results: Vec<(Metrics, Vec<FiredEvent>)> = std::thread::scope(|scope| {
            let handles: Vec<_> = shards
                .into_iter()
                .map(|range| {
                    scope.spawn(move || {
                        let mut strategy: Box<dyn crate::strategy::Strategy> = match &self.moving {
                            Some(table) => Box::new(crate::MovingAwareStrategy::new(
                                kind.build(),
                                table,
                                self.v_max,
                            )),
                            None => kind.build(),
                        };
                        let mut server = ServerCtx::new(
                            &self.index,
                            &self.grid,
                            self.v_max,
                            self.config.sample_period_s,
                        );
                        let mut fleet =
                            Fleet::with_id_range(&self.network, &self.config.fleet, range);
                        let mut samples = Vec::new();
                        for step in 0..self.config.steps() as u32 {
                            fleet.step_into(self.config.sample_period_s, &mut samples);
                            for s in &samples {
                                strategy.on_sample(step, s, &mut server);
                            }
                        }
                        server.into_parts()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("shard panicked")).collect()
        });

        let mut metrics = Metrics::default();
        let mut fired = Vec::new();
        for (m, f) in results {
            metrics.merge(&m);
            fired.extend(f);
        }
        (metrics, fired)
    }

    /// Ground-truth replay: evaluates every sample directly against the
    /// index (strict trigger semantics), recording first firings. The
    /// callback sees every sample (unused by default).
    fn replay(
        &self,
        mut _observe: impl FnMut(u32, &sa_roadnet::TraceSample),
        _parallel: bool,
    ) -> ((), Vec<FiredEvent>) {
        let shards = self.shard_ranges();
        let results: Vec<Vec<FiredEvent>> = std::thread::scope(|scope| {
            let handles: Vec<_> = shards
                .into_iter()
                .map(|range| {
                    scope.spawn(move || {
                        let mut fired: std::collections::HashSet<(SubscriberId, u64)> =
                            std::collections::HashSet::new();
                        let mut events = Vec::new();
                        let mut fleet =
                            Fleet::with_id_range(&self.network, &self.config.fleet, range);
                        let mut samples = Vec::new();
                        for step in 0..self.config.steps() as u32 {
                            fleet.step_into(self.config.sample_period_s, &mut samples);
                            for s in &samples {
                                let user = SubscriberId(s.vehicle.0);
                                let (candidates, _) = self.index.relevant_at(user, s.pos);
                                for alarm in candidates {
                                    if alarm.triggers_at(s.pos)
                                        && fired.insert((user, alarm.id().0))
                                    {
                                        events.push(FiredEvent {
                                            subscriber: user,
                                            alarm: alarm.id(),
                                            step,
                                        });
                                    }
                                }
                                if let Some(table) = &self.moving {
                                    for alarm in table.triggering(user, s.pos, step) {
                                        if fired.insert((user, alarm.0)) {
                                            events.push(FiredEvent {
                                                subscriber: user,
                                                alarm,
                                                step,
                                            });
                                        }
                                    }
                                }
                            }
                        }
                        events
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("shard panicked")).collect()
        });
        ((), results.into_iter().flatten().collect())
    }

    /// Splits the fleet into one contiguous id range per worker thread.
    fn shard_ranges(&self) -> Vec<std::ops::Range<u32>> {
        let vehicles = self.config.fleet.vehicles as u32;
        let workers = std::thread::available_parallelism()
            .map(|n| n.get() as u32)
            .unwrap_or(4)
            .min(vehicles.max(1));
        let base = vehicles / workers;
        let extra = vehicles % workers;
        let mut ranges = Vec::with_capacity(workers as usize);
        let mut start = 0u32;
        for w in 0..workers {
            let len = base + u32::from(w < extra);
            if len == 0 {
                continue;
            }
            ranges.push(start..start + len);
            start += len;
        }
        ranges
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn harness() -> SimulationHarness {
        SimulationHarness::build(&SimulationConfig::smoke_test())
    }

    #[test]
    fn ground_truth_is_deterministic() {
        let a = harness();
        let b = harness();
        assert_eq!(a.ground_truth(), b.ground_truth());
        assert!(!a.ground_truth().is_empty(), "smoke test should fire some alarms");
    }

    #[test]
    fn all_strategies_reach_100_percent_accuracy() {
        let h = harness();
        for kind in [
            StrategyKind::Periodic,
            StrategyKind::SafePeriod,
            StrategyKind::Mwpsr { y: 1.0, z: 32 },
            StrategyKind::MwpsrNonWeighted,
            StrategyKind::Pbsr { height: 1 },
            StrategyKind::Pbsr { height: 5 },
            StrategyKind::Optimal,
        ] {
            let report = h.run(kind);
            report.assert_accurate();
        }
    }

    #[test]
    fn safe_region_sends_far_fewer_messages_than_periodic() {
        let h = harness();
        let periodic = h.run(StrategyKind::Periodic);
        let mwpsr = h.run(StrategyKind::Mwpsr { y: 1.0, z: 32 });
        assert_eq!(periodic.metrics.uplink_messages, h.total_samples());
        assert!(
            (mwpsr.metrics.uplink_messages as f64)
                < 0.25 * periodic.metrics.uplink_messages as f64,
            "MWPSR {} vs PRD {}",
            mwpsr.metrics.uplink_messages,
            periodic.metrics.uplink_messages
        );
    }

    #[test]
    fn optimal_sends_fewest_messages_but_most_bits() {
        let h = harness();
        let opt = h.run(StrategyKind::Optimal);
        let mwpsr = h.run(StrategyKind::Mwpsr { y: 1.0, z: 32 });
        assert!(opt.metrics.uplink_messages <= mwpsr.metrics.uplink_messages);
        assert!(opt.metrics.downlink_bits >= mwpsr.metrics.downlink_bits);
        // OPT also burns the most client compute.
        assert!(opt.metrics.client_check_ops > mwpsr.metrics.client_check_ops);
    }

    #[test]
    fn reports_expose_derived_metrics() {
        let h = harness();
        let report = h.run(StrategyKind::Pbsr { height: 3 });
        report.assert_accurate();
        assert!(report.downlink_mbps() >= 0.0);
        assert!(report.client_energy_mwh(&EnergyModel::default()) > 0.0);
        let (alarm_min, sr_min) = report.server_minutes(&ServerCostModel::default());
        assert!(alarm_min >= 0.0 && sr_min > 0.0);
    }
}

#[cfg(test)]
mod cell_area_tests {
    use super::*;

    #[test]
    fn with_cell_area_reuses_world_but_changes_grid() {
        let h = SimulationHarness::build(&SimulationConfig::smoke_test());
        let h2 = h.with_cell_area(0.25);
        assert_eq!(h.ground_truth(), h2.ground_truth());
        assert!(h2.grid().cell_size() < h.grid().cell_size());
        // Strategies stay 100% accurate under the new grid.
        h2.run(StrategyKind::Mwpsr { y: 1.0, z: 16 }).assert_accurate();
        h2.run(StrategyKind::Pbsr { height: 3 }).assert_accurate();
    }
}

#[cfg(test)]
mod broadcast_tests {
    use super::*;

    #[test]
    fn pbsr_broadcast_is_accurate_and_cheaper_downstream() {
        let h = SimulationHarness::build(&SimulationConfig::smoke_test());
        let unicast = h.run(StrategyKind::Pbsr { height: 5 });
        let broadcast = h.run(StrategyKind::PbsrBroadcast { height: 5 });
        unicast.assert_accurate();
        broadcast.assert_accurate();
        // Identical client behaviour.
        assert_eq!(unicast.metrics.uplink_messages, broadcast.metrics.uplink_messages);
        assert_eq!(unicast.metrics.triggers, broadcast.metrics.triggers);
    }
}

#[cfg(test)]
mod moving_tests {
    use super::*;

    fn moving_config() -> SimulationConfig {
        let mut config = SimulationConfig::smoke_test();
        config.moving_alarms = 6;
        config.moving_alarm_half_extent_m = 250.0;
        config
    }

    #[test]
    fn moving_alarms_appear_in_ground_truth() {
        let h = SimulationHarness::build(&moving_config());
        let static_count = h.index().len() as u64;
        let moving_fired = h
            .ground_truth()
            .events()
            .iter()
            .filter(|e| e.alarm.0 >= static_count)
            .count();
        // With a 250 m region chasing vehicles through a 4 km town for four
        // minutes, at least one moving alarm should fire.
        assert!(moving_fired > 0, "no moving alarms fired in the smoke world");
    }

    #[test]
    fn all_strategies_stay_accurate_with_moving_targets() {
        let h = SimulationHarness::build(&moving_config());
        for kind in [
            StrategyKind::Periodic,
            StrategyKind::SafePeriod,
            StrategyKind::Mwpsr { y: 1.0, z: 32 },
            StrategyKind::Pbsr { height: 4 },
            StrategyKind::Optimal,
        ] {
            h.run(kind).assert_accurate();
        }
    }

    #[test]
    fn moving_coordination_costs_messages_but_not_accuracy() {
        let without = SimulationHarness::build(&SimulationConfig::smoke_test());
        let with = SimulationHarness::build(&moving_config());
        let kind = StrategyKind::Mwpsr { y: 1.0, z: 32 };
        let base = without.run(kind);
        let moving = with.run(kind);
        base.assert_accurate();
        moving.assert_accurate();
        assert!(
            moving.metrics.uplink_messages > base.metrics.uplink_messages,
            "coordination should add reports: {} vs {}",
            moving.metrics.uplink_messages,
            base.metrics.uplink_messages
        );
    }
}

impl std::fmt::Display for RunReport {
    /// One-paragraph human-readable summary: strategy, message volume,
    /// bandwidth, triggers and the accuracy verdict.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {} uplink msgs, {:.4} Mbps down, {} triggers, {}",
            self.kind.label(),
            self.metrics.uplink_messages,
            self.downlink_mbps(),
            self.metrics.triggers,
            if self.accuracy_ok { "100% accurate" } else { "INACCURATE" }
        )
    }
}

#[cfg(test)]
mod display_tests {
    use super::*;

    #[test]
    fn run_report_display_summarizes() {
        let h = SimulationHarness::build(&SimulationConfig::smoke_test());
        let report = h.run(StrategyKind::Optimal);
        let s = report.to_string();
        assert!(s.starts_with("OPT:"), "{s}");
        assert!(s.contains("100% accurate"), "{s}");
        assert!(s.contains("uplink msgs"), "{s}");
    }
}
