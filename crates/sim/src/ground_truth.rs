use sa_alarms::{AlarmId, SubscriberId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One ground-truth (or strategy-observed) alarm firing: subscriber
/// `subscriber` first satisfied alarm `alarm`'s spatial condition at
/// simulation step `step`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FiredEvent {
    /// The subscriber the alarm fired for.
    pub subscriber: SubscriberId,
    /// The alarm that fired.
    pub alarm: AlarmId,
    /// The simulation step (sample index) of the firing.
    pub step: u32,
}

/// The reference alarm sequence, derived from the high-frequency trace
/// exactly as the paper does: "the sequence of alarms to be triggered is
/// determined by a very high frequency trace of the motion pattern of the
/// vehicles" (§5). Every strategy run is compared against it — set *and*
/// timing must match for the run to count as 100% accurate.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct GroundTruth {
    events: Vec<FiredEvent>,
}

impl GroundTruth {
    /// Wraps a set of reference events (sorted internally).
    pub fn new(mut events: Vec<FiredEvent>) -> GroundTruth {
        events.sort_unstable();
        GroundTruth { events }
    }

    /// The reference events, sorted by (subscriber, alarm, step).
    pub fn events(&self) -> &[FiredEvent] {
        &self.events
    }

    /// Number of reference firings.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no alarm ever fires in the reference trace.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Compares a strategy's observed firings against the reference.
    /// Returns `Ok(())` on an exact match (same (subscriber, alarm) pairs,
    /// same firing steps) and a human-readable discrepancy description
    /// otherwise.
    pub fn verify(&self, observed: &[FiredEvent]) -> Result<(), String> {
        let mut got = observed.to_vec();
        got.sort_unstable();
        if got == self.events {
            return Ok(());
        }
        let key = |e: &FiredEvent| (e.subscriber, e.alarm);
        let expected_map: HashMap<_, u32> = self.events.iter().map(|e| (key(e), e.step)).collect();
        let got_map: HashMap<_, u32> = got.iter().map(|e| (key(e), e.step)).collect();
        let mut problems = Vec::new();
        for e in &self.events {
            match got_map.get(&key(e)) {
                None => problems.push(format!(
                    "MISSED: {} for {} (expected at step {})",
                    e.alarm, e.subscriber, e.step
                )),
                Some(&s) if s != e.step => problems.push(format!(
                    "LATE/EARLY: {} for {} at step {s}, expected {}",
                    e.alarm, e.subscriber, e.step
                )),
                _ => {}
            }
        }
        for e in &got {
            if !expected_map.contains_key(&key(e)) {
                problems.push(format!(
                    "SPURIOUS: {} for {} at step {}",
                    e.alarm, e.subscriber, e.step
                ));
            }
        }
        problems.truncate(20);
        Err(format!(
            "{} discrepancies (expected {} firings, observed {}): {}",
            problems.len(),
            self.events.len(),
            got.len(),
            problems.join("; ")
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(sub: u32, alarm: u64, step: u32) -> FiredEvent {
        FiredEvent { subscriber: SubscriberId(sub), alarm: AlarmId(alarm), step }
    }

    #[test]
    fn exact_match_verifies() {
        let gt = GroundTruth::new(vec![ev(1, 10, 5), ev(2, 11, 7)]);
        // Order of observation must not matter.
        assert!(gt.verify(&[ev(2, 11, 7), ev(1, 10, 5)]).is_ok());
    }

    #[test]
    fn missing_firing_is_reported() {
        let gt = GroundTruth::new(vec![ev(1, 10, 5), ev(2, 11, 7)]);
        let err = gt.verify(&[ev(1, 10, 5)]).unwrap_err();
        assert!(err.contains("MISSED"), "{err}");
    }

    #[test]
    fn late_firing_is_reported() {
        let gt = GroundTruth::new(vec![ev(1, 10, 5)]);
        let err = gt.verify(&[ev(1, 10, 6)]).unwrap_err();
        assert!(err.contains("LATE"), "{err}");
    }

    #[test]
    fn spurious_firing_is_reported() {
        let gt = GroundTruth::new(vec![]);
        let err = gt.verify(&[ev(1, 10, 5)]).unwrap_err();
        assert!(err.contains("SPURIOUS"), "{err}");
        assert!(gt.is_empty());
    }
}
