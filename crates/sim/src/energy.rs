use serde::{Deserialize, Serialize};

/// Client energy model (paper Figures 5(b), 6(c)).
///
/// The paper omits its energy formulas "due to space constraints" but
/// reports the observable behaviour: energy is driven by how many safe
/// region containment detections a client performs per second and how deep
/// each detection descends (GBSR ≈ 2–3 cheap detections/s; PBSR h = 7 at
/// high alarm density ≈ 6–7 detections/s), plus radio costs. This model is
/// the direct counter-based equivalent (see `DESIGN.md` §4):
///
/// ```text
/// E = checks · check_base + check_ops · check_op
///   + uplink_messages · tx_message + downlink_bits · rx_bit   (mWh)
/// ```
///
/// The default constants are calibrated so a paper-scale run (10,000
/// clients × 1 h at 1 Hz) lands in the magnitude range of Figure 5(b)
/// (hundreds to ~1,400 mWh system-wide).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Fixed cost of waking up for one containment detection, mWh.
    pub check_base_mwh: f64,
    /// Cost per primitive comparison within a detection, mWh.
    pub check_op_mwh: f64,
    /// Cost of transmitting one uplink message, mWh.
    pub tx_message_mwh: f64,
    /// Cost of receiving one downlink bit, mWh.
    pub rx_bit_mwh: f64,
}

impl Default for EnergyModel {
    fn default() -> EnergyModel {
        EnergyModel {
            check_base_mwh: 1.0e-5,
            check_op_mwh: 2.0e-6,
            tx_message_mwh: 5.0e-4,
            rx_bit_mwh: 2.0e-8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_land_in_figure_5b_magnitude() {
        // GBSR at paper scale: 36M checks, ~2 ops each, ~1M messages.
        let m = EnergyModel::default();
        let checks = 36.0e6;
        let energy = checks * m.check_base_mwh + checks * 2.0 * m.check_op_mwh;
        assert!(
            (200.0..1_000.0).contains(&energy),
            "cheap-representation energy {energy} mWh"
        );
        // Deep pyramid descent (≈7 ops) lands near the top of the figure.
        let deep = checks * m.check_base_mwh + checks * 7.0 * m.check_op_mwh;
        assert!((700.0..2_000.0).contains(&deep), "deep energy {deep} mWh");
    }

    #[test]
    fn radio_costs_matter_but_do_not_dominate_checks() {
        let m = EnergyModel::default();
        // One message costs more than one check but far less than an hour
        // of checking.
        assert!(m.tx_message_mwh > m.check_base_mwh);
        assert!(m.tx_message_mwh < 3_600.0 * m.check_base_mwh);
    }
}
