use sa_alarms::WorkloadConfig;
use sa_geometry::Rect;
use sa_roadnet::{FleetConfig, NetworkConfig};
use serde::{Deserialize, Serialize};

/// Full configuration of one simulated evaluation run.
///
/// [`SimulationConfig::paper_default`] reproduces the paper's §5.1 setup:
/// ~1000 km² universe, 10,000 vehicles moving for one hour, 10,000 alarms
/// (10% public, private:shared 2:1) and a 2.5 km² grid cell. Use
/// [`SimulationConfig::scaled`] for laptop-sized runs — all workload
/// dimensions shrink together, leaving the comparative shapes intact.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulationConfig {
    /// Road-network generation parameters.
    pub network: NetworkConfig,
    /// Vehicle fleet parameters (fleet size, seed, speed spread).
    pub fleet: FleetConfig,
    /// Alarm workload parameters.
    pub workload: WorkloadConfig,
    /// Grid cell area in km² (the Figure 4 sweep variable; default 2.5).
    pub cell_area_km2: f64,
    /// Simulated duration in seconds (paper: one hour).
    pub duration_s: f64,
    /// Location sampling period in seconds (the "very high frequency
    /// trace" granularity; also the clients' GPS fix period).
    pub sample_period_s: f64,
    /// Number of *moving-target* alarms to install on top of the static
    /// workload (taxonomy classes (2)/(3); the paper's evaluation uses 0).
    pub moving_alarms: usize,
    /// Half-extent (meters) of moving-target alarm regions.
    pub moving_alarm_half_extent_m: f64,
}

impl SimulationConfig {
    /// The paper's full-scale default setup.
    pub fn paper_default() -> SimulationConfig {
        let network = NetworkConfig::default();
        let universe = Rect::new(0.0, 0.0, network.universe_side_m, network.universe_side_m)
            .expect("universe rect is valid");
        SimulationConfig {
            fleet: FleetConfig { vehicles: 10_000, seed: 0xF1EE_7001, ..FleetConfig::default() },
            workload: WorkloadConfig {
                alarms: 10_000,
                subscribers: 10_000,
                universe,
                ..WorkloadConfig::default()
            },
            network,
            cell_area_km2: 2.5,
            duration_s: 3_600.0,
            sample_period_s: 1.0,
            moving_alarms: 0,
            moving_alarm_half_extent_m: 200.0,
        }
    }

    /// The paper setup with the *fleet* shrunk by `factor`. The alarm
    /// workload stays at full paper scale (10,000 alarms over 10,000
    /// subscriber ids): per-cell alarm density drives every per-operation
    /// cost (safe-region computation, bitmap size, client energy per
    /// check), so shrinking it would distort the figures' shapes. Only the
    /// first `10,000 × factor` subscribers actually move; the rest own
    /// alarms but never trigger them.
    ///
    /// # Panics
    ///
    /// Panics when `factor` is not in `(0, 1]`.
    pub fn scaled(factor: f64) -> SimulationConfig {
        assert!(factor > 0.0 && factor <= 1.0, "scale factor must be in (0, 1]");
        let mut config = SimulationConfig::paper_default();
        config.fleet.vehicles = ((config.fleet.vehicles as f64 * factor) as usize).max(10);
        config
    }

    /// The paper setup with *both* the fleet and the alarm workload
    /// scaled by `factor` (subscribers scale with the fleet so every
    /// alarm still has a live owner). Unlike [`SimulationConfig::scaled`],
    /// this changes per-cell alarm density, so figures lose their shapes —
    /// it exists for end-to-end throughput runs (`scale_replay`,
    /// `scaling_curve`) where the point is "a proportional slice (or
    /// multiple) of the paper's hour", not a faithful cost model.
    ///
    /// Factors above 1 grow the workload *past* paper scale: `10.0` is
    /// the 100k-subscriber sweep, `100.0` the 1M-subscriber sweep. The
    /// universe stays fixed, so overscale runs raise density — the
    /// regime the scaling-exponent fit probes.
    ///
    /// # Panics
    ///
    /// Panics when `factor` is not a positive finite number.
    pub fn paper_fraction(factor: f64) -> SimulationConfig {
        assert!(
            factor.is_finite() && factor > 0.0,
            "scale factor must be positive and finite"
        );
        let mut config = SimulationConfig::paper_default();
        config.fleet.vehicles = ((config.fleet.vehicles as f64 * factor) as usize).max(10);
        config.workload.alarms = ((config.workload.alarms as f64 * factor) as usize).max(10);
        config.workload.subscribers = config.fleet.vehicles as u32;
        config
    }

    /// A tiny deterministic setup for unit tests: a 4 km² town, a handful
    /// of vehicles, a few minutes of driving.
    pub fn smoke_test() -> SimulationConfig {
        let network = NetworkConfig::small_test();
        let universe = Rect::new(0.0, 0.0, network.universe_side_m, network.universe_side_m)
            .expect("universe rect is valid");
        SimulationConfig {
            fleet: FleetConfig { vehicles: 12, seed: 42, ..FleetConfig::default() },
            workload: WorkloadConfig {
                alarms: 60,
                subscribers: 12,
                universe,
                region_half_extent_m: (60.0, 250.0),
                ..WorkloadConfig::default()
            },
            network,
            cell_area_km2: 1.0,
            duration_s: 240.0,
            sample_period_s: 1.0,
            moving_alarms: 0,
            moving_alarm_half_extent_m: 200.0,
        }
    }

    /// A fuzz-sized slice for the `sa-verify` schedule fuzzer: the
    /// smoke-test town with `vehicles` vehicles, `alarms` alarms and
    /// `steps` one-second samples, every generator (fleet trips, alarm
    /// workload) re-seeded from `seed` so a case is fully determined by
    /// its four numbers.
    pub fn fuzz_slice(vehicles: usize, alarms: usize, steps: u32, seed: u64) -> SimulationConfig {
        let mut config = SimulationConfig::smoke_test();
        config.fleet.vehicles = vehicles.max(1);
        config.fleet.seed = seed;
        config.workload.alarms = alarms.max(1);
        config.workload.subscribers = config.fleet.vehicles as u32;
        config.workload.seed = seed ^ 0xA1A2_A3A4_A5A6_A7A8;
        config.duration_s = f64::from(steps.max(1));
        config
    }

    /// Number of simulation steps.
    pub fn steps(&self) -> usize {
        (self.duration_s / self.sample_period_s).round() as usize
    }

    /// The universe rectangle shared by grid, workload and network.
    pub fn universe(&self) -> Rect {
        self.workload.universe
    }

    /// Validates cross-field consistency.
    ///
    /// # Panics
    ///
    /// Panics when durations or periods are non-positive, or the workload
    /// universe does not cover the road network extent.
    pub fn validate(&self) {
        assert!(self.duration_s > 0.0, "duration must be positive");
        assert!(self.sample_period_s > 0.0, "sample period must be positive");
        assert!(self.cell_area_km2 > 0.0, "cell area must be positive");
        assert!(
            self.workload.universe.width() + 1.0 >= self.network.universe_side_m,
            "workload universe must cover the road network"
        );
        assert!(
            self.workload.subscribers as usize >= self.fleet.vehicles,
            "every vehicle must have a subscriber id (subscribers >= vehicles)"
        );
        assert!(
            self.moving_alarm_half_extent_m > 0.0,
            "moving alarm extent must be positive"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_section_5_1() {
        let c = SimulationConfig::paper_default();
        c.validate();
        assert_eq!(c.fleet.vehicles, 10_000);
        assert_eq!(c.workload.alarms, 10_000);
        assert!((c.workload.public_fraction - 0.10).abs() < 1e-12);
        assert!((c.cell_area_km2 - 2.5).abs() < 1e-12);
        assert_eq!(c.steps(), 3_600);
        // ~1000 km² universe.
        let km2 = c.universe().area() / 1.0e6;
        assert!((999.0..1001.0).contains(&km2), "universe {km2} km²");
    }

    #[test]
    fn scaled_shrinks_fleet_but_keeps_alarm_density() {
        let c = SimulationConfig::scaled(0.1);
        c.validate();
        assert_eq!(c.fleet.vehicles, 1_000);
        // Alarm workload stays at paper scale so per-cell alarm density —
        // the driver of every per-operation cost — is unchanged.
        assert_eq!(c.workload.alarms, 10_000);
        assert_eq!(c.workload.subscribers, 10_000);
        assert_eq!(c.duration_s, 3_600.0);
    }

    #[test]
    #[should_panic(expected = "scale factor")]
    fn rejects_zero_scale() {
        SimulationConfig::scaled(0.0);
    }

    #[test]
    fn paper_fraction_shrinks_fleet_and_workload_together() {
        let c = SimulationConfig::paper_fraction(0.1);
        c.validate();
        assert_eq!(c.fleet.vehicles, 1_000);
        assert_eq!(c.workload.alarms, 1_000);
        assert_eq!(c.workload.subscribers, 1_000);
        // Still the full paper hour over the full universe.
        assert_eq!(c.steps(), 3_600);
        let km2 = c.universe().area() / 1.0e6;
        assert!((999.0..1001.0).contains(&km2), "universe {km2} km²");
    }

    #[test]
    fn paper_fraction_scales_past_paper_size() {
        // Multipliers > 1 grow the synthetic workload: 10× is the
        // 100k-subscriber sweep point, 100× the 1M one.
        let c = SimulationConfig::paper_fraction(10.0);
        c.validate();
        assert_eq!(c.fleet.vehicles, 100_000);
        assert_eq!(c.workload.alarms, 100_000);
        assert_eq!(c.workload.subscribers, 100_000);
        let c = SimulationConfig::paper_fraction(100.0);
        c.validate();
        assert_eq!(c.workload.subscribers, 1_000_000);
        // The universe does not grow with the workload.
        let km2 = c.universe().area() / 1.0e6;
        assert!((999.0..1001.0).contains(&km2), "universe {km2} km²");
    }

    #[test]
    #[should_panic(expected = "scale factor")]
    fn paper_fraction_rejects_nonpositive_scale() {
        SimulationConfig::paper_fraction(0.0);
    }

    #[test]
    #[should_panic(expected = "scale factor")]
    fn paper_fraction_rejects_non_finite_scale() {
        SimulationConfig::paper_fraction(f64::INFINITY);
    }

    #[test]
    fn fuzz_slice_is_valid_and_seeded() {
        let c = SimulationConfig::fuzz_slice(3, 7, 40, 0xBEEF);
        c.validate();
        assert_eq!(c.fleet.vehicles, 3);
        assert_eq!(c.workload.alarms, 7);
        assert_eq!(c.workload.subscribers, 3);
        assert_eq!(c.steps(), 40);
        assert_eq!(c.fleet.seed, 0xBEEF);
        // Zero-sized requests are clamped to runnable minimums.
        let tiny = SimulationConfig::fuzz_slice(0, 0, 0, 1);
        tiny.validate();
        assert!(tiny.fleet.vehicles >= 1 && tiny.workload.alarms >= 1 && tiny.steps() >= 1);
    }

    #[test]
    fn smoke_test_is_valid_and_small() {
        let c = SimulationConfig::smoke_test();
        c.validate();
        assert!(c.fleet.vehicles <= 20);
        assert!(c.steps() <= 300);
    }
}
