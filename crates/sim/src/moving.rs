//! Moving-target alarms — classes (2) and (3) of the paper's taxonomy
//! (§1): the alarm region is anchored on another *moving* subscriber, so
//! processing "requires continuous position updates from other mobile
//! clients, which is typically obtained through server-based
//! coordination".
//!
//! The paper's evaluation sticks to static targets; this module implements
//! the coordination the taxonomy calls for, as a sound add-on to any
//! static-alarm strategy:
//!
//! - the server keeps a (possibly stale) last-known fix per target and
//!   bounds the target's drift by `v_max · staleness` — the *envelope* of
//!   the true alarm region,
//! - a subscriber's silent window for moving alarms is
//!   `distance-to-envelope / (2·v_max)` (both parties close the gap at at
//!   most `v_max`), mirroring the safe-period pessimism,
//! - when a reporting subscriber is inside an envelope, the server *polls*
//!   the target (one downlink request, one uplink response) and evaluates
//!   the trigger against the target's true position.
//!
//! The same inductive argument as the safe-period baseline guarantees the
//! alarm fires at exactly the ground-truth sample.

use crate::message::payload;
use crate::ServerCtx;
use sa_alarms::{AlarmId, AlarmTarget, SpatialAlarm, SubscriberId};
use sa_geometry::{Point, Rect};
use sa_roadnet::{Fleet, FleetConfig, RoadNetwork, VehicleId};
use std::collections::HashMap;

/// The immutable description of the moving alarms of a run: alarm
/// metadata plus the (deterministic) trajectories of their target
/// vehicles, precomputed once and shared read-only across shards.
#[derive(Debug, Clone)]
pub struct MovingAlarmTable {
    alarms: Vec<SpatialAlarm>,
    /// Per target vehicle id: position at every step (index 0 = after the
    /// first step).
    trajectories: HashMap<u32, Vec<Point>>,
    sample_period_s: f64,
}

impl MovingAlarmTable {
    /// Builds the table by replaying the target vehicles' trajectories
    /// (vehicle motion is seeded per id, so replaying a subset reproduces
    /// the full-fleet motion exactly).
    ///
    /// # Panics
    ///
    /// Panics when an alarm's target is not a moving subscriber within the
    /// fleet.
    pub fn build(
        network: &RoadNetwork,
        fleet_config: &FleetConfig,
        steps: u32,
        sample_period_s: f64,
        alarms: Vec<SpatialAlarm>,
    ) -> MovingAlarmTable {
        let mut targets: Vec<u32> = alarms
            .iter()
            .map(|a| match a.target() {
                AlarmTarget::Moving(s) => {
                    assert!(
                        (s.0 as usize) < fleet_config.vehicles,
                        "moving target {s} outside the fleet"
                    );
                    s.0
                }
                AlarmTarget::Static(_) => panic!("static alarm in moving table"),
            })
            .collect();
        targets.sort_unstable();
        targets.dedup();

        let mut trajectories: HashMap<u32, Vec<Point>> = HashMap::new();
        for &t in &targets {
            let mut fleet = Fleet::with_id_range(network, fleet_config, t..t + 1);
            let mut positions = Vec::with_capacity(steps as usize);
            let mut samples = Vec::new();
            for _ in 0..steps {
                fleet.step_into(sample_period_s, &mut samples);
                positions.push(samples[0].pos);
            }
            trajectories.insert(t, positions);
        }
        MovingAlarmTable { alarms, trajectories, sample_period_s }
    }

    /// The moving alarms.
    pub fn alarms(&self) -> &[SpatialAlarm] {
        &self.alarms
    }

    /// True when no moving alarms are installed.
    pub fn is_empty(&self) -> bool {
        self.alarms.is_empty()
    }

    /// The target vehicle of alarm `idx`.
    pub fn target_of(&self, idx: usize) -> VehicleId {
        match self.alarms[idx].target() {
            AlarmTarget::Moving(s) => VehicleId(s.0),
            AlarmTarget::Static(_) => unreachable!("moving table holds moving targets only"),
        }
    }

    /// The target's true position at `step`.
    pub fn target_position(&self, idx: usize, step: u32) -> Point {
        let target = self.target_of(idx);
        self.trajectories[&target.0][step as usize]
    }

    /// The alarm's true region at `step` (its configured extent re-anchored
    /// on the target's position).
    pub fn region_at(&self, idx: usize, step: u32) -> Rect {
        self.alarms[idx]
            .with_target_position(self.target_position(idx, step))
            .region()
    }

    /// Ground-truth check: all unfired-relevant moving alarms triggering
    /// for `user` at `pos` in `step`. Alarms never trigger for their own
    /// target.
    pub fn triggering(&self, user: SubscriberId, pos: Point, step: u32) -> Vec<AlarmId> {
        let mut fired = Vec::new();
        for (idx, alarm) in self.alarms.iter().enumerate() {
            if !alarm.is_relevant_to(user) || self.target_of(idx).0 == user.0 {
                continue;
            }
            if self.region_at(idx, step).contains_point_strict(pos) {
                fired.push(alarm.id());
            }
        }
        fired
    }

    /// The sampling period trajectories were recorded at.
    pub fn sample_period_s(&self) -> f64 {
        self.sample_period_s
    }
}

/// The server-side coordinator for moving-target alarms of one shard.
#[derive(Debug)]
pub struct MovingCoordinator<'a> {
    table: &'a MovingAlarmTable,
    v_max: f64,
    /// Last fix the server holds per target vehicle: (step, position).
    last_known: HashMap<u32, (u32, Point)>,
}

impl<'a> MovingCoordinator<'a> {
    /// Creates the coordinator.
    pub fn new(table: &'a MovingAlarmTable, v_max: f64) -> MovingCoordinator<'a> {
        assert!(v_max > 0.0, "maximum speed must be positive");
        MovingCoordinator { table, v_max, last_known: HashMap::new() }
    }

    /// Services one subscriber report: evaluates every relevant unfired
    /// moving alarm (polling targets whose envelopes the subscriber has
    /// entered), fires exact triggers, and returns the number of steps the
    /// subscriber may stay silent with respect to moving alarms.
    pub fn service(
        &mut self,
        step: u32,
        user: SubscriberId,
        pos: Point,
        server: &mut ServerCtx<'_>,
    ) -> u32 {
        let dt = self.table.sample_period_s();
        let mut min_steps = u32::MAX;
        for (idx, alarm) in self.table.alarms().iter().enumerate() {
            if !alarm.is_relevant_to(user)
                || self.table.target_of(idx).0 == user.0
                || server.already_fired(user, alarm.id())
            {
                continue;
            }
            server.metrics.server.region_compute_ops += 1;
            let target = self.table.target_of(idx);
            let (fix_step, fix_pos) = match self.last_known.get(&target.0).copied() {
                Some(fix) => fix,
                None => {
                    // First contact with this target: poll it (one downlink
                    // request, one uplink response).
                    let p = self.table.target_position(idx, step);
                    self.last_known.insert(target.0, (step, p));
                    server.metrics.downlink_messages += 1;
                    server.metrics.downlink_bits += payload::TRIGGER_DELIVERY_BITS as u64;
                    server.metrics.uplink_messages += 1;
                    (step, p)
                }
            };
            let staleness_s = (step - fix_step) as f64 * dt;
            let envelope = alarm
                .with_target_position(fix_pos)
                .region()
                .inflated(self.v_max * staleness_s)
                .expect("positive inflation");
            let dist = if envelope.contains_point(pos) {
                // Inside the uncertainty envelope: poll the target for its
                // true position (downlink request + uplink response) and
                // evaluate exactly.
                let true_pos = self.table.target_position(idx, step);
                self.last_known.insert(target.0, (step, true_pos));
                server.metrics.downlink_messages += 1;
                server.metrics.downlink_bits += payload::TRIGGER_DELIVERY_BITS as u64;
                server.metrics.uplink_messages += 1;
                let true_region = self.table.region_at(idx, step);
                if true_region.contains_point_strict(pos) {
                    server.record_client_fire(step, user, alarm.id());
                    continue;
                }
                true_region.distance_to_point(pos)
            } else {
                envelope.distance_to_point(pos)
            };
            // Both subscriber and target close the gap at at most v_max.
            let steps = ((dist / (2.0 * self.v_max)) / dt).floor() as u32;
            min_steps = min_steps.min(steps.max(1));
        }
        if min_steps == u32::MAX {
            // No relevant moving alarms: effectively unbounded.
            u32::MAX
        } else {
            min_steps
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_alarms::AlarmScope;
    use sa_roadnet::{generate_network, NetworkConfig};

    fn table_with(network: &RoadNetwork, cfg: &FleetConfig, steps: u32) -> MovingAlarmTable {
        let alarm = SpatialAlarm::new(
            AlarmId(100),
            Rect::new(0.0, 0.0, 400.0, 400.0).unwrap(),
            AlarmTarget::Moving(SubscriberId(0)),
            AlarmScope::Public { owner: SubscriberId(0) },
        );
        MovingAlarmTable::build(network, cfg, steps, 1.0, vec![alarm])
    }

    #[test]
    fn trajectories_match_the_full_fleet() {
        let network = generate_network(&NetworkConfig::small_test());
        let cfg = FleetConfig { vehicles: 4, seed: 3, ..FleetConfig::default() };
        let table = table_with(&network, &cfg, 50);
        // Replay the full fleet and compare vehicle 0's positions.
        let mut fleet = Fleet::new(&network, &cfg);
        for step in 0..50u32 {
            let samples = fleet.step(1.0);
            assert_eq!(table.target_position(0, step), samples[0].pos, "step {step}");
        }
    }

    #[test]
    fn region_follows_the_target() {
        let network = generate_network(&NetworkConfig::small_test());
        let cfg = FleetConfig { vehicles: 2, seed: 9, ..FleetConfig::default() };
        let table = table_with(&network, &cfg, 100);
        for step in [0u32, 30, 99] {
            let region = table.region_at(0, step);
            // Re-anchoring computes `center ± half_extent` and `center()`
            // recomputes `(min + max) / 2`; that round-trip is correct only
            // to rounding, so compare with an ulp-scale tolerance instead of
            // exact equality.
            let target = table.target_position(0, step);
            assert!(
                region.center().distance(target) < 1.0e-9,
                "step {step}: center {:?} drifted from target {target:?}",
                region.center()
            );
            assert!((region.width() - 400.0).abs() < 1.0e-9);
        }
    }

    #[test]
    fn alarm_never_triggers_for_its_own_target() {
        let network = generate_network(&NetworkConfig::small_test());
        let cfg = FleetConfig { vehicles: 2, seed: 9, ..FleetConfig::default() };
        let table = table_with(&network, &cfg, 10);
        // Vehicle 0 is always at its own region's center.
        let pos = table.target_position(0, 5);
        assert!(table.triggering(SubscriberId(0), pos, 5).is_empty());
        // Another subscriber at the same spot triggers.
        assert_eq!(table.triggering(SubscriberId(1), pos, 5).len(), 1);
    }

    #[test]
    fn coordinator_grants_long_silence_when_far() {
        let network = generate_network(&NetworkConfig::default());
        let cfg = FleetConfig { vehicles: 2, seed: 5, ..FleetConfig::default() };
        let table = table_with(&network, &cfg, 10);
        let universe = network.bounding_box();
        let index = sa_alarms::AlarmIndex::build(vec![]);
        let grid = sa_geometry::Grid::new(universe, 2_000.0).unwrap();
        let mut server = ServerCtx::new(&index, &grid, 35.0, 1.0);
        let mut coord = MovingCoordinator::new(&table, 35.0);
        // A subscriber far from the target gets a long window.
        let target = table.target_position(0, 0);
        let far = Point::new(
            if target.x > universe.center().x { universe.min_x() } else { universe.max_x() },
            if target.y > universe.center().y { universe.min_y() } else { universe.max_y() },
        );
        let steps = coord.service(0, SubscriberId(1), far, &mut server);
        assert!(steps > 50, "granted only {steps} steps");
        assert_eq!(server.metrics.triggers, 0);
    }

    #[test]
    fn coordinator_polls_and_fires_inside_the_envelope() {
        let network = generate_network(&NetworkConfig::small_test());
        let cfg = FleetConfig { vehicles: 2, seed: 5, ..FleetConfig::default() };
        let table = table_with(&network, &cfg, 10);
        let index = sa_alarms::AlarmIndex::build(vec![]);
        let grid = sa_geometry::Grid::new(network.bounding_box(), 1_000.0).unwrap();
        let mut server = ServerCtx::new(&index, &grid, 35.0, 1.0);
        let mut coord = MovingCoordinator::new(&table, 35.0);
        // Place the subscriber exactly at the target: strictly inside.
        let pos = table.target_position(0, 3);
        coord.service(3, SubscriberId(1), pos, &mut server);
        assert_eq!(server.metrics.triggers, 1);
        assert_eq!(server.fired_events()[0].alarm, AlarmId(100));
        assert_eq!(server.fired_events()[0].step, 3);
        // The poll was paid for.
        assert!(server.metrics.uplink_messages >= 1);
        assert!(server.metrics.downlink_messages >= 1);
    }
}

/// Wraps any static-alarm strategy with moving-target coordination: the
/// subscriber additionally reports whenever its moving-alarm silent window
/// expires, independent of the inner strategy's own safe-region logic.
pub struct MovingAwareStrategy<'a> {
    inner: Box<dyn crate::strategy::Strategy>,
    coordinator: MovingCoordinator<'a>,
    deadlines: HashMap<SubscriberId, u32>,
}

impl<'a> MovingAwareStrategy<'a> {
    /// Wraps `inner` with coordination against `table`.
    pub fn new(
        inner: Box<dyn crate::strategy::Strategy>,
        table: &'a MovingAlarmTable,
        v_max: f64,
    ) -> MovingAwareStrategy<'a> {
        MovingAwareStrategy {
            inner,
            coordinator: MovingCoordinator::new(table, v_max),
            deadlines: HashMap::new(),
        }
    }
}

impl crate::strategy::Strategy for MovingAwareStrategy<'_> {
    fn on_sample(
        &mut self,
        step: u32,
        sample: &sa_roadnet::TraceSample,
        server: &mut ServerCtx<'_>,
    ) {
        let user = SubscriberId(sample.vehicle.0);
        let due = self.deadlines.get(&user).is_none_or(|&d| step >= d);
        if due {
            // Moving-alarm report: one uplink, then a fresh grant.
            server.metrics.uplink_messages += 1;
            let grant = self.coordinator.service(step, user, sample.pos, server);
            self.deadlines.insert(user, step.saturating_add(grant));
        }
        self.inner.on_sample(step, sample, server);
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }
}
