use crate::message::payload;
use crate::{FiredEvent, Metrics};
use sa_alarms::{AlarmId, AlarmIndex, SubscriberId};
use sa_geometry::{Grid, Point, Rect};
use std::collections::{HashMap, HashSet};

/// The server side of the distributed architecture, as seen by one
/// simulation shard: the alarm index, the grid overlay, per-subscriber
/// fired-alarm state, and the metric counters every operation charges.
///
/// All strategy implementations funnel their server interactions through
/// this type so the cost accounting is uniform: trigger checks charge
/// *alarm processing*, gathering/geometry work charges *safe region
/// computation* (the two bars of Figures 4(b) and 6(d)).
#[derive(Debug)]
pub struct ServerCtx<'a> {
    index: &'a AlarmIndex,
    grid: &'a Grid,
    /// Pessimistic maximum client speed (m/s) used by the safe-period
    /// baseline.
    v_max: f64,
    sample_period_s: f64,
    fired: HashMap<SubscriberId, HashSet<AlarmId>>,
    fired_events: Vec<FiredEvent>,
    /// Aggregate counters; strategies also update the client-side fields.
    pub metrics: Metrics,
}

impl<'a> ServerCtx<'a> {
    /// Creates the server context for one shard.
    pub fn new(index: &'a AlarmIndex, grid: &'a Grid, v_max: f64, sample_period_s: f64) -> ServerCtx<'a> {
        assert!(v_max > 0.0, "maximum speed must be positive");
        ServerCtx {
            index,
            grid,
            v_max,
            sample_period_s,
            fired: HashMap::new(),
            fired_events: Vec::new(),
            metrics: Metrics::default(),
        }
    }

    /// The grid overlay.
    pub fn grid(&self) -> &Grid {
        self.grid
    }

    /// The alarm index.
    pub fn index(&self) -> &AlarmIndex {
        self.index
    }

    /// Pessimistic maximum client speed in m/s.
    pub fn v_max(&self) -> f64 {
        self.v_max
    }

    /// The location sampling period in seconds.
    pub fn sample_period_s(&self) -> f64 {
        self.sample_period_s
    }

    /// The observed firings of this shard.
    pub fn fired_events(&self) -> &[FiredEvent] {
        &self.fired_events
    }

    /// Consumes the context, yielding metrics and firings for merging.
    pub fn into_parts(self) -> (Metrics, Vec<FiredEvent>) {
        (self.metrics, self.fired_events)
    }

    /// True when `alarm` has already fired for `user`.
    pub fn already_fired(&self, user: SubscriberId, alarm: AlarmId) -> bool {
        self.fired.get(&user).is_some_and(|s| s.contains(&alarm))
    }

    /// Server-side trigger check for one location update: fires every
    /// relevant, unfired alarm whose region strictly contains `pos`, and
    /// delivers the trigger downstream. Charged to *alarm processing*.
    pub fn check_triggers(&mut self, step: u32, user: SubscriberId, pos: Point) -> Vec<AlarmId> {
        let (candidates, stats) = self.index.relevant_at(user, pos);
        self.metrics.server.alarm_query_nodes += stats.nodes_visited as u64;
        self.metrics.server.alarm_query_entries += stats.entries_tested as u64;
        self.metrics.server.location_updates += 1;
        let mut fired_now = Vec::new();
        for alarm in candidates {
            if alarm.triggers_at(pos) && !self.already_fired(user, alarm.id()) {
                self.record_fire(step, user, alarm.id());
                fired_now.push(alarm.id());
            }
        }
        fired_now
    }

    /// Records a firing detected *client-side* (the OPT strategy evaluates
    /// alarms on the device and notifies the server).
    pub fn record_client_fire(&mut self, step: u32, user: SubscriberId, alarm: AlarmId) {
        debug_assert!(!self.already_fired(user, alarm), "client double-fired {alarm}");
        self.record_fire(step, user, alarm);
    }

    fn record_fire(&mut self, step: u32, user: SubscriberId, alarm: AlarmId) {
        self.fired.entry(user).or_default().insert(alarm);
        self.fired_events.push(FiredEvent { subscriber: user, alarm, step });
        self.metrics.triggers += 1;
        // Trigger delivery to the subscriber.
        self.metrics.downlink_messages += 1;
        self.metrics.downlink_bits += payload::TRIGGER_DELIVERY_BITS as u64;
    }

    /// Gathers the regions of relevant, *unfired* alarms intersecting
    /// `area` — the obstacle set for a safe-region computation. Charged to
    /// *safe region computation*.
    pub fn unfired_obstacles_in(&mut self, user: SubscriberId, area: Rect) -> Vec<Rect> {
        let (alarms, stats) = self.index.relevant_intersecting_with_stats(user, area);
        self.metrics.server.region_query_nodes += stats.nodes_visited as u64;
        self.metrics.server.region_query_entries += stats.entries_tested as u64;
        alarms
            .into_iter()
            .filter(|a| !self.already_fired(user, a.id()))
            .map(|a| a.region())
            .collect()
    }

    /// Like [`ServerCtx::unfired_obstacles_in`] but split into (public,
    /// personal) obstacle sets — the §4.2 broadcast optimization
    /// precomputes and broadcasts the public part per cell and unicasts
    /// only the personal overlay.
    pub fn unfired_obstacles_split(
        &mut self,
        user: SubscriberId,
        area: Rect,
    ) -> (Vec<Rect>, Vec<Rect>) {
        let (alarms, stats) = self.index.relevant_intersecting_with_stats(user, area);
        self.metrics.server.region_query_nodes += stats.nodes_visited as u64;
        self.metrics.server.region_query_entries += stats.entries_tested as u64;
        let mut public = Vec::new();
        let mut personal = Vec::new();
        for a in alarms {
            if self.already_fired(user, a.id()) {
                continue;
            }
            if a.is_public() {
                public.push(a.region());
            } else {
                personal.push(a.region());
            }
        }
        (public, personal)
    }

    /// Gathers `(id, region)` pairs of relevant, unfired alarms
    /// intersecting `area`.
    pub fn unfired_alarm_set_in(
        &mut self,
        user: SubscriberId,
        area: Rect,
    ) -> Vec<(AlarmId, Rect)> {
        let (alarms, stats) = self.index.relevant_intersecting_with_stats(user, area);
        self.metrics.server.region_query_nodes += stats.nodes_visited as u64;
        self.metrics.server.region_query_entries += stats.entries_tested as u64;
        alarms
            .into_iter()
            .filter(|a| !self.already_fired(user, a.id()))
            .map(|a| (a.id(), a.region()))
            .collect()
    }

    /// Gathers `(id, region, relevant)` for **every** alarm intersecting
    /// `area` that has not fired for `user` — the OPT payload: "the client
    /// is fully aware of all alarms in its vicinity" (§4). This is what
    /// makes OPT heavy on downstream bandwidth and client energy at high
    /// alarm densities.
    pub fn all_unfired_alarm_set_in(
        &mut self,
        user: SubscriberId,
        area: Rect,
    ) -> Vec<(AlarmId, Rect, bool)> {
        let (alarms, stats) = self.index.all_intersecting_with_stats(area);
        self.metrics.server.region_query_nodes += stats.nodes_visited as u64;
        self.metrics.server.region_query_entries += stats.entries_tested as u64;
        alarms
            .into_iter()
            .filter(|a| !self.already_fired(user, a.id()))
            .map(|a| (a.id(), a.region(), a.is_relevant_to(user)))
            .collect()
    }

    /// Computes the safe-period baseline's silent window for a subscriber
    /// at `pos` (paper \[3\]): the time, under the pessimistic assumption of
    /// straight-line travel at `v_max`, before the subscriber could reach
    /// the nearest relevant unfired alarm region. Uses a filtered
    /// best-first nearest-neighbor search over public alarms plus the
    /// subscriber's personal alarm list. Returns the period in seconds
    /// (capped at crossing the whole universe when the subscriber has no
    /// relevant alarms at all).
    pub fn compute_safe_period(&mut self, user: SubscriberId, pos: Point) -> f64 {
        self.metrics.server.region_computations += 1;
        let fired = self.fired.get(&user);
        let (nearest, stats) = self.index.nearest_relevant_distance(user, pos, |id| {
            fired.is_none_or(|set| !set.contains(&id))
        });
        self.metrics.server.region_query_nodes += stats.nodes_visited as u64;
        self.metrics.server.region_query_entries += stats.entries_tested as u64;
        // The index traversal is charged above; the period computation
        // itself is one division.
        self.metrics.server.region_compute_ops += 1;
        let universe = self.grid.universe();
        let max_extent = universe.width().max(universe.height()) * 2.0;
        nearest.unwrap_or(max_extent) / self.v_max
    }

    /// Sends a safe region (or alarm set) of `payload_bits` to the client.
    pub fn send_downlink(&mut self, payload_bits: usize) {
        self.metrics.downlink_messages += 1;
        self.metrics.downlink_bits += payload_bits as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_alarms::{AlarmScope, SpatialAlarm};

    fn setup() -> (AlarmIndex, Grid) {
        let universe = Rect::new(0.0, 0.0, 10_000.0, 10_000.0).unwrap();
        let mk = |id: u64, x: f64, y: f64, r: f64, scope: AlarmScope| {
            SpatialAlarm::around_static_target(AlarmId(id), Point::new(x, y), r, scope).unwrap()
        };
        let index = AlarmIndex::build(vec![
            mk(0, 500.0, 500.0, 100.0, AlarmScope::Public { owner: SubscriberId(0) }),
            mk(1, 600.0, 500.0, 50.0, AlarmScope::Private { owner: SubscriberId(1) }),
            mk(2, 9_000.0, 9_000.0, 200.0, AlarmScope::Public { owner: SubscriberId(0) }),
        ]);
        let grid = Grid::new(universe, 1_000.0).unwrap();
        (index, grid)
    }

    #[test]
    fn check_triggers_fires_once_per_pair() {
        let (index, grid) = setup();
        let mut server = ServerCtx::new(&index, &grid, 30.0, 1.0);
        let user = SubscriberId(7);
        let inside = Point::new(500.0, 500.0);
        assert_eq!(server.check_triggers(0, user, inside), vec![AlarmId(0)]);
        assert_eq!(server.check_triggers(1, user, inside), vec![]);
        // A different subscriber fires independently.
        assert_eq!(server.check_triggers(2, SubscriberId(8), inside), vec![AlarmId(0)]);
        assert_eq!(server.metrics.triggers, 2);
        assert_eq!(server.fired_events().len(), 2);
    }

    #[test]
    fn boundary_position_does_not_trigger() {
        let (index, grid) = setup();
        let mut server = ServerCtx::new(&index, &grid, 30.0, 1.0);
        // Exactly on alarm 0's boundary (x = 600).
        let boundary = Point::new(600.0, 500.0);
        assert!(server.check_triggers(0, SubscriberId(3), boundary).is_empty());
    }

    #[test]
    fn obstacles_exclude_fired_alarms() {
        let (index, grid) = setup();
        let mut server = ServerCtx::new(&index, &grid, 30.0, 1.0);
        let user = SubscriberId(1);
        let cell = Rect::new(0.0, 0.0, 1_000.0, 1_000.0).unwrap();
        assert_eq!(server.unfired_obstacles_in(user, cell).len(), 2);
        server.check_triggers(0, user, Point::new(500.0, 500.0));
        // Alarm 0 fired; only the private alarm 1 remains an obstacle.
        assert_eq!(server.unfired_obstacles_in(user, cell).len(), 1);
    }

    #[test]
    fn safe_period_is_pessimistic_distance_over_vmax() {
        let (index, grid) = setup();
        let mut server = ServerCtx::new(&index, &grid, 30.0, 1.0);
        // User 0 at (2000, 500): nearest relevant alarm region edge is
        // alarm 0's x = 600 boundary, 1400 m away.
        let period = server.compute_safe_period(SubscriberId(0), Point::new(2_000.0, 500.0));
        assert!((period - 1_400.0 / 30.0).abs() < 1e-9, "period {period}");
    }

    #[test]
    fn safe_period_caps_when_no_relevant_alarms() {
        let universe = Rect::new(0.0, 0.0, 10_000.0, 10_000.0).unwrap();
        let index = AlarmIndex::build(vec![SpatialAlarm::around_static_target(
            AlarmId(0),
            Point::new(5_000.0, 5_000.0),
            100.0,
            AlarmScope::Private { owner: SubscriberId(0) },
        )
        .unwrap()]);
        let grid = Grid::new(universe, 1_000.0).unwrap();
        let mut server = ServerCtx::new(&index, &grid, 30.0, 1.0);
        // User 5 has no relevant alarms at all.
        let period = server.compute_safe_period(SubscriberId(5), Point::new(100.0, 100.0));
        assert!(period >= 10_000.0 / 30.0);
    }

    #[test]
    fn downlink_accounting_accumulates() {
        let (index, grid) = setup();
        let mut server = ServerCtx::new(&index, &grid, 30.0, 1.0);
        server.send_downlink(128);
        server.send_downlink(64);
        assert_eq!(server.metrics.downlink_messages, 2);
        assert_eq!(server.metrics.downlink_bits, 192);
    }
}
