//! Safe-region computation — the paper's primary contribution (§2–§4).
//!
//! A *safe region* for a mobile subscriber is a region within which no
//! relevant spatial alarm can trigger; while the subscriber stays inside it,
//! **no alarm evaluation is necessary anywhere in the system**. The server
//! computes the region, ships it to the client, and the client monitors its
//! own position against it — the distributed processing scheme that gives
//! the paper its scalability result.
//!
//! Three computation techniques are provided, trading size and shape of the
//! region against bandwidth and client compute:
//!
//! - [`MwpsrComputer`] — **Maximum Weighted Perimeter rectangular Safe
//!   Region** (§3): a dynamic-skyline construction (candidate points →
//!   tension points → component rectangles → greedy assembly) weighted by
//!   the steady-motion density [`sa_geometry::MotionPdf`]. With the uniform
//!   density this degrades gracefully to the *non-weighted* maximum
//!   perimeter approach of Figure 4(a), which itself improves on Hu et
//!   al. \[10\] by handling overlapping and axis-crossing alarm regions.
//! - [`PyramidComputer`] with height 1 — **GBSR**, the Grid Bitmap-encoded
//!   Safe Region (§4.1): one bit per U×V sub-cell.
//! - [`PyramidComputer`] with height ≥ 2 — **PBSR**, the Pyramid
//!   Bitmap-encoded Safe Region (§4.2): blocked cells are recursively split
//!   into U×V children up to height `h`, giving finer granularity only
//!   where alarms actually are.
//!
//! Every representation implements [`SafeRegion`], the client-side
//! containment-monitoring interface whose costs
//! ([`SafeRegion::encoded_bits`], [`SafeRegion::worst_case_check_ops`])
//! drive the bandwidth and energy models of the evaluation.
//!
//! # Example
//!
//! ```
//! use sa_core::{MwpsrComputer, SafeRegion};
//! use sa_geometry::{MotionPdf, Point, Rect};
//!
//! # fn main() -> Result<(), sa_geometry::GeometryError> {
//! let cell = Rect::new(0.0, 0.0, 1_000.0, 1_000.0)?;
//! let alarm = Rect::new(700.0, 700.0, 900.0, 900.0)?;
//! let user = Point::new(300.0, 300.0);
//!
//! let computer = MwpsrComputer::new(MotionPdf::new(1.0, 32)?);
//! let region = computer.compute(user, 0.0, cell, &[alarm]);
//!
//! assert!(region.contains(user));
//! assert!(!region.rect().intersects_interior(&alarm));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bitvec;
mod monitor;
mod mwpsr;
pub mod oracle;
mod pyramid;

pub use bitvec::{BitVec, RankedBits};
pub use monitor::{RectSafeRegion, SafeRegion};
pub use mwpsr::MwpsrComputer;
pub use oracle::{differential_check, OracleViolation};
pub use pyramid::{BitmapSafeRegion, PyramidComputer, PyramidConfig};
