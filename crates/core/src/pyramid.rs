use crate::{BitVec, RankedBits, SafeRegion};
use sa_geometry::{Point, Rect, RectilinearRegion};

/// Parameters of the bitmap-encoded safe-region pyramid (§4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PyramidConfig {
    /// Horizontal split factor `U` (paper figures use 3).
    pub split_u: u32,
    /// Vertical split factor `V` (paper figures use 3).
    pub split_v: u32,
    /// Pyramid height `h`: number of recursive splits. `h = 1` is the
    /// Grid Bitmap-encoded Safe Region (GBSR); `h ≥ 2` is the Pyramid
    /// Bitmap-encoded Safe Region (PBSR).
    pub height: u32,
}

impl PyramidConfig {
    /// A 3×3 pyramid of the given height — the configuration of the
    /// paper's figures (GBSR at `h = 1`, Figure 3(d) at `h = 2`,
    /// Figure 6 uses `h = 5`).
    ///
    /// # Panics
    ///
    /// Panics when `height` is zero.
    pub fn three_by_three(height: u32) -> PyramidConfig {
        assert!(height >= 1, "pyramid height must be at least 1");
        PyramidConfig { split_u: 3, split_v: 3, height }
    }

    /// The single-level GBSR configuration with a `u × v` grid (Figure 3(b)
    /// uses 3×3; Figure 3(c) uses 9×9).
    pub fn gbsr(u: u32, v: u32) -> PyramidConfig {
        assert!(u >= 2 && v >= 2, "grid split factors must be at least 2");
        PyramidConfig { split_u: u, split_v: v, height: 1 }
    }

    fn validate(&self) {
        assert!(self.split_u >= 2 && self.split_v >= 2, "split factors must be at least 2");
        assert!(self.height >= 1, "pyramid height must be at least 1");
    }

    /// Children per split.
    fn fanout(&self) -> usize {
        (self.split_u * self.split_v) as usize
    }
}

/// Computes bitmap-encoded safe regions (GBSR for height 1, PBSR for
/// height ≥ 2) for a subscriber's grid cell.
///
/// A cell's bit is `1` when no relevant alarm region intersects its
/// interior ("the entire cell belongs to the safe region", Proposition 2);
/// otherwise the bit is `0` and — below the configured height — the cell is
/// split into `U × V` children encoded at the next level. Bits are laid out
/// level by level; within a level, blocked parents contribute their child
/// blocks in parent-bit order, each block in raster order (top row first,
/// matching Figure 3).
///
/// The stored representation is sparse: a blocked cell that lies entirely
/// inside a single alarm region is *solid* — all of its descendants are
/// zeros, so they are accounted (they exist in the paper's wire encoding
/// and count toward [`BitmapSafeRegion::bitmap_size`]) but never
/// materialized or tested. This keeps both computation and memory
/// proportional to the alarm *boundaries* rather than their areas, which
/// is what makes tall pyramids (h = 7) tractable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PyramidComputer {
    config: PyramidConfig,
}

/// One materialized pyramid level.
#[derive(Debug, Clone, PartialEq)]
struct Level {
    /// One bit per materialized cell (1 = safe).
    bits: RankedBits,
    /// One bit per *zero* of `bits`, in zero order: 1 when the blocked cell
    /// splits into materialized children at the next level, 0 when it is
    /// solid (fully inside one alarm region) or at the deepest level.
    split: RankedBits,
    /// Number of virtual (all-zero) bits this level contributes to the
    /// nominal wire encoding from solid ancestors.
    phantom_zeros: u64,
}

impl PyramidComputer {
    /// A computer with the given pyramid configuration.
    ///
    /// # Panics
    ///
    /// Panics on degenerate configurations (split factors < 2, height 0).
    pub fn new(config: PyramidConfig) -> PyramidComputer {
        config.validate();
        PyramidComputer { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> PyramidConfig {
        self.config
    }

    /// Encodes the safe region of `cell` given the relevant alarm regions
    /// intersecting it. Only alarm-region *interiors* block: an alarm that
    /// merely shares an edge with a sub-cell leaves it safe.
    pub fn compute(&self, cell: Rect, alarm_regions: &[Rect]) -> BitmapSafeRegion {
        self.compute_with_cost(cell, alarm_regions).0
    }

    /// Like [`PyramidComputer::compute`], also reporting the number of
    /// rectangle tests performed — the server-side cost the evaluation
    /// charges to safe-region computation.
    pub fn compute_with_cost(&self, cell: Rect, alarm_regions: &[Rect]) -> (BitmapSafeRegion, u64) {
        // Obstacles clipped to the cell, interiors only.
        let obstacles: Vec<Rect> = alarm_regions
            .iter()
            .filter_map(|r| r.intersection(cell))
            .filter(|c| c.area() > 0.0)
            .collect();
        let mut ops = alarm_regions.len() as u64 + 1;

        let root_free = !obstacles.iter().any(|o| cell.intersects_interior(o));
        let mut levels: Vec<Level> = Vec::new();
        if !root_free {
            let fanout = self.config.fanout();
            // Frontier of split (blocked, non-solid) cells with the indices
            // of the obstacles that intersect them.
            let all: Vec<u32> = (0..obstacles.len() as u32).collect();
            let mut frontier: Vec<(Rect, Vec<u32>)> = vec![(cell, all)];
            // Solid-or-phantom zero count at the previous level.
            let mut dark_parents: u64 = 0;
            for depth in 0..self.config.height {
                let is_last = depth + 1 == self.config.height;
                let mut bits = BitVec::with_capacity(frontier.len() * fanout);
                let mut split = BitVec::new();
                let mut next: Vec<(Rect, Vec<u32>)> = Vec::new();
                let mut dark_here: u64 = dark_parents * fanout as u64;
                for (parent, relevant) in &frontier {
                    for idx in 0..fanout {
                        let child = self.child_rect(*parent, idx);
                        let mut blocked = false;
                        let mut solid = false;
                        let mut child_obs: Vec<u32> = Vec::new();
                        for &oi in relevant {
                            ops += 1;
                            let o = &obstacles[oi as usize];
                            if child.intersects_interior(o) {
                                blocked = true;
                                if o.contains_rect(&child) {
                                    solid = true;
                                    break;
                                }
                                child_obs.push(oi);
                            }
                        }
                        bits.push(!blocked);
                        if blocked {
                            if solid || is_last {
                                split.push(false);
                                if !is_last {
                                    dark_here += 1;
                                }
                            } else {
                                split.push(true);
                                next.push((child, child_obs));
                            }
                        }
                    }
                }
                levels.push(Level {
                    bits: bits.into_ranked(),
                    split: split.into_ranked(),
                    phantom_zeros: dark_parents * fanout as u64,
                });
                // Dark parents for the next level: solid zeros here plus all
                // phantom zeros here.
                dark_parents = dark_here;
                frontier = next;
            }
        }
        (BitmapSafeRegion { cell, config: self.config, root_free, levels }, ops)
    }

    /// Raster index (top row first) of the child of `parent` containing
    /// `p`, clamped to the child grid.
    fn child_index(&self, parent: Rect, p: Point) -> usize {
        let u = self.config.split_u as usize;
        let v = self.config.split_v as usize;
        let w = parent.width() / u as f64;
        let h = parent.height() / v as f64;
        let col = (((p.x - parent.min_x()) / w) as usize).min(u - 1);
        let row_from_bottom = (((p.y - parent.min_y()) / h) as usize).min(v - 1);
        let row_from_top = v - 1 - row_from_bottom;
        row_from_top * u + col
    }

    /// The rect of child `index` (raster order) of `parent`. Shared edges
    /// between siblings are computed with identical expressions so the
    /// children tile the parent exactly despite floating-point rounding.
    fn child_rect(&self, parent: Rect, index: usize) -> Rect {
        let u = self.config.split_u as usize;
        let v = self.config.split_v as usize;
        let w = parent.width() / u as f64;
        let h = parent.height() / v as f64;
        let row_from_top = index / u;
        let col = index % u;
        let x_edge = |c: usize| {
            if c == u { parent.max_x() } else { parent.min_x() + c as f64 * w }
        };
        let y_edge = |r: usize| {
            if r == v { parent.min_y() } else { parent.max_y() - r as f64 * h }
        };
        Rect::new(
            x_edge(col),
            y_edge(row_from_top + 1),
            x_edge(col + 1),
            y_edge(row_from_top),
        )
        .expect("child rect is valid")
    }
}

/// A bitmap-encoded safe region (Definition 1): the wire object the server
/// ships to the client, supporting bounded-cost containment checks.
#[derive(Debug, Clone, PartialEq)]
pub struct BitmapSafeRegion {
    cell: Rect,
    config: PyramidConfig,
    /// True when the whole base cell is alarm-free (bitmap is the single
    /// bit `1`).
    root_free: bool,
    levels: Vec<Level>,
}

impl BitmapSafeRegion {
    /// The base grid cell this region refines.
    pub fn cell(&self) -> Rect {
        self.cell
    }

    /// The pyramid configuration used to encode the region.
    pub fn config(&self) -> PyramidConfig {
        self.config
    }

    /// True when the whole cell is safe (no intersecting alarms).
    pub fn is_whole_cell_free(&self) -> bool {
        self.root_free
    }

    /// Number of encoded pyramid levels (0 when the whole cell is free).
    pub fn level_count(&self) -> usize {
        self.levels.len()
    }

    /// Nominal bit count per level of the paper's wire encoding (including
    /// the all-zero blocks under solid cells).
    pub fn nominal_level_bits(&self) -> Vec<u64> {
        self.levels
            .iter()
            .map(|l| l.bits.len() as u64 + l.phantom_zeros)
            .collect()
    }

    /// Nominal zero count per level (materialized and phantom).
    pub fn nominal_level_zeros(&self) -> Vec<u64> {
        self.levels
            .iter()
            .map(|l| l.bits.count_zeros() as u64 + l.phantom_zeros)
            .collect()
    }

    /// Number of bits actually materialized in memory (the sparse
    /// representation's footprint).
    pub fn materialized_bits(&self) -> usize {
        self.levels.iter().map(|l| l.bits.len()).sum()
    }

    /// Coverage η(Ψs): ratio of safe-region area to grid-cell area
    /// (paper §4.2). Computed exactly from the bit structure.
    pub fn coverage(&self) -> f64 {
        if self.root_free {
            return 1.0;
        }
        let fanout = self.config.fanout() as f64;
        let mut covered = 0.0;
        let mut level_cell_fraction = 1.0;
        for level in &self.levels {
            level_cell_fraction /= fanout;
            covered += level.bits.count_ones() as f64 * level_cell_fraction;
        }
        covered
    }

    /// Decodes the bitmap back into the geometric safe region — the
    /// "pyramid bitmap decoding to obtain a geometrical shape" step the
    /// client runs once on receipt.
    pub fn decode(&self) -> RectilinearRegion {
        let computer = PyramidComputer::new(self.config);
        let mut rects = Vec::new();
        if self.root_free {
            rects.push(self.cell);
            return RectilinearRegion::from_rects(rects);
        }
        // Walk the materialized (split) tree; solid subtrees decode to
        // nothing (they are blocked).
        let mut frontier: Vec<Rect> = vec![self.cell];
        for level in &self.levels {
            let mut next = Vec::new();
            let mut bit = 0usize;
            for parent in &frontier {
                for idx in 0..self.config.fanout() {
                    let free = level.bits.get(bit).expect("level sized to frontier");
                    let rect = computer.child_rect(*parent, idx);
                    if free {
                        rects.push(rect);
                    } else {
                        let zrank = level.bits.rank_zeros(bit);
                        if level.split.get(zrank).expect("one split flag per zero") {
                            next.push(rect);
                        }
                    }
                    bit += 1;
                }
            }
            frontier = next;
        }
        RectilinearRegion::from_rects(rects)
    }

    /// Total bits in the paper's wire encoding: 1 root bit plus every level
    /// block (including all-zero blocks under solid cells) — the "bitmap
    /// size |B|" of Proposition 3 and the payload the bandwidth model
    /// charges.
    pub fn bitmap_size(&self) -> usize {
        1 + self.nominal_level_bits().iter().sum::<u64>() as usize
    }

    /// The full bitmap as a `0`/`1` string in the paper's layout (root bit,
    /// then level blocks), e.g. `"0 000011010 111001001..."` without the
    /// spaces. Reconstructs phantom zero blocks, so this is intended for
    /// examples and tests on small regions.
    pub fn to_bitstring(&self) -> String {
        let mut s = String::with_capacity(self.bitmap_size());
        s.push(if self.root_free { '1' } else { '0' });
        // Parents at the current level, in nominal order: Some(materialized
        // split marker) is implicit — we track, per nominal zero, whether it
        // splits (materialized children) or is dark (phantom children).
        #[derive(Clone, Copy)]
        enum ParentKind {
            Split,
            Dark,
        }
        let fanout = self.config.fanout();
        let mut parents = if self.root_free { vec![] } else { vec![ParentKind::Split] };
        for level in &self.levels {
            let mut next_parents = Vec::new();
            let mut bit = 0usize;
            for parent in &parents {
                match parent {
                    ParentKind::Split => {
                        for _ in 0..fanout {
                            let free = level.bits.get(bit).expect("bit in range");
                            s.push(if free { '1' } else { '0' });
                            if !free {
                                let zrank = level.bits.rank_zeros(bit);
                                let splits =
                                    level.split.get(zrank).expect("one split flag per zero");
                                next_parents
                                    .push(if splits { ParentKind::Split } else { ParentKind::Dark });
                            }
                            bit += 1;
                        }
                    }
                    ParentKind::Dark => {
                        for _ in 0..fanout {
                            s.push('0');
                            next_parents.push(ParentKind::Dark);
                        }
                    }
                }
            }
            parents = next_parents;
        }
        s
    }

    /// The full bitmap in the paper's nominal wire layout (root bit, then
    /// level blocks, phantom zero blocks under solid cells reconstructed) as
    /// a [`BitVec`] of exactly [`BitmapSafeRegion::bitmap_size`] bits — the
    /// payload a live server ships over a real transport.
    ///
    /// Word-parallel: materialized child blocks are appended via
    /// [`BitVec::extend_range`] (64 bits per shift pair), phantom zero
    /// blocks under solid cells via [`BitVec::push_zeros`], and parents are
    /// tracked as `(is_split, count)` runs so the walk's memory stays
    /// proportional to the materialized boundary, not the nominal encoding.
    /// [`BitmapSafeRegion::to_bitstring`] keeps the bit-by-bit walk and the
    /// tests pin the two paths equal.
    pub fn to_wire_bits(&self) -> BitVec {
        let mut bits = BitVec::with_capacity(self.bitmap_size());
        bits.push(self.root_free);
        let fanout = self.config.fanout();
        fn push_run(runs: &mut Vec<(bool, u64)>, is_split: bool, count: u64) {
            if count == 0 {
                return;
            }
            match runs.last_mut() {
                Some((kind, n)) if *kind == is_split => *n += count,
                _ => runs.push((is_split, count)),
            }
        }
        // Parents at the current level in nominal order, run-length
        // encoded; consecutive split parents own contiguous materialized
        // child blocks, so a whole run is appended in one bulk copy.
        let mut parents: Vec<(bool, u64)> =
            if self.root_free { Vec::new() } else { vec![(true, 1)] };
        for level in &self.levels {
            let mut next_parents: Vec<(bool, u64)> = Vec::new();
            let mut bit = 0usize;
            for &(is_split, run) in &parents {
                if !is_split {
                    let zeros = run * fanout as u64;
                    bits.push_zeros(zeros as usize);
                    push_run(&mut next_parents, false, zeros);
                    continue;
                }
                let block = run as usize * fanout;
                bits.extend_range(level.bits.as_bitvec(), bit, block);
                for i in bit..bit + block {
                    if level.bits.get(i).expect("bit in range") {
                        continue;
                    }
                    let zrank = level.bits.rank_zeros(i);
                    let splits = level.split.get(zrank).expect("one split flag per zero");
                    push_run(&mut next_parents, splits, 1);
                }
                bit += block;
            }
            parents = next_parents;
        }
        bits
    }

    /// Reconstructs a region from the nominal wire bits produced by
    /// [`BitmapSafeRegion::to_wire_bits`] for the given cell and
    /// configuration.
    ///
    /// The wire layout does not distinguish solid (all-descendants-dark)
    /// cells from blocked cells whose children were all individually
    /// blocked, so the reconstruction materializes every zero's child block
    /// down to the deepest level. The result is observationally identical
    /// to the encoder's region — same containment verdicts, same
    /// [`BitmapSafeRegion::bitmap_size`], same decoded geometry, same
    /// bitstring — but may hold a denser in-memory representation than the
    /// sparse original.
    ///
    /// # Errors
    ///
    /// Returns a description of the malformation when `bits` is not a
    /// well-formed encoding for `config` (wrong length for the pyramid
    /// structure it describes).
    pub fn from_wire_bits(
        cell: Rect,
        config: PyramidConfig,
        bits: &BitVec,
    ) -> Result<BitmapSafeRegion, String> {
        config.validate();
        let root_free = bits.get(0).ok_or_else(|| "empty bitmap".to_string())?;
        if root_free {
            if bits.len() != 1 {
                return Err(format!("free-cell bitmap must be 1 bit, got {}", bits.len()));
            }
            return Ok(BitmapSafeRegion { cell, config, root_free: true, levels: Vec::new() });
        }
        let fanout = config.fanout();
        let mut pos = 1usize;
        let mut prev_zeros = 1usize;
        let mut levels = Vec::with_capacity(config.height as usize);
        for depth in 0..config.height {
            let expect = prev_zeros * fanout;
            if pos + expect > bits.len() {
                return Err(format!("bitmap truncated at bit {}", bits.len()));
            }
            // Word-parallel level extraction: one bulk copy plus a popcount
            // instead of `expect` single-bit reads.
            let level_bits = bits.slice(pos, expect);
            pos += expect;
            let zeros = level_bits.count_zeros();
            let is_last = depth + 1 == config.height;
            let mut split = BitVec::with_capacity(zeros);
            if is_last {
                split.push_zeros(zeros);
            } else {
                split.push_ones(zeros);
            }
            levels.push(Level {
                bits: level_bits.into_ranked(),
                split: split.into_ranked(),
                phantom_zeros: 0,
            });
            prev_zeros = zeros;
        }
        if pos != bits.len() {
            return Err(format!("bitmap has {} trailing bits", bits.len() - pos));
        }
        Ok(BitmapSafeRegion { cell, config, root_free: false, levels })
    }

    /// Containment check with pyramid descent: at most `height` levels are
    /// examined (the client's "predefined worst-case number of
    /// computations"). Returns the number of levels descended alongside the
    /// verdict.
    pub fn contains_with_cost(&self, p: Point) -> (bool, usize) {
        if !self.cell.contains_point(p) {
            return (false, 1);
        }
        if self.root_free {
            return (true, 1);
        }
        let computer = PyramidComputer::new(self.config);
        let fanout = self.config.fanout();
        let mut parent = self.cell;
        // Bit offset of the current parent's child block within its level.
        let mut block_start = 0usize;
        for (depth, level) in self.levels.iter().enumerate() {
            let idx = computer.child_index(parent, p);
            let bit = block_start + idx;
            if level.bits.get(bit).expect("descent stays within the level") {
                return (true, depth + 1);
            }
            let zrank = level.bits.rank_zeros(bit);
            if !level.split.get(zrank).expect("one split flag per zero") {
                // Solid blocked cell or deepest level: conservatively
                // outside the safe region.
                return (false, depth + 1);
            }
            // The child block at the next level comes after the blocks of
            // all earlier *split* zeros.
            let splits_before = zrank - level.split.rank_zeros(zrank);
            block_start = splits_before * fanout;
            parent = computer.child_rect(parent, idx);
        }
        (false, self.levels.len().max(1))
    }
}

impl SafeRegion for BitmapSafeRegion {
    fn contains(&self, p: Point) -> bool {
        self.contains_with_cost(p).0
    }

    fn encoded_bits(&self) -> usize {
        self.bitmap_size()
    }

    fn worst_case_check_ops(&self) -> usize {
        // Cell bounds check (4 comparisons) plus one indexed bit probe per
        // pyramid level.
        4 + self.config.height as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(a: f64, b: f64, c: f64, d: f64) -> Rect {
        Rect::new(a, b, c, d).unwrap()
    }

    /// The Figure 3 worked example: a cell whose 3×3 split yields the
    /// bitmap pattern
    /// ```text
    /// 0 0 0
    /// 0 1 1
    /// 0 1 0
    /// ```
    /// (top row first), i.e. six blocked level-1 cells.
    fn figure3_scenario() -> (Rect, Vec<Rect>) {
        let cell = r(0.0, 0.0, 9.0, 9.0);
        let alarms = vec![
            r(0.0, 6.5, 9.0, 9.0),  // blocks the whole top row
            r(0.5, 3.5, 1.5, 5.0),  // blocks middle-left
            r(0.5, 1.0, 1.5, 2.0),  // blocks bottom-left
            r(7.0, 1.0, 8.0, 2.0),  // blocks bottom-right
        ];
        (cell, alarms)
    }

    #[test]
    fn whole_free_cell_is_one_bit() {
        let c = PyramidComputer::new(PyramidConfig::three_by_three(3));
        let region = c.compute(r(0.0, 0.0, 9.0, 9.0), &[]);
        assert!(region.is_whole_cell_free());
        assert_eq!(region.bitmap_size(), 1);
        assert_eq!(region.to_bitstring(), "1");
        assert_eq!(region.coverage(), 1.0);
        assert!(region.contains(Point::new(4.0, 4.0)));
    }

    #[test]
    fn figure3b_gbsr_bitmap_matches_paper() {
        let (cell, alarms) = figure3_scenario();
        let c = PyramidComputer::new(PyramidConfig::three_by_three(1));
        let region = c.compute(cell, &alarms);
        // Figure 3(b): bitmap 0 000011010.
        assert_eq!(region.to_bitstring(), "0000011010");
        assert_eq!(region.bitmap_size(), 10);
    }

    #[test]
    fn figure3c_9x9_gbsr_uses_82_bits() {
        let (cell, alarms) = figure3_scenario();
        let c = PyramidComputer::new(PyramidConfig::gbsr(9, 9));
        let region = c.compute(cell, &alarms);
        // "the GBSR approach requires 82 bits, 1 bit for the entire cell
        // and 81 bits for the 9×9 grid"
        assert_eq!(region.bitmap_size(), 82);
    }

    #[test]
    fn figure3d_pbsr_h2_uses_64_bits() {
        let (cell, alarms) = figure3_scenario();
        let c = PyramidComputer::new(PyramidConfig::three_by_three(2));
        let region = c.compute(cell, &alarms);
        // "the PBSR approach requires only 64 bits, 1 bit for the entire
        // cell, 9 bits for the cells at level 1 and 54 bits for the cells
        // at level 2"
        assert_eq!(region.nominal_level_bits(), vec![9, 54]);
        assert_eq!(region.bitmap_size(), 64);
    }

    #[test]
    fn pbsr_coverage_never_decreases_with_height() {
        let (cell, alarms) = figure3_scenario();
        let mut prev = 0.0;
        for h in 1..=6 {
            let c = PyramidComputer::new(PyramidConfig::three_by_three(h));
            let cov = c.compute(cell, &alarms).coverage();
            assert!(cov >= prev - 1e-12, "h={h}: coverage {cov} < {prev}");
            assert!((0.0..=1.0).contains(&cov));
            prev = cov;
        }
        // With a fine pyramid, coverage approaches the true free fraction.
        assert!(prev > 0.5);
    }

    #[test]
    fn containment_agrees_with_decoded_region() {
        let (cell, alarms) = figure3_scenario();
        let c = PyramidComputer::new(PyramidConfig::three_by_three(3));
        let region = c.compute(cell, &alarms);
        let decoded = region.decode();
        for i in 0..40 {
            for j in 0..40 {
                let p = Point::new(0.1 + i as f64 * 0.22, 0.1 + j as f64 * 0.22);
                assert_eq!(
                    region.contains(p),
                    decoded.contains_point(p),
                    "disagreement at {p}"
                );
            }
        }
    }

    #[test]
    fn safe_cells_never_touch_alarm_interiors() {
        let (cell, alarms) = figure3_scenario();
        for h in 1..=4 {
            let c = PyramidComputer::new(PyramidConfig::three_by_three(h));
            let decoded = c.compute(cell, &alarms).decode();
            for alarm in &alarms {
                assert!(
                    !decoded.intersects_interior(alarm),
                    "h={h}: safe region overlaps alarm {alarm}"
                );
            }
        }
    }

    #[test]
    fn decoded_area_matches_coverage() {
        let (cell, alarms) = figure3_scenario();
        let c = PyramidComputer::new(PyramidConfig::three_by_three(3));
        let region = c.compute(cell, &alarms);
        let decoded = region.decode();
        assert!((decoded.area() / cell.area() - region.coverage()).abs() < 1e-12);
    }

    #[test]
    fn check_cost_is_bounded_by_height() {
        let (cell, alarms) = figure3_scenario();
        let c = PyramidComputer::new(PyramidConfig::three_by_three(4));
        let region = c.compute(cell, &alarms);
        for i in 0..20 {
            let p = Point::new(i as f64 * 0.45, 9.0 - i as f64 * 0.45);
            let (_, cost) = region.contains_with_cost(p);
            assert!(cost <= 4, "descent cost {cost} exceeds height");
        }
        assert!(region.worst_case_check_ops() >= 4 + 4);
    }

    #[test]
    fn point_outside_cell_is_never_contained() {
        let (cell, alarms) = figure3_scenario();
        let c = PyramidComputer::new(PyramidConfig::three_by_three(2));
        let region = c.compute(cell, &alarms);
        assert!(!region.contains(Point::new(-1.0, 4.0)));
        assert!(!region.contains(Point::new(4.0, 10.0)));
    }

    #[test]
    fn fully_blocked_cell_has_zero_coverage_and_stays_sparse() {
        let cell = r(0.0, 0.0, 9.0, 9.0);
        let c = PyramidComputer::new(PyramidConfig::three_by_three(5));
        let (region, ops) = c.compute_with_cost(cell, &[r(-1.0, -1.0, 10.0, 10.0)]);
        assert_eq!(region.coverage(), 0.0);
        assert!(!region.contains(Point::new(4.5, 4.5)));
        assert!(region.decode().is_empty());
        // The nominal encoding includes every phantom level…
        assert_eq!(region.bitmap_size(), 1 + 9 + 81 + 729 + 6561 + 59049);
        // …but only the first level is materialized and the computation
        // tested a handful of rectangles.
        assert_eq!(region.materialized_bits(), 9);
        assert!(ops < 30, "ops {ops}");
    }

    #[test]
    fn gbsr_is_pbsr_height_one() {
        let (cell, alarms) = figure3_scenario();
        let a = PyramidComputer::new(PyramidConfig::three_by_three(1)).compute(cell, &alarms);
        let b = PyramidComputer::new(PyramidConfig { split_u: 3, split_v: 3, height: 1 })
            .compute(cell, &alarms);
        assert_eq!(a, b);
    }

    #[test]
    fn nominal_bitmap_structure_matches_proposition_2() {
        let (cell, alarms) = figure3_scenario();
        for h in 2..=5 {
            let region =
                PyramidComputer::new(PyramidConfig::three_by_three(h)).compute(cell, &alarms);
            // Each level holds 9 bits per nominal zero of the level above
            // (the root counts as the single level-0 zero).
            let bits = region.nominal_level_bits();
            let zeros = region.nominal_level_zeros();
            let mut blocked = 1u64;
            for (level_bits, level_zeros) in bits.iter().zip(zeros.iter()) {
                assert_eq!(*level_bits, blocked * 9);
                blocked = *level_zeros;
            }
            let expected: u64 = 1 + bits.iter().sum::<u64>();
            assert_eq!(region.bitmap_size() as u64, expected);
        }
    }

    #[test]
    fn bitstring_length_matches_bitmap_size() {
        let (cell, alarms) = figure3_scenario();
        for h in 1..=4 {
            let region =
                PyramidComputer::new(PyramidConfig::three_by_three(h)).compute(cell, &alarms);
            assert_eq!(region.to_bitstring().len(), region.bitmap_size(), "h={h}");
        }
    }

    #[test]
    fn solid_fast_path_does_not_change_semantics() {
        // A cell with one alarm fully covering a sub-region: the solid fast
        // path must produce the same containment answers as brute force.
        let cell = r(0.0, 0.0, 9.0, 9.0);
        let alarms = vec![r(0.0, 0.0, 6.0, 6.0), r(7.0, 7.0, 8.5, 8.8)];
        let region = PyramidComputer::new(PyramidConfig::three_by_three(3)).compute(cell, &alarms);
        for i in 0..30 {
            for j in 0..30 {
                let p = Point::new(0.15 + i as f64 * 0.3, 0.15 + j as f64 * 0.3);
                let truly_safe = !alarms.iter().any(|a| a.contains_point_strict(p));
                if region.contains(p) {
                    assert!(truly_safe, "unsafe point {p} reported safe");
                }
            }
        }
        // Points well inside the fully-solid quadrant are blocked.
        assert!(!region.contains(Point::new(3.0, 3.0)));
        // Points in the free corner are safe.
        assert!(region.contains(Point::new(6.5, 2.0)));
    }

    #[test]
    fn edge_touching_alarm_leaves_cell_safe() {
        let cell = r(0.0, 0.0, 9.0, 9.0);
        // Alarm exactly covering the left third shares an edge with the
        // middle third: the middle column must stay safe.
        let alarm = r(0.0, 0.0, 3.0, 9.0);
        let region = PyramidComputer::new(PyramidConfig::three_by_three(1)).compute(cell, &[alarm]);
        assert!(region.contains(Point::new(4.5, 4.5)));
        assert!(!region.contains(Point::new(1.5, 4.5)));
        assert!((region.coverage() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn deep_pyramid_over_dense_alarms_stays_fast() {
        // The pathological case that motivates the sparse representation:
        // large alarms covering much of the cell at height 7.
        let cell = r(0.0, 0.0, 1_581.0, 1_581.0);
        let alarms: Vec<Rect> = (0..12)
            .map(|i| {
                let x = (i % 4) as f64 * 380.0 + 30.0;
                let y = (i / 4) as f64 * 500.0 + 40.0;
                r(x, y, x + 320.0, y + 300.0)
            })
            .collect();
        let start = std::time::Instant::now();
        let (region, ops) = PyramidComputer::new(PyramidConfig::three_by_three(7))
            .compute_with_cost(cell, &alarms);
        let elapsed = start.elapsed();
        assert!(
            elapsed < std::time::Duration::from_millis(800),
            "h=7 computation took {elapsed:?}"
        );
        // Materialized bits stay boundary-proportional while the nominal
        // encoding is orders of magnitude larger.
        assert!(region.materialized_bits() < 2_000_000);
        assert!(ops > 0);
        assert!(region.coverage() > 0.2 && region.coverage() < 0.9);
    }

    #[test]
    #[should_panic(expected = "height must be at least 1")]
    fn rejects_zero_height() {
        PyramidComputer::new(PyramidConfig { split_u: 3, split_v: 3, height: 0 });
    }

    #[test]
    fn wire_bits_match_bitstring_and_round_trip() {
        let (cell, alarms) = figure3_scenario();
        for h in 1..=4 {
            let config = PyramidConfig::three_by_three(h);
            let region = PyramidComputer::new(config).compute(cell, &alarms);
            let wire = region.to_wire_bits();
            assert_eq!(wire.len(), region.bitmap_size(), "h={h}");
            assert_eq!(wire.to_bitstring(), region.to_bitstring(), "h={h}");
            let back = BitmapSafeRegion::from_wire_bits(cell, config, &wire).unwrap();
            assert_eq!(back.bitmap_size(), region.bitmap_size());
            assert_eq!(back.to_bitstring(), region.to_bitstring());
            for i in 0..30 {
                for j in 0..30 {
                    let p = Point::new(0.12 + i as f64 * 0.3, 0.14 + j as f64 * 0.3);
                    assert_eq!(region.contains(p), back.contains(p), "h={h} at {p}");
                }
            }
        }
    }

    #[test]
    fn wire_round_trip_preserves_solid_subtrees_observably() {
        // The solid fast path makes the encoder sparse; the decoder
        // materializes those subtrees but must not change any verdict.
        let cell = r(0.0, 0.0, 9.0, 9.0);
        let alarms = vec![r(-1.0, -1.0, 6.0, 6.0), r(7.0, 7.0, 8.5, 8.8)];
        let config = PyramidConfig::three_by_three(3);
        let region = PyramidComputer::new(config).compute(cell, &alarms);
        let back = BitmapSafeRegion::from_wire_bits(cell, config, &region.to_wire_bits()).unwrap();
        assert!((back.coverage() - region.coverage()).abs() < 1e-12);
        assert_eq!(back.decode().area(), region.decode().area());
        assert!(back.materialized_bits() >= region.materialized_bits());
    }

    #[test]
    fn malformed_wire_bits_are_rejected() {
        let cell = r(0.0, 0.0, 9.0, 9.0);
        let config = PyramidConfig::three_by_three(2);
        assert!(BitmapSafeRegion::from_wire_bits(cell, config, &BitVec::new()).is_err());
        // A free root with trailing bits is malformed.
        let mut bits = BitVec::new();
        bits.push(true);
        bits.push(false);
        assert!(BitmapSafeRegion::from_wire_bits(cell, config, &bits).is_err());
        // A blocked root with too few level bits is truncated.
        let mut bits = BitVec::new();
        bits.push(false);
        for _ in 0..5 {
            bits.push(true);
        }
        assert!(BitmapSafeRegion::from_wire_bits(cell, config, &bits).is_err());
    }
}
