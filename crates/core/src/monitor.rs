use sa_geometry::{Point, Rect};

/// The client-side view of a safe region: a compact structure received from
/// the server that the mobile device checks its position against on every
/// GPS fix.
///
/// The two cost accessors drive the evaluation's resource models:
///
/// - [`SafeRegion::encoded_bits`] — the downstream payload size charged to
///   the server-to-client bandwidth (Figure 6(b)),
/// - [`SafeRegion::worst_case_check_ops`] — the bounded per-check client
///   work charged to the energy model (Figures 5(b), 6(c)).
pub trait SafeRegion {
    /// True while the subscriber may stay silent: no relevant alarm can
    /// trigger at `p`.
    fn contains(&self, p: Point) -> bool;

    /// Size of the wire encoding in bits.
    fn encoded_bits(&self) -> usize;

    /// Upper bound on the number of primitive comparisons one containment
    /// check costs on the client.
    fn worst_case_check_ops(&self) -> usize;
}

/// A rectangular safe region — the output of the maximum weighted perimeter
/// computation (§3). Ships as four 32-bit coordinates and checks with four
/// comparisons, the cheapest possible monitoring for weak clients.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RectSafeRegion {
    rect: Rect,
}

impl RectSafeRegion {
    /// Wraps a computed safe-region rectangle.
    pub fn new(rect: Rect) -> RectSafeRegion {
        RectSafeRegion { rect }
    }

    /// The safe rectangle.
    pub fn rect(&self) -> Rect {
        self.rect
    }
}

impl SafeRegion for RectSafeRegion {
    fn contains(&self, p: Point) -> bool {
        self.rect.contains_point(p)
    }

    fn encoded_bits(&self) -> usize {
        // Two corner points at 32-bit fixed-point precision each.
        4 * 32
    }

    fn worst_case_check_ops(&self) -> usize {
        4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rect_region_contains_matches_rect() {
        let r = RectSafeRegion::new(Rect::new(0.0, 0.0, 10.0, 10.0).unwrap());
        assert!(r.contains(Point::new(5.0, 5.0)));
        assert!(r.contains(Point::new(10.0, 10.0)));
        assert!(!r.contains(Point::new(10.1, 5.0)));
    }

    #[test]
    fn rect_region_costs_are_constant() {
        let r = RectSafeRegion::new(Rect::new(0.0, 0.0, 1.0, 1.0).unwrap());
        assert_eq!(r.encoded_bits(), 128);
        assert_eq!(r.worst_case_check_ops(), 4);
    }

    #[test]
    fn trait_object_usability() {
        let r = RectSafeRegion::new(Rect::new(0.0, 0.0, 1.0, 1.0).unwrap());
        let dyn_region: &dyn SafeRegion = &r;
        assert!(dyn_region.contains(Point::new(0.5, 0.5)));
    }
}
