//! Brute-force reference oracles for safe-region soundness.
//!
//! The paper's entire correctness argument rests on one invariant (§2):
//! a safe region must contain **no point strictly inside an unfired
//! relevant alarm region** — while the client stays inside it, silence
//! can never miss a firing. The computers in this crate establish that
//! invariant cleverly (dynamic skylines, pyramid recursion); this
//! module re-establishes it stupidly, by exhaustive enumeration, so the
//! clever code can be checked against code too simple to be wrong.
//!
//! Two reference checks:
//!
//! * [`check_sound`] — sample an (n+1)×(n+1) lattice over the cell and
//!   verify every point the region claims safe is outside every
//!   obstacle's interior.
//! * [`reference_free_mask`] — the finest-granularity free/blocked mask
//!   a bitmap region of side `s` may legally claim, computed by direct
//!   rectangle intersection with no pyramid recursion; compared
//!   per-subcell against the real [`BitmapSafeRegion`] by
//!   [`check_bitmap_against_mask`].
//!
//! [`differential_check`] bundles them: one (position, cell, obstacle
//! set) run through MWPSR, GBSR (height 1) and PBSR (height ≥ 2), every
//! region checked against both oracles. `sa-verify` fuzzes thousands of
//! these per CI run.

use crate::{BitmapSafeRegion, MwpsrComputer, PyramidComputer, PyramidConfig, SafeRegion};
use sa_geometry::{Point, Rect};

/// One oracle failure: which check tripped, where, and against what.
#[derive(Debug, Clone, PartialEq)]
pub struct OracleViolation {
    /// Which algorithm produced the unsound region.
    pub algo: &'static str,
    /// What the oracle was checking when it tripped.
    pub check: &'static str,
    /// The point the region wrongly claims safe.
    pub point: Point,
    /// The obstacle whose interior contains (or subcell that overlaps)
    /// the point.
    pub obstacle: Rect,
}

impl std::fmt::Display for OracleViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} failed the {} oracle: claims ({:.3}, {:.3}) safe inside obstacle \
             [{:.3}, {:.3}]x[{:.3}, {:.3}]",
            self.algo,
            self.check,
            self.point.x,
            self.point.y,
            self.obstacle.min_x(),
            self.obstacle.min_y(),
            self.obstacle.max_x(),
            self.obstacle.max_y(),
        )
    }
}

impl std::error::Error for OracleViolation {}

/// The (n+1)×(n+1) sample lattice over `cell`, boundary included.
pub fn lattice(cell: Rect, n: usize) -> Vec<Point> {
    let n = n.max(1);
    let mut points = Vec::with_capacity((n + 1) * (n + 1));
    for row in 0..=n {
        for col in 0..=n {
            points.push(Point::new(
                cell.min_x() + cell.width() * col as f64 / n as f64,
                cell.min_y() + cell.height() * row as f64 / n as f64,
            ));
        }
    }
    points
}

/// Lattice soundness: every sampled point the region claims safe lies
/// outside every obstacle's interior (boundary contact is legal — an
/// alarm triggers on *strict* containment).
///
/// # Errors
///
/// The first violating (point, obstacle) pair.
pub fn check_sound(
    algo: &'static str,
    region: &dyn SafeRegion,
    cell: Rect,
    obstacles: &[Rect],
    n: usize,
) -> Result<(), OracleViolation> {
    for p in lattice(cell, n) {
        if !region.contains(p) {
            continue;
        }
        for &obstacle in obstacles {
            if obstacle.contains_point_strict(p) {
                return Err(OracleViolation { algo, check: "lattice", point: p, obstacle });
            }
        }
    }
    Ok(())
}

/// The finest-granularity reference mask: subcell `(row, col)` of an
/// `side`×`side` split of `cell` is free iff no obstacle intersects its
/// interior. Row-major, index `row * side + col`.
///
/// This is the most permissive mask a sound bitmap region of that
/// granularity may claim — computed by direct rectangle intersection,
/// sharing no code with the pyramid recursion it cross-checks.
pub fn reference_free_mask(cell: Rect, obstacles: &[Rect], side: u32) -> Vec<bool> {
    let side = side.max(1);
    let w = cell.width() / f64::from(side);
    let h = cell.height() / f64::from(side);
    let mut mask = Vec::with_capacity((side * side) as usize);
    for row in 0..side {
        for col in 0..side {
            let sub = Rect::new(
                cell.min_x() + w * f64::from(col),
                cell.min_y() + h * f64::from(row),
                cell.min_x() + w * f64::from(col + 1),
                cell.min_y() + h * f64::from(row + 1),
            )
            .expect("subcells of a valid cell are valid");
            mask.push(!obstacles.iter().any(|o| o.intersects_interior(&sub)));
        }
    }
    mask
}

/// Bitmap soundness against the reference mask: a subcell the bitmap
/// claims free (its center is contained) must be free in the reference
/// mask of the bitmap's own finest granularity. The converse is *not*
/// required — coarse pyramid levels may block free subcells.
///
/// # Errors
///
/// The first subcell the bitmap wrongly frees.
pub fn check_bitmap_against_mask(
    algo: &'static str,
    region: &BitmapSafeRegion,
    obstacles: &[Rect],
) -> Result<(), OracleViolation> {
    let cfg = region.config();
    let cell = region.cell();
    // three_by_three splits u×v per level; the finest grid is u^h × v^h.
    // The configs used on the wire are square (u == v), which keeps the
    // reference mask square too.
    let side = cfg.split_u.pow(cfg.height).max(cfg.split_v.pow(cfg.height));
    let mask = reference_free_mask(cell, obstacles, side);
    let w = cell.width() / f64::from(side);
    let h = cell.height() / f64::from(side);
    for row in 0..side {
        for col in 0..side {
            let center = Point::new(
                cell.min_x() + w * (f64::from(col) + 0.5),
                cell.min_y() + h * (f64::from(row) + 0.5),
            );
            if region.contains(center) && !mask[(row * side + col) as usize] {
                let sub = Rect::new(
                    cell.min_x() + w * f64::from(col),
                    cell.min_y() + h * f64::from(row),
                    cell.min_x() + w * f64::from(col + 1),
                    cell.min_y() + h * f64::from(row + 1),
                )
                .expect("subcells of a valid cell are valid");
                return Err(OracleViolation { algo, check: "free-mask", point: center, obstacle: sub });
            }
        }
    }
    Ok(())
}

/// Sampling density of the differential lattice oracle (per cell side).
pub const DIFFERENTIAL_LATTICE_N: usize = 54;

/// One differential oracle case: compute MWPSR, GBSR (height 1) and
/// PBSR at `pbsr_height` for the same (position, heading, cell,
/// obstacles) and check every region against both brute-force oracles.
/// MWPSR is additionally required to be rectangle-disjoint from every
/// obstacle interior and to stay inside the cell.
///
/// # Errors
///
/// The first violation any algorithm produces.
pub fn differential_check(
    pos: Point,
    heading: f64,
    cell: Rect,
    obstacles: &[Rect],
    pbsr_height: u32,
) -> Result<(), OracleViolation> {
    let mwpsr = MwpsrComputer::non_weighted().compute(pos, heading, cell, obstacles);
    let rect = mwpsr.rect();
    for &obstacle in obstacles {
        if rect.intersects_interior(&obstacle) {
            return Err(OracleViolation {
                algo: "mwpsr",
                check: "rect-disjoint",
                point: rect.center(),
                obstacle,
            });
        }
    }
    if !cell.contains_rect(&rect) {
        return Err(OracleViolation {
            algo: "mwpsr",
            check: "in-cell",
            point: rect.center(),
            obstacle: cell,
        });
    }
    check_sound("mwpsr", &mwpsr, cell, obstacles, DIFFERENTIAL_LATTICE_N)?;

    let gbsr = PyramidComputer::new(PyramidConfig::three_by_three(1)).compute(cell, obstacles);
    check_bitmap_against_mask("gbsr", &gbsr, obstacles)?;
    check_sound("gbsr", &gbsr, cell, obstacles, DIFFERENTIAL_LATTICE_N)?;

    let pbsr = PyramidComputer::new(PyramidConfig::three_by_three(pbsr_height.max(2)))
        .compute(cell, obstacles);
    check_bitmap_against_mask("pbsr", &pbsr, obstacles)?;
    check_sound("pbsr", &pbsr, cell, obstacles, DIFFERENTIAL_LATTICE_N)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell() -> Rect {
        Rect::new(0.0, 0.0, 900.0, 900.0).unwrap()
    }

    #[test]
    fn lattice_covers_cell_corners() {
        let pts = lattice(cell(), 3);
        assert_eq!(pts.len(), 16);
        assert_eq!(pts[0], Point::new(0.0, 0.0));
        assert_eq!(pts[15], Point::new(900.0, 900.0));
    }

    #[test]
    fn reference_mask_blocks_exactly_the_touched_subcells() {
        // An obstacle covering the center ninth of a 3×3 split.
        let obstacle = Rect::new(350.0, 350.0, 550.0, 550.0).unwrap();
        let mask = reference_free_mask(cell(), &[obstacle], 3);
        let blocked: Vec<usize> =
            mask.iter().enumerate().filter(|(_, free)| !**free).map(|(i, _)| i).collect();
        assert_eq!(blocked, vec![4], "only the center subcell intersects the obstacle");
    }

    #[test]
    fn edge_aligned_obstacle_does_not_block_the_neighbor() {
        // Obstacle exactly on the 300 m gridline: interior-disjoint from
        // the left column.
        let obstacle = Rect::new(300.0, 0.0, 600.0, 900.0).unwrap();
        let mask = reference_free_mask(cell(), &[obstacle], 3);
        assert!(mask[0] && mask[3] && mask[6], "left column stays free");
        assert!(!mask[1] && !mask[4] && !mask[7], "middle column is blocked");
    }

    #[test]
    fn differential_check_passes_on_real_computers() {
        let obstacles = vec![
            Rect::new(700.0, 700.0, 850.0, 850.0).unwrap(),
            Rect::new(100.0, 500.0, 220.0, 640.0).unwrap(),
            Rect::new(400.0, 0.0, 500.0, 90.0).unwrap(),
        ];
        differential_check(Point::new(300.0, 300.0), 0.7, cell(), &obstacles, 2)
            .expect("the shipped computers must satisfy their own oracle");
    }

    #[test]
    fn lattice_oracle_catches_an_unsound_region() {
        // A rect region that plows straight through an obstacle.
        let region = crate::RectSafeRegion::new(cell());
        let obstacle = Rect::new(400.0, 400.0, 500.0, 500.0).unwrap();
        let err = check_sound("bogus", &region, cell(), &[obstacle], 30)
            .expect_err("a region covering an obstacle must fail");
        assert_eq!(err.check, "lattice");
        assert!(obstacle.contains_point_strict(err.point));
    }
}
