use crate::RectSafeRegion;
use sa_geometry::{MotionPdf, Point, Quadrant, Rect, FULL_TURN};

/// Maximum Weighted Perimeter rectangular Safe Region computation (§3).
///
/// The algorithm follows the paper's four steps:
///
/// 1. **Candidate points** — every relevant alarm region intersecting the
///    grid cell contributes, in each quadrant its interior reaches, the
///    corner of the region nearest the subscriber (clamped to the quadrant
///    axes, which is exactly what lets the algorithm handle *overlapping*
///    and *axis-crossing* alarm regions — the fix over Hu et al. \[10\]).
///    Candidates that fully dominate another candidate are pruned.
/// 2. **Tension points** — each surviving candidate `C_i` (sorted by
///    increasing x-distance) yields a maximal feasible corner with the
///    x-coordinate of `C_i` and the y-coordinate of `C_{i-1}` (the cell
///    boundary for `i = 0`), plus the final corner at the cell boundary.
/// 3. **Component rectangles** — each tension point spans a component
///    rectangle between the subscriber and that corner.
/// 4. **Greedy assembly** — quadrants are processed in decreasing order of
///    steady-motion probability mass; within each, the component rectangle
///    maximizing the weighted perimeter of the (partial) intersection is
///    chosen, and the four choices intersect into the final safe region.
///
/// The *weighted perimeter* of a rectangle around the subscriber weights
/// each side's length by the steady-motion probability density of the
/// angular sector the side subtends (normalized so that the uniform density
/// yields the plain perimeter — the non-weighted approach of Figure 4(a)).
///
/// If the subscriber currently lies *inside* one or more alarm regions
/// (they trigger on entry), the computation domain becomes the intersection
/// of those regions with the cell, per §2.1(ii), and the remaining regions
/// are treated as obstacles inside that domain.
#[derive(Debug, Clone)]
pub struct MwpsrComputer {
    pdf: MotionPdf,
}

impl MwpsrComputer {
    /// A computer weighting perimeters by the given steady-motion density.
    pub fn new(pdf: MotionPdf) -> MwpsrComputer {
        MwpsrComputer { pdf }
    }

    /// The non-weighted maximum perimeter variant (uniform density).
    pub fn non_weighted() -> MwpsrComputer {
        MwpsrComputer { pdf: MotionPdf::uniform() }
    }

    /// The motion density in use.
    pub fn pdf(&self) -> &MotionPdf {
        &self.pdf
    }

    /// The Hu–Xu–Lee \[10\]-style computation the paper improves upon: alarm
    /// regions are reduced to corner candidates *clamped onto the quadrant
    /// axes* with no special handling for regions that straddle an axis or
    /// contain the subscriber. As §5 notes, "the approach presented in \[10\]
    /// leads to alarm misses and erroneous safe regions in such scenarios"
    /// — this method exists to reproduce that failure in the ablation
    /// benchmarks and must not be used for correct processing.
    ///
    /// # Panics
    ///
    /// Panics when `user` lies outside `cell`.
    pub fn compute_hu_xu_lee(
        &self,
        user: Point,
        heading: f64,
        cell: Rect,
        alarm_regions: &[Rect],
    ) -> RectSafeRegion {
        assert!(cell.contains_point(user), "subscriber must be inside its grid cell");
        // No domain handling: containing regions are ignored outright.
        let obstacles: Vec<Rect> = alarm_regions
            .iter()
            .filter(|r| !r.contains_point_strict(user))
            .filter_map(|r| r.intersection(cell))
            .filter(|c| c.area() > 0.0)
            .collect();
        if obstacles.is_empty() {
            return RectSafeRegion::new(cell);
        }
        let corners: [Vec<Corner>; 4] = [
            legacy_quadrant_corners(user, cell, &obstacles, Quadrant::I),
            legacy_quadrant_corners(user, cell, &obstacles, Quadrant::II),
            legacy_quadrant_corners(user, cell, &obstacles, Quadrant::III),
            legacy_quadrant_corners(user, cell, &obstacles, Quadrant::IV),
        ];
        let rect = self.assemble(user, heading, cell, &corners);
        RectSafeRegion::new(rect)
    }

    /// Computes the safe region for a subscriber at `user` heading
    /// `heading` radians, inside grid cell `cell`, given the relevant alarm
    /// regions intersecting the cell.
    ///
    /// The result always contains `user`, lies within `cell` (and within
    /// every alarm region currently containing `user`), and shares no
    /// interior point with any alarm region that does **not** contain
    /// `user`.
    ///
    /// # Panics
    ///
    /// Panics when `user` lies outside `cell`.
    pub fn compute(
        &self,
        user: Point,
        heading: f64,
        cell: Rect,
        alarm_regions: &[Rect],
    ) -> RectSafeRegion {
        assert!(cell.contains_point(user), "subscriber must be inside its grid cell");

        // §2.1(ii): regions already containing the user bound the domain.
        // Containment is *strict* — alarm regions trigger on interior entry,
        // so a region merely touching the user's position is still an
        // unfired obstacle the safe region must exclude.
        let mut domain = cell;
        for r in alarm_regions {
            if r.contains_point_strict(user) {
                domain = domain
                    .intersection(*r)
                    .expect("regions containing the user intersect the cell at the user");
            }
        }

        // Remaining regions become obstacles, clipped to the domain; only
        // interiors block.
        let obstacles: Vec<Rect> = alarm_regions
            .iter()
            .filter(|r| !r.contains_point_strict(user))
            .filter_map(|r| r.intersection(domain))
            .filter(|c| c.area() > 0.0)
            .collect();

        if obstacles.is_empty() {
            return RectSafeRegion::new(domain);
        }

        // Per-quadrant maximal corners (steps 1-3).
        let corners: [Vec<Corner>; 4] = [
            quadrant_corners(user, domain, &obstacles, Quadrant::I),
            quadrant_corners(user, domain, &obstacles, Quadrant::II),
            quadrant_corners(user, domain, &obstacles, Quadrant::III),
            quadrant_corners(user, domain, &obstacles, Quadrant::IV),
        ];

        // Step 4: greedy assembly, then the maximality repair: the greedy
        // quadrant assembly is feasible but can leave slack when one
        // quadrant's cap makes another quadrant's constraint non-binding
        // (the intersection step of the paper's heuristic has the same
        // property). Repair grows every side to its true limit given the
        // other three.
        let rect = self.assemble(user, heading, domain, &corners);
        let rect = expand_to_maximal(rect, domain, &obstacles);
        debug_assert!(
            obstacles.iter().all(|o| !rect.intersects_interior(o)),
            "safe region must avoid all obstacle interiors"
        );
        RectSafeRegion::new(rect)
    }

    /// Step 4: greedy assembly in decreasing quadrant-probability order.
    /// Bounds relative to the user in [east, north, west, south] order;
    /// each bound keeps the exact absolute coordinate it came from
    /// (obstacle or domain edge) so the final rectangle touches — never
    /// crosses — its constraints despite floating-point rounding.
    fn assemble(&self, user: Point, heading: f64, domain: Rect, corners: &[Vec<Corner>; 4]) -> Rect {
        let mut ext = [
            Bound { dist: domain.max_x() - user.x, abs: domain.max_x() },
            Bound { dist: domain.max_y() - user.y, abs: domain.max_y() },
            Bound { dist: user.x - domain.min_x(), abs: domain.min_x() },
            Bound { dist: user.y - domain.min_y(), abs: domain.min_y() },
        ];
        let order = self.pdf.quadrant_weights(heading).descending();
        for q in order {
            let (xi_dir, eta_dir) = quadrant_dirs(q);
            let mut best_score = f64::NEG_INFINITY;
            let mut best = (ext[xi_dir], ext[eta_dir]);
            for c in &corners[q as usize] {
                let trial_x = if c.xi.dist < ext[xi_dir].dist { c.xi } else { ext[xi_dir] };
                let trial_y = if c.eta.dist < ext[eta_dir].dist { c.eta } else { ext[eta_dir] };
                let mut trial = [ext[0].dist, ext[1].dist, ext[2].dist, ext[3].dist];
                trial[xi_dir] = trial_x.dist;
                trial[eta_dir] = trial_y.dist;
                let score = self.weighted_perimeter(trial, heading);
                if score > best_score {
                    best_score = score;
                    best = (trial_x, trial_y);
                }
            }
            ext[xi_dir] = best.0;
            ext[eta_dir] = best.1;
        }
        Rect::new(
            ext[2].abs.min(user.x),
            ext[3].abs.min(user.y),
            ext[0].abs.max(user.x),
            ext[1].abs.max(user.y),
        )
        .expect("bounds bracket the user position")
    }

    /// Weighted perimeter of the rectangle with extents
    /// `[east, north, west, south]` around the subscriber.
    fn weighted_perimeter(&self, ext: [f64; 4], heading: f64) -> f64 {
        let [e, n, w, s] = ext;
        // Corners in counterclockwise order starting south-east.
        let se = Point::new(e, -s);
        let ne = Point::new(e, n);
        let nw = Point::new(-w, n);
        let sw = Point::new(-w, -s);
        self.side_weight(se, ne, heading)
            + self.side_weight(ne, nw, heading)
            + self.side_weight(nw, sw, heading)
            + self.side_weight(sw, se, heading)
    }

    /// Length of one side weighted by the (normalized) probability mass of
    /// the angular sector it subtends as seen from the subscriber at the
    /// origin. Sides are given in counterclockwise order.
    fn side_weight(&self, a: Point, b: Point, heading: f64) -> f64 {
        let origin = Point::new(0.0, 0.0);
        let len = a.distance(b);
        if len == 0.0 {
            return 0.0;
        }
        let eps = 1.0e-12;
        if a.distance(origin) < eps || b.distance(origin) < eps {
            // Side emanating from the subscriber itself subtends a single
            // direction; weight by the density there.
            let other = if a.distance(origin) < eps { b } else { a };
            let theta = origin.heading_to(other);
            return len * self.pdf.density(theta - heading) * FULL_TURN;
        }
        let alpha = origin.heading_to(a);
        let mut beta = origin.heading_to(b);
        if beta < alpha - eps {
            beta += FULL_TURN;
        }
        let delta = beta - alpha;
        if delta < 1.0e-9 {
            let mid = Point::new((a.x + b.x) / 2.0, (a.y + b.y) / 2.0);
            let theta = origin.heading_to(mid);
            return len * self.pdf.density(theta - heading) * FULL_TURN;
        }
        len * self.pdf.sector_mass(heading, alpha, beta) / delta * FULL_TURN
    }
}

/// Direction indices (into `[east, north, west, south]` extents) capped by a
/// corner choice in quadrant `q`.
fn quadrant_dirs(q: Quadrant) -> (usize, usize) {
    match q {
        Quadrant::I => (0, 1),
        Quadrant::II => (2, 1),
        Quadrant::III => (2, 3),
        Quadrant::IV => (0, 3),
    }
}

/// Grows each side of `rect` to the farthest coordinate that keeps the
/// closed rectangle disjoint from every obstacle interior, iterating until
/// no side can grow. Every produced coordinate is an exact obstacle or
/// domain edge.
fn expand_to_maximal(rect: Rect, domain: Rect, obstacles: &[Rect]) -> Rect {
    let mut cur = rect;
    for _ in 0..16 {
        let y_overlaps = |ob: &Rect| ob.min_y() < cur.max_y() && ob.max_y() > cur.min_y();

        let east = obstacles
            .iter()
            .filter(|ob| y_overlaps(ob) && ob.min_x() >= cur.max_x())
            .map(|ob| ob.min_x())
            .fold(domain.max_x(), f64::min);
        let west = obstacles
            .iter()
            .filter(|ob| y_overlaps(ob) && ob.max_x() <= cur.min_x())
            .map(|ob| ob.max_x())
            .fold(domain.min_x(), f64::max);
        let with_x = Rect::new(west, cur.min_y(), east, cur.max_y()).expect("x growth is ordered");

        let north = obstacles
            .iter()
            .filter(|ob| {
                ob.min_x() < with_x.max_x() && ob.max_x() > with_x.min_x() && ob.min_y() >= with_x.max_y()
            })
            .map(|ob| ob.min_y())
            .fold(domain.max_y(), f64::min);
        let south = obstacles
            .iter()
            .filter(|ob| {
                ob.min_x() < with_x.max_x() && ob.max_x() > with_x.min_x() && ob.max_y() <= with_x.min_y()
            })
            .map(|ob| ob.max_y())
            .fold(domain.min_y(), f64::max);
        let next =
            Rect::new(with_x.min_x(), south, with_x.max_x(), north).expect("y growth is ordered");
        if next == cur {
            break;
        }
        cur = next;
    }
    cur
}

/// A directional bound: distance from the user plus the exact absolute
/// coordinate it came from (an obstacle or domain edge).
#[derive(Debug, Clone, Copy)]
struct Bound {
    dist: f64,
    abs: f64,
}

/// A maximal feasible corner (tension point) of one quadrant's staircase.
#[derive(Debug, Clone, Copy)]
struct Corner {
    xi: Bound,
    eta: Bound,
}

/// The Hu–Xu–Lee \[10\]-style candidate generation: every obstacle reaching
/// the quadrant contributes its near corner *clamped onto the axes* as a
/// conditional staircase candidate — including obstacles that straddle an
/// axis, whose constraint is actually unconditional. The resulting regions
/// can overlap alarm interiors (the "erroneous safe regions" of §5).
fn legacy_quadrant_corners(
    user: Point,
    domain: Rect,
    obstacles: &[Rect],
    q: Quadrant,
) -> Vec<Corner> {
    let sx = q.x_sign();
    let sy = q.y_sign();
    let cap_x = if sx > 0.0 {
        Bound { dist: domain.max_x() - user.x, abs: domain.max_x() }
    } else {
        Bound { dist: user.x - domain.min_x(), abs: domain.min_x() }
    };
    let cap_y = if sy > 0.0 {
        Bound { dist: domain.max_y() - user.y, abs: domain.max_y() }
    } else {
        Bound { dist: user.y - domain.min_y(), abs: domain.min_y() }
    };
    let mut candidates: Vec<(Bound, Bound)> = Vec::new();
    for ob in obstacles {
        let (near_x, far_x, ax) = if sx > 0.0 {
            (ob.min_x() - user.x, ob.max_x() - user.x, ob.min_x())
        } else {
            (user.x - ob.max_x(), user.x - ob.min_x(), ob.max_x())
        };
        let (near_y, far_y, ay) = if sy > 0.0 {
            (ob.min_y() - user.y, ob.max_y() - user.y, ob.min_y())
        } else {
            (user.y - ob.max_y(), user.y - ob.min_y(), ob.max_y())
        };
        if far_x <= 0.0 || far_y <= 0.0 {
            continue;
        }
        // The bug: axis-straddling obstacles are clamped instead of
        // unconditionally capping the quadrant.
        candidates.push((
            Bound { dist: near_x.max(0.0), abs: if near_x < 0.0 { user.x } else { ax } },
            Bound { dist: near_y.max(0.0), abs: if near_y < 0.0 { user.y } else { ay } },
        ));
    }
    staircase_from(candidates, cap_x, cap_y)
}

/// Steps 1–3 for one quadrant: candidate points from obstacle corners,
/// dominance pruning, and the staircase of maximal feasible corners
/// (tension points), in quadrant-normalized coordinates (ξ along x, η along
/// y, both ≥ 0 pointing into the quadrant).
fn quadrant_corners(user: Point, domain: Rect, obstacles: &[Rect], q: Quadrant) -> Vec<Corner> {
    let sx = q.x_sign();
    let sy = q.y_sign();
    let mut cap_x = if sx > 0.0 {
        Bound { dist: domain.max_x() - user.x, abs: domain.max_x() }
    } else {
        Bound { dist: user.x - domain.min_x(), abs: domain.min_x() }
    };
    let mut cap_y = if sy > 0.0 {
        Bound { dist: domain.max_y() - user.y, abs: domain.max_y() }
    } else {
        Bound { dist: user.y - domain.min_y(), abs: domain.min_y() }
    };

    // Step 1: candidate points. An obstacle constrains this quadrant iff
    // its interior reaches into it (far corner strictly positive on both
    // axes). An obstacle that *straddles* a quadrant axis (near coordinate
    // strictly negative) blocks unconditionally along the other axis — any
    // rectangle around the user already spans the straddled axis — so it
    // caps the quadrant extent outright instead of contributing a
    // conditional staircase candidate. This is the case that breaks the
    // Hu et al. \[10\] construction.
    let mut candidates: Vec<(Bound, Bound)> = Vec::new();
    for ob in obstacles {
        let (near_x, far_x, ax) = if sx > 0.0 {
            (ob.min_x() - user.x, ob.max_x() - user.x, ob.min_x())
        } else {
            (user.x - ob.max_x(), user.x - ob.min_x(), ob.max_x())
        };
        let (near_y, far_y, ay) = if sy > 0.0 {
            (ob.min_y() - user.y, ob.max_y() - user.y, ob.min_y())
        } else {
            (user.y - ob.max_y(), user.y - ob.min_y(), ob.max_y())
        };
        if far_x <= 0.0 || far_y <= 0.0 {
            continue;
        }
        if near_x < 0.0 {
            // Obstacle crosses the η axis of this quadrant: the η extent is
            // capped for every choice of ξ. near_y ≥ 0 here, otherwise the
            // obstacle would contain the user and belong to the domain.
            if near_y < cap_y.dist {
                cap_y = Bound { dist: near_y.max(0.0), abs: ay };
            }
        } else if near_y < 0.0 {
            if near_x < cap_x.dist {
                cap_x = Bound { dist: near_x, abs: ax };
            }
        } else {
            candidates.push((Bound { dist: near_x, abs: ax }, Bound { dist: near_y, abs: ay }));
        }
    }

    staircase_from(candidates, cap_x, cap_y)
}

/// Dominance pruning (step 1's trim) and tension-point construction
/// (steps 2–3) shared by the sound and the legacy candidate generators.
fn staircase_from(mut candidates: Vec<(Bound, Bound)>, cap_x: Bound, cap_y: Bound) -> Vec<Corner> {
    // Dominance pruning: keep only Pareto-minimal candidates (a candidate
    // that fully dominates another is implied by it).
    candidates.sort_by(|a, b| {
        (a.0.dist, a.1.dist)
            .partial_cmp(&(b.0.dist, b.1.dist))
            .expect("finite coordinates")
    });
    let mut pruned: Vec<(Bound, Bound)> = Vec::new();
    let mut min_eta = f64::INFINITY;
    for c in candidates {
        if c.1.dist < min_eta {
            min_eta = c.1.dist;
            pruned.push(c);
        }
    }

    // Steps 2-3: tension points = maximal feasible corners of the
    // staircase, including the cell-boundary extremes.
    let mut corners = Vec::with_capacity(pruned.len() + 1);
    let mut prev_eta = cap_y;
    for &(xi, eta) in &pruned {
        if xi.dist < cap_x.dist && eta.dist < prev_eta.dist {
            corners.push(Corner { xi, eta: prev_eta });
            prev_eta = eta;
        }
    }
    corners.push(Corner { xi: cap_x, eta: prev_eta });
    corners
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SafeRegion;
    use std::f64::consts::FRAC_PI_2;

    fn r(a: f64, b: f64, c: f64, d: f64) -> Rect {
        Rect::new(a, b, c, d).unwrap()
    }

    fn cell() -> Rect {
        r(0.0, 0.0, 1_000.0, 1_000.0)
    }

    fn assert_valid(region: &RectSafeRegion, user: Point, cell: Rect, obstacles: &[Rect]) {
        assert!(region.contains(user), "safe region must contain the subscriber");
        assert!(cell.contains_rect(&region.rect()), "safe region must stay in the cell");
        for ob in obstacles {
            if !ob.contains_point_strict(user) {
                assert!(
                    !region.rect().intersects_interior(ob),
                    "safe region {} overlaps obstacle {}",
                    region.rect(),
                    ob
                );
            }
        }
    }

    #[test]
    fn no_alarms_returns_whole_cell() {
        let c = MwpsrComputer::non_weighted();
        let region = c.compute(Point::new(500.0, 500.0), 0.0, cell(), &[]);
        assert_eq!(region.rect(), cell());
    }

    #[test]
    fn single_obstacle_is_avoided() {
        let c = MwpsrComputer::non_weighted();
        let user = Point::new(200.0, 200.0);
        let obstacle = r(600.0, 600.0, 800.0, 800.0);
        let region = c.compute(user, 0.0, cell(), &[obstacle]);
        assert_valid(&region, user, cell(), &[obstacle]);
        // The region should be substantially larger than trivial.
        assert!(region.rect().area() > 100_000.0);
    }

    #[test]
    fn user_inside_alarm_region_gets_the_intersection_domain() {
        let c = MwpsrComputer::non_weighted();
        let user = Point::new(500.0, 500.0);
        let containing_a = r(400.0, 400.0, 900.0, 900.0);
        let containing_b = r(300.0, 300.0, 700.0, 700.0);
        let region = c.compute(user, 0.0, cell(), &[containing_a, containing_b]);
        // §2.1(ii): safe region = intersection of containing regions.
        assert_eq!(region.rect(), r(400.0, 400.0, 700.0, 700.0));
    }

    #[test]
    fn overlapping_obstacles_are_handled() {
        // The scenario Hu et al. \[10\] gets wrong: overlapping alarm regions
        // and a region crossing the axis through the user.
        let c = MwpsrComputer::non_weighted();
        let user = Point::new(500.0, 500.0);
        let obstacles = [
            r(600.0, 300.0, 800.0, 700.0),  // crosses the +x axis
            r(550.0, 400.0, 700.0, 600.0),  // overlaps the first, nearer
            r(200.0, 700.0, 900.0, 800.0),  // spans quadrants I and II
        ];
        let region = c.compute(user, 0.0, cell(), &obstacles);
        assert_valid(&region, user, cell(), &obstacles);
        // The nearest obstacle edge caps the east extent at 550.
        assert!(region.rect().max_x() <= 550.0 + 1e-9);
        // The top band caps north at 700.
        assert!(region.rect().max_y() <= 700.0 + 1e-9);
    }

    #[test]
    fn axis_straddling_obstacle_blocks_both_quadrants() {
        let c = MwpsrComputer::non_weighted();
        let user = Point::new(500.0, 500.0);
        // A wall above the user spanning x in [300, 700]: quadrants I and II.
        let wall = r(300.0, 650.0, 700.0, 720.0);
        let region = c.compute(user, 0.0, cell(), &[wall]);
        assert_valid(&region, user, cell(), &[wall]);
        // Either north stops at 650 or the rect slips fully past a side of
        // the wall (max_x <= 300 or min_x >= 700 cannot hold because the
        // region must contain x=500).
        assert!(region.rect().max_y() <= 650.0 + 1e-9);
    }

    #[test]
    fn heading_steers_the_weighted_region() {
        let pdf = MotionPdf::new(1.9, 2).unwrap();
        let c = MwpsrComputer::new(pdf);
        let user = Point::new(500.0, 500.0);
        // One obstacle in quadrant I forces a choice: go wide (east) or
        // tall (north).
        let obstacle = r(700.0, 800.0, 900.0, 950.0);
        let east = c.compute(user, 0.0, cell(), &[obstacle]).rect();
        let north = c.compute(user, FRAC_PI_2, cell(), &[obstacle]).rect();
        assert_valid(&RectSafeRegion::new(east), user, cell(), &[obstacle]);
        assert_valid(&RectSafeRegion::new(north), user, cell(), &[obstacle]);
        // East heading favors x-extent relative to the north heading run.
        let east_aspect = east.width() / east.height();
        let north_aspect = north.width() / north.height();
        assert!(
            east_aspect >= north_aspect,
            "east {east_aspect} vs north {north_aspect}"
        );
    }

    #[test]
    fn uniform_weighting_maximizes_plain_perimeter() {
        // For the uniform pdf the weighted perimeter IS the perimeter.
        let c = MwpsrComputer::non_weighted();
        let p = c.weighted_perimeter([3.0, 4.0, 2.0, 1.0], 0.7);
        let expected = 2.0 * ((3.0 + 2.0) + (4.0 + 1.0));
        assert!((p - expected).abs() < 1e-9, "{p} vs {expected}");
    }

    #[test]
    fn weighted_perimeter_prefers_heading_side() {
        let pdf = MotionPdf::new(1.9, 4).unwrap();
        let c = MwpsrComputer::new(pdf);
        // Same shape, once extended east, once extended west; heading east.
        let east_heavy = c.weighted_perimeter([8.0, 2.0, 2.0, 2.0], 0.0);
        let west_heavy = c.weighted_perimeter([2.0, 2.0, 8.0, 2.0], 0.0);
        assert!(east_heavy > west_heavy);
    }

    #[test]
    fn user_on_cell_boundary_is_supported() {
        let c = MwpsrComputer::non_weighted();
        let user = Point::new(0.0, 0.0);
        let obstacle = r(100.0, 100.0, 300.0, 300.0);
        let region = c.compute(user, 0.0, cell(), &[obstacle]);
        assert_valid(&region, user, cell(), &[obstacle]);
    }

    #[test]
    fn obstacle_touching_user_position_degenerates_gracefully() {
        let c = MwpsrComputer::non_weighted();
        let user = Point::new(500.0, 500.0);
        // Obstacle whose corner touches the user: triggering is strict, so
        // the region is an *unfired obstacle* the safe region must not
        // enter — but touching its boundary is fine.
        let touching = r(500.0, 500.0, 600.0, 600.0);
        let region = c.compute(user, 0.0, cell(), &[touching]);
        assert!(region.contains(user));
        assert!(!region.rect().intersects_interior(&touching));
        // The region still extends away from the obstacle.
        assert!(region.rect().area() > 0.0);
    }

    #[test]
    fn dense_obstacle_field_still_produces_valid_region() {
        let c = MwpsrComputer::new(MotionPdf::new(1.0, 32).unwrap());
        let user = Point::new(505.0, 505.0);
        let mut obstacles = Vec::new();
        for i in 0..10 {
            for j in 0..10 {
                let x = i as f64 * 100.0;
                let y = j as f64 * 100.0;
                // Leave the user's block free.
                if (i, j) != (5, 5) {
                    obstacles.push(r(x + 20.0, y + 20.0, x + 80.0, y + 80.0));
                }
            }
        }
        let region = c.compute(user, 1.0, cell(), &obstacles);
        assert_valid(&region, user, cell(), &obstacles);
        assert!(region.rect().area() > 0.0);
    }

    #[test]
    #[should_panic(expected = "inside its grid cell")]
    fn rejects_user_outside_cell() {
        MwpsrComputer::non_weighted().compute(Point::new(-1.0, 0.0), 0.0, cell(), &[]);
    }
}

#[cfg(test)]
mod legacy_tests {
    use super::*;
    use crate::SafeRegion;

    fn r(a: f64, b: f64, c: f64, d: f64) -> Rect {
        Rect::new(a, b, c, d).unwrap()
    }

    #[test]
    fn legacy_variant_produces_erroneous_regions_under_axis_straddling() {
        // The §5 claim about \[10\]: an alarm region straddling the axis
        // through the user yields a safe region overlapping the alarm.
        let cell = r(0.0, 0.0, 1_000.0, 1_000.0);
        let user = Point::new(500.0, 100.0);
        // A wall above the user spanning both sides of the vertical axis.
        let wall = r(300.0, 400.0, 700.0, 500.0);
        let computer = MwpsrComputer::non_weighted();

        let sound = computer.compute(user, 0.0, cell, &[wall]).rect();
        assert!(!sound.intersects_interior(&wall), "sound variant must avoid the wall");

        let legacy = computer.compute_hu_xu_lee(user, 0.0, cell, &[wall]);
        // The clamped candidates allow the legacy region to swallow part of
        // the wall's interior — exactly the failure mode the paper fixes.
        assert!(
            legacy.rect().intersects_interior(&wall),
            "legacy region {} unexpectedly avoided the wall {}",
            legacy.rect(),
            wall
        );
        assert!(legacy.contains(user));
    }

    #[test]
    fn legacy_variant_matches_sound_variant_on_benign_layouts() {
        // With every obstacle confined to a single quadrant, both variants
        // are safe (the legacy bug only bites on straddling/overlap).
        let cell = r(0.0, 0.0, 1_000.0, 1_000.0);
        let user = Point::new(200.0, 200.0);
        let obstacles = [r(600.0, 600.0, 700.0, 700.0), r(50.0, 500.0, 120.0, 580.0)];
        let computer = MwpsrComputer::non_weighted();
        let legacy = computer.compute_hu_xu_lee(user, 0.0, cell, &obstacles);
        for ob in &obstacles {
            assert!(!legacy.rect().intersects_interior(ob));
        }
    }
}
