use bytes::{BufMut, Bytes, BytesMut};
use std::fmt;

/// A compact growable bit vector used for bitmap-encoded safe regions.
///
/// Bits are appended with [`BitVec::push`] and addressed by index; the
/// wire form ([`BitVec::to_bytes`]) packs bits MSB-first into octets, which
/// is what the downstream-bandwidth accounting of the evaluation charges.
///
/// ```
/// use sa_core::BitVec;
/// let mut bits = BitVec::new();
/// for b in [false, true, true, false, true] {
///     bits.push(b);
/// }
/// assert_eq!(bits.len(), 5);
/// assert_eq!(bits.get(1), Some(true));
/// assert_eq!(bits.count_ones(), 3);
/// assert_eq!(bits.to_bitstring(), "01101");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BitVec {
    words: Vec<u64>,
    len: usize,
}

impl BitVec {
    /// An empty bit vector.
    pub fn new() -> BitVec {
        BitVec::default()
    }

    /// An empty bit vector with room for `bits` bits.
    pub fn with_capacity(bits: usize) -> BitVec {
        BitVec { words: Vec::with_capacity(bits.div_ceil(64)), len: 0 }
    }

    /// Number of stored bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no bits are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends one bit.
    pub fn push(&mut self, bit: bool) {
        let word = self.len / 64;
        let offset = self.len % 64;
        if word == self.words.len() {
            self.words.push(0);
        }
        if bit {
            self.words[word] |= 1u64 << offset;
        }
        self.len += 1;
    }

    /// The bit at `index`, or `None` past the end.
    pub fn get(&self, index: usize) -> Option<bool> {
        if index >= self.len {
            return None;
        }
        Some((self.words[index / 64] >> (index % 64)) & 1 == 1)
    }

    /// Overwrites the bit at `index`.
    ///
    /// # Panics
    ///
    /// Panics when `index >= len`.
    pub fn set(&mut self, index: usize, bit: bool) {
        assert!(index < self.len, "set index {index} out of bounds {}", self.len);
        let mask = 1u64 << (index % 64);
        if bit {
            self.words[index / 64] |= mask;
        } else {
            self.words[index / 64] &= !mask;
        }
    }

    /// Empties the vector, keeping its allocation for reuse.
    pub fn clear(&mut self) {
        self.words.clear();
        self.len = 0;
    }

    /// Appends the low `nbits` bits of `word` (LSB first) in one or two
    /// word operations — the primitive every word-parallel append builds
    /// on.
    fn push_word(&mut self, word: u64, nbits: usize) {
        debug_assert!(nbits <= 64);
        if nbits == 0 {
            return;
        }
        let word = if nbits == 64 { word } else { word & ((1u64 << nbits) - 1) };
        let offset = self.len % 64;
        if offset == 0 {
            self.words.push(word);
        } else {
            *self.words.last_mut().expect("offset > 0 implies a tail word") |= word << offset;
            if nbits > 64 - offset {
                self.words.push(word >> (64 - offset));
            }
        }
        self.len += nbits;
    }

    /// Reads up to 64 bits starting at bit `start` into the low bits of a
    /// word (LSB first).
    fn read_word(&self, start: usize, nbits: usize) -> u64 {
        debug_assert!(nbits <= 64 && start + nbits <= self.len);
        if nbits == 0 {
            return 0;
        }
        let word = start / 64;
        let off = start % 64;
        let mut w = self.words[word] >> off;
        if off != 0 && word + 1 < self.words.len() {
            w |= self.words[word + 1] << (64 - off);
        }
        if nbits < 64 {
            w &= (1u64 << nbits) - 1;
        }
        w
    }

    /// Appends `n` clear bits, 64 at a time — the bulk append used for the
    /// all-zero child blocks under solid pyramid cells, replacing `n`
    /// single-bit pushes with `n/64` word writes.
    pub fn push_zeros(&mut self, mut n: usize) {
        while n > 0 {
            let take = n.min(64);
            self.push_word(0, take);
            n -= take;
        }
    }

    /// Appends `n` set bits, 64 at a time.
    pub fn push_ones(&mut self, mut n: usize) {
        while n > 0 {
            let take = n.min(64);
            self.push_word(u64::MAX, take);
            n -= take;
        }
    }

    /// Appends `len` bits copied from `src` starting at bit `start`, in
    /// 64-bit chunks (two shifts per chunk) rather than bit by bit.
    ///
    /// # Panics
    ///
    /// Panics when `start + len` exceeds `src.len()`.
    pub fn extend_range(&mut self, src: &BitVec, start: usize, len: usize) {
        assert!(
            start + len <= src.len,
            "range {start}..{} out of bounds {}",
            start + len,
            src.len
        );
        let mut pos = start;
        let end = start + len;
        while pos < end {
            let take = (end - pos).min(64);
            self.push_word(src.read_word(pos, take), take);
            pos += take;
        }
    }

    /// A word-parallel copy of bits `start..start + len`.
    ///
    /// # Panics
    ///
    /// Panics when `start + len` exceeds `len()`.
    pub fn slice(&self, start: usize, len: usize) -> BitVec {
        let mut out = BitVec::with_capacity(len);
        out.extend_range(self, start, len);
        out
    }

    /// Asserts the two vectors cover the same bit count (set operations
    /// are defined over equal-length universes).
    fn check_same_len(&self, other: &BitVec) {
        assert_eq!(
            self.len, other.len,
            "bit-set operation over mismatched lengths"
        );
    }

    /// Word-parallel intersection (`self & other`).
    ///
    /// # Panics
    ///
    /// Panics when the lengths differ.
    pub fn intersect(&self, other: &BitVec) -> BitVec {
        let mut out = self.clone();
        out.intersect_assign(other);
        out
    }

    /// In-place word-parallel intersection — the allocation-free form for
    /// hot paths that reuse a scratch vector.
    ///
    /// # Panics
    ///
    /// Panics when the lengths differ.
    pub fn intersect_assign(&mut self, other: &BitVec) {
        self.check_same_len(other);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// Word-parallel union (`self | other`).
    ///
    /// # Panics
    ///
    /// Panics when the lengths differ.
    pub fn union(&self, other: &BitVec) -> BitVec {
        let mut out = self.clone();
        out.union_assign(other);
        out
    }

    /// In-place word-parallel union.
    ///
    /// # Panics
    ///
    /// Panics when the lengths differ.
    pub fn union_assign(&mut self, other: &BitVec) {
        self.check_same_len(other);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Word-parallel difference (`self & !other`).
    ///
    /// # Panics
    ///
    /// Panics when the lengths differ.
    pub fn difference(&self, other: &BitVec) -> BitVec {
        let mut out = self.clone();
        out.difference_assign(other);
        out
    }

    /// In-place word-parallel difference (`self &= !other`). The bits past
    /// `len` in the last word stay clear because they are clear in `self`.
    ///
    /// # Panics
    ///
    /// Panics when the lengths differ.
    pub fn difference_assign(&mut self, other: &BitVec) {
        self.check_same_len(other);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// Popcount of the intersection without materializing it — the
    /// membership-overlap count used by cache checks.
    ///
    /// # Panics
    ///
    /// Panics when the lengths differ.
    pub fn intersection_ones(&self, other: &BitVec) -> usize {
        self.check_same_len(other);
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// Iterates over the indices of set bits, word by word (each clear
    /// word costs one test, each set bit two bit-tricks).
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            std::iter::successors(
                if w == 0 { None } else { Some(w) },
                |&rest| {
                    let rest = rest & (rest - 1);
                    if rest == 0 { None } else { Some(rest) }
                },
            )
            .map(move |rest| wi * 64 + rest.trailing_zeros() as usize)
        })
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Number of clear bits.
    pub fn count_zeros(&self) -> usize {
        self.len - self.count_ones()
    }

    /// Number of **clear** bits strictly before `index` — the rank query
    /// used to locate a blocked cell's child block in the next pyramid
    /// level. Linear scan; build a [`RankedBits`] for O(1) queries on a
    /// frozen bitmap.
    ///
    /// # Panics
    ///
    /// Panics when `index > len`.
    pub fn rank_zeros(&self, index: usize) -> usize {
        assert!(index <= self.len, "rank index {index} out of bounds {}", self.len);
        let full_words = index / 64;
        let mut ones = 0usize;
        for w in &self.words[..full_words] {
            ones += w.count_ones() as usize;
        }
        let rem = index % 64;
        if rem > 0 {
            let mask = (1u64 << rem) - 1;
            ones += (self.words[full_words] & mask).count_ones() as usize;
        }
        index - ones
    }

    /// Freezes the bitmap with a per-word rank directory for O(1)
    /// [`RankedBits::rank_zeros`] queries — what the client builds once per
    /// received pyramid level so each containment descent stays cheap.
    pub fn into_ranked(self) -> RankedBits {
        let mut prefix_ones = Vec::with_capacity(self.words.len() + 1);
        let mut acc = 0u64;
        prefix_ones.push(0);
        for w in &self.words {
            acc += w.count_ones() as u64;
            prefix_ones.push(acc);
        }
        RankedBits { bits: self, prefix_ones }
    }

    /// Iterates over the bits in order.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| self.get(i).expect("index in range"))
    }

    /// Serializes MSB-first into octets (the wire format whose size the
    /// bandwidth model charges).
    ///
    /// Word-parallel: each 64-bit word yields eight output octets by
    /// byte-reversal (`reverse_bits` converts the word's LSB-first bit
    /// order to the wire's MSB-first octet order); padding bits of the
    /// final partial octet are zero because bits past `len` are kept clear.
    pub fn to_bytes(&self) -> Bytes {
        let nbytes = self.len.div_ceil(8);
        let mut buf = BytesMut::with_capacity(nbytes);
        let mut remaining = nbytes;
        for w in &self.words {
            let le = w.to_le_bytes();
            let take = remaining.min(8);
            for b in &le[..take] {
                buf.put_u8(b.reverse_bits());
            }
            remaining -= take;
        }
        buf.freeze()
    }

    /// Renders the bits as a `0`/`1` string (for tests and examples).
    pub fn to_bitstring(&self) -> String {
        self.iter().map(|b| if b { '1' } else { '0' }).collect()
    }

    /// Deserializes the MSB-first octet form produced by
    /// [`BitVec::to_bytes`], keeping the first `len` bits and ignoring the
    /// zero padding of the final partial octet.
    ///
    /// ```
    /// use sa_core::BitVec;
    /// let bits: BitVec = [true, false, true, true, false].into_iter().collect();
    /// let round = BitVec::from_bytes(&bits.to_bytes(), bits.len()).unwrap();
    /// assert_eq!(round, bits);
    /// ```
    ///
    /// # Errors
    ///
    /// Returns `None` when `bytes` is shorter than `len` bits requires.
    pub fn from_bytes(bytes: &[u8], len: usize) -> Option<BitVec> {
        let nbytes = len.div_ceil(8);
        if bytes.len() < nbytes {
            return None;
        }
        // Word-parallel inverse of `to_bytes`: reverse each octet back to
        // LSB-first order and assemble little-endian words, then clear any
        // bits past `len` that came from the final octet's padding.
        let nwords = len.div_ceil(64);
        let mut words = Vec::with_capacity(nwords);
        for chunk in 0..nwords {
            let base = chunk * 8;
            let end = (base + 8).min(nbytes);
            let mut le = [0u8; 8];
            for (k, byte) in bytes[base..end].iter().enumerate() {
                le[k] = byte.reverse_bits();
            }
            words.push(u64::from_le_bytes(le));
        }
        if !len.is_multiple_of(64) {
            if let Some(last) = words.last_mut() {
                *last &= (1u64 << (len % 64)) - 1;
            }
        }
        Some(BitVec { words, len })
    }
}

/// A frozen bit vector with an O(1) zero-rank directory.
///
/// Built once per pyramid level when a [`crate::BitmapSafeRegion`] is
/// assembled; every client containment descent then locates its child
/// block in constant time instead of scanning the level.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankedBits {
    bits: BitVec,
    /// `prefix_ones[w]` = set bits in words `0..w`.
    prefix_ones: Vec<u64>,
}

impl RankedBits {
    /// Number of stored bits.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// True when no bits are stored.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// The bit at `index`, or `None` past the end.
    pub fn get(&self, index: usize) -> Option<bool> {
        self.bits.get(index)
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        *self.prefix_ones.last().expect("prefix has a sentinel") as usize
    }

    /// Number of clear bits.
    pub fn count_zeros(&self) -> usize {
        self.len() - self.count_ones()
    }

    /// Number of clear bits strictly before `index`, in O(1).
    ///
    /// # Panics
    ///
    /// Panics when `index > len`.
    pub fn rank_zeros(&self, index: usize) -> usize {
        assert!(index <= self.bits.len, "rank index {index} out of bounds {}", self.bits.len);
        let word = index / 64;
        let rem = index % 64;
        let mut ones = self.prefix_ones[word];
        if rem > 0 {
            let mask = (1u64 << rem) - 1;
            ones += (self.bits.words[word] & mask).count_ones() as u64;
        }
        index - ones as usize
    }

    /// Read access to the underlying bits.
    pub fn as_bitvec(&self) -> &BitVec {
        &self.bits
    }
}

impl fmt::Display for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_bitstring())
    }
}

impl FromIterator<bool> for BitVec {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> BitVec {
        let mut bv = BitVec::new();
        for b in iter {
            bv.push(b);
        }
        bv
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_get_across_word_boundaries() {
        let mut bv = BitVec::new();
        for i in 0..200 {
            bv.push(i % 3 == 0);
        }
        assert_eq!(bv.len(), 200);
        for i in 0..200 {
            assert_eq!(bv.get(i), Some(i % 3 == 0), "bit {i}");
        }
        assert_eq!(bv.get(200), None);
    }

    #[test]
    fn counts_are_consistent() {
        let bv: BitVec = (0..100).map(|i| i % 4 == 0).collect();
        assert_eq!(bv.count_ones(), 25);
        assert_eq!(bv.count_zeros(), 75);
        assert_eq!(bv.count_ones() + bv.count_zeros(), bv.len());
    }

    #[test]
    fn rank_zeros_matches_linear_scan() {
        let bv: BitVec = (0..150).map(|i| (i * 7) % 5 < 2).collect();
        for idx in 0..=150 {
            let expected = (0..idx).filter(|&i| !bv.get(i).unwrap()).count();
            assert_eq!(bv.rank_zeros(idx), expected, "rank at {idx}");
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn rank_past_end_panics() {
        let bv: BitVec = [true, false].into_iter().collect();
        bv.rank_zeros(3);
    }

    #[test]
    fn byte_serialization_is_msb_first() {
        let bv: BitVec = "01101001".chars().map(|c| c == '1').collect();
        assert_eq!(bv.to_bytes().as_ref(), &[0b0110_1001]);
        // Partial trailing byte is zero-padded.
        let bv: BitVec = "101".chars().map(|c| c == '1').collect();
        assert_eq!(bv.to_bytes().as_ref(), &[0b1010_0000]);
    }

    #[test]
    fn bitstring_round_trip() {
        let s = "0000011010";
        let bv: BitVec = s.chars().map(|c| c == '1').collect();
        assert_eq!(bv.to_bitstring(), s);
        assert_eq!(format!("{bv}"), s);
    }

    #[test]
    fn empty_bitvec() {
        let bv = BitVec::new();
        assert!(bv.is_empty());
        assert_eq!(bv.count_ones(), 0);
        assert_eq!(bv.rank_zeros(0), 0);
        assert!(bv.to_bytes().is_empty());
    }

    #[test]
    fn set_and_clear_update_in_place() {
        let mut bv: BitVec = (0..130).map(|_| false).collect();
        bv.set(0, true);
        bv.set(64, true);
        bv.set(129, true);
        assert_eq!(bv.count_ones(), 3);
        bv.set(64, false);
        assert_eq!(bv.get(64), Some(false));
        assert_eq!(bv.count_ones(), 2);
        bv.clear();
        assert!(bv.is_empty());
    }

    #[test]
    fn bulk_push_matches_single_bit_push() {
        for prefix in [0usize, 1, 7, 63, 64, 65] {
            let mut bulk = BitVec::new();
            let mut single = BitVec::new();
            for i in 0..prefix {
                bulk.push(i % 2 == 0);
                single.push(i % 2 == 0);
            }
            bulk.push_zeros(131);
            bulk.push_ones(67);
            for _ in 0..131 {
                single.push(false);
            }
            for _ in 0..67 {
                single.push(true);
            }
            assert_eq!(bulk, single, "prefix {prefix}");
        }
    }

    #[test]
    fn extend_range_and_slice_match_per_bit_copy() {
        let src: BitVec = (0..300).map(|i| (i * 11) % 7 < 3).collect();
        for (start, len) in [(0, 300), (1, 64), (63, 65), (64, 64), (7, 0), (130, 129)] {
            let sliced = src.slice(start, len);
            let expected: BitVec = (start..start + len)
                .map(|i| src.get(i).unwrap())
                .collect();
            assert_eq!(sliced, expected, "slice {start}+{len}");
            let mut appended: BitVec = [true, false, true].into_iter().collect();
            appended.extend_range(&src, start, len);
            assert_eq!(appended.len(), 3 + len);
            for i in 0..len {
                assert_eq!(appended.get(3 + i), src.get(start + i), "bit {i}");
            }
        }
    }

    #[test]
    fn set_operations_match_per_bit_logic() {
        let a: BitVec = (0..200).map(|i| i % 3 == 0).collect();
        let b: BitVec = (0..200).map(|i| i % 5 == 0).collect();
        let and = a.intersect(&b);
        let or = a.union(&b);
        let diff = a.difference(&b);
        for i in 0..200 {
            let (x, y) = (a.get(i).unwrap(), b.get(i).unwrap());
            assert_eq!(and.get(i), Some(x && y), "and {i}");
            assert_eq!(or.get(i), Some(x || y), "or {i}");
            assert_eq!(diff.get(i), Some(x && !y), "diff {i}");
        }
        assert_eq!(a.intersection_ones(&b), and.count_ones());
        // Difference keeps the tail bits of the last word clear.
        assert_eq!(diff.count_ones() + a.intersection_ones(&b), a.count_ones());
    }

    #[test]
    #[should_panic(expected = "mismatched lengths")]
    fn set_operations_reject_length_mismatch() {
        let a: BitVec = (0..10).map(|_| true).collect();
        let b: BitVec = (0..11).map(|_| true).collect();
        a.intersect(&b);
    }

    #[test]
    fn iter_ones_yields_set_indices_in_order() {
        let bv: BitVec = (0..200).map(|i| i % 31 == 2).collect();
        let expected: Vec<usize> = (0..200).filter(|i| i % 31 == 2).collect();
        assert_eq!(bv.iter_ones().collect::<Vec<_>>(), expected);
        assert_eq!(BitVec::new().iter_ones().count(), 0);
    }

    #[test]
    fn byte_round_trip_across_word_boundaries() {
        for len in [0usize, 1, 7, 8, 9, 63, 64, 65, 127, 128, 129, 300] {
            let bv: BitVec = (0..len).map(|i| (i * 17) % 13 < 6).collect();
            let bytes = bv.to_bytes();
            assert_eq!(bytes.len(), len.div_ceil(8), "len {len}");
            let back = BitVec::from_bytes(&bytes, len).unwrap();
            assert_eq!(back, bv, "len {len}");
        }
    }

    #[test]
    fn from_bytes_clears_padding_bits() {
        // All-ones octets with a ragged length: the padding bits must not
        // leak into the word representation (count_ones and rank depend on
        // the bits past `len` staying clear).
        let back = BitVec::from_bytes(&[0xFF, 0xFF], 11).unwrap();
        assert_eq!(back.len(), 11);
        assert_eq!(back.count_ones(), 11);
        let mut extended = back.clone();
        extended.push(true);
        assert_eq!(extended.count_ones(), 12);
    }
}

#[cfg(test)]
mod ranked_tests {
    use super::*;

    #[test]
    fn ranked_rank_matches_linear_rank() {
        let bv: BitVec = (0..500).map(|i| (i * 13) % 7 < 3).collect();
        let linear: Vec<usize> = (0..=500).map(|i| bv.rank_zeros(i)).collect();
        let ranked = bv.into_ranked();
        for (i, &expected) in linear.iter().enumerate() {
            assert_eq!(ranked.rank_zeros(i), expected, "rank at {i}");
        }
        assert_eq!(ranked.count_ones() + ranked.count_zeros(), 500);
    }

    #[test]
    fn ranked_preserves_bits() {
        let bv: BitVec = "0110010111".chars().map(|c| c == '1').collect();
        let ranked = bv.clone().into_ranked();
        assert_eq!(ranked.len(), bv.len());
        for i in 0..bv.len() {
            assert_eq!(ranked.get(i), bv.get(i));
        }
        assert_eq!(ranked.as_bitvec(), &bv);
        assert!(!ranked.is_empty());
    }

    #[test]
    fn empty_ranked_bits() {
        let ranked = BitVec::new().into_ranked();
        assert!(ranked.is_empty());
        assert_eq!(ranked.rank_zeros(0), 0);
        assert_eq!(ranked.count_ones(), 0);
    }
}
