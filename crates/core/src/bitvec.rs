use bytes::{BufMut, Bytes, BytesMut};
use std::fmt;

/// A compact growable bit vector used for bitmap-encoded safe regions.
///
/// Bits are appended with [`BitVec::push`] and addressed by index; the
/// wire form ([`BitVec::to_bytes`]) packs bits MSB-first into octets, which
/// is what the downstream-bandwidth accounting of the evaluation charges.
///
/// ```
/// use sa_core::BitVec;
/// let mut bits = BitVec::new();
/// for b in [false, true, true, false, true] {
///     bits.push(b);
/// }
/// assert_eq!(bits.len(), 5);
/// assert_eq!(bits.get(1), Some(true));
/// assert_eq!(bits.count_ones(), 3);
/// assert_eq!(bits.to_bitstring(), "01101");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BitVec {
    words: Vec<u64>,
    len: usize,
}

impl BitVec {
    /// An empty bit vector.
    pub fn new() -> BitVec {
        BitVec::default()
    }

    /// An empty bit vector with room for `bits` bits.
    pub fn with_capacity(bits: usize) -> BitVec {
        BitVec { words: Vec::with_capacity(bits.div_ceil(64)), len: 0 }
    }

    /// Number of stored bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no bits are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends one bit.
    pub fn push(&mut self, bit: bool) {
        let word = self.len / 64;
        let offset = self.len % 64;
        if word == self.words.len() {
            self.words.push(0);
        }
        if bit {
            self.words[word] |= 1u64 << offset;
        }
        self.len += 1;
    }

    /// The bit at `index`, or `None` past the end.
    pub fn get(&self, index: usize) -> Option<bool> {
        if index >= self.len {
            return None;
        }
        Some((self.words[index / 64] >> (index % 64)) & 1 == 1)
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Number of clear bits.
    pub fn count_zeros(&self) -> usize {
        self.len - self.count_ones()
    }

    /// Number of **clear** bits strictly before `index` — the rank query
    /// used to locate a blocked cell's child block in the next pyramid
    /// level. Linear scan; build a [`RankedBits`] for O(1) queries on a
    /// frozen bitmap.
    ///
    /// # Panics
    ///
    /// Panics when `index > len`.
    pub fn rank_zeros(&self, index: usize) -> usize {
        assert!(index <= self.len, "rank index {index} out of bounds {}", self.len);
        let full_words = index / 64;
        let mut ones = 0usize;
        for w in &self.words[..full_words] {
            ones += w.count_ones() as usize;
        }
        let rem = index % 64;
        if rem > 0 {
            let mask = (1u64 << rem) - 1;
            ones += (self.words[full_words] & mask).count_ones() as usize;
        }
        index - ones
    }

    /// Freezes the bitmap with a per-word rank directory for O(1)
    /// [`RankedBits::rank_zeros`] queries — what the client builds once per
    /// received pyramid level so each containment descent stays cheap.
    pub fn into_ranked(self) -> RankedBits {
        let mut prefix_ones = Vec::with_capacity(self.words.len() + 1);
        let mut acc = 0u64;
        prefix_ones.push(0);
        for w in &self.words {
            acc += w.count_ones() as u64;
            prefix_ones.push(acc);
        }
        RankedBits { bits: self, prefix_ones }
    }

    /// Iterates over the bits in order.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| self.get(i).expect("index in range"))
    }

    /// Serializes MSB-first into octets (the wire format whose size the
    /// bandwidth model charges).
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.len.div_ceil(8));
        let mut cur = 0u8;
        for (i, bit) in self.iter().enumerate() {
            if bit {
                cur |= 1 << (7 - (i % 8));
            }
            if i % 8 == 7 {
                buf.put_u8(cur);
                cur = 0;
            }
        }
        if !self.len.is_multiple_of(8) {
            buf.put_u8(cur);
        }
        buf.freeze()
    }

    /// Renders the bits as a `0`/`1` string (for tests and examples).
    pub fn to_bitstring(&self) -> String {
        self.iter().map(|b| if b { '1' } else { '0' }).collect()
    }

    /// Deserializes the MSB-first octet form produced by
    /// [`BitVec::to_bytes`], keeping the first `len` bits and ignoring the
    /// zero padding of the final partial octet.
    ///
    /// ```
    /// use sa_core::BitVec;
    /// let bits: BitVec = [true, false, true, true, false].into_iter().collect();
    /// let round = BitVec::from_bytes(&bits.to_bytes(), bits.len()).unwrap();
    /// assert_eq!(round, bits);
    /// ```
    ///
    /// # Errors
    ///
    /// Returns `None` when `bytes` is shorter than `len` bits requires.
    pub fn from_bytes(bytes: &[u8], len: usize) -> Option<BitVec> {
        if bytes.len() < len.div_ceil(8) {
            return None;
        }
        let mut bits = BitVec::with_capacity(len);
        for i in 0..len {
            bits.push((bytes[i / 8] >> (7 - (i % 8))) & 1 == 1);
        }
        Some(bits)
    }
}

/// A frozen bit vector with an O(1) zero-rank directory.
///
/// Built once per pyramid level when a [`crate::BitmapSafeRegion`] is
/// assembled; every client containment descent then locates its child
/// block in constant time instead of scanning the level.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankedBits {
    bits: BitVec,
    /// `prefix_ones[w]` = set bits in words `0..w`.
    prefix_ones: Vec<u64>,
}

impl RankedBits {
    /// Number of stored bits.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// True when no bits are stored.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// The bit at `index`, or `None` past the end.
    pub fn get(&self, index: usize) -> Option<bool> {
        self.bits.get(index)
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        *self.prefix_ones.last().expect("prefix has a sentinel") as usize
    }

    /// Number of clear bits.
    pub fn count_zeros(&self) -> usize {
        self.len() - self.count_ones()
    }

    /// Number of clear bits strictly before `index`, in O(1).
    ///
    /// # Panics
    ///
    /// Panics when `index > len`.
    pub fn rank_zeros(&self, index: usize) -> usize {
        assert!(index <= self.bits.len, "rank index {index} out of bounds {}", self.bits.len);
        let word = index / 64;
        let rem = index % 64;
        let mut ones = self.prefix_ones[word];
        if rem > 0 {
            let mask = (1u64 << rem) - 1;
            ones += (self.bits.words[word] & mask).count_ones() as u64;
        }
        index - ones as usize
    }

    /// Read access to the underlying bits.
    pub fn as_bitvec(&self) -> &BitVec {
        &self.bits
    }
}

impl fmt::Display for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_bitstring())
    }
}

impl FromIterator<bool> for BitVec {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> BitVec {
        let mut bv = BitVec::new();
        for b in iter {
            bv.push(b);
        }
        bv
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_get_across_word_boundaries() {
        let mut bv = BitVec::new();
        for i in 0..200 {
            bv.push(i % 3 == 0);
        }
        assert_eq!(bv.len(), 200);
        for i in 0..200 {
            assert_eq!(bv.get(i), Some(i % 3 == 0), "bit {i}");
        }
        assert_eq!(bv.get(200), None);
    }

    #[test]
    fn counts_are_consistent() {
        let bv: BitVec = (0..100).map(|i| i % 4 == 0).collect();
        assert_eq!(bv.count_ones(), 25);
        assert_eq!(bv.count_zeros(), 75);
        assert_eq!(bv.count_ones() + bv.count_zeros(), bv.len());
    }

    #[test]
    fn rank_zeros_matches_linear_scan() {
        let bv: BitVec = (0..150).map(|i| (i * 7) % 5 < 2).collect();
        for idx in 0..=150 {
            let expected = (0..idx).filter(|&i| !bv.get(i).unwrap()).count();
            assert_eq!(bv.rank_zeros(idx), expected, "rank at {idx}");
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn rank_past_end_panics() {
        let bv: BitVec = [true, false].into_iter().collect();
        bv.rank_zeros(3);
    }

    #[test]
    fn byte_serialization_is_msb_first() {
        let bv: BitVec = "01101001".chars().map(|c| c == '1').collect();
        assert_eq!(bv.to_bytes().as_ref(), &[0b0110_1001]);
        // Partial trailing byte is zero-padded.
        let bv: BitVec = "101".chars().map(|c| c == '1').collect();
        assert_eq!(bv.to_bytes().as_ref(), &[0b1010_0000]);
    }

    #[test]
    fn bitstring_round_trip() {
        let s = "0000011010";
        let bv: BitVec = s.chars().map(|c| c == '1').collect();
        assert_eq!(bv.to_bitstring(), s);
        assert_eq!(format!("{bv}"), s);
    }

    #[test]
    fn empty_bitvec() {
        let bv = BitVec::new();
        assert!(bv.is_empty());
        assert_eq!(bv.count_ones(), 0);
        assert_eq!(bv.rank_zeros(0), 0);
        assert!(bv.to_bytes().is_empty());
    }
}

#[cfg(test)]
mod ranked_tests {
    use super::*;

    #[test]
    fn ranked_rank_matches_linear_rank() {
        let bv: BitVec = (0..500).map(|i| (i * 13) % 7 < 3).collect();
        let linear: Vec<usize> = (0..=500).map(|i| bv.rank_zeros(i)).collect();
        let ranked = bv.into_ranked();
        for (i, &expected) in linear.iter().enumerate() {
            assert_eq!(ranked.rank_zeros(i), expected, "rank at {i}");
        }
        assert_eq!(ranked.count_ones() + ranked.count_zeros(), 500);
    }

    #[test]
    fn ranked_preserves_bits() {
        let bv: BitVec = "0110010111".chars().map(|c| c == '1').collect();
        let ranked = bv.clone().into_ranked();
        assert_eq!(ranked.len(), bv.len());
        for i in 0..bv.len() {
            assert_eq!(ranked.get(i), bv.get(i));
        }
        assert_eq!(ranked.as_bitvec(), &bv);
        assert!(!ranked.is_empty());
    }

    #[test]
    fn empty_ranked_bits() {
        let ranked = BitVec::new().into_ranked();
        assert!(ranked.is_empty());
        assert_eq!(ranked.rank_zeros(0), 0);
        assert_eq!(ranked.count_ones(), 0);
    }
}
