//! Property-based tests for the safe-region algorithms.
//!
//! The central invariant of the whole system (paper §2.1): **while a
//! subscriber stays inside its safe region, no relevant unfired alarm can
//! trigger.** Geometrically: the safe region never shares interior points
//! with any alarm region that does not already contain the subscriber.

use proptest::prelude::*;
use sa_core::{MwpsrComputer, PyramidComputer, PyramidConfig, SafeRegion};
use sa_geometry::{MotionPdf, Point, Rect};

const CELL: f64 = 1_000.0;

fn cell() -> Rect {
    Rect::new(0.0, 0.0, CELL, CELL).unwrap()
}

fn arb_user() -> impl Strategy<Value = Point> {
    (0.0..CELL, 0.0..CELL).prop_map(|(x, y)| Point::new(x, y))
}

fn arb_alarm() -> impl Strategy<Value = Rect> {
    // Alarm regions near or overlapping the cell, various sizes.
    (-200.0..CELL, -200.0..CELL, 10.0..400.0f64, 10.0..400.0f64)
        .prop_map(|(x, y, w, h)| Rect::new(x, y, x + w, y + h).unwrap())
}

fn arb_alarms() -> impl Strategy<Value = Vec<Rect>> {
    prop::collection::vec(arb_alarm(), 0..25)
}

fn arb_pdf() -> impl Strategy<Value = MotionPdf> {
    prop_oneof![
        Just(MotionPdf::uniform()),
        (2u32..40).prop_map(|z| MotionPdf::new(1.0, z).unwrap()),
        (4u32..40).prop_map(|z| MotionPdf::new(1.9, z).unwrap()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn mwpsr_safety_invariant(
        user in arb_user(),
        heading in -std::f64::consts::PI..std::f64::consts::PI,
        alarms in arb_alarms(),
        pdf in arb_pdf(),
    ) {
        let computer = MwpsrComputer::new(pdf);
        let region = computer.compute(user, heading, cell(), &alarms);
        let rect = region.rect();

        // 1. Contains the subscriber.
        prop_assert!(region.contains(user));
        // 2. Stays within the cell.
        prop_assert!(cell().contains_rect(&rect));
        // 3. Never overlaps the interior of a non-containing alarm region.
        for a in &alarms {
            if !a.contains_point_strict(user) {
                prop_assert!(
                    !rect.intersects_interior(a),
                    "safe region {} overlaps alarm {}", rect, a
                );
            }
        }
        // 4. Stays within every containing alarm region (§2.1(ii)).
        for a in &alarms {
            if a.contains_point_strict(user) {
                prop_assert!(a.contains_rect(&rect));
            }
        }
    }

    #[test]
    fn mwpsr_is_locally_maximal(
        user in arb_user(),
        alarms in prop::collection::vec(arb_alarm(), 1..12),
    ) {
        // Growing the non-weighted region by 1% in any single direction must
        // hit an alarm interior or leave the domain — otherwise the region
        // was not maximal. (Holds for the *non-weighted* variant, which
        // maximizes plain perimeter over the staircase corners.)
        let computer = MwpsrComputer::non_weighted();
        let region = computer.compute(user, 0.0, cell(), &alarms);
        let rect = region.rect();
        let containing: Vec<&Rect> = alarms.iter().filter(|a| a.contains_point_strict(user)).collect();
        let mut domain = cell();
        for c in &containing {
            domain = domain.intersection(**c).unwrap();
        }
        let grow = 10.0;
        let grown = [
            Rect::new(rect.min_x(), rect.min_y(), rect.max_x() + grow, rect.max_y()),
            Rect::new(rect.min_x(), rect.min_y(), rect.max_x(), rect.max_y() + grow),
            Rect::new(rect.min_x() - grow, rect.min_y(), rect.max_x(), rect.max_y()),
            Rect::new(rect.min_x(), rect.min_y() - grow, rect.max_x(), rect.max_y()),
        ];
        for g in grown.into_iter().flatten() {
            let escapes_domain = !domain.contains_rect(&g);
            let hits_alarm = alarms
                .iter()
                .filter(|a| !a.contains_point_strict(user))
                .any(|a| g.intersects_interior(a));
            prop_assert!(
                escapes_domain || hits_alarm,
                "region {} could have grown to {}", rect, g
            );
        }
    }

    #[test]
    fn weighted_region_is_also_maximal_per_direction(
        user in arb_user(),
        heading in -3.0..3.0f64,
        alarms in prop::collection::vec(arb_alarm(), 1..12),
    ) {
        // Maximality holds for any pdf: every staircase corner is maximal,
        // so no single-direction growth is possible.
        let computer = MwpsrComputer::new(MotionPdf::new(1.0, 16).unwrap());
        let rect = computer.compute(user, heading, cell(), &alarms).rect();
        let mut domain = cell();
        for a in alarms.iter().filter(|a| a.contains_point_strict(user)) {
            domain = domain.intersection(*a).unwrap();
        }
        let eps = 1.0;
        let grown = [
            Rect::new(rect.min_x(), rect.min_y(), rect.max_x() + eps, rect.max_y()),
            Rect::new(rect.min_x(), rect.min_y(), rect.max_x(), rect.max_y() + eps),
            Rect::new(rect.min_x() - eps, rect.min_y(), rect.max_x(), rect.max_y()),
            Rect::new(rect.min_x(), rect.min_y() - eps, rect.max_x(), rect.max_y()),
        ];
        for g in grown.into_iter().flatten() {
            let escapes_domain = !domain.contains_rect(&g);
            let hits_alarm = alarms
                .iter()
                .filter(|a| !a.contains_point_strict(user))
                .any(|a| g.intersects_interior(a));
            prop_assert!(escapes_domain || hits_alarm);
        }
    }

    #[test]
    fn pbsr_safety_invariant(
        alarms in arb_alarms(),
        height in 1u32..5,
    ) {
        let computer = PyramidComputer::new(PyramidConfig::three_by_three(height));
        let region = computer.compute(cell(), &alarms);
        let decoded = region.decode();
        for a in &alarms {
            prop_assert!(
                !decoded.intersects_interior(a),
                "decoded safe region overlaps alarm {}", a
            );
        }
        // Coverage matches decoded area exactly.
        prop_assert!((decoded.area() / cell().area() - region.coverage()).abs() < 1e-9);
    }

    #[test]
    fn pbsr_containment_matches_decode(
        alarms in arb_alarms(),
        height in 1u32..4,
        probes in prop::collection::vec((0.0..CELL, 0.0..CELL), 20),
    ) {
        let computer = PyramidComputer::new(PyramidConfig::three_by_three(height));
        let region = computer.compute(cell(), &alarms);
        let decoded = region.decode();
        for (x, y) in probes {
            let p = Point::new(x, y);
            // Skip points exactly on sub-cell boundaries, where the closed
            // decoded rects and the half-open descent may legitimately
            // disagree.
            let on_boundary = decoded.rects().iter().any(|r| {
                (r.min_x() - p.x).abs() < 1e-9
                    || (r.max_x() - p.x).abs() < 1e-9
                    || (r.min_y() - p.y).abs() < 1e-9
                    || (r.max_y() - p.y).abs() < 1e-9
            });
            if !on_boundary {
                prop_assert_eq!(region.contains(p), decoded.contains_point(p), "at {}", p);
            }
        }
    }

    #[test]
    fn pbsr_coverage_monotone_in_height(alarms in arb_alarms()) {
        let mut prev = -1.0;
        for h in 1..=5 {
            let region = PyramidComputer::new(PyramidConfig::three_by_three(h))
                .compute(cell(), &alarms);
            let cov = region.coverage();
            prop_assert!(cov >= prev - 1e-12, "coverage shrank at h={h}");
            prev = cov;
        }
    }

    #[test]
    fn pbsr_bitmap_structure_is_consistent(alarms in arb_alarms(), height in 1u32..5) {
        let region = PyramidComputer::new(PyramidConfig::three_by_three(height))
            .compute(cell(), &alarms);
        if region.is_whole_cell_free() {
            prop_assert_eq!(region.bitmap_size(), 1);
        } else {
            // Proposition 2 structure: each level holds 9 nominal bits per
            // nominal zero of the level above (the root is the single
            // level-0 zero).
            let bits = region.nominal_level_bits();
            let zeros = region.nominal_level_zeros();
            let mut blocked = 1u64;
            for (b, z) in bits.iter().zip(zeros.iter()) {
                prop_assert_eq!(*b, blocked * 9);
                prop_assert!(*z <= *b);
                blocked = *z;
            }
            prop_assert_eq!(region.level_count(), height as usize);
            prop_assert_eq!(region.bitmap_size() as u64, 1 + bits.iter().sum::<u64>());
            // The sparse in-memory form never exceeds the nominal encoding.
            prop_assert!((region.materialized_bits() as u64) <= bits.iter().sum::<u64>());
        }
    }

    #[test]
    fn mwpsr_beats_or_matches_gbsr_coverage_never_violates_safety(
        user in arb_user(),
        alarms in arb_alarms(),
    ) {
        // Both representations must be sound simultaneously; additionally a
        // rectangular region is always a subset of the cell, so its area
        // can never exceed the cell's.
        let rect = MwpsrComputer::non_weighted().compute(user, 0.0, cell(), &alarms).rect();
        let bitmap = PyramidComputer::new(PyramidConfig::three_by_three(3)).compute(cell(), &alarms);
        prop_assert!(rect.area() <= cell().area() + 1e-6);
        prop_assert!(bitmap.coverage() <= 1.0 + 1e-12);
        // If the user is in no alarm region, the bitmap region decoded must
        // not contain any point that MWPSR excluded for alarm reasons...
        // (both are safe; no direct subset relation holds, so we only check
        // soundness of each, done above and in other tests).
    }
}
