//! Property tests pinning the word-parallel [`BitVec`] operations to
//! bit-by-bit scalar references built from the public single-bit API
//! (`push`/`get`), with lengths biased toward the ragged word-boundary
//! tails (63/64/65, 127/128/129) where masking bugs live.

use proptest::prelude::*;
use sa_core::BitVec;

/// Lengths concentrated on u64-block boundaries and their neighbours.
fn ragged_len() -> impl Strategy<Value = usize> {
    prop_oneof![
        3 => 0usize..=10,
        3 => 60usize..=68,
        3 => 125usize..=131,
        2 => 0usize..=300,
    ]
}

/// A bit vector of length `len` seeded from `seed`, built bit by bit.
fn build(len: usize, seed: u64) -> BitVec {
    let mut state = seed | 1;
    (0..len)
        .map(|_| {
            // SplitMix64-ish scramble; only parity matters.
            state = state
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(0xbf58_476d_1ce4_e5b9);
            (state >> 32).count_ones() % 2 == 1
        })
        .collect()
}

/// Scalar reference: per-bit zip of two equal-length vectors.
fn scalar_zip(a: &BitVec, b: &BitVec, f: impl Fn(bool, bool) -> bool) -> BitVec {
    assert_eq!(a.len(), b.len());
    (0..a.len())
        .map(|i| f(a.get(i).unwrap(), b.get(i).unwrap()))
        .collect()
}

/// Scalar reference: MSB-first octet packing, bit by bit.
fn scalar_to_bytes(bits: &BitVec) -> Vec<u8> {
    let mut out = vec![0u8; bits.len().div_ceil(8)];
    for (i, bit) in bits.iter().enumerate() {
        if bit {
            out[i / 8] |= 1 << (7 - (i % 8));
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn set_ops_match_scalar_zip(len in ragged_len(), seed in 0u64..u64::MAX) {
        let a = build(len, seed);
        let b = build(len, seed.rotate_left(17) ^ 0xDEAD_BEEF);
        prop_assert_eq!(a.intersect(&b), scalar_zip(&a, &b, |x, y| x && y));
        prop_assert_eq!(a.union(&b), scalar_zip(&a, &b, |x, y| x || y));
        prop_assert_eq!(a.difference(&b), scalar_zip(&a, &b, |x, y| x && !y));
        let and_ones = (0..len)
            .filter(|&i| a.get(i).unwrap() && b.get(i).unwrap())
            .count();
        prop_assert_eq!(a.intersection_ones(&b), and_ones);
    }

    #[test]
    fn assign_ops_match_pure_ops(len in ragged_len(), seed in 0u64..u64::MAX) {
        let a = build(len, seed);
        let b = build(len, !seed);
        let mut x = a.clone();
        x.intersect_assign(&b);
        prop_assert_eq!(&x, &a.intersect(&b));
        let mut y = a.clone();
        y.union_assign(&b);
        prop_assert_eq!(&y, &a.union(&b));
        let mut z = a.clone();
        z.difference_assign(&b);
        prop_assert_eq!(&z, &a.difference(&b));
    }

    #[test]
    fn bulk_pushes_match_single_bit_pushes(
        prefix in ragged_len(),
        zeros in 0usize..200,
        ones in 0usize..200,
        seed in 0u64..u64::MAX,
    ) {
        let base = build(prefix, seed);
        let mut bulk = base.clone();
        bulk.push_zeros(zeros);
        bulk.push_ones(ones);
        let mut single = base;
        for _ in 0..zeros {
            single.push(false);
        }
        for _ in 0..ones {
            single.push(true);
        }
        prop_assert_eq!(bulk, single);
    }

    #[test]
    fn slice_and_extend_range_match_per_bit_copy(
        len in ragged_len(),
        cut in (0u64..u64::MAX, 0u64..u64::MAX),
        seed in 0u64..u64::MAX,
    ) {
        let src = build(len, seed);
        let start = if len == 0 { 0 } else { (cut.0 % (len as u64 + 1)) as usize };
        let max = len - start;
        let take = if max == 0 { 0 } else { (cut.1 % (max as u64 + 1)) as usize };
        let sliced = src.slice(start, take);
        let expected: BitVec = (start..start + take)
            .map(|i| src.get(i).unwrap())
            .collect();
        prop_assert_eq!(&sliced, &expected);
        // extend_range onto a ragged destination prefix.
        let mut dst = build(7, !seed);
        let prefix = dst.clone();
        dst.extend_range(&src, start, take);
        prop_assert_eq!(dst.len(), prefix.len() + take);
        for i in 0..prefix.len() {
            prop_assert_eq!(dst.get(i), prefix.get(i));
        }
        for i in 0..take {
            prop_assert_eq!(dst.get(prefix.len() + i), src.get(start + i));
        }
    }

    #[test]
    fn byte_serialization_matches_scalar_packing(len in ragged_len(), seed in 0u64..u64::MAX) {
        let bits = build(len, seed);
        let bytes = bits.to_bytes();
        prop_assert_eq!(bytes.as_ref(), scalar_to_bytes(&bits).as_slice());
        let back = BitVec::from_bytes(&bytes, len).unwrap();
        prop_assert_eq!(&back, &bits);
        // Rank and counts must survive the round trip (padding bits of a
        // ragged final octet must not leak into the word representation).
        prop_assert_eq!(back.count_ones(), bits.count_ones());
        for probe in [0, len / 2, len] {
            prop_assert_eq!(back.rank_zeros(probe), bits.rank_zeros(probe));
        }
    }

    #[test]
    fn rank_matches_linear_count(len in ragged_len(), seed in 0u64..u64::MAX) {
        let bits = build(len, seed);
        let ranked = bits.clone().into_ranked();
        for probe in 0..=len {
            let expected = (0..probe).filter(|&i| !bits.get(i).unwrap()).count();
            prop_assert_eq!(bits.rank_zeros(probe), expected);
            prop_assert_eq!(ranked.rank_zeros(probe), expected);
        }
    }

    #[test]
    fn iter_ones_matches_filtered_indices(len in ragged_len(), seed in 0u64..u64::MAX) {
        let bits = build(len, seed);
        let expected: Vec<usize> = (0..len).filter(|&i| bits.get(i).unwrap()).collect();
        prop_assert_eq!(bits.iter_ones().collect::<Vec<_>>(), expected);
    }
}
