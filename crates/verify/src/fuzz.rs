//! Seed-driven fuzzing entry points.
//!
//! Two sweeps, both pure functions of their seed ranges:
//!
//! * [`fuzz_differential`] — the cheap per-cell sweep: each seed builds
//!   a random (position, heading, cell, obstacle set) and runs
//!   [`sa_core::differential_check`], computing MWPSR, GBSR and PBSR
//!   for the same inputs and checking all three against the brute-force
//!   lattice and reference-mask oracles. Thousands per CI run.
//! * [`fuzz_schedule`] — the heavy end-to-end sweep: each seed derives
//!   a [`FuzzCase`] and drives the whole server/fleet/chaos stack
//!   through [`run_case`]; any invariant violation is shrunk to a
//!   minimal case and rendered as a `#[test]` reproducer.

use crate::harness::{run_case, FuzzCase};
use crate::minimize::{reproducer, shrink_case};
use rand::{rngs::SmallRng, Rng, SeedableRng};
use sa_geometry::{Point, Rect};

/// One fuzzed schedule failure, minimized and rendered.
#[derive(Debug, Clone)]
pub struct FuzzFailure {
    /// The seed that found it.
    pub seed: u64,
    /// The case as fuzzed.
    pub case: FuzzCase,
    /// The greedily minimized case (equals `case` when minimization was
    /// disabled or made no progress).
    pub minimized: FuzzCase,
    /// The violation message of the minimized case.
    pub violation: String,
    /// A self-contained `#[test]` artifact replaying the violation.
    pub reproducer: String,
}

/// The outcome of a [`fuzz_schedule`] sweep.
#[derive(Debug, Clone, Default)]
pub struct FuzzReport {
    /// Seeds driven end to end.
    pub seeds_run: u64,
    /// Violations found (empty on a clean sweep).
    pub failures: Vec<FuzzFailure>,
}

impl FuzzReport {
    /// True when no seed violated an invariant.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Runs a case and returns its violation, folding transport errors in:
/// the harness never legitimately surfaces one (resilient clients
/// absorb transient faults), so an escaped error is itself a failure.
fn violation_of(case: &FuzzCase) -> Option<String> {
    match run_case(case) {
        Ok(outcome) => outcome.failure(),
        Err(e) => Some(format!("transport error escaped the harness: {e}")),
    }
}

/// Fuzzes the seeds of `seeds`, one full [`run_case`] each; failures
/// are minimized (when `minimize` is set) and rendered as reproducers.
pub fn fuzz_schedule(seeds: impl IntoIterator<Item = u64>, minimize: bool) -> FuzzReport {
    let mut report = FuzzReport::default();
    for seed in seeds {
        report.seeds_run += 1;
        let case = FuzzCase::from_seed(seed);
        let Some(first_violation) = violation_of(&case) else { continue };
        let minimized = if minimize {
            shrink_case(&case, |c| violation_of(c).is_some())
        } else {
            case.clone()
        };
        let violation = violation_of(&minimized).unwrap_or(first_violation);
        let rendered = reproducer(&minimized, &violation);
        report.failures.push(FuzzFailure {
            seed,
            case,
            minimized,
            violation,
            reproducer: rendered,
        });
    }
    report
}

/// Builds the random per-cell differential case of `seed` and runs
/// [`sa_core::differential_check`] on it.
///
/// # Errors
///
/// The rendered oracle violation, when one of the three computers
/// produces an unsound region.
pub fn differential_seed(seed: u64) -> Result<(), String> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x00D1_FFEB_CE11);
    let side = rng.gen_range(300.0..2_000.0f64);
    let x0 = rng.gen_range(0.0..20_000.0f64);
    let y0 = rng.gen_range(0.0..20_000.0f64);
    let cell = Rect::new(x0, y0, x0 + side, y0 + side).expect("cell side is positive");
    let pos = Point::new(
        rng.gen_range(cell.min_x()..cell.max_x()),
        rng.gen_range(cell.min_y()..cell.max_y()),
    );
    let heading = rng.gen_range(0.0..std::f64::consts::TAU);
    let count = rng.gen_range(0..=8u32);
    let mut obstacles = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let hw = rng.gen_range(5.0..=side * 0.4);
        let hh = rng.gen_range(5.0..=side * 0.4);
        let cx = rng.gen_range(cell.min_x() - hw..cell.max_x() + hw);
        let cy = rng.gen_range(cell.min_y() - hh..cell.max_y() + hh);
        let obstacle =
            Rect::new(cx - hw, cy - hh, cx + hw, cy + hh).expect("half extents are positive");
        // The subscriber must stand outside every obstacle interior (an
        // alarm strictly containing them would already have fired).
        if !obstacle.contains_point_strict(pos) {
            obstacles.push(obstacle);
        }
    }
    let pbsr_height = rng.gen_range(2..=4u32);
    sa_core::differential_check(pos, heading, cell, &obstacles, pbsr_height)
        .map_err(|v| format!("differential seed {seed}: {v}"))
}

/// Runs [`differential_seed`] over `start..start + count`.
///
/// # Errors
///
/// The first seed's violation.
pub fn fuzz_differential(start: u64, count: u64) -> Result<u64, String> {
    for seed in start..start.saturating_add(count) {
        differential_seed(seed)?;
    }
    Ok(count)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn differential_seeds_are_deterministic_and_pass() {
        for seed in 0..24 {
            differential_seed(seed).expect("shipped computers must satisfy the oracle");
        }
    }

    #[test]
    fn a_small_schedule_sweep_is_clean() {
        let report = fuzz_schedule(100..102u64, false);
        assert_eq!(report.seeds_run, 2);
        assert!(report.is_clean(), "failures: {:?}", report.failures);
    }
}
