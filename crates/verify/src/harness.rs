//! The deterministic schedule harness.
//!
//! [`FuzzCase`] is a complete description of one end-to-end run — fleet
//! slice, alarm workload, strategy mix, fault plan, batching cadence and
//! server sizing — derivable from a single `u64` seed
//! ([`FuzzCase::from_seed`]). [`run_case`] executes it against the live
//! `sa-server` stack on a [`VirtualClock`]: every timestamp, injected
//! delay and backoff sleep advances simulated time instead of wall
//! time, every RNG is seeded from the case, and the single driver
//! thread exchanges requests synchronously — so the entire run,
//! including its byte-level [`Transcript`], is a pure function of the
//! case.
//!
//! Determinism boundary: shard workers run on real threads, but a
//! synchronous driver keeps at most one per-request job in flight, and
//! [`run_case`] sizes each shard queue to hold a whole batch fan-out,
//! so `Overloaded` backpressure — the one response that depends on
//! worker scheduling — can never occur. The transcript therefore never
//! observes thread timing.

use crate::oracle::check_transcript;
use crate::transcript::{RecordingTransport, SharedTranscript, Transcript, DRIVER_TAG};
use rand::{rngs::SmallRng, Rng, SeedableRng};
use sa_alarms::SubscriberId;
use sa_obs::FlightBundle;
use sa_roadnet::Fleet;
use sa_server::wire::SEQ_MASK;
use sa_server::{
    Client, FaultLeg, FaultPlan, FaultyTransport, InProcTransport, Request, ResiliencePolicy,
    Response, Server, ServerConfig, SharedClock, StrategySpec, Transport, TransportError,
    VirtualClock,
};
use sa_sim::{FiredEvent, GroundTruth, SimulationConfig, SimulationHarness};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// One fully-specified fuzz run: everything [`run_case`] needs, and
/// nothing it reads from anywhere else.
#[derive(Debug, Clone, PartialEq)]
pub struct FuzzCase {
    /// Master seed: world generation, fault RNG streams, interleaving.
    pub seed: u64,
    /// Fleet size (clamped to ≥ 1).
    pub vehicles: usize,
    /// Alarm workload size (clamped to ≥ 1).
    pub alarms: usize,
    /// Steps to drive (1 Hz sampling).
    pub steps: u32,
    /// Strategies assigned to vehicles round-robin.
    pub strategies: Vec<StrategySpec>,
    /// The fault schedule every client link runs under.
    pub plan: FaultPlan,
    /// Every `batch_every`-th step is driven as one [`Request::Batch`]
    /// frame instead of per-client exchanges; `0` never batches. Only
    /// meaningful under a clean plan — [`FuzzCase::from_seed`] never
    /// combines batching with faults, because the chaos semantics
    /// (retry, resync, degraded mode) are defined on the per-request
    /// path.
    pub batch_every: u32,
    /// Server shard count.
    pub num_shards: usize,
    /// Requested shard queue capacity ([`run_case`] raises it to the
    /// fleet size so backpressure stays scheduling-independent).
    pub queue_capacity: usize,
}

impl FuzzCase {
    /// Derives a complete case from one seed. The mapping is pure: the
    /// same seed always yields the same case.
    pub fn from_seed(seed: u64) -> FuzzCase {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xC0DE_5EED_F007_BA11);
        let vehicles = rng.gen_range(2..=6usize);
        let alarms = rng.gen_range(4..=48usize);
        let steps = rng.gen_range(16..=72u32);
        let pyramid_height = rng.gen_range(1..=5u32);
        let rot = rng.gen_range(0..4usize);
        let all = [
            StrategySpec::Mwpsr,
            StrategySpec::Pbsr { height: pyramid_height },
            StrategySpec::Opt,
            StrategySpec::SafePeriod,
        ];
        let strategies = (0..all.len()).map(|i| all[(i + rot) % all.len()]).collect();
        let plan = match rng.gen_range(0..5u32) {
            0 | 1 => FaultPlan::clean(),
            2 => FaultPlan {
                seed,
                up: FaultLeg { drop: 0.10, duplicate: 0.02, delay: 0.05, max_delay: Duration::from_millis(40) },
                down: FaultLeg { drop: 0.10, duplicate: 0.02, delay: 0.05, max_delay: Duration::from_millis(40) },
                disconnect_steps: random_windows(&mut rng, steps),
            },
            3 => FaultPlan { seed, disconnect_steps: random_windows(&mut rng, steps), ..FaultPlan::clean() },
            _ => FaultPlan::duplicating(seed),
        };
        let clean = plan == FaultPlan::clean();
        let batch_every = if clean { rng.gen_range(0..3u32) } else { 0 };
        FuzzCase {
            seed,
            vehicles,
            alarms,
            steps,
            strategies,
            plan,
            batch_every,
            num_shards: rng.gen_range(1..=4usize),
            queue_capacity: rng.gen_range(8..=64usize),
        }
    }
}

/// Up to two disconnect windows of 2–6 steps inside `0..steps`.
fn random_windows(rng: &mut SmallRng, steps: u32) -> Vec<std::ops::Range<u32>> {
    let count = rng.gen_range(1..=2u32);
    (0..count)
        .map(|_| {
            let len = rng.gen_range(2..=6u32);
            let start = rng.gen_range(0..steps.saturating_sub(len).max(1));
            start..start + len
        })
        .collect()
}

/// Everything one [`run_case`] execution produced.
#[derive(Debug)]
pub struct CaseOutcome {
    /// [`Transcript::digest`] of the run — the byte-identity witness.
    pub digest: u64,
    /// The full byte transcript.
    pub transcript: Transcript,
    /// Every firing observed by any client.
    pub fired: Vec<FiredEvent>,
    /// Diff against the simulator's ground truth restricted to the
    /// replayed steps (the paper's 100%-accuracy requirement).
    pub verification: Result<(), String>,
    /// The transcript-level install-soundness oracle (every safe region,
    /// alarm push and safe-period grant the server shipped, checked
    /// against the brute-force reference).
    pub oracle: Result<(), String>,
    /// Total faults the chaos layer injected.
    pub injected_total: u64,
    /// Steps actually driven.
    pub steps: u32,
}

impl CaseOutcome {
    /// The first invariant violation, if any.
    pub fn failure(&self) -> Option<String> {
        match (&self.verification, &self.oracle) {
            (Err(e), _) => Some(format!("ground-truth divergence: {e}")),
            (_, Err(e)) => Some(format!("oracle violation: {e}")),
            _ => None,
        }
    }

    /// Panics with the violation when the run was not clean.
    ///
    /// # Panics
    ///
    /// Panics when the ground-truth diff or the install oracle failed.
    pub fn assert_clean(&self) {
        if let Some(e) = self.failure() {
            panic!("fuzz case violated an invariant: {e}");
        }
    }
}

/// Fisher–Yates under the given RNG (the vendored `rand` has no
/// `shuffle`; this mirrors `SliceRandom::shuffle`).
fn shuffle<T>(items: &mut [T], rng: &mut SmallRng) {
    for i in (1..items.len()).rev() {
        let j = rng.gen_range(0..=i);
        items.swap(i, j);
    }
}

/// Overload retry rounds per batched step before giving up. Sized far
/// above anything reachable: [`run_case`] sizes queues so `Overloaded`
/// cannot occur, so a retry here already signals a bug worth failing on.
const MAX_BATCH_ROUNDS: u32 = 10_000;

/// Executes one [`FuzzCase`] end to end and returns its outcome.
///
/// # Errors
///
/// Fails when a client hits a non-transient transport error or the
/// server violates the batch protocol.
///
/// # Panics
///
/// Panics when the case carries an empty strategy list.
pub fn run_case(case: &FuzzCase) -> Result<CaseOutcome, TransportError> {
    assert!(!case.strategies.is_empty(), "need at least one strategy to assign");
    let config =
        SimulationConfig::fuzz_slice(case.vehicles, case.alarms, case.steps, case.seed);
    config.validate();
    let harness = SimulationHarness::build(&config);
    let dt = config.sample_period_s;
    let steps = case.steps.max(1).min(config.steps() as u32);
    let vehicles = config.fleet.vehicles as u32;

    let vclock = Arc::new(VirtualClock::new());
    let clock: SharedClock = vclock.clone();
    let server = Server::start_with_clock(
        harness.grid().clone(),
        harness.index().alarms().to_vec(),
        harness.v_max(),
        ServerConfig {
            num_shards: case.num_shards.max(1),
            // A batched step submits up to one job per vehicle to a
            // single shard queue before any reply is read; holding the
            // whole fan-out keeps Overloaded — the one
            // scheduling-dependent response — unreachable.
            queue_capacity: case.queue_capacity.max(vehicles as usize),
        },
        Arc::clone(&clock),
    );

    let log: SharedTranscript = Arc::new(Mutex::new(Transcript::new()));
    let mut controls = Vec::with_capacity(vehicles as usize);
    let mut counts = Vec::with_capacity(vehicles as usize);
    let mut sessions = Vec::with_capacity(vehicles as usize);
    let mut strategies = Vec::with_capacity(vehicles as usize);
    let mut clients: Vec<Client<RecordingTransport<FaultyTransport<InProcTransport>>>> = (0
        ..vehicles)
        .map(|v| {
            let strategy = case.strategies[v as usize % case.strategies.len()];
            strategies.push(strategy);
            let inner = InProcTransport::connect(Arc::clone(&server));
            sessions.push(inner.session());
            let faulty = FaultyTransport::new(inner, case.plan.clone(), u64::from(v))
                .with_clock(Arc::clone(&clock));
            controls.push(faulty.controls());
            counts.push(faulty.counts());
            let recording = RecordingTransport::new(faulty, v, Arc::clone(&log));
            let mut client = Client::connect(
                recording,
                SubscriberId(v),
                strategy,
                harness.grid().clone(),
                dt,
            )?;
            client.set_clock(Arc::clone(&clock));
            client.enable_resilience(ResiliencePolicy::standard(
                case.seed ^ 0xBACC_0FF5 ^ u64::from(v),
            ));
            Ok(client)
        })
        .collect::<Result<_, TransportError>>()?;
    let mut driver = RecordingTransport::new(
        InProcTransport::connect(Arc::clone(&server)),
        DRIVER_TAG,
        Arc::clone(&log),
    );

    // Handshakes are done — arm the fault plan.
    for c in &controls {
        c.set_armed(true);
    }

    let mut fleet = Fleet::new(harness.network(), &config.fleet);
    let mut samples = Vec::new();
    let mut order_rng = SmallRng::seed_from_u64(case.seed ^ 0x0D0E_0A0D_0F00_D5ED);
    let mut was_down = false;
    let mut batch_seq = 0u32;

    for step in 0..steps {
        vclock.advance(Duration::from_secs_f64(dt));
        let down = case.plan.disconnected_at(step);
        if down != was_down {
            for c in &controls {
                c.set_link_down(down);
            }
            was_down = down;
        }
        fleet.step_into(dt, &mut samples);
        // The seeded scheduler interleaving: clients are visited in a
        // fresh pseudo-random order each step (and batched entries are
        // submitted in that order), so shared server state — cache
        // epochs, session delivery logs — is exercised under many
        // arrival orders while staying a function of the seed.
        let mut order: Vec<usize> = (0..samples.len()).collect();
        shuffle(&mut order, &mut order_rng);

        if case.batch_every > 0 && step % case.batch_every == 0 {
            let mut entries = Vec::new();
            let mut owners = Vec::new();
            for &i in &order {
                let s = &samples[i];
                let v = s.vehicle.0 as usize;
                if let Some(entry) =
                    clients[v].poll_update(sessions[v], step, s.pos, s.heading, s.speed)?
                {
                    entries.push(entry);
                    owners.push(v);
                }
            }
            let mut rounds = 0u32;
            while !entries.is_empty() {
                rounds += 1;
                if rounds > MAX_BATCH_ROUNDS {
                    return Err(TransportError::Protocol("server stayed overloaded"));
                }
                batch_seq = (batch_seq + 1) & SEQ_MASK;
                let resps =
                    driver.request(Request::Batch { seq: batch_seq, updates: entries.clone() })?;
                let replies = match resps.into_iter().next() {
                    Some(Response::Batch { seq, replies }) if seq == batch_seq => replies,
                    _ => {
                        return Err(TransportError::Protocol(
                            "batch request answered without a batch reply",
                        ))
                    }
                };
                if replies.len() != entries.len() {
                    return Err(TransportError::Protocol("batch reply count mismatch"));
                }
                let mut retry_entries = Vec::new();
                let mut retry_owners = Vec::new();
                for ((reply, &owner), &entry) in replies.into_iter().zip(&owners).zip(&entries) {
                    if reply.session != entry.session {
                        return Err(TransportError::Protocol("batch reply session mismatch"));
                    }
                    if !clients[owner].complete_update(reply.responses)? {
                        retry_entries.push(entry);
                        retry_owners.push(owner);
                    }
                }
                entries = retry_entries;
                owners = retry_owners;
            }
        } else {
            for &i in &order {
                let s = &samples[i];
                clients[s.vehicle.0 as usize].observe(step, s.pos, s.heading, s.speed)?;
            }
        }
    }

    // The outage is over: restore every link and drain the backlogs.
    for c in &controls {
        c.set_link_down(false);
        c.set_armed(false);
    }
    for client in &mut clients {
        client.finish()?;
    }

    let mut fired = Vec::new();
    for client in &mut clients {
        fired.extend(client.take_fired());
    }

    let expected: Vec<FiredEvent> = harness
        .ground_truth()
        .events()
        .iter()
        .filter(|e| e.step < steps)
        .cloned()
        .collect();
    let verification = GroundTruth::new(expected).verify(&fired).map_err(|e| {
        // The flight recorder: the failure message is the forensic
        // record — span trees, trace ring, registry snapshot.
        let mut bundle = FlightBundle::new(e);
        bundle.spans = server.spans();
        bundle.rings.push(("server".to_string(), server.trace_dump()));
        bundle.snapshots.push(("server".to_string(), server.registry().snapshot()));
        bundle.render()
    });
    let injected_total: u64 = counts.iter().map(|c| c.total()).sum();
    server.shutdown();

    let transcript = log.lock().expect("transcript lock poisoned").clone();
    let oracle = check_transcript(&transcript, &harness, &sessions, &strategies);
    Ok(CaseOutcome {
        digest: transcript.digest(),
        transcript,
        fired,
        verification,
        oracle,
        injected_total,
        steps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_seed_is_pure_and_varies() {
        let a = FuzzCase::from_seed(7);
        assert_eq!(a, FuzzCase::from_seed(7));
        let b = FuzzCase::from_seed(8);
        assert_ne!(a, b);
        assert!(a.vehicles >= 1 && a.steps >= 1 && !a.strategies.is_empty());
    }

    #[test]
    fn seeds_cover_clean_and_faulty_plans_and_batching() {
        let cases: Vec<FuzzCase> = (0..64).map(FuzzCase::from_seed).collect();
        assert!(cases.iter().any(|c| c.plan == FaultPlan::clean()));
        assert!(cases.iter().any(|c| c.plan != FaultPlan::clean()));
        assert!(cases.iter().any(|c| c.batch_every > 0));
        // Batching never rides on a faulty plan (chaos semantics are
        // per-request).
        assert!(cases
            .iter()
            .all(|c| c.batch_every == 0 || c.plan == FaultPlan::clean()));
    }

    #[test]
    fn a_tiny_clean_case_runs_clean() {
        let case = FuzzCase {
            seed: 11,
            vehicles: 2,
            alarms: 8,
            steps: 20,
            strategies: vec![StrategySpec::Mwpsr, StrategySpec::Pbsr { height: 2 }],
            plan: FaultPlan::clean(),
            batch_every: 2,
            num_shards: 2,
            queue_capacity: 8,
        };
        let outcome = run_case(&case).expect("transport must hold");
        outcome.assert_clean();
        assert!(!outcome.transcript.entries().is_empty());
    }
}
