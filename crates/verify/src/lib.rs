//! sa-verify: deterministic differential verification of the spatial
//! alarm runtime.
//!
//! The crates below this one implement the safe-region algorithms of
//! Bamba et al., "Distributed Processing of Spatial Alarms: A Safe
//! Region-Based Approach" (ICDCS 2009), and a server runtime that
//! installs those regions over a wire protocol under injected faults.
//! This crate closes the loop with simulation testing in the
//! FoundationDB style:
//!
//! * **Determinism** — the server, transports and chaos machinery are
//!   driven off a [`sa_server::VirtualClock`] from a single thread, so
//!   an entire run (fleet, faults, batching, retries) is a pure
//!   function of one `u64` seed. [`Transcript`] records every byte
//!   that crossed the wire; equal seeds must produce byte-identical
//!   transcripts.
//! * **Brute-force oracles** — [`check_transcript`] replays a recorded
//!   run against exhaustive checkers: every installed safe region (all
//!   three algorithms) must avoid every unfired relevant alarm region,
//!   every alarm push must be complete, every safe period must be
//!   reachable-distance sound.
//! * **Fuzzing + minimization** — [`fuzz_schedule`] derives random
//!   fleet slices, fault plans, batch mixes and visit orders from a
//!   seed; on violation, [`shrink_case`] greedily reduces the case and
//!   [`reproducer`] renders it as a paste-ready `#[test]`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fuzz;
mod harness;
mod minimize;
mod oracle;
mod transcript;

pub use fuzz::{differential_seed, fuzz_differential, fuzz_schedule, FuzzFailure, FuzzReport};
pub use harness::{run_case, CaseOutcome, FuzzCase};
pub use minimize::{reproducer, shrink_case, shrink_elements, test_artifact};
pub use oracle::{check_transcript, strictly_inside, GEOMETRY_TOL_M};
pub use transcript::{
    error_kind, RecordingTransport, SharedTranscript, Transcript, TranscriptEntry, DRIVER_TAG,
};
