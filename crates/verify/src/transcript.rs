//! Byte-level run transcripts.
//!
//! A [`RecordingTransport`] wraps any [`Transport`] and appends every
//! exchange — the encoded request body, and either the encoded response
//! bodies or the failure kind — to a shared [`Transcript`]. Because the
//! harness drives one virtual-clocked run from a single thread, the
//! transcript is a total order over every byte that crossed the wire;
//! [`Transcript::digest`] folds it into one `u64`, and the determinism
//! gate asserts that the same [`crate::FuzzCase`] always produces the
//! same digest, byte for byte.

use sa_server::{Request, Transport, TransportError};
use std::sync::{Arc, Mutex};

/// One recorded exchange: who spoke, what was sent, what came back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TranscriptEntry {
    /// Connection tag: the client index, or [`DRIVER_TAG`] for the
    /// batch driver connection.
    pub tag: u32,
    /// The encoded request body.
    pub request: Vec<u8>,
    /// The encoded response bodies in delivery order, or the failure
    /// kind when the exchange errored.
    pub outcome: Result<Vec<Vec<u8>>, &'static str>,
}

/// Tag of the batch driver connection in [`TranscriptEntry::tag`].
pub const DRIVER_TAG: u32 = u32::MAX;

/// The ordered exchange log of one harness run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Transcript {
    entries: Vec<TranscriptEntry>,
}

impl Transcript {
    /// An empty transcript.
    pub fn new() -> Transcript {
        Transcript::default()
    }

    /// The recorded exchanges, in wire order.
    pub fn entries(&self) -> &[TranscriptEntry] {
        &self.entries
    }

    /// Appends one exchange.
    pub fn push(&mut self, entry: TranscriptEntry) {
        self.entries.push(entry);
    }

    /// FNV-1a 64 over every byte of the transcript, with unambiguous
    /// separators between fields — two runs are byte-identical iff their
    /// digests (and entry counts) match, up to hash collisions the
    /// determinism tests additionally rule out by comparing the
    /// transcripts themselves.
    pub fn digest(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(PRIME);
            }
        };
        for e in &self.entries {
            eat(&e.tag.to_be_bytes());
            eat(&(e.request.len() as u32).to_be_bytes());
            eat(&e.request);
            match &e.outcome {
                Ok(frames) => {
                    eat(&[1]);
                    eat(&(frames.len() as u32).to_be_bytes());
                    for f in frames {
                        eat(&(f.len() as u32).to_be_bytes());
                        eat(f);
                    }
                }
                Err(kind) => {
                    eat(&[0]);
                    eat(kind.as_bytes());
                }
            }
        }
        h
    }
}

/// A [`Transcript`] shared between the harness and its transports.
pub type SharedTranscript = Arc<Mutex<Transcript>>;

/// Maps a [`TransportError`] to the stable kind string recorded in the
/// transcript (the error payloads carry non-deterministic detail like OS
/// error text; the kind is what determinism is asserted over).
pub fn error_kind(e: &TransportError) -> &'static str {
    match e {
        TransportError::Io(_) => "io",
        TransportError::Wire(_) => "wire",
        TransportError::Closed => "closed",
        TransportError::TimedOut => "timed-out",
        TransportError::Protocol(_) => "protocol",
        // The owner/epoch payload is deterministic, but the kind string
        // keeps the digest stable if redirect bookkeeping ever changes.
        TransportError::WrongOwner { .. } => "wrong-owner",
    }
}

/// A [`Transport`] decorator that appends every exchange to a shared
/// [`Transcript`] and passes the result through untouched.
pub struct RecordingTransport<T: Transport> {
    inner: T,
    tag: u32,
    log: SharedTranscript,
}

impl<T: Transport> RecordingTransport<T> {
    /// Wraps `inner`, recording under `tag` into `log`.
    pub fn new(inner: T, tag: u32, log: SharedTranscript) -> RecordingTransport<T> {
        RecordingTransport { inner, tag, log }
    }
}

impl<T: Transport> Transport for RecordingTransport<T> {
    fn request(&mut self, req: Request) -> Result<Vec<sa_server::Response>, TransportError> {
        let request = req.encode().to_vec();
        let result = self.inner.request(req);
        let outcome = match &result {
            Ok(resps) => Ok(resps.iter().map(|r| r.encode().to_vec()).collect()),
            Err(e) => Err(error_kind(e)),
        };
        self.log
            .lock()
            .expect("transcript lock poisoned")
            .push(TranscriptEntry { tag: self.tag, request, outcome });
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(tag: u32, request: Vec<u8>, outcome: Result<Vec<Vec<u8>>, &'static str>) -> TranscriptEntry {
        TranscriptEntry { tag, request, outcome }
    }

    #[test]
    fn digest_is_stable_and_field_sensitive() {
        let mut a = Transcript::new();
        a.push(entry(0, vec![1, 2, 3], Ok(vec![vec![4, 5]])));
        a.push(entry(1, vec![9], Err("timed-out")));
        let mut b = a.clone();
        assert_eq!(a.digest(), b.digest());
        b.push(entry(2, vec![], Ok(vec![])));
        assert_ne!(a.digest(), b.digest());
        let mut c = Transcript::new();
        c.push(entry(0, vec![1, 2, 3], Ok(vec![vec![4], vec![5]])));
        c.push(entry(1, vec![9], Err("timed-out")));
        assert_ne!(a.digest(), c.digest(), "frame boundaries must be digested");
    }

    #[test]
    fn empty_and_error_outcomes_are_distinguished() {
        let mut ok = Transcript::new();
        ok.push(entry(0, vec![], Ok(vec![])));
        let mut err = Transcript::new();
        err.push(entry(0, vec![], Err("closed")));
        assert_ne!(ok.digest(), err.digest());
    }
}
