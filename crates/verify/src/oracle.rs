//! Transcript-level install-soundness oracle.
//!
//! [`check_transcript`] replays a recorded [`Transcript`] against the
//! brute-force reference oracles of `sa-core`: every safe region the
//! server shipped (rectangular or bitmap), every OPT alarm push and
//! every safe-period grant is decoded from its wire bytes and checked
//! against the alarm workload — a region must never claim safe a point
//! strictly inside an alarm that had not yet fired for that subscriber,
//! a push must cover every unfired relevant alarm of the cell, and a
//! grant must not outlast the time needed to reach the nearest unfired
//! relevant alarm at top speed.
//!
//! Fired-set tracking follows the transcript order. Trigger deliveries
//! precede the terminal frame of their exchange, and post-failure
//! resyncs re-deliver missed firings before any fresh region, so by the
//! time an install is decoded every firing the server knew about has
//! been seen — the oracle's unfired set matches the server's.
//!
//! All geometric comparisons carry a tolerance of [`GEOMETRY_TOL_M`]:
//! wire coordinates are Q16.16-quantized (error ≲ 8 µm), so exact
//! comparisons against the unquantized workload would flag phantom
//! sub-micrometer overlaps.

use crate::transcript::{Transcript, DRIVER_TAG};
use sa_alarms::{SpatialAlarm, SubscriberId};
use sa_core::oracle::{check_bitmap_against_mask, check_sound};
use sa_core::{BitmapSafeRegion, PyramidConfig};
use sa_geometry::{CellId, Grid, Point, Rect};
use sa_server::wire::{dequantize_m, PushedAlarm};
use sa_server::{Request, Response, StrategySpec};
use sa_sim::SimulationHarness;
use std::collections::{HashMap, HashSet};

/// Slack applied to every geometric comparison against wire-decoded
/// coordinates: far above the Q16.16 quantization error (≈ 7.6 µm) and
/// far below any alarm-region feature (tens of meters).
pub const GEOMETRY_TOL_M: f64 = 1e-3;

/// Lattice density for the per-install soundness sampling (the bitmap
/// mask check is exact; the lattice additionally exercises the decoded
/// region's own containment code).
const INSTALL_LATTICE_N: usize = 24;

/// True when `p` lies strictly inside `rect` by more than `tol`.
pub fn strictly_inside(rect: Rect, p: Point, tol: f64) -> bool {
    p.x > rect.min_x() + tol
        && p.x < rect.max_x() - tol
        && p.y > rect.min_y() + tol
        && p.y < rect.max_y() - tol
}

/// True when the interiors of `a` and `b` overlap by more than `tol` in
/// both axes.
fn overlaps_beyond_tol(a: Rect, b: Rect, tol: f64) -> bool {
    let w = a.max_x().min(b.max_x()) - a.min_x().max(b.min_x());
    let h = a.max_y().min(b.max_y()) - a.min_y().max(b.min_y());
    w > tol && h > tol
}

/// The cell rectangle of a flattened wire cell index.
fn wire_cell_rect(grid: &Grid, index: u32) -> Result<Rect, String> {
    let cols = u64::from(grid.cols());
    let idx = u64::from(index);
    if idx >= grid.cell_count() {
        return Err(format!("wire cell index {index} out of range"));
    }
    let cell = CellId { col: (idx % cols) as u32, row: (idx / cols) as u32 };
    Ok(grid.cell_rect(cell))
}

fn dequantize_rect(rect: [u32; 4]) -> Result<Rect, String> {
    Rect::new(
        dequantize_m(rect[0]),
        dequantize_m(rect[1]),
        dequantize_m(rect[2]),
        dequantize_m(rect[3]),
    )
    .map_err(|e| format!("wire rect does not decode to a rectangle: {e}"))
}

/// Per-run context shared by every per-response check.
struct OracleState<'a> {
    grid: &'a Grid,
    alarms: &'a [SpatialAlarm],
    v_max: f64,
    /// `(subscriber, alarm id)` pairs the transcript has seen fire.
    fired: HashSet<(u32, u64)>,
}

impl OracleState<'_> {
    /// Alarm regions that could still fire for `user`.
    fn unfired_relevant(&self, user: u32) -> Vec<&SpatialAlarm> {
        self.alarms
            .iter()
            .filter(|a| {
                a.is_relevant_to(SubscriberId(user)) && !self.fired.contains(&(user, a.id().0))
            })
            .collect()
    }

    fn check_rect_install(&self, user: u32, cell: u32, rect: [u32; 4]) -> Result<(), String> {
        let region = dequantize_rect(rect)?;
        let cell_rect = wire_cell_rect(self.grid, cell)?;
        let inflated = cell_rect
            .inflated(GEOMETRY_TOL_M)
            .map_err(|e| format!("cell rect inflation failed: {e}"))?;
        if !inflated.contains_rect(&region) {
            return Err(format!(
                "rect install for user#{user} escapes its cell: region {region:?} vs cell \
                 {cell_rect:?}"
            ));
        }
        for alarm in self.unfired_relevant(user) {
            if overlaps_beyond_tol(region, alarm.region(), GEOMETRY_TOL_M) {
                return Err(format!(
                    "rect install for user#{user} overlaps unfired {}: region {region:?} vs \
                     alarm {:?}",
                    alarm.id(),
                    alarm.region()
                ));
            }
        }
        Ok(())
    }

    fn check_bitmap_install(
        &self,
        user: u32,
        strategy: StrategySpec,
        cell: u32,
        bits: &sa_core::BitVec,
    ) -> Result<(), String> {
        let StrategySpec::Pbsr { height } = strategy else {
            return Err(format!(
                "bitmap install shipped to user#{user} running {strategy:?}"
            ));
        };
        let cell_rect = wire_cell_rect(self.grid, cell)?;
        let region =
            BitmapSafeRegion::from_wire_bits(cell_rect, PyramidConfig::three_by_three(height), bits)
                .map_err(|e| format!("bitmap for user#{user} does not decode: {e}"))?;
        let obstacles: Vec<Rect> = self
            .unfired_relevant(user)
            .iter()
            .map(|a| a.region())
            .filter(|r| r.intersects_interior(&cell_rect))
            .collect();
        check_bitmap_against_mask("bitmap-wire", &region, &obstacles)
            .map_err(|v| format!("user#{user}: {v}"))?;
        check_sound("bitmap-wire", &region, cell_rect, &obstacles, INSTALL_LATTICE_N)
            .map_err(|v| format!("user#{user}: {v}"))?;
        Ok(())
    }

    fn check_alarm_push(&self, user: u32, cell: u32, pushed: &[PushedAlarm]) -> Result<(), String> {
        let cell_rect = wire_cell_rect(self.grid, cell)?;
        let pushed_relevant: HashSet<u64> = pushed
            .iter()
            .filter(|p| p.relevant)
            .map(|p| u64::from(p.alarm))
            .collect();
        for alarm in self.unfired_relevant(user) {
            if alarm.region().intersects_interior(&cell_rect)
                && !pushed_relevant.contains(&alarm.id().0)
            {
                return Err(format!(
                    "alarm push for user#{user} in cell {cell} omits unfired relevant {}",
                    alarm.id()
                ));
            }
        }
        Ok(())
    }

    fn check_safe_period(&self, user: u32, pos: Point, period_ms: u32) -> Result<(), String> {
        let Some(dist) = self
            .unfired_relevant(user)
            .iter()
            .map(|a| a.region().distance_to_point(pos))
            .min_by(|a, b| a.partial_cmp(b).expect("distances are finite"))
        else {
            return Ok(());
        };
        let period_s = f64::from(period_ms) / 1_000.0;
        // One granted millisecond plus the quantized-position slack.
        let slack = self.v_max * 2e-3 + GEOMETRY_TOL_M;
        if period_s * self.v_max > dist + slack {
            return Err(format!(
                "safe-period grant for user#{user} outlasts the nearest unfired alarm: \
                 {period_ms} ms at v_max {:.2} m/s covers {:.3} m but the alarm is {:.3} m away",
                self.v_max,
                period_s * self.v_max,
                dist
            ));
        }
        Ok(())
    }

    /// Processes one response sequence addressed to `user`, in delivery
    /// order, updating the fired set as deliveries appear.
    fn absorb_responses(
        &mut self,
        user: u32,
        strategy: StrategySpec,
        pos: Option<Point>,
        responses: &[Response],
    ) -> Result<(), String> {
        for resp in responses {
            match resp {
                Response::TriggerDelivery { alarm, .. } => {
                    self.fired.insert((user, u64::from(*alarm)));
                }
                Response::RectInstall { cell, rect, .. } => {
                    self.check_rect_install(user, *cell, *rect)?;
                }
                Response::BitmapInstall { cell, bits, .. } => {
                    self.check_bitmap_install(user, strategy, *cell, bits)?;
                }
                Response::AlarmPush { cell, alarms, .. } => {
                    self.check_alarm_push(user, *cell, alarms)?;
                }
                Response::SafePeriodGrant { period_ms } => {
                    if let Some(pos) = pos {
                        self.check_safe_period(user, pos, *period_ms)?;
                    }
                }
                Response::Ack { .. }
                | Response::Overloaded { .. }
                | Response::Error { .. }
                | Response::Stats { .. }
                | Response::Batch { .. }
                | Response::Topology { .. }
                | Response::WrongOwner { .. }
                | Response::SessionState { .. } => {}
            }
        }
        Ok(())
    }
}

/// Replays `transcript` through the brute-force oracles.
///
/// `sessions[i]` and `strategies[i]` describe client `i` (subscriber id
/// `i`); batch reply groups are routed to clients by session.
///
/// # Errors
///
/// The first soundness violation, decode failure, or protocol-shape
/// surprise, rendered as one line of context.
pub fn check_transcript(
    transcript: &Transcript,
    harness: &SimulationHarness,
    sessions: &[u32],
    strategies: &[StrategySpec],
) -> Result<(), String> {
    assert_eq!(sessions.len(), strategies.len(), "one session per client");
    let by_session: HashMap<u32, usize> =
        sessions.iter().enumerate().map(|(i, &s)| (s, i)).collect();
    let mut state = OracleState {
        grid: harness.grid(),
        alarms: harness.index().alarms(),
        v_max: harness.v_max(),
        fired: HashSet::new(),
    };

    for (n, entry) in transcript.entries().iter().enumerate() {
        let req = Request::decode(&entry.request)
            .map_err(|e| format!("entry {n}: recorded request does not decode: {e}"))?;
        // Client-side trigger detection counts as fired the moment it is
        // attempted: marking on a lost notify only shrinks the expected
        // set (conservative), while missing a delivered one would flag
        // phantom violations.
        if let Request::TriggerNotify { alarm, .. } = req {
            if entry.tag != DRIVER_TAG {
                state.fired.insert((entry.tag, u64::from(alarm)));
            }
        }
        let Ok(frames) = &entry.outcome else { continue };
        let responses: Vec<Response> = frames
            .iter()
            .map(|f| Response::decode(f))
            .collect::<Result<_, _>>()
            .map_err(|e| format!("entry {n}: recorded response does not decode: {e}"))?;

        if entry.tag == DRIVER_TAG {
            let Request::Batch { updates, .. } = &req else {
                continue;
            };
            let positions: HashMap<u32, Point> = updates
                .iter()
                .map(|u| {
                    (u.session, Point::new(dequantize_m(u.x_fx), dequantize_m(u.y_fx)))
                })
                .collect();
            for resp in &responses {
                let Response::Batch { replies, .. } = resp else { continue };
                for group in replies {
                    let Some(&client) = by_session.get(&group.session) else {
                        return Err(format!(
                            "entry {n}: batch reply for unknown session {}",
                            group.session
                        ));
                    };
                    state
                        .absorb_responses(
                            client as u32,
                            strategies[client],
                            positions.get(&group.session).copied(),
                            &group.responses,
                        )
                        .map_err(|e| format!("entry {n}: {e}"))?;
                }
            }
        } else {
            let client = entry.tag as usize;
            if client >= strategies.len() {
                return Err(format!("entry {n}: unknown connection tag {}", entry.tag));
            }
            let pos = req
                .position_fx()
                .map(|(x, y)| Point::new(dequantize_m(x), dequantize_m(y)));
            state
                .absorb_responses(entry.tag, strategies[client], pos, &responses)
                .map_err(|e| format!("entry {n}: {e}"))?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strictly_inside_respects_the_tolerance_band() {
        let r = Rect::new(0.0, 0.0, 10.0, 10.0).unwrap();
        assert!(strictly_inside(r, Point::new(5.0, 5.0), GEOMETRY_TOL_M));
        assert!(!strictly_inside(r, Point::new(10.0, 5.0), GEOMETRY_TOL_M));
        assert!(!strictly_inside(r, Point::new(5.0, 0.000_4), GEOMETRY_TOL_M));
    }

    #[test]
    fn overlap_beyond_tol_ignores_edge_contact() {
        let a = Rect::new(0.0, 0.0, 10.0, 10.0).unwrap();
        let touching = Rect::new(10.0, 0.0, 20.0, 10.0).unwrap();
        let shaved = Rect::new(9.999_5, 0.0, 20.0, 10.0).unwrap();
        let deep = Rect::new(8.0, 2.0, 20.0, 8.0).unwrap();
        assert!(!overlaps_beyond_tol(a, touching, GEOMETRY_TOL_M));
        assert!(!overlaps_beyond_tol(a, shaved, GEOMETRY_TOL_M), "sub-tolerance overlap is noise");
        assert!(overlaps_beyond_tol(a, deep, GEOMETRY_TOL_M));
    }

    #[test]
    fn wire_cell_rect_round_trips_the_flattened_index() {
        let universe = Rect::new(0.0, 0.0, 3_000.0, 3_000.0).unwrap();
        let grid = Grid::new(universe, 1_000.0).unwrap();
        for row in 0..grid.rows() {
            for col in 0..grid.cols() {
                let cell = CellId { col, row };
                let idx = grid.cell_index(cell) as u32;
                assert_eq!(wire_cell_rect(&grid, idx).unwrap(), grid.cell_rect(cell));
            }
        }
        assert!(wire_cell_rect(&grid, 9).is_err());
    }
}
