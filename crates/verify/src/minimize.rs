//! Greedy failure minimization and reproducer emission.
//!
//! When a fuzzed schedule violates an invariant, the raw case is rarely
//! the story: a 6-vehicle, 48-alarm, 72-step run with a lossy fault
//! plan usually shrinks to a couple of vehicles over a handful of steps
//! with no faults at all. [`shrink_case`] walks the case's dimensions
//! greedily — drop the fault plan, drop batching, halve steps, halve
//! the fleet and workload, collapse shards, thin the strategy mix —
//! keeping each reduction only if the failure survives, until a full
//! pass makes no progress. [`shrink_elements`] is the same idea for
//! plain element sets (the obstacle lists of the region oracles).
//!
//! [`reproducer`] renders the minimized case as a self-contained
//! `#[test]` function: paste it into any crate depending on
//! `sa-verify`, run `cargo test`, and the violation replays.

use crate::harness::FuzzCase;
use sa_server::{FaultPlan, StrategySpec};

/// Greedily shrinks `items` while `still_fails` keeps returning true on
/// the shrunk set: first dropping halves/quarters (ddmin-style chunk
/// removal), then single elements. The returned set still fails, and no
/// single further removal preserves the failure.
pub fn shrink_elements<T: Clone>(
    items: &[T],
    mut still_fails: impl FnMut(&[T]) -> bool,
) -> Vec<T> {
    let mut current: Vec<T> = items.to_vec();
    let mut chunk = (current.len() / 2).max(1);
    while !current.is_empty() {
        let mut removed_any = false;
        let mut start = 0;
        while start < current.len() {
            let end = (start + chunk).min(current.len());
            let mut candidate = current.clone();
            candidate.drain(start..end);
            if still_fails(&candidate) {
                current = candidate;
                removed_any = true;
                // Retry the same offset: the next chunk slid into it.
            } else {
                start = end;
            }
        }
        if chunk == 1 && !removed_any {
            break;
        }
        if !removed_any {
            chunk = (chunk / 2).max(1);
        }
    }
    current
}

/// One shrinking candidate: a transformed copy of the case, or `None`
/// when the dimension is already minimal.
fn candidates(case: &FuzzCase) -> Vec<FuzzCase> {
    let mut out = Vec::new();
    let mut push = |f: &dyn Fn(&mut FuzzCase)| {
        let mut c = case.clone();
        f(&mut c);
        if c != *case {
            out.push(c);
        }
    };
    push(&|c| c.plan = FaultPlan::clean());
    push(&|c| c.plan.disconnect_steps.clear());
    push(&|c| c.batch_every = 0);
    push(&|c| c.steps = (c.steps / 2).max(1));
    push(&|c| c.steps = c.steps.saturating_sub(1).max(1));
    push(&|c| c.vehicles = (c.vehicles / 2).max(1));
    push(&|c| c.vehicles = c.vehicles.saturating_sub(1).max(1));
    push(&|c| c.alarms = (c.alarms / 2).max(1));
    push(&|c| c.alarms = c.alarms.saturating_sub(1).max(1));
    push(&|c| c.num_shards = 1);
    for i in 0..case.strategies.len() {
        if case.strategies.len() > 1 {
            push(&|c| {
                c.strategies = vec![case.strategies[i]];
            });
        }
    }
    out
}

/// Greedily shrinks a failing [`FuzzCase`] while `still_fails` keeps
/// confirming the failure. Every accepted reduction restarts the pass;
/// the result fails and none of the candidate reductions preserve the
/// failure. `still_fails(&case)` itself is assumed true and re-checked
/// defensively; a case that does not fail is returned unchanged.
pub fn shrink_case(case: &FuzzCase, mut still_fails: impl FnMut(&FuzzCase) -> bool) -> FuzzCase {
    if !still_fails(case) {
        return case.clone();
    }
    let mut current = case.clone();
    loop {
        let mut progressed = false;
        for candidate in candidates(&current) {
            if still_fails(&candidate) {
                current = candidate;
                progressed = true;
                break;
            }
        }
        if !progressed {
            return current;
        }
    }
}

fn strategy_literal(s: StrategySpec) -> String {
    match s {
        StrategySpec::Mwpsr => "StrategySpec::Mwpsr".into(),
        StrategySpec::Pbsr { height } => format!("StrategySpec::Pbsr {{ height: {height} }}"),
        StrategySpec::Opt => "StrategySpec::Opt".into(),
        StrategySpec::SafePeriod => "StrategySpec::SafePeriod".into(),
    }
}

fn plan_literal(plan: &FaultPlan) -> String {
    if *plan == FaultPlan::clean() {
        return "FaultPlan::clean()".into();
    }
    let leg = |l: &sa_server::FaultLeg| {
        format!(
            "FaultLeg {{ drop: {:?}, duplicate: {:?}, delay: {:?}, max_delay: \
             Duration::from_nanos({}) }}",
            l.drop,
            l.duplicate,
            l.delay,
            l.max_delay.as_nanos()
        )
    };
    let windows = plan
        .disconnect_steps
        .iter()
        .map(|w| format!("{}..{}", w.start, w.end))
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        "FaultPlan {{ seed: {}, up: {}, down: {}, disconnect_steps: vec![{windows}] }}",
        plan.seed,
        leg(&plan.up),
        leg(&plan.down)
    )
}

/// Renders a `#[test]`-shaped reproducer function named `name` whose
/// body is `body`, prefixed by the violation as a comment block.
pub fn test_artifact(name: &str, violation: &str, body: &str) -> String {
    let mut out = String::from("// Minimized reproducer emitted by sa-verify.\n");
    for line in violation.lines() {
        out.push_str("// ");
        out.push_str(line);
        out.push('\n');
    }
    out.push_str("#[test]\nfn ");
    out.push_str(name);
    out.push_str("() {\n");
    for line in body.lines() {
        out.push_str("    ");
        out.push_str(line);
        out.push('\n');
    }
    out.push_str("}\n");
    out
}

/// Renders a minimized [`FuzzCase`] as a self-contained `#[test]`
/// artifact that replays the violation through [`crate::run_case`].
pub fn reproducer(case: &FuzzCase, violation: &str) -> String {
    let strategies = case
        .strategies
        .iter()
        .map(|s| strategy_literal(*s))
        .collect::<Vec<_>>()
        .join(", ");
    let body = format!(
        "use sa_server::{{FaultLeg, FaultPlan, StrategySpec}};\n\
         use std::time::Duration;\n\
         let case = sa_verify::FuzzCase {{\n\
         \x20   seed: {seed},\n\
         \x20   vehicles: {vehicles},\n\
         \x20   alarms: {alarms},\n\
         \x20   steps: {steps},\n\
         \x20   strategies: vec![{strategies}],\n\
         \x20   plan: {plan},\n\
         \x20   batch_every: {batch_every},\n\
         \x20   num_shards: {num_shards},\n\
         \x20   queue_capacity: {queue_capacity},\n\
         }};\n\
         let outcome = sa_verify::run_case(&case).expect(\"transport must hold\");\n\
         outcome.assert_clean();",
        seed = case.seed,
        vehicles = case.vehicles,
        alarms = case.alarms,
        steps = case.steps,
        plan = plan_literal(&case.plan),
        batch_every = case.batch_every,
        num_shards = case.num_shards,
        queue_capacity = case.queue_capacity,
    );
    test_artifact(&format!("sa_verify_minimized_seed_{}", case.seed), violation, &body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shrink_elements_finds_a_minimal_failing_singleton() {
        // "Fails" whenever element 13 is present.
        let items: Vec<u32> = (0..40).collect();
        let shrunk = shrink_elements(&items, |s| s.contains(&13));
        assert_eq!(shrunk, vec![13]);
    }

    #[test]
    fn shrink_elements_keeps_interacting_pairs() {
        let items: Vec<u32> = (0..32).collect();
        let shrunk = shrink_elements(&items, |s| s.contains(&3) && s.contains(&27));
        assert_eq!(shrunk, vec![3, 27]);
    }

    #[test]
    fn shrink_case_collapses_irrelevant_dimensions() {
        let case = FuzzCase::from_seed(42);
        // "Fails" whenever at least 2 vehicles exist — everything else
        // should collapse to its floor.
        let shrunk = shrink_case(&case, |c| c.vehicles >= 2);
        assert_eq!(shrunk.vehicles, 2);
        assert_eq!(shrunk.steps, 1);
        assert_eq!(shrunk.alarms, 1);
        assert_eq!(shrunk.plan, FaultPlan::clean());
        assert_eq!(shrunk.batch_every, 0);
        assert_eq!(shrunk.strategies.len(), 1);
    }

    #[test]
    fn reproducer_is_a_test_shaped_artifact() {
        let case = FuzzCase::from_seed(7);
        let art = reproducer(&case, "oracle violation: something\nsecond line");
        assert!(art.contains("#[test]"));
        assert!(art.contains("sa_verify::run_case"));
        assert!(art.contains("// second line"));
        assert!(art.contains(&format!("seed: {},", case.seed)));
    }

    #[test]
    fn faulty_plans_render_as_literals() {
        let mut case = FuzzCase::from_seed(2);
        case.plan = FaultPlan::lossy(9);
        let art = reproducer(&case, "x");
        assert!(art.contains("FaultPlan { seed: 9"));
        assert!(art.contains("disconnect_steps: vec![60..65]"));
    }
}
