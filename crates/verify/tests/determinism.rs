//! The determinism gate: a [`sa_verify::FuzzCase`] is a pure function
//! of its seed. Same seed ⇒ byte-identical transcript (not merely an
//! equal digest), including under an armed chaos fault plan; different
//! seeds must diverge.

use sa_server::FaultPlan;
use sa_verify::{run_case, CaseOutcome, FuzzCase};

fn run(case: &FuzzCase) -> CaseOutcome {
    run_case(case).expect("transport must hold under the harness")
}

fn assert_reproducible(case: &FuzzCase) {
    let first = run(case);
    for round in 0..2 {
        let again = run(case);
        assert_eq!(
            first.digest, again.digest,
            "round {round}: digest diverged for seed {}",
            case.seed
        );
        assert_eq!(
            first.transcript, again.transcript,
            "round {round}: transcript diverged beyond the digest for seed {}",
            case.seed
        );
        assert_eq!(first.fired, again.fired, "round {round}: fired set diverged");
        assert_eq!(
            first.injected_total, again.injected_total,
            "round {round}: chaos injection count diverged"
        );
    }
    first.assert_clean();
}

#[test]
fn clean_runs_are_byte_identical() {
    for seed in [3, 17, 101] {
        let mut case = FuzzCase::from_seed(seed);
        case.plan = FaultPlan::clean();
        assert_reproducible(&case);
    }
}

#[test]
fn chaos_runs_are_byte_identical() {
    // A hand-built lossy case: drops, duplicates, delays and a
    // disconnect window, all riding the virtual clock.
    let mut case = FuzzCase::from_seed(29);
    case.vehicles = 3;
    case.alarms = 16;
    case.steps = 40;
    case.plan = FaultPlan::lossy(29);
    case.plan.disconnect_steps = vec![10..14, 25..28];
    case.batch_every = 0;
    assert_reproducible(&case);
}

#[test]
fn batched_runs_are_byte_identical() {
    let mut case = FuzzCase::from_seed(57);
    case.plan = FaultPlan::clean();
    case.batch_every = 2;
    assert_reproducible(&case);
}

#[test]
fn fuzzed_cases_straight_from_seeds_are_byte_identical() {
    for seed in 200..206u64 {
        assert_reproducible(&FuzzCase::from_seed(seed));
    }
}

#[test]
fn different_seeds_produce_different_transcripts() {
    let a = run(&FuzzCase::from_seed(1000));
    let b = run(&FuzzCase::from_seed(1001));
    assert_ne!(a.digest, b.digest, "distinct seeds should not collide");
    assert_ne!(a.transcript, b.transcript);
}
