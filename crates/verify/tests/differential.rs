//! Differential oracle sweep: MWPSR, GBSR and PBSR computed for the
//! same fuzzed inputs must all satisfy the brute-force oracles, and a
//! slice of end-to-end schedule seeds must replay clean. CI runs the
//! full-width sweeps through the `verify_fuzz` binary; this test keeps
//! a representative slice in `cargo test`.

use sa_verify::{fuzz_differential, fuzz_schedule};

#[test]
fn differential_oracle_holds_over_a_seed_sweep() {
    let ran = fuzz_differential(0, 200).expect("shipped computers must satisfy the oracle");
    assert_eq!(ran, 200);
}

#[test]
fn differential_sweep_is_a_pure_function_of_its_seeds() {
    // Re-running a seed is byte-for-byte the same computation, so a
    // passing sweep stays passing; spot-check by re-driving a prefix.
    fuzz_differential(0, 25).expect("re-run of a clean prefix must stay clean");
    fuzz_differential(7, 3).expect("offset re-run must stay clean");
}

#[test]
fn schedule_seeds_replay_clean() {
    let report = fuzz_schedule(300..308u64, true);
    assert_eq!(report.seeds_run, 8);
    for f in &report.failures {
        eprintln!("seed {} violated:\n{}\n{}", f.seed, f.violation, f.reproducer);
    }
    assert!(report.is_clean(), "schedule seeds must replay clean");
}
