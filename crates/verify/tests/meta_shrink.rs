//! Meta-test: the verification machinery must actually catch bugs.
//!
//! A scratch copy of the GBSR finest-level mask computation carries an
//! intentionally injected off-by-one — the rasterized end column of an
//! obstacle is floored instead of ceiled, so a partially covered
//! rightmost column is wrongly freed. The reference oracle
//! (`sa_core::oracle::reference_free_mask`, which shares no code with
//! the rasterization) must flag it, [`sa_verify::shrink_elements`] must
//! reduce the obstacle set to a minimal reproducer, and
//! [`sa_verify::test_artifact`] must render it as a paste-ready test.

use rand::{rngs::SmallRng, Rng, SeedableRng};
use sa_core::oracle::reference_free_mask;
use sa_geometry::Rect;
use sa_verify::{shrink_elements, test_artifact};

/// Finest granularity of a 3×3 pyramid of height 2.
const SIDE: u32 = 9;

fn cell() -> Rect {
    Rect::new(0.0, 0.0, 900.0, 900.0).expect("static cell")
}

/// The scratch mask computer. `buggy` injects the off-by-one; with it
/// off, this is an independent re-derivation of the reference mask.
fn rasterized_free_mask(cell: Rect, obstacles: &[Rect], side: u32, buggy: bool) -> Vec<bool> {
    let w = cell.width() / f64::from(side);
    let h = cell.height() / f64::from(side);
    let clamp = |v: f64| v.clamp(0.0, f64::from(side));
    let mut free = vec![true; (side * side) as usize];
    for o in obstacles {
        let c0 = clamp(((o.min_x() - cell.min_x()) / w).floor()) as u32;
        let c1 = if buggy {
            // Injected off-by-one: the end column must round *up* so a
            // partially covered rightmost column stays blocked.
            clamp(((o.max_x() - cell.min_x()) / w).floor()) as u32
        } else {
            clamp(((o.max_x() - cell.min_x()) / w).ceil()) as u32
        };
        let r0 = clamp(((o.min_y() - cell.min_y()) / h).floor()) as u32;
        let r1 = clamp(((o.max_y() - cell.min_y()) / h).ceil()) as u32;
        for row in r0..r1.min(side) {
            for col in c0..c1.min(side) {
                free[(row * side + col) as usize] = false;
            }
        }
    }
    free
}

/// The first subcell the buggy mask wrongly frees, if any.
fn wrongly_freed(obstacles: &[Rect]) -> Option<usize> {
    let reference = reference_free_mask(cell(), obstacles, SIDE);
    let buggy = rasterized_free_mask(cell(), obstacles, SIDE, true);
    (0..reference.len()).find(|&i| buggy[i] && !reference[i])
}

fn fuzz_obstacles(seed: u64) -> Vec<Rect> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x0FFB_100E);
    let c = cell();
    (0..6)
        .map(|_| {
            let hw = rng.gen_range(10.0..200.0f64);
            let hh = rng.gen_range(10.0..200.0f64);
            let cx = rng.gen_range(c.min_x()..c.max_x());
            let cy = rng.gen_range(c.min_y()..c.max_y());
            Rect::new(cx - hw, cy - hh, cx + hw, cy + hh).expect("positive extents")
        })
        .collect()
}

#[test]
fn the_unbugged_scratch_computer_matches_the_reference() {
    for seed in 0..32 {
        let obstacles = fuzz_obstacles(seed);
        let reference = reference_free_mask(cell(), &obstacles, SIDE);
        let honest = rasterized_free_mask(cell(), &obstacles, SIDE, false);
        assert_eq!(reference, honest, "seed {seed}: independent derivations must agree");
    }
}

#[test]
fn the_injected_off_by_one_is_caught_and_shrunk_to_a_reproducer() {
    // Fuzz until the oracle catches the bug — with random obstacle
    // edges, a partially covered rightmost column is near-certain.
    let (seed, obstacles) = (0..64)
        .map(|seed| (seed, fuzz_obstacles(seed)))
        .find(|(_, obs)| wrongly_freed(obs).is_some())
        .expect("the off-by-one must be caught within the seed budget");

    // Shrink the obstacle set while the disagreement survives.
    let minimal = shrink_elements(&obstacles, |subset| wrongly_freed(subset).is_some());
    assert!(!minimal.is_empty());
    assert!(wrongly_freed(&minimal).is_some(), "the shrunk set must still fail");
    assert_eq!(minimal.len(), 1, "the off-by-one reproduces with a single obstacle");

    // Render the minimal case as a #[test]-shaped artifact.
    let subcell = wrongly_freed(&minimal).expect("still failing");
    let violation = format!(
        "seed {seed}: buggy rasterizer frees subcell {subcell} that the reference mask blocks \
         (obstacle {:?})",
        minimal[0]
    );
    let body = format!(
        "let cell = sa_geometry::Rect::new(0.0, 0.0, 900.0, 900.0).unwrap();\n\
         let obstacle = sa_geometry::Rect::new({:?}, {:?}, {:?}, {:?}).unwrap();\n\
         let mask = sa_core::oracle::reference_free_mask(cell, &[obstacle], {SIDE});\n\
         assert!(!mask[{subcell}], \"the reference blocks what the buggy rasterizer freed\");",
        minimal[0].min_x(),
        minimal[0].min_y(),
        minimal[0].max_x(),
        minimal[0].max_y(),
    );
    let artifact = test_artifact("gbsr_off_by_one_minimized", &violation, &body);
    assert!(artifact.contains("#[test]"));
    assert!(artifact.contains("fn gbsr_off_by_one_minimized()"));
    assert!(artifact.contains("reference_free_mask"));
    assert!(artifact.starts_with("// Minimized reproducer emitted by sa-verify."));
}
