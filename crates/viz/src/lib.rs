//! SVG rendering of the system's spatial state — road networks, alarm
//! workloads, grid overlays and safe regions — for debugging, documentation
//! and eyeballing what the algorithms actually compute.
//!
//! The renderer is dependency-free: it emits plain SVG strings through
//! [`SvgCanvas`], with y flipped so that universe "north" points up.
//!
//! # Example
//!
//! ```
//! use sa_viz::SvgCanvas;
//! use sa_geometry::{Point, Rect};
//!
//! # fn main() -> Result<(), sa_geometry::GeometryError> {
//! let universe = Rect::new(0.0, 0.0, 1_000.0, 1_000.0)?;
//! let mut canvas = SvgCanvas::new(universe, 400);
//! canvas.rect(Rect::new(100.0, 100.0, 300.0, 250.0)?, "#2d7dd2", 0.4, None);
//! canvas.circle(Point::new(500.0, 500.0), 4.0, "#d7263d");
//! let svg = canvas.finish();
//! assert!(svg.starts_with("<svg"));
//! assert!(svg.ends_with("</svg>\n"));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod canvas;
mod scene;

pub use canvas::SvgCanvas;
pub use scene::SceneRenderer;
