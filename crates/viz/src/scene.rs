use crate::SvgCanvas;
use sa_alarms::{SpatialAlarm, SubscriberId};
use sa_core::{BitmapSafeRegion, RectSafeRegion};
use sa_geometry::{Grid, Point, Rect};
use sa_roadnet::{RoadClass, RoadNetwork};

/// Composes the standard scene layers — road network, grid overlay, alarm
/// regions, safe regions, subscribers — into one SVG document.
///
/// ```
/// use sa_viz::SceneRenderer;
/// use sa_roadnet::{generate_network, NetworkConfig};
///
/// let network = generate_network(&NetworkConfig::small_test());
/// let svg = SceneRenderer::new(network.bounding_box(), 480)
///     .road_network(&network)
///     .finish();
/// assert!(svg.contains("<line"));
/// ```
#[derive(Debug)]
pub struct SceneRenderer {
    canvas: SvgCanvas,
}

impl SceneRenderer {
    /// A renderer over `universe`, `width_px` pixels wide.
    ///
    /// # Panics
    ///
    /// Panics on a degenerate universe or zero width (see
    /// [`SvgCanvas::new`]).
    pub fn new(universe: Rect, width_px: u32) -> SceneRenderer {
        SceneRenderer { canvas: SvgCanvas::new(universe, width_px) }
    }

    /// Draws every road segment, colored and weighted by class.
    pub fn road_network(mut self, network: &RoadNetwork) -> SceneRenderer {
        for edge in network.edges() {
            let (color, width) = match edge.class {
                RoadClass::Highway => ("#51543a", 2.2),
                RoadClass::Arterial => ("#8a8d74", 1.4),
                RoadClass::Local => ("#c5c7b8", 0.7),
            };
            let a = network.node(edge.a).pos;
            let b = network.node(edge.b).pos;
            self.canvas.line(a, b, color, width);
        }
        self
    }

    /// Draws the grid overlay as thin outlines.
    pub fn grid(mut self, grid: &Grid) -> SceneRenderer {
        for row in 0..grid.rows() {
            for col in 0..grid.cols() {
                let rect = grid.cell_rect(sa_geometry::CellId { col, row });
                self.canvas.rect(rect, "none", 0.0, Some("#b9c0c9"));
            }
        }
        self
    }

    /// Draws alarm regions: public alarms red, personal (private/shared)
    /// alarms orange; alarms relevant to `highlight_for` get full opacity.
    pub fn alarms(mut self, alarms: &[SpatialAlarm], highlight_for: Option<SubscriberId>) -> SceneRenderer {
        for alarm in alarms {
            let color = if alarm.is_public() { "#d7263d" } else { "#f46036" };
            let opacity = match highlight_for {
                Some(user) if alarm.is_relevant_to(user) => 0.55,
                Some(_) => 0.10,
                None => 0.35,
            };
            self.canvas.rect(alarm.region(), color, opacity, None);
        }
        self
    }

    /// Draws a rectangular safe region (MWPSR output).
    pub fn rect_safe_region(mut self, region: &RectSafeRegion) -> SceneRenderer {
        self.canvas.rect(region.rect(), "#2d7dd2", 0.25, Some("#2d7dd2"));
        self
    }

    /// Draws a bitmap safe region (GBSR/PBSR output) by decoding it into
    /// its safe cells.
    pub fn bitmap_safe_region(mut self, region: &BitmapSafeRegion) -> SceneRenderer {
        for rect in region.decode().rects() {
            self.canvas.rect(*rect, "#1b998b", 0.30, None);
        }
        self.canvas.rect(region.cell(), "none", 0.0, Some("#1b998b"));
        self
    }

    /// Marks a subscriber position.
    pub fn subscriber(mut self, pos: Point, label: &str) -> SceneRenderer {
        self.canvas.circle(pos, 4.0, "#101419");
        self.canvas.text(
            Point::new(pos.x, pos.y),
            11.0,
            "#101419",
            label,
        );
        self
    }

    /// Finalizes the SVG document.
    pub fn finish(self) -> String {
        self.canvas.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_alarms::{AlarmId, AlarmScope};
    use sa_core::{MwpsrComputer, PyramidComputer, PyramidConfig};
    use sa_roadnet::{generate_network, NetworkConfig};

    fn universe() -> Rect {
        Rect::new(0.0, 0.0, 4_000.0, 4_000.0).unwrap()
    }

    fn alarms() -> Vec<SpatialAlarm> {
        vec![
            SpatialAlarm::around_static_target(
                AlarmId(0),
                Point::new(1_000.0, 1_000.0),
                200.0,
                AlarmScope::Public { owner: SubscriberId(0) },
            )
            .unwrap(),
            SpatialAlarm::around_static_target(
                AlarmId(1),
                Point::new(2_500.0, 2_500.0),
                150.0,
                AlarmScope::Private { owner: SubscriberId(3) },
            )
            .unwrap(),
        ]
    }

    #[test]
    fn full_scene_renders_every_layer() {
        let network = generate_network(&NetworkConfig::small_test());
        let grid = Grid::new(universe(), 1_000.0).unwrap();
        let alarms = alarms();
        let user_pos = Point::new(500.0, 2_000.0);
        let cell = grid.cell_rect(grid.cell_of(user_pos));
        let obstacles: Vec<Rect> = alarms.iter().map(|a| a.region()).collect();
        let rect_region = MwpsrComputer::non_weighted().compute(user_pos, 0.0, cell, &obstacles);
        let bitmap_region =
            PyramidComputer::new(PyramidConfig::three_by_three(3)).compute(cell, &obstacles);

        let svg = SceneRenderer::new(universe(), 600)
            .road_network(&network)
            .grid(&grid)
            .alarms(&alarms, Some(SubscriberId(3)))
            .rect_safe_region(&rect_region)
            .bitmap_safe_region(&bitmap_region)
            .subscriber(user_pos, "user#3")
            .finish();

        assert!(svg.contains("<line"), "road segments missing");
        assert!(svg.contains("#d7263d"), "public alarm missing");
        assert!(svg.contains("#f46036"), "private alarm missing");
        assert!(svg.contains("#2d7dd2"), "rect safe region missing");
        assert!(svg.contains("#1b998b"), "bitmap safe region missing");
        assert!(svg.contains("user#3"), "subscriber label missing");
        // Well-formed shell.
        assert_eq!(svg.matches("</svg>").count(), 1);
    }

    #[test]
    fn relevance_highlight_dims_foreign_alarms() {
        let svg = SceneRenderer::new(universe(), 300)
            .alarms(&alarms(), Some(SubscriberId(9)))
            .finish();
        // User 9 only subscribes to the public alarm; the private one is
        // dimmed to 0.10 opacity.
        assert!(svg.contains("fill-opacity=\"0.100\""));
        assert!(svg.contains("fill-opacity=\"0.550\""));
    }
}
