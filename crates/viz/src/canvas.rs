use sa_geometry::{Point, Rect};
use std::fmt::Write as _;

/// A minimal SVG canvas mapping universe coordinates (meters, y-up) onto a
/// fixed-width viewport (pixels, y-down).
#[derive(Debug, Clone)]
pub struct SvgCanvas {
    universe: Rect,
    width_px: u32,
    height_px: u32,
    body: String,
}

impl SvgCanvas {
    /// A canvas covering `universe`, `width_px` pixels wide (height follows
    /// the universe's aspect ratio).
    ///
    /// # Panics
    ///
    /// Panics when the universe is degenerate or `width_px` is zero.
    pub fn new(universe: Rect, width_px: u32) -> SvgCanvas {
        assert!(universe.width() > 0.0 && universe.height() > 0.0, "degenerate universe");
        assert!(width_px > 0, "zero-width canvas");
        let height_px =
            ((universe.height() / universe.width()) * width_px as f64).round().max(1.0) as u32;
        SvgCanvas { universe, width_px, height_px, body: String::new() }
    }

    /// The universe this canvas maps.
    pub fn universe(&self) -> Rect {
        self.universe
    }

    /// Viewport size in pixels.
    pub fn size_px(&self) -> (u32, u32) {
        (self.width_px, self.height_px)
    }

    fn sx(&self, x: f64) -> f64 {
        (x - self.universe.min_x()) / self.universe.width() * self.width_px as f64
    }

    fn sy(&self, y: f64) -> f64 {
        // Flip: universe north renders up.
        (self.universe.max_y() - y) / self.universe.height() * self.height_px as f64
    }

    /// Draws a filled (and optionally stroked) rectangle.
    pub fn rect(&mut self, r: Rect, fill: &str, opacity: f64, stroke: Option<&str>) {
        let x = self.sx(r.min_x());
        let y = self.sy(r.max_y());
        let w = self.sx(r.max_x()) - x;
        let h = self.sy(r.min_y()) - y;
        let stroke_attr = match stroke {
            Some(c) => format!(" stroke=\"{c}\" stroke-width=\"1\""),
            None => String::new(),
        };
        let _ = writeln!(
            self.body,
            "  <rect x=\"{x:.2}\" y=\"{y:.2}\" width=\"{w:.2}\" height=\"{h:.2}\" \
             fill=\"{fill}\" fill-opacity=\"{opacity:.3}\"{stroke_attr}/>"
        );
    }

    /// Draws a line segment.
    pub fn line(&mut self, a: Point, b: Point, stroke: &str, width: f64) {
        let _ = writeln!(
            self.body,
            "  <line x1=\"{:.2}\" y1=\"{:.2}\" x2=\"{:.2}\" y2=\"{:.2}\" \
             stroke=\"{stroke}\" stroke-width=\"{width:.2}\"/>",
            self.sx(a.x),
            self.sy(a.y),
            self.sx(b.x),
            self.sy(b.y),
        );
    }

    /// Draws a filled circle of `radius_px` pixels.
    pub fn circle(&mut self, center: Point, radius_px: f64, fill: &str) {
        let _ = writeln!(
            self.body,
            "  <circle cx=\"{:.2}\" cy=\"{:.2}\" r=\"{radius_px:.2}\" fill=\"{fill}\"/>",
            self.sx(center.x),
            self.sy(center.y),
        );
    }

    /// Draws a text label anchored at `at`.
    pub fn text(&mut self, at: Point, size_px: f64, fill: &str, content: &str) {
        let escaped = content
            .replace('&', "&amp;")
            .replace('<', "&lt;")
            .replace('>', "&gt;");
        let _ = writeln!(
            self.body,
            "  <text x=\"{:.2}\" y=\"{:.2}\" font-size=\"{size_px:.1}\" \
             font-family=\"sans-serif\" fill=\"{fill}\">{escaped}</text>",
            self.sx(at.x),
            self.sy(at.y),
        );
    }

    /// Finalizes the document.
    pub fn finish(self) -> String {
        format!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{w}\" height=\"{h}\" \
             viewBox=\"0 0 {w} {h}\">\n  <rect width=\"{w}\" height=\"{h}\" fill=\"#fcfcf8\"/>\n{body}</svg>\n",
            w = self.width_px,
            h = self.height_px,
            body = self.body
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn canvas() -> SvgCanvas {
        SvgCanvas::new(Rect::new(0.0, 0.0, 1_000.0, 500.0).unwrap(), 800)
    }

    #[test]
    fn aspect_ratio_follows_universe() {
        let c = canvas();
        assert_eq!(c.size_px(), (800, 400));
    }

    #[test]
    fn y_axis_is_flipped() {
        let mut c = canvas();
        // The universe's top-left corner maps to pixel (0, 0).
        c.circle(Point::new(0.0, 500.0), 1.0, "#000");
        let svg = c.finish();
        assert!(svg.contains("cx=\"0.00\" cy=\"0.00\""), "{svg}");
    }

    #[test]
    fn rect_pixels_are_consistent() {
        let mut c = canvas();
        c.rect(Rect::new(0.0, 0.0, 500.0, 250.0).unwrap(), "#123456", 0.5, Some("#000"));
        let svg = c.finish();
        // Lower-left quarter of the universe: x 0, y 200 (top of the rect),
        // 400 x 200 px.
        assert!(svg.contains("x=\"0.00\" y=\"200.00\" width=\"400.00\" height=\"200.00\""));
        assert!(svg.contains("stroke=\"#000\""));
    }

    #[test]
    fn text_is_escaped() {
        let mut c = canvas();
        c.text(Point::new(10.0, 10.0), 12.0, "#000", "a<b & c>d");
        let svg = c.finish();
        assert!(svg.contains("a&lt;b &amp; c&gt;d"));
    }

    #[test]
    fn document_is_well_formed_shell() {
        let svg = canvas().finish();
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        assert_eq!(svg.matches("<svg").count(), 1);
    }

    #[test]
    #[should_panic(expected = "zero-width")]
    fn rejects_zero_width() {
        SvgCanvas::new(Rect::new(0.0, 0.0, 1.0, 1.0).unwrap(), 0);
    }
}
