use crate::{AlarmId, AlarmScope, AlarmTarget, SpatialAlarm, SubscriberId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sa_geometry::{Point, Rect};
use serde::{Deserialize, Serialize};

/// Configuration of the alarm workload generator, defaulting to the paper's
/// §5.1 setup.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadConfig {
    /// Number of alarms to install (paper default: 10,000).
    pub alarms: usize,
    /// Number of mobile subscribers alarms are assigned to (paper default:
    /// 10,000 vehicles).
    pub subscribers: u32,
    /// The Universe of Discourse targets are drawn from (uniformly).
    pub universe: Rect,
    /// Fraction of public alarms (paper default: 10%; Figures 5–6 sweep 1%,
    /// 10% and 20%).
    pub public_fraction: f64,
    /// Ratio of private to shared among non-public alarms (paper default:
    /// 2:1, i.e. `2.0`).
    pub private_to_shared_ratio: f64,
    /// Half-extent of alarm regions in meters, drawn uniformly from this
    /// range. Regions are clipped to the universe.
    pub region_half_extent_m: (f64, f64),
    /// Extra subscribers (beyond the owner) of a shared alarm, drawn
    /// uniformly from this range.
    pub shared_subscribers: (usize, usize),
    /// Seed for deterministic generation.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> WorkloadConfig {
        WorkloadConfig {
            alarms: 10_000,
            subscribers: 10_000,
            universe: Rect::new(0.0, 0.0, 31_623.0, 31_623.0).expect("static universe is valid"),
            public_fraction: 0.10,
            private_to_shared_ratio: 2.0,
            // Alarm regions a few hundred meters across. The paper never
            // states its region sizes, but its Figure 6(b) result (PBSR h=5
            // has the *lowest* downstream bandwidth) pins them: bitmap
            // sizes stay small only when alarm regions cover a small
            // fraction of a 2.5 km² grid cell.
            region_half_extent_m: (50.0, 250.0),
            shared_subscribers: (1, 4),
            seed: 0xA1A2_0002,
        }
    }
}

/// A generated set of installed alarms.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AlarmWorkload {
    alarms: Vec<SpatialAlarm>,
    config: WorkloadConfig,
}

impl AlarmWorkload {
    /// Generates a deterministic workload per `config`: alarm targets
    /// uniform over the universe, square regions of random half-extent, and
    /// scopes split into public / private / shared according to
    /// `public_fraction` and `private_to_shared_ratio`.
    ///
    /// # Panics
    ///
    /// Panics when the configuration is degenerate (no subscribers,
    /// fraction outside `[0, 1]`, inverted extent range).
    pub fn generate(config: &WorkloadConfig) -> AlarmWorkload {
        assert!(config.subscribers > 0, "workload needs at least one subscriber");
        assert!(
            (0.0..=1.0).contains(&config.public_fraction),
            "public_fraction must be within [0, 1]"
        );
        assert!(
            config.region_half_extent_m.0 > 0.0
                && config.region_half_extent_m.1 >= config.region_half_extent_m.0,
            "region extent range must be positive and ordered"
        );
        assert!(
            config.private_to_shared_ratio >= 0.0,
            "private_to_shared_ratio must be non-negative"
        );

        let mut rng = SmallRng::seed_from_u64(config.seed);
        let u = config.universe;
        // Among non-public alarms, the probability of being private.
        let private_given_nonpublic = if config.private_to_shared_ratio.is_finite() {
            config.private_to_shared_ratio / (config.private_to_shared_ratio + 1.0)
        } else {
            1.0
        };

        let mut alarms = Vec::with_capacity(config.alarms);
        for i in 0..config.alarms {
            let target = Point::new(
                rng.gen_range(u.min_x()..=u.max_x()),
                rng.gen_range(u.min_y()..=u.max_y()),
            );
            let half = if config.region_half_extent_m.1 > config.region_half_extent_m.0 {
                rng.gen_range(config.region_half_extent_m.0..config.region_half_extent_m.1)
            } else {
                config.region_half_extent_m.0
            };
            let region = Rect::centered_square(target, half)
                .expect("positive half extent")
                .intersection(u)
                .expect("target lies inside the universe");

            let owner = SubscriberId(rng.gen_range(0..config.subscribers));
            let scope = if rng.gen_bool(config.public_fraction) {
                AlarmScope::Public { owner }
            } else if rng.gen_bool(private_given_nonpublic) {
                AlarmScope::Private { owner }
            } else {
                let extra = rng.gen_range(config.shared_subscribers.0..=config.shared_subscribers.1);
                let list = (0..extra)
                    .map(|_| SubscriberId(rng.gen_range(0..config.subscribers)))
                    .collect();
                AlarmScope::shared(owner, list)
            };
            alarms.push(SpatialAlarm::new(
                AlarmId(i as u64),
                region,
                AlarmTarget::Static(target),
                scope,
            ));
        }
        AlarmWorkload { alarms, config: config.clone() }
    }

    /// The generated alarms.
    pub fn alarms(&self) -> &[SpatialAlarm] {
        &self.alarms
    }

    /// The configuration the workload was generated from.
    pub fn config(&self) -> &WorkloadConfig {
        &self.config
    }

    /// Fraction of alarms that are public (for sanity checks).
    pub fn observed_public_fraction(&self) -> f64 {
        if self.alarms.is_empty() {
            return 0.0;
        }
        self.alarms.iter().filter(|a| a.is_public()).count() as f64 / self.alarms.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> WorkloadConfig {
        WorkloadConfig {
            alarms: 2_000,
            subscribers: 500,
            universe: Rect::new(0.0, 0.0, 10_000.0, 10_000.0).unwrap(),
            ..WorkloadConfig::default()
        }
    }

    #[test]
    fn generates_requested_count_with_unique_ids() {
        let w = AlarmWorkload::generate(&small_config());
        assert_eq!(w.alarms().len(), 2_000);
        let mut ids: Vec<_> = w.alarms().iter().map(|a| a.id()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 2_000);
    }

    #[test]
    fn regions_lie_within_the_universe() {
        let cfg = small_config();
        let w = AlarmWorkload::generate(&cfg);
        for a in w.alarms() {
            assert!(cfg.universe.contains_rect(&a.region()), "region escapes universe");
            assert!(a.region().area() > 0.0);
        }
    }

    #[test]
    fn scope_mix_matches_configuration() {
        let w = AlarmWorkload::generate(&small_config());
        let public = w.alarms().iter().filter(|a| a.is_public()).count();
        let private = w
            .alarms()
            .iter()
            .filter(|a| matches!(a.scope(), AlarmScope::Private { .. }))
            .count();
        let shared = w
            .alarms()
            .iter()
            .filter(|a| matches!(a.scope(), AlarmScope::Shared { .. }))
            .count();
        assert_eq!(public + private + shared, 2_000);
        // 10% public within statistical tolerance.
        let pf = public as f64 / 2_000.0;
        assert!((0.06..0.14).contains(&pf), "public fraction {pf}");
        // private:shared ≈ 2:1.
        let ratio = private as f64 / shared as f64;
        assert!((1.5..2.6).contains(&ratio), "private:shared ratio {ratio}");
    }

    #[test]
    fn generation_is_deterministic() {
        let a = AlarmWorkload::generate(&small_config());
        let b = AlarmWorkload::generate(&small_config());
        assert_eq!(a, b);
        let c = AlarmWorkload::generate(&WorkloadConfig { seed: 99, ..small_config() });
        assert_ne!(a, c);
    }

    #[test]
    fn public_fraction_sweep_matches_figures_5_and_6() {
        for pct in [0.01, 0.10, 0.20] {
            let w = AlarmWorkload::generate(&WorkloadConfig {
                public_fraction: pct,
                ..small_config()
            });
            let observed = w.observed_public_fraction();
            assert!(
                (observed - pct).abs() < 0.03,
                "requested {pct}, observed {observed}"
            );
        }
    }

    #[test]
    fn targets_cover_the_universe_uniformly() {
        // Coarse uniformity check: each quadrant of the universe receives
        // 25% ± 5% of the targets.
        let cfg = small_config();
        let w = AlarmWorkload::generate(&cfg);
        let center = cfg.universe.center();
        let mut counts = [0usize; 4];
        for a in w.alarms() {
            let AlarmTarget::Static(t) = a.target() else { panic!("static targets only") };
            counts[sa_geometry::Quadrant::of(t, center) as usize] += 1;
        }
        for c in counts {
            let f = c as f64 / 2_000.0;
            assert!((0.20..0.30).contains(&f), "quadrant fraction {f}");
        }
    }

    #[test]
    #[should_panic(expected = "public_fraction")]
    fn rejects_bad_fraction() {
        AlarmWorkload::generate(&WorkloadConfig { public_fraction: 1.5, ..small_config() });
    }
}
