use crate::{AlarmId, AlarmScope, SpatialAlarm, SubscriberId};
use sa_geometry::{Point, Rect};
use sa_index::{QueryStats, RStarTree};
use std::collections::{HashMap, HashSet};

/// An alarm id broke the dense `0..len` id space [`AlarmIndex`] requires
/// (ids double as vector indexes). Returned by [`AlarmIndex::try_build`]
/// and [`AlarmIndex::try_install`]; the server maps it to a wire-level
/// error response instead of panicking on a malformed install frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NonDenseIdError {
    /// The id the dense id space required next.
    pub expected: u64,
    /// The id actually presented.
    pub got: u64,
}

impl std::fmt::Display for NonDenseIdError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "alarm ids must be dense and ordered: expected {}, got {}",
            self.expected, self.got
        )
    }
}

impl std::error::Error for NonDenseIdError {}

/// The server-side index of installed spatial alarms: an R*-tree over alarm
/// regions (paper §5.1) plus per-subscriber relevance filtering.
///
/// Queries come in two flavors:
///
/// - *trigger checks* — which relevant alarms contain a subscriber's
///   position ([`AlarmIndex::relevant_at`]),
/// - *safe-region scoping* — which relevant alarms intersect the
///   subscriber's current grid cell ([`AlarmIndex::relevant_intersecting`]).
///
/// Both report [`QueryStats`] variants so the simulation can charge index
/// work to the server-load model.
#[derive(Debug)]
pub struct AlarmIndex {
    tree: RStarTree<AlarmId>,
    alarms: Vec<SpatialAlarm>,
    /// Per-subscriber private/shared alarm ids (the subscriber's "personal"
    /// alarms). Public alarms are not listed — they are relevant to
    /// everyone and answered by spatial queries.
    personal: HashMap<SubscriberId, Vec<AlarmId>>,
}

impl AlarmIndex {
    /// Builds the index over `alarms`.
    ///
    /// # Panics
    ///
    /// Panics when alarm ids are not dense (`0..alarms.len()`), which the
    /// workload generator guarantees. Callers facing untrusted ids (the
    /// server's install path) use [`AlarmIndex::try_build`] instead.
    pub fn build(alarms: Vec<SpatialAlarm>) -> AlarmIndex {
        AlarmIndex::try_build(alarms).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Builds the index over `alarms`, rejecting non-dense ids with a
    /// typed error instead of panicking. The R*-tree is STR-bulk-loaded
    /// in one pass rather than grown by repeated insertion.
    ///
    /// # Errors
    ///
    /// [`NonDenseIdError`] when the ids are not exactly `0..alarms.len()`
    /// in order.
    pub fn try_build(alarms: Vec<SpatialAlarm>) -> Result<AlarmIndex, NonDenseIdError> {
        for (i, a) in alarms.iter().enumerate() {
            if a.id().0 as usize != i {
                return Err(NonDenseIdError { expected: i as u64, got: a.id().0 });
            }
        }
        Ok(AlarmIndex::build_dense(alarms, None))
    }

    /// Builds the index over dense-id `alarms`, bulk loading the tree
    /// with every alarm whose id is in `inactive` left out (their
    /// metadata stays addressable, exactly as if they had been installed
    /// and then [`AlarmIndex::deactivate`]d). The snapshot merge path
    /// uses this to fold accumulated deactivations into a rebuilt base
    /// without paying one tree deletion per dead alarm.
    pub(crate) fn build_dense(
        alarms: Vec<SpatialAlarm>,
        inactive: Option<&HashSet<AlarmId>>,
    ) -> AlarmIndex {
        debug_assert!(alarms.iter().enumerate().all(|(i, a)| a.id().0 as usize == i));
        let entries: Vec<(Rect, AlarmId)> = alarms
            .iter()
            .filter(|a| inactive.is_none_or(|dead| !dead.contains(&a.id())))
            .map(|a| (a.region(), a.id()))
            .collect();
        let tree = RStarTree::bulk_load(entries);
        let mut personal: HashMap<SubscriberId, Vec<AlarmId>> = HashMap::new();
        for a in &alarms {
            match a.scope() {
                AlarmScope::Private { owner } => personal.entry(*owner).or_default().push(a.id()),
                AlarmScope::Shared { subscribers, .. } => {
                    for s in subscribers {
                        personal.entry(*s).or_default().push(a.id());
                    }
                }
                AlarmScope::Public { .. } => {}
            }
        }
        AlarmIndex { tree, alarms, personal }
    }

    /// The subscriber's private/shared alarm ids (empty for subscribers
    /// who own and share nothing). Public alarms are excluded.
    pub fn personal_alarms(&self, user: SubscriberId) -> &[AlarmId] {
        self.personal.get(&user).map_or(&[], Vec::as_slice)
    }

    /// Distance from `pos` to the nearest alarm region that is relevant to
    /// `user` and satisfies `keep` — the safe-period baseline's core query.
    /// Combines a filtered best-first nearest-neighbor search over the
    /// public alarms with a scan of the subscriber's (few) personal alarms.
    pub fn nearest_relevant_distance<F: Fn(AlarmId) -> bool>(
        &self,
        user: SubscriberId,
        pos: Point,
        keep: F,
    ) -> (Option<f64>, QueryStats) {
        // The probe's stats count whether or not it found a match — a
        // fruitless nearest-neighbor walk is still server work the
        // Figure 4(b)/6(d) load model must see.
        let (public, mut stats) = self.tree.nearest_matching(pos, |id| {
            let a = self.alarm(*id);
            a.is_public() && keep(*id)
        });
        let mut best: Option<f64> = public.map(|(_, _, d)| d);
        for &id in self.personal_alarms(user) {
            stats.entries_tested += 1;
            if !keep(id) {
                continue;
            }
            let d = self.alarm(id).region().distance_to_point(pos);
            if best.is_none_or(|b| d < b) {
                best = Some(d);
            }
        }
        (best, stats)
    }

    /// Number of installed alarms.
    pub fn len(&self) -> usize {
        self.alarms.len()
    }

    /// True when no alarms are installed.
    pub fn is_empty(&self) -> bool {
        self.alarms.is_empty()
    }

    /// Alarm lookup by id.
    pub fn alarm(&self, id: AlarmId) -> &SpatialAlarm {
        &self.alarms[id.0 as usize]
    }

    /// All installed alarms.
    pub fn alarms(&self) -> &[SpatialAlarm] {
        &self.alarms
    }

    /// Alarms relevant to `user` whose regions contain `pos` — the
    /// server-side trigger check.
    pub fn relevant_at(&self, user: SubscriberId, pos: Point) -> (Vec<&SpatialAlarm>, QueryStats) {
        let (hits, stats) = self.tree.search_point_with_stats(pos);
        let filtered = hits
            .into_iter()
            .map(|id| self.alarm(*id))
            .filter(|a| a.is_relevant_to(user))
            .collect();
        (filtered, stats)
    }

    /// Visits each alarm relevant to `user` whose region contains `pos`
    /// without materializing a result vector — the allocation-free
    /// counterpart of [`AlarmIndex::relevant_at`] the server's per-update
    /// trigger check runs on. No [`QueryStats`] are reported; callers that
    /// charge index work to the load model use `relevant_at` instead.
    pub fn relevant_at_visit(
        &self,
        user: SubscriberId,
        pos: Point,
        mut f: impl FnMut(&SpatialAlarm),
    ) {
        self.tree.visit_point(pos, |id| {
            let a = self.alarm(*id);
            if a.is_relevant_to(user) {
                f(a);
            }
        });
    }

    /// Alarms relevant to `user` whose regions intersect `area` — the set
    /// considered for safe-region computation inside a grid cell.
    pub fn relevant_intersecting(&self, user: SubscriberId, area: Rect) -> Vec<&SpatialAlarm> {
        self.relevant_intersecting_with_stats(user, area).0
    }

    /// Like [`AlarmIndex::relevant_intersecting`], also reporting traversal
    /// statistics for the server-load model.
    pub fn relevant_intersecting_with_stats(
        &self,
        user: SubscriberId,
        area: Rect,
    ) -> (Vec<&SpatialAlarm>, QueryStats) {
        let (hits, stats) = self.tree.search_intersecting_with_stats(area);
        let filtered = hits
            .into_iter()
            .map(|(_, id)| self.alarm(*id))
            .filter(|a| a.is_relevant_to(user))
            .collect();
        (filtered, stats)
    }

    /// All alarms (regardless of subscriber) intersecting `area`.
    pub fn all_intersecting(&self, area: Rect) -> Vec<&SpatialAlarm> {
        self.all_intersecting_with_stats(area).0
    }

    /// Like [`AlarmIndex::all_intersecting`], also reporting traversal
    /// statistics for the server-load model.
    pub fn all_intersecting_with_stats(&self, area: Rect) -> (Vec<&SpatialAlarm>, QueryStats) {
        let (hits, stats) = self.tree.search_intersecting_with_stats(area);
        (hits.into_iter().map(|(_, id)| self.alarm(*id)).collect(), stats)
    }

    /// Installs a new alarm at runtime (publishers install alarms over the
    /// life of the service, §1). The alarm's id must continue the dense id
    /// space. Any safe region previously computed over an area the new
    /// alarm's region intersects is stale; the caller is responsible for
    /// invalidating those subscriptions (e.g., by pushing fresh regions).
    ///
    /// # Panics
    ///
    /// Panics when the alarm's id is not `self.len()`. Callers facing
    /// untrusted ids (the server's install path) use
    /// [`AlarmIndex::try_install`] instead.
    pub fn install(&mut self, alarm: SpatialAlarm) {
        self.try_install(alarm).unwrap_or_else(|e| panic!("{e}"));
    }

    /// Installs a new alarm, rejecting an id that does not continue the
    /// dense id space with a typed error instead of panicking.
    ///
    /// # Errors
    ///
    /// [`NonDenseIdError`] when the alarm's id is not `self.len()`.
    pub fn try_install(&mut self, alarm: SpatialAlarm) -> Result<(), NonDenseIdError> {
        if alarm.id().0 as usize != self.alarms.len() {
            return Err(NonDenseIdError {
                expected: self.alarms.len() as u64,
                got: alarm.id().0,
            });
        }
        self.tree.insert(alarm.region(), alarm.id());
        match alarm.scope() {
            AlarmScope::Private { owner } => {
                self.personal.entry(*owner).or_default().push(alarm.id())
            }
            AlarmScope::Shared { subscribers, .. } => {
                for s in subscribers {
                    self.personal.entry(*s).or_default().push(alarm.id());
                }
            }
            AlarmScope::Public { .. } => {}
        }
        self.alarms.push(alarm);
        Ok(())
    }

    /// Removes an alarm from the spatial index (e.g., a cancelled alarm).
    /// The alarm metadata stays addressable by id; only queries stop
    /// reporting it. Returns true when the alarm was still indexed.
    pub fn deactivate(&mut self, id: AlarmId) -> bool {
        let region = self.alarm(id).region();
        self.tree.remove(region, |x| *x == id).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AlarmScope;

    fn user(n: u32) -> SubscriberId {
        SubscriberId(n)
    }

    fn build_small() -> AlarmIndex {
        let mk = |id: u64, x: f64, y: f64, scope: AlarmScope| {
            SpatialAlarm::around_static_target(AlarmId(id), Point::new(x, y), 50.0, scope).unwrap()
        };
        AlarmIndex::build(vec![
            mk(0, 100.0, 100.0, AlarmScope::Public { owner: user(0) }),
            mk(1, 100.0, 100.0, AlarmScope::Private { owner: user(1) }),
            mk(2, 105.0, 105.0, AlarmScope::shared(user(2), vec![user(3)])),
            mk(3, 5_000.0, 5_000.0, AlarmScope::Public { owner: user(0) }),
        ])
    }

    #[test]
    fn relevant_at_filters_by_scope() {
        let index = build_small();
        let p = Point::new(100.0, 100.0);
        let ids = |u: u32| {
            let (alarms, _) = index.relevant_at(user(u), p);
            let mut v: Vec<u64> = alarms.iter().map(|a| a.id().0).collect();
            v.sort_unstable();
            v
        };
        // Public alarm 0 + own private alarm 1; alarm 2's shared list is {2, 3}.
        assert_eq!(ids(1), vec![0, 1]);
    }

    #[test]
    fn relevant_at_per_user_breakdown() {
        let index = build_small();
        let p = Point::new(100.0, 100.0);
        let ids = |u: u32| {
            let (alarms, _) = index.relevant_at(user(u), p);
            let mut v: Vec<u64> = alarms.iter().map(|a| a.id().0).collect();
            v.sort_unstable();
            v
        };
        assert_eq!(ids(0), vec![0]);
        assert_eq!(ids(2), vec![0, 2]);
        assert_eq!(ids(3), vec![0, 2]);
        assert_eq!(ids(9), vec![0]);
    }

    #[test]
    fn relevant_intersecting_scopes_to_area() {
        let index = build_small();
        let cell = Rect::new(0.0, 0.0, 1_000.0, 1_000.0).unwrap();
        let (alarms, stats) = index.relevant_intersecting_with_stats(user(3), cell);
        let mut ids: Vec<u64> = alarms.iter().map(|a| a.id().0).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 2]); // alarm 3 is far away, alarm 1 is private to user 1
        assert!(stats.nodes_visited >= 1);
    }

    #[test]
    fn all_intersecting_ignores_scope() {
        let index = build_small();
        let cell = Rect::new(0.0, 0.0, 1_000.0, 1_000.0).unwrap();
        assert_eq!(index.all_intersecting(cell).len(), 3);
    }

    #[test]
    fn deactivate_removes_from_queries() {
        let mut index = build_small();
        assert!(index.deactivate(AlarmId(0)));
        assert!(!index.deactivate(AlarmId(0)), "second deactivation is a no-op");
        let (alarms, _) = index.relevant_at(user(9), Point::new(100.0, 100.0));
        assert!(alarms.is_empty());
        // Metadata remains addressable.
        assert_eq!(index.alarm(AlarmId(0)).id(), AlarmId(0));
    }

    #[test]
    #[should_panic(expected = "dense")]
    fn rejects_sparse_ids() {
        let a = SpatialAlarm::around_static_target(
            AlarmId(7),
            Point::new(0.0, 0.0),
            10.0,
            AlarmScope::Public { owner: user(0) },
        )
        .unwrap();
        AlarmIndex::build(vec![a]);
    }

    #[test]
    fn index_agrees_with_linear_scan_on_generated_workload() {
        let workload = crate::AlarmWorkload::generate(&crate::WorkloadConfig {
            alarms: 500,
            subscribers: 100,
            universe: Rect::new(0.0, 0.0, 10_000.0, 10_000.0).unwrap(),
            ..crate::WorkloadConfig::default()
        });
        let index = AlarmIndex::build(workload.alarms().to_vec());
        let probe_user = user(17);
        for k in 0..20 {
            let p = Point::new(k as f64 * 500.0, (19 - k) as f64 * 500.0);
            let (got, _) = index.relevant_at(probe_user, p);
            let mut got: Vec<u64> = got.iter().map(|a| a.id().0).collect();
            got.sort_unstable();
            let mut expected: Vec<u64> = workload
                .alarms()
                .iter()
                .filter(|a| a.contains(p) && a.is_relevant_to(probe_user))
                .map(|a| a.id().0)
                .collect();
            expected.sort_unstable();
            assert_eq!(got, expected);
        }
    }
}

#[cfg(test)]
mod nearest_tests {
    use super::*;
    use crate::{AlarmWorkload, WorkloadConfig};

    #[test]
    fn personal_lists_cover_private_and_shared_scopes() {
        let universe = Rect::new(0.0, 0.0, 10_000.0, 10_000.0).unwrap();
        let w = AlarmWorkload::generate(&WorkloadConfig {
            alarms: 500,
            subscribers: 50,
            universe,
            ..WorkloadConfig::default()
        });
        let index = AlarmIndex::build(w.alarms().to_vec());
        let mut listed = 0usize;
        for u in 0..50 {
            let user = SubscriberId(u);
            for &id in index.personal_alarms(user) {
                let a = index.alarm(id);
                assert!(!a.is_public());
                assert!(a.is_relevant_to(user));
                listed += 1;
            }
        }
        // Every non-public alarm appears in at least its owner's list.
        let non_public = w.alarms().iter().filter(|a| !a.is_public()).count();
        assert!(listed >= non_public, "listed {listed} < non-public {non_public}");
    }

    #[test]
    fn nearest_relevant_distance_matches_brute_force() {
        let universe = Rect::new(0.0, 0.0, 10_000.0, 10_000.0).unwrap();
        let w = AlarmWorkload::generate(&WorkloadConfig {
            alarms: 400,
            subscribers: 40,
            universe,
            seed: 99,
            ..WorkloadConfig::default()
        });
        let index = AlarmIndex::build(w.alarms().to_vec());
        for u in [0u32, 7, 23] {
            let user = SubscriberId(u);
            for k in 0..10 {
                let pos = Point::new(k as f64 * 997.0 % 10_000.0, k as f64 * 773.0 % 10_000.0);
                let (got, _) = index.nearest_relevant_distance(user, pos, |_| true);
                let expected = w
                    .alarms()
                    .iter()
                    .filter(|a| a.is_relevant_to(user))
                    .map(|a| a.region().distance_to_point(pos))
                    .min_by(|a, b| a.partial_cmp(b).unwrap());
                match (got, expected) {
                    (Some(g), Some(e)) => assert!((g - e).abs() < 1e-9, "user {u} probe {k}"),
                    (None, None) => {}
                    other => panic!("mismatch {other:?}"),
                }
            }
        }
    }

    #[test]
    fn nearest_stats_survive_a_fruitless_probe() {
        // Predicate rejects everything: the probe returns None, but the
        // traversal work it did must still be charged to the load model
        // (the stats used to be dropped on this branch).
        let mk = |id: u64, x: f64| {
            SpatialAlarm::around_static_target(
                AlarmId(id),
                Point::new(x, 500.0),
                50.0,
                crate::AlarmScope::Public { owner: SubscriberId(0) },
            )
            .unwrap()
        };
        let index = AlarmIndex::build((0..6).map(|i| mk(i, 100.0 * i as f64)).collect());
        let (none, stats) =
            index.nearest_relevant_distance(SubscriberId(9), Point::new(0.0, 0.0), |_| false);
        assert!(none.is_none());
        assert!(stats.nodes_visited >= 1, "visited {}", stats.nodes_visited);
        assert!(stats.entries_tested >= 6, "tested {}", stats.entries_tested);
        assert_eq!(stats.matches, 0);
    }

    #[test]
    fn nearest_relevant_distance_respects_filter() {
        let universe = Rect::new(0.0, 0.0, 1_000.0, 1_000.0).unwrap();
        let mk = |id: u64, x: f64| {
            SpatialAlarm::around_static_target(
                AlarmId(id),
                Point::new(x, 500.0),
                50.0,
                crate::AlarmScope::Public { owner: SubscriberId(0) },
            )
            .unwrap()
        };
        let index = AlarmIndex::build(vec![mk(0, 300.0), mk(1, 700.0)]);
        let _ = universe;
        let pos = Point::new(200.0, 500.0);
        let (all, _) = index.nearest_relevant_distance(SubscriberId(5), pos, |_| true);
        assert!((all.unwrap() - 50.0).abs() < 1e-9); // alarm 0's edge at x=250
        // Excluding alarm 0 (e.g. already fired) falls back to alarm 1.
        let (filtered, _) =
            index.nearest_relevant_distance(SubscriberId(5), pos, |id| id != AlarmId(0));
        assert!((filtered.unwrap() - 450.0).abs() < 1e-9);
        // Excluding everything yields none.
        let (none, _) = index.nearest_relevant_distance(SubscriberId(5), pos, |_| false);
        assert!(none.is_none());
    }
}

#[cfg(test)]
mod install_tests {
    use super::*;
    use crate::AlarmScope;

    fn public(id: u64, x: f64, y: f64) -> SpatialAlarm {
        SpatialAlarm::around_static_target(
            AlarmId(id),
            Point::new(x, y),
            100.0,
            AlarmScope::Public { owner: SubscriberId(0) },
        )
        .unwrap()
    }

    #[test]
    fn install_extends_queries_immediately() {
        let mut index = AlarmIndex::build(vec![public(0, 1_000.0, 1_000.0)]);
        assert!(index.relevant_at(SubscriberId(5), Point::new(5_000.0, 5_000.0)).0.is_empty());
        index.install(public(1, 5_000.0, 5_000.0));
        assert_eq!(index.len(), 2);
        let (hits, _) = index.relevant_at(SubscriberId(5), Point::new(5_000.0, 5_000.0));
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].id(), AlarmId(1));
    }

    #[test]
    fn install_updates_personal_lists() {
        let mut index = AlarmIndex::build(vec![public(0, 0.0, 0.0)]);
        let private = SpatialAlarm::around_static_target(
            AlarmId(1),
            Point::new(2_000.0, 2_000.0),
            50.0,
            AlarmScope::Private { owner: SubscriberId(9) },
        )
        .unwrap();
        index.install(private);
        assert_eq!(index.personal_alarms(SubscriberId(9)), &[AlarmId(1)]);
        // And the nearest-relevant query sees it.
        let (d, _) = index.nearest_relevant_distance(
            SubscriberId(9),
            Point::new(2_000.0, 2_500.0),
            |_| true,
        );
        assert!((d.unwrap() - 450.0).abs() < 1e-9);
    }

    #[test]
    fn install_then_deactivate_round_trips() {
        let mut index = AlarmIndex::build(vec![public(0, 0.0, 0.0)]);
        index.install(public(1, 3_000.0, 3_000.0));
        assert!(index.deactivate(AlarmId(1)));
        assert!(index.relevant_at(SubscriberId(2), Point::new(3_000.0, 3_000.0)).0.is_empty());
        // Metadata survives deactivation.
        assert_eq!(index.alarm(AlarmId(1)).id(), AlarmId(1));
    }

    #[test]
    #[should_panic(expected = "dense")]
    fn install_rejects_id_gaps() {
        let mut index = AlarmIndex::build(vec![public(0, 0.0, 0.0)]);
        index.install(public(7, 1.0, 1.0));
    }

    #[test]
    fn try_install_reports_gapped_ids_without_panicking() {
        let mut index = AlarmIndex::build(vec![public(0, 0.0, 0.0)]);
        let err = index.try_install(public(7, 1.0, 1.0)).unwrap_err();
        assert_eq!(err, NonDenseIdError { expected: 1, got: 7 });
        assert!(err.to_string().contains("dense"));
        assert_eq!(index.len(), 1, "a rejected install leaves the index untouched");
        // The id space did not advance; the correct next id still works.
        index.try_install(public(1, 1.0, 1.0)).unwrap();
        assert_eq!(index.len(), 2);
    }

    #[test]
    fn try_build_reports_the_first_offending_id() {
        let err =
            AlarmIndex::try_build(vec![public(0, 0.0, 0.0), public(2, 1.0, 1.0)]).unwrap_err();
        assert_eq!(err, NonDenseIdError { expected: 1, got: 2 });
    }
}
