//! Epoch-versioned copy-on-write snapshots of the alarm index.
//!
//! The paper's server model (§5.1) treats the alarm R*-tree as static, but
//! production publishers install and cancel alarms continuously. Guarding
//! the index with a reader-writer lock makes every install stall every
//! shard's trigger checks. This module removes the contention:
//!
//! - [`VersionedAlarmIndex`] keeps the current generation as an immutable
//!   [`AlarmSnapshot`] behind a [`SnapshotCell`]. Writers (installs,
//!   deactivations) build the *next* generation — usually by cloning a
//!   small delta fringe, occasionally by STR-bulk-rebuilding the base —
//!   and publish it with an `Arc` swap plus an epoch bump.
//! - Readers pin a generation via a per-thread [`SnapshotCache`]: the
//!   steady state is a single atomic epoch load and a pointer deref — no
//!   lock, no allocation — so trigger checks proceed at full speed during
//!   sustained churn.
//!
//! A reader may observe a snapshot that is one publish stale. That is
//! sound under the safe-region invariant: a *new* alarm only becomes
//! eligible to fire after the server invalidates the safe regions it
//! intersects (which happens on the writer side, after publish), and a
//! *removed* alarm firing once more is indistinguishable from the race
//! where the cancel arrived just after the trigger check.

use crate::index::{AlarmIndex, NonDenseIdError};
use crate::{AlarmId, SpatialAlarm, SubscriberId};
use parking_lot::{Mutex, RwLock};
use sa_geometry::{Point, Rect};
use sa_index::QueryStats;
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Process-wide counter handing each [`SnapshotCell`] a distinct identity,
/// so a [`SnapshotCache`] carried across cells (e.g. a thread serving two
/// servers in tests) never returns another cell's snapshot.
static CELL_IDS: AtomicU64 = AtomicU64::new(1);

/// A published, immutable value with an epoch counter. Readers that track
/// the epoch in a [`SnapshotCache`] refresh only when a writer has
/// published since their last load; otherwise the read is one atomic load.
pub struct SnapshotCell<S> {
    id: u64,
    epoch: AtomicU64,
    slot: RwLock<Arc<S>>,
}

impl<S> SnapshotCell<S> {
    /// Wraps `initial` as the first published generation (epoch 1).
    pub fn new(initial: S) -> SnapshotCell<S> {
        SnapshotCell {
            id: CELL_IDS.fetch_add(1, Ordering::Relaxed),
            epoch: AtomicU64::new(1),
            slot: RwLock::new(Arc::new(initial)),
        }
    }

    /// The current publish count. Increases by one per [`SnapshotCell::publish`].
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Clones out the current generation (pins it for as long as the `Arc`
    /// is held, regardless of later publishes).
    pub fn load(&self) -> Arc<S> {
        Arc::clone(&self.slot.read())
    }

    /// The hot-path read: returns the cached generation when the epoch is
    /// unchanged (one atomic load, no lock, no allocation), refreshing the
    /// cache from the slot otherwise.
    pub fn load_cached<'a>(&self, cache: &'a mut SnapshotCache<S>) -> &'a S {
        let epoch = self.epoch.load(Ordering::Acquire);
        if cache.cell != self.id || cache.epoch != epoch || cache.snap.is_none() {
            cache.snap = Some(self.load());
            cache.cell = self.id;
            cache.epoch = epoch;
        }
        cache.snap.as_deref().expect("cache was just refilled")
    }

    /// Non-blocking peek at the current generation: `None` only while a
    /// writer is mid-publish. For contexts that must never block (`fmt`).
    pub fn try_peek(&self) -> Option<Arc<S>> {
        self.slot.try_read().as_deref().map(Arc::clone)
    }

    /// Publishes `next` as the new current generation and bumps the epoch.
    /// The slot write lock is held only for the pointer swap.
    pub fn publish(&self, next: Arc<S>) {
        *self.slot.write() = next;
        self.epoch.fetch_add(1, Ordering::Release);
    }
}

impl<S: std::fmt::Debug> std::fmt::Debug for SnapshotCell<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotCell")
            .field("id", &self.id)
            .field("epoch", &self.epoch())
            .finish_non_exhaustive()
    }
}

/// Per-thread (or per-worker) cache of the last generation loaded from a
/// [`SnapshotCell`]. Construct once with [`SnapshotCache::new`] — e.g. in
/// a `thread_local!` — and pass to [`SnapshotCell::load_cached`].
#[derive(Debug)]
pub struct SnapshotCache<S> {
    cell: u64,
    epoch: u64,
    snap: Option<Arc<S>>,
}

impl<S> SnapshotCache<S> {
    /// An empty cache; the first `load_cached` through it always refreshes.
    pub const fn new() -> SnapshotCache<S> {
        SnapshotCache { cell: 0, epoch: 0, snap: None }
    }
}

impl<S> Default for SnapshotCache<S> {
    fn default() -> SnapshotCache<S> {
        SnapshotCache::new()
    }
}

/// One immutable generation of the alarm index: an STR-bulk-loaded base,
/// a small ordered delta of alarms installed since the base was built
/// (their ids continue the base's dense id space), and the set of alarm
/// ids deactivated since. Queries consult all three; the delta and dead
/// set are kept small by generation merges in [`VersionedAlarmIndex`].
#[derive(Debug)]
pub struct AlarmSnapshot {
    base: Arc<AlarmIndex>,
    delta: Vec<SpatialAlarm>,
    dead: HashSet<AlarmId>,
}

impl AlarmSnapshot {
    /// Number of installed alarms (deactivated alarms still count; their
    /// metadata stays addressable, exactly like [`AlarmIndex::len`]).
    pub fn len(&self) -> usize {
        self.base.len() + self.delta.len()
    }

    /// True when no alarms are installed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Alarm lookup by id (base or delta).
    pub fn alarm(&self, id: AlarmId) -> &SpatialAlarm {
        let base_len = self.base.len();
        if (id.0 as usize) < base_len {
            self.base.alarm(id)
        } else {
            &self.delta[id.0 as usize - base_len]
        }
    }

    /// True unless `id` was deactivated in this generation. The common
    /// case (nothing deactivated since the last merge) is one branch.
    fn live(&self, id: AlarmId) -> bool {
        self.dead.is_empty() || !self.dead.contains(&id)
    }

    /// Alarms relevant to `user` whose regions contain `pos` — the
    /// trigger check, with traversal statistics.
    pub fn relevant_at(&self, user: SubscriberId, pos: Point) -> (Vec<&SpatialAlarm>, QueryStats) {
        let (hits, mut stats) = self.base.relevant_at(user, pos);
        let mut hits: Vec<&SpatialAlarm> =
            hits.into_iter().filter(|a| self.live(a.id())).collect();
        for a in &self.delta {
            stats.entries_tested += 1;
            if self.live(a.id()) && a.is_relevant_to(user) && a.contains(pos) {
                hits.push(a);
            }
        }
        (hits, stats)
    }

    /// Visits each alarm relevant to `user` containing `pos` without
    /// materializing a vector — the allocation-free trigger check the
    /// shard workers run per position update.
    pub fn relevant_at_visit(
        &self,
        user: SubscriberId,
        pos: Point,
        mut f: impl FnMut(&SpatialAlarm),
    ) {
        self.base.relevant_at_visit(user, pos, |a| {
            if self.live(a.id()) {
                f(a);
            }
        });
        for a in &self.delta {
            if self.live(a.id()) && a.is_relevant_to(user) && a.contains(pos) {
                f(a);
            }
        }
    }

    /// Alarms relevant to `user` intersecting `area` — safe-region scoping.
    pub fn relevant_intersecting(&self, user: SubscriberId, area: Rect) -> Vec<&SpatialAlarm> {
        self.relevant_intersecting_with_stats(user, area).0
    }

    /// Like [`AlarmSnapshot::relevant_intersecting`], with traversal stats.
    pub fn relevant_intersecting_with_stats(
        &self,
        user: SubscriberId,
        area: Rect,
    ) -> (Vec<&SpatialAlarm>, QueryStats) {
        let (hits, mut stats) = self.base.relevant_intersecting_with_stats(user, area);
        let mut hits: Vec<&SpatialAlarm> =
            hits.into_iter().filter(|a| self.live(a.id())).collect();
        for a in &self.delta {
            stats.entries_tested += 1;
            if self.live(a.id()) && a.is_relevant_to(user) && a.region().intersects(&area) {
                hits.push(a);
            }
        }
        (hits, stats)
    }

    /// All alarms intersecting `area`, regardless of subscriber.
    pub fn all_intersecting(&self, area: Rect) -> Vec<&SpatialAlarm> {
        self.all_intersecting_with_stats(area).0
    }

    /// Like [`AlarmSnapshot::all_intersecting`], with traversal stats.
    pub fn all_intersecting_with_stats(&self, area: Rect) -> (Vec<&SpatialAlarm>, QueryStats) {
        let (hits, mut stats) = self.base.all_intersecting_with_stats(area);
        let mut hits: Vec<&SpatialAlarm> =
            hits.into_iter().filter(|a| self.live(a.id())).collect();
        for a in &self.delta {
            stats.entries_tested += 1;
            if self.live(a.id()) && a.region().intersects(&area) {
                hits.push(a);
            }
        }
        (hits, stats)
    }

    /// Distance from `pos` to the nearest alarm relevant to `user`
    /// passing `keep` — the safe-period baseline's core query. Dead
    /// alarms are excluded everywhere, including the personal-list scan.
    pub fn nearest_relevant_distance<F: Fn(AlarmId) -> bool>(
        &self,
        user: SubscriberId,
        pos: Point,
        keep: F,
    ) -> (Option<f64>, QueryStats) {
        let (mut best, mut stats) =
            self.base.nearest_relevant_distance(user, pos, |id| self.live(id) && keep(id));
        for a in &self.delta {
            stats.entries_tested += 1;
            if !self.live(a.id()) || !a.is_relevant_to(user) || !keep(a.id()) {
                continue;
            }
            let d = a.region().distance_to_point(pos);
            if best.is_none_or(|b| d < b) {
                best = Some(d);
            }
        }
        (best, stats)
    }
}

/// How many delta entries (or dead ids) a generation tolerates before a
/// writer folds them into a freshly bulk-loaded base. Small enough that
/// the linear delta scan stays negligible next to a tree descent, large
/// enough that rebuilds amortize.
const DEFAULT_MERGE_THRESHOLD: usize = 64;

/// Writer-side state, guarded by a mutex so installs and deactivations
/// serialize (readers never touch this).
#[derive(Debug)]
struct WriterState {
    /// Every id ever deactivated. Never cleared: generation merges reset
    /// the snapshot's `dead` fringe, but a repeated deactivate must still
    /// report `false`, and the next rebuild must still exclude these.
    retired: HashSet<AlarmId>,
}

/// The churn-tolerant alarm index: an epoch-versioned sequence of
/// immutable [`AlarmSnapshot`] generations. Readers pin a generation
/// ([`VersionedAlarmIndex::snapshot`] or, on hot paths,
/// [`VersionedAlarmIndex::load_cached`]) and query it lock-free; writers
/// ([`VersionedAlarmIndex::try_install`],
/// [`VersionedAlarmIndex::deactivate`]) serialize on an internal mutex,
/// build the next generation, and publish it with an `Arc` swap.
#[derive(Debug)]
pub struct VersionedAlarmIndex {
    cell: SnapshotCell<AlarmSnapshot>,
    writer: Mutex<WriterState>,
    merge_threshold: usize,
}

impl VersionedAlarmIndex {
    /// Builds the first generation over `alarms` (STR bulk load).
    ///
    /// # Errors
    ///
    /// [`NonDenseIdError`] when ids are not exactly `0..alarms.len()`.
    pub fn new(alarms: Vec<SpatialAlarm>) -> Result<VersionedAlarmIndex, NonDenseIdError> {
        VersionedAlarmIndex::with_merge_threshold(alarms, DEFAULT_MERGE_THRESHOLD)
    }

    /// Like [`VersionedAlarmIndex::new`] with an explicit delta size at
    /// which generations merge (tests use small values to force merges).
    ///
    /// # Errors
    ///
    /// [`NonDenseIdError`] when ids are not exactly `0..alarms.len()`.
    pub fn with_merge_threshold(
        alarms: Vec<SpatialAlarm>,
        merge_threshold: usize,
    ) -> Result<VersionedAlarmIndex, NonDenseIdError> {
        let base = AlarmIndex::try_build(alarms)?;
        Ok(VersionedAlarmIndex {
            cell: SnapshotCell::new(AlarmSnapshot {
                base: Arc::new(base),
                delta: Vec::new(),
                dead: HashSet::new(),
            }),
            writer: Mutex::new(WriterState { retired: HashSet::new() }),
            merge_threshold: merge_threshold.max(1),
        })
    }

    /// Pins and returns the current generation.
    pub fn snapshot(&self) -> Arc<AlarmSnapshot> {
        self.cell.load()
    }

    /// Hot-path read through a per-thread cache: no lock and no
    /// allocation while the epoch is unchanged.
    pub fn load_cached<'a>(&self, cache: &'a mut SnapshotCache<AlarmSnapshot>) -> &'a AlarmSnapshot {
        self.cell.load_cached(cache)
    }

    /// Non-blocking peek for contexts that must never wait (`fmt`).
    pub fn try_peek(&self) -> Option<Arc<AlarmSnapshot>> {
        self.cell.try_peek()
    }

    /// The publish count (starts at 1, +1 per install/deactivate).
    pub fn epoch(&self) -> u64 {
        self.cell.epoch()
    }

    /// Number of installed alarms in the current generation.
    pub fn len(&self) -> usize {
        self.snapshot().len()
    }

    /// True when no alarms are installed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Installs `alarm` into the next generation and publishes it.
    /// Readers holding the previous generation are unaffected.
    ///
    /// # Errors
    ///
    /// [`NonDenseIdError`] when the alarm's id does not continue the
    /// dense id space — the wire-reachable malformed-install case; the
    /// server maps this to an error response instead of panicking.
    pub fn try_install(&self, alarm: SpatialAlarm) -> Result<(), NonDenseIdError> {
        let w = self.writer.lock();
        let cur = self.cell.load();
        let expected = cur.len() as u64;
        if alarm.id().0 != expected {
            return Err(NonDenseIdError { expected, got: alarm.id().0 });
        }
        let next = if cur.delta.len() + 1 >= self.merge_threshold {
            let mut alarms: Vec<SpatialAlarm> = cur.base.alarms().to_vec();
            alarms.extend(cur.delta.iter().cloned());
            alarms.push(alarm);
            AlarmSnapshot {
                base: Arc::new(AlarmIndex::build_dense(alarms, Some(&w.retired))),
                delta: Vec::new(),
                dead: HashSet::new(),
            }
        } else {
            let mut delta = cur.delta.clone();
            delta.push(alarm);
            AlarmSnapshot { base: Arc::clone(&cur.base), delta, dead: cur.dead.clone() }
        };
        self.cell.publish(Arc::new(next));
        Ok(())
    }

    /// Deactivates alarm `id` in the next generation. Returns `false`
    /// when the id is unknown or was already deactivated (matching
    /// [`AlarmIndex::deactivate`]'s idempotence), `true` otherwise.
    pub fn deactivate(&self, id: AlarmId) -> bool {
        let mut w = self.writer.lock();
        let cur = self.cell.load();
        if id.0 as usize >= cur.len() {
            return false;
        }
        if !w.retired.insert(id) {
            return false;
        }
        let next = if cur.dead.len() + 1 >= self.merge_threshold {
            let mut alarms: Vec<SpatialAlarm> = cur.base.alarms().to_vec();
            alarms.extend(cur.delta.iter().cloned());
            AlarmSnapshot {
                base: Arc::new(AlarmIndex::build_dense(alarms, Some(&w.retired))),
                delta: Vec::new(),
                dead: HashSet::new(),
            }
        } else {
            let mut dead = cur.dead.clone();
            dead.insert(id);
            AlarmSnapshot { base: Arc::clone(&cur.base), delta: cur.delta.clone(), dead }
        };
        self.cell.publish(Arc::new(next));
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AlarmScope;

    fn public(id: u64, x: f64, y: f64) -> SpatialAlarm {
        SpatialAlarm::around_static_target(
            AlarmId(id),
            Point::new(x, y),
            100.0,
            AlarmScope::Public { owner: SubscriberId(0) },
        )
        .unwrap()
    }

    fn private(id: u64, owner: u32, x: f64, y: f64) -> SpatialAlarm {
        SpatialAlarm::around_static_target(
            AlarmId(id),
            Point::new(x, y),
            100.0,
            AlarmScope::Private { owner: SubscriberId(owner) },
        )
        .unwrap()
    }

    fn ids_at(snap: &AlarmSnapshot, user: u32, x: f64, y: f64) -> Vec<u64> {
        let (hits, _) = snap.relevant_at(SubscriberId(user), Point::new(x, y));
        let mut v: Vec<u64> = hits.iter().map(|a| a.id().0).collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn installs_appear_in_later_snapshots_only() {
        let v = VersionedAlarmIndex::new(vec![public(0, 100.0, 100.0)]).unwrap();
        let pinned = v.snapshot();
        v.try_install(public(1, 100.0, 100.0)).unwrap();
        assert_eq!(ids_at(&pinned, 9, 100.0, 100.0), vec![0], "pinned generation is frozen");
        assert_eq!(ids_at(&v.snapshot(), 9, 100.0, 100.0), vec![0, 1]);
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn deactivations_filter_everywhere_including_personal_scan() {
        let v = VersionedAlarmIndex::new(vec![
            public(0, 100.0, 100.0),
            private(1, 7, 100.0, 100.0),
        ])
        .unwrap();
        assert!(v.deactivate(AlarmId(1)));
        assert!(!v.deactivate(AlarmId(1)), "second deactivate is a no-op");
        assert!(!v.deactivate(AlarmId(99)), "unknown ids are rejected");
        let snap = v.snapshot();
        assert_eq!(ids_at(&snap, 7, 100.0, 100.0), vec![0]);
        // The nearest query must not see the dead personal alarm either.
        let (d, _) =
            snap.nearest_relevant_distance(SubscriberId(7), Point::new(100.0, 100.0), |_| true);
        assert_eq!(ids_at(&snap, 7, 100.0, 100.0), vec![0]);
        assert!(d.is_some(), "public alarm 0 still answers");
        // Metadata stays addressable.
        assert_eq!(snap.alarm(AlarmId(1)).id(), AlarmId(1));
    }

    #[test]
    fn generations_merge_at_the_threshold_without_changing_answers() {
        let v = VersionedAlarmIndex::with_merge_threshold(vec![public(0, 0.0, 0.0)], 3).unwrap();
        for i in 1..10u64 {
            v.try_install(public(i, 50.0 * i as f64, 50.0 * i as f64)).unwrap();
        }
        assert!(v.deactivate(AlarmId(4)));
        let snap = v.snapshot();
        assert_eq!(snap.len(), 10);
        for i in 0..10u64 {
            let p = Point::new(50.0 * i as f64, 50.0 * i as f64);
            let (hits, _) = snap.relevant_at(SubscriberId(3), p);
            let got: Vec<u64> = hits.iter().map(|a| a.id().0).collect();
            assert_eq!(got.contains(&i), i != 4, "alarm {i} at its own center");
        }
        // A deactivate folded into a merged base stays deactivated, and
        // re-deactivating it still reports false.
        for i in 10..20u64 {
            v.try_install(public(i, 50.0 * i as f64, 50.0 * i as f64)).unwrap();
        }
        assert!(!v.deactivate(AlarmId(4)));
        let merged = v.snapshot();
        let (hits, _) = merged.relevant_at(SubscriberId(3), Point::new(200.0, 200.0));
        assert!(hits.iter().all(|a| a.id() != AlarmId(4)));
    }

    #[test]
    fn install_rejects_gapped_ids_with_a_typed_error() {
        let v = VersionedAlarmIndex::new(vec![public(0, 0.0, 0.0)]).unwrap();
        let before = v.epoch();
        let err = v.try_install(public(7, 1.0, 1.0)).unwrap_err();
        assert_eq!(err, NonDenseIdError { expected: 1, got: 7 });
        assert_eq!(v.epoch(), before, "a rejected install publishes nothing");
        v.try_install(public(1, 1.0, 1.0)).unwrap();
    }

    #[test]
    fn cached_loads_refresh_only_on_publish() {
        let v = VersionedAlarmIndex::new(vec![public(0, 0.0, 0.0)]).unwrap();
        let mut cache = SnapshotCache::new();
        let len_before = v.load_cached(&mut cache).len();
        assert_eq!(len_before, 1);
        // Unchanged epoch: the cache answers (same generation observable
        // via the stored Arc pointer).
        let first = Arc::clone(cache.snap.as_ref().unwrap());
        let again = v.load_cached(&mut cache);
        assert!(std::ptr::eq(again, first.as_ref()));
        v.try_install(public(1, 10.0, 10.0)).unwrap();
        assert_eq!(v.load_cached(&mut cache).len(), 2, "publish invalidates the cache");
    }

    #[test]
    fn caches_never_leak_across_cells() {
        let a = VersionedAlarmIndex::new(vec![public(0, 0.0, 0.0)]).unwrap();
        let b = VersionedAlarmIndex::new(Vec::new()).unwrap();
        let mut cache = SnapshotCache::new();
        assert_eq!(a.load_cached(&mut cache).len(), 1);
        // Same epoch value on both cells — the cell id must disambiguate.
        assert_eq!(b.load_cached(&mut cache).len(), 0);
        assert_eq!(a.load_cached(&mut cache).len(), 1);
    }

    #[test]
    fn try_peek_only_fails_mid_publish() {
        let v = VersionedAlarmIndex::new(vec![public(0, 0.0, 0.0)]).unwrap();
        assert_eq!(v.try_peek().expect("no writer active").len(), 1);
    }

    #[test]
    fn readers_pin_generations_across_concurrent_churn() {
        let v = Arc::new(VersionedAlarmIndex::with_merge_threshold(Vec::new(), 8).unwrap());
        let writer = {
            let v = Arc::clone(&v);
            std::thread::spawn(move || {
                for i in 0..500u64 {
                    v.try_install(public(i, (i % 100) as f64 * 10.0, 500.0)).unwrap();
                    if i % 3 == 0 {
                        v.deactivate(AlarmId(i / 2));
                    }
                }
            })
        };
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let v = Arc::clone(&v);
                std::thread::spawn(move || {
                    let mut cache = SnapshotCache::new();
                    for k in 0..2_000u64 {
                        let snap = v.load_cached(&mut cache);
                        let p = Point::new((k % 100) as f64 * 10.0, 500.0);
                        let (hits, _) = snap.relevant_at(SubscriberId(1), p);
                        // Every hit must come from a consistent generation:
                        // its id addressable, its region containing p.
                        for a in &hits {
                            assert!(a.contains(p));
                            assert_eq!(snap.alarm(a.id()).id(), a.id());
                        }
                    }
                })
            })
            .collect();
        writer.join().unwrap();
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(v.len(), 500);
    }
}
