//! The spatial alarm model of the paper's §1–§2.
//!
//! A *spatial alarm* is a one-shot, location-triggered reminder defined by
//! three elements: an **alarm target** (the future location reference), an
//! **owner** (its publisher) and its **subscribers**. Alarms are categorized
//! along two axes:
//!
//! - *publish–subscribe scope*: [`AlarmScope::Private`],
//!   [`AlarmScope::Shared`] and [`AlarmScope::Public`] (public alarms are
//!   subscribed to by all mobile users, as the paper assumes),
//! - *motion*: static or moving targets ([`AlarmTarget`]), static or moving
//!   subscribers.
//!
//! The crate provides:
//!
//! - [`SpatialAlarm`] and its relevance rules,
//! - [`AlarmWorkload`] / [`WorkloadConfig`] — the seeded workload generator
//!   replicating the paper's default setup (10,000 alarms uniform over the
//!   universe, 10% public, private:shared = 2:1),
//! - [`AlarmIndex`] — the server-side R*-tree over installed alarm regions
//!   with per-subscriber relevance filtering,
//! - [`VersionedAlarmIndex`] — epoch-versioned copy-on-write generations
//!   of the index, so trigger checks read lock-free while publishers
//!   install and cancel alarms concurrently.
//!
//! # Example
//!
//! ```
//! use sa_alarms::{AlarmIndex, AlarmWorkload, SubscriberId, WorkloadConfig};
//! use sa_geometry::{Point, Rect};
//!
//! # fn main() -> Result<(), sa_geometry::GeometryError> {
//! let universe = Rect::new(0.0, 0.0, 10_000.0, 10_000.0)?;
//! let workload = AlarmWorkload::generate(&WorkloadConfig {
//!     alarms: 200,
//!     subscribers: 50,
//!     universe,
//!     ..WorkloadConfig::default()
//! });
//! let index = AlarmIndex::build(workload.alarms().to_vec());
//!
//! let user = SubscriberId(3);
//! let nearby = index.relevant_intersecting(user, Rect::new(0.0, 0.0, 2_000.0, 2_000.0)?);
//! for alarm in nearby {
//!     assert!(alarm.is_relevant_to(user));
//! }
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod alarm;
mod index;
mod snapshot;
mod workload;

pub use alarm::{AlarmId, AlarmScope, AlarmTarget, SpatialAlarm, SubscriberId};
pub use index::{AlarmIndex, NonDenseIdError};
pub use snapshot::{AlarmSnapshot, SnapshotCache, SnapshotCell, VersionedAlarmIndex};
pub use workload::{AlarmWorkload, WorkloadConfig};
