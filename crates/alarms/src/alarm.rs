use sa_geometry::{Point, Rect};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifies an installed spatial alarm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct AlarmId(pub u64);

/// Identifies a mobile subscriber. In the evaluation, subscriber `k` is
/// vehicle `k` of the mobility trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SubscriberId(pub u32);

impl fmt::Display for AlarmId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "alarm#{}", self.0)
    }
}

impl fmt::Display for SubscriberId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "user#{}", self.0)
    }
}

/// The future location reference of an alarm (paper §1).
///
/// Class (1) of the paper's taxonomy uses a static target with a moving
/// subscriber; classes (2) and (3) anchor the alarm region on another moving
/// entity, requiring server-coordinated position updates for the target
/// itself.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AlarmTarget {
    /// A fixed location of interest (e.g., "the dry-clean store").
    Static(Point),
    /// Another mobile subscriber; the alarm region follows their position.
    Moving(SubscriberId),
}

/// Publish–subscribe scope of an alarm (paper §1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AlarmScope {
    /// Installed and used exclusively by the publisher.
    Private {
        /// The publisher, who is also the only subscriber.
        owner: SubscriberId,
    },
    /// Installed by the publisher with an explicit subscriber list (the
    /// publisher is typically one of the subscribers).
    Shared {
        /// The publisher.
        owner: SubscriberId,
        /// Authorized subscribers (sorted, deduplicated).
        subscribers: Vec<SubscriberId>,
    },
    /// Subscribed to by all mobile users.
    Public {
        /// The publisher.
        owner: SubscriberId,
    },
}

impl AlarmScope {
    /// Creates a shared scope, normalizing (sorting + deduplicating) the
    /// subscriber list and ensuring the owner subscribes too.
    pub fn shared(owner: SubscriberId, mut subscribers: Vec<SubscriberId>) -> AlarmScope {
        subscribers.push(owner);
        subscribers.sort_unstable();
        subscribers.dedup();
        AlarmScope::Shared { owner, subscribers }
    }

    /// The publisher of the alarm.
    pub fn owner(&self) -> SubscriberId {
        match self {
            AlarmScope::Private { owner }
            | AlarmScope::Shared { owner, .. }
            | AlarmScope::Public { owner } => *owner,
        }
    }

    /// True when `user` subscribes to an alarm with this scope.
    pub fn includes(&self, user: SubscriberId) -> bool {
        match self {
            AlarmScope::Private { owner } => *owner == user,
            AlarmScope::Shared { subscribers, .. } => subscribers.binary_search(&user).is_ok(),
            AlarmScope::Public { .. } => true,
        }
    }
}

/// An installed spatial alarm: a rectangular spatial region around the
/// alarm target, an owner and a subscriber scope. The alarm *triggers* for
/// a subscriber when that subscriber enters the region; triggering is
/// one-shot per (alarm, subscriber) pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpatialAlarm {
    id: AlarmId,
    region: Rect,
    target: AlarmTarget,
    scope: AlarmScope,
}

impl SpatialAlarm {
    /// Creates an alarm whose region is `region`, anchored on `target`.
    pub fn new(id: AlarmId, region: Rect, target: AlarmTarget, scope: AlarmScope) -> SpatialAlarm {
        SpatialAlarm { id, region, target, scope }
    }

    /// Convenience constructor: a square region of half-extent `radius`
    /// centered on a static target — the "alert me when I am within two
    /// miles of X" shape.
    ///
    /// # Errors
    ///
    /// Propagates [`sa_geometry::GeometryError`] for a negative or
    /// non-finite `radius`.
    pub fn around_static_target(
        id: AlarmId,
        target: Point,
        radius: f64,
        scope: AlarmScope,
    ) -> Result<SpatialAlarm, sa_geometry::GeometryError> {
        Ok(SpatialAlarm {
            id,
            region: Rect::centered_square(target, radius)?,
            target: AlarmTarget::Static(target),
            scope,
        })
    }

    /// The alarm's identifier.
    pub fn id(&self) -> AlarmId {
        self.id
    }

    /// The spatial region whose entry triggers the alarm.
    pub fn region(&self) -> Rect {
        self.region
    }

    /// The alarm target.
    pub fn target(&self) -> AlarmTarget {
        self.target
    }

    /// The publish–subscribe scope.
    pub fn scope(&self) -> &AlarmScope {
        &self.scope
    }

    /// True when the alarm is public.
    pub fn is_public(&self) -> bool {
        matches!(self.scope, AlarmScope::Public { .. })
    }

    /// True when `user` subscribes to this alarm.
    pub fn is_relevant_to(&self, user: SubscriberId) -> bool {
        self.scope.includes(user)
    }

    /// True when a subscriber at `pos` satisfies the alarm's spatial
    /// condition (closed-region containment).
    pub fn contains(&self, pos: Point) -> bool {
        self.region.contains_point(pos)
    }

    /// True when the alarm *triggers* for a subscriber at `pos`.
    ///
    /// Triggering uses strict interior containment: an alarm region is an
    /// open set, so grazing its boundary does not fire it. This is the
    /// semantics the whole processing pipeline shares — it is what makes a
    /// maximal safe region (which necessarily abuts alarm-region
    /// boundaries) sound.
    pub fn triggers_at(&self, pos: Point) -> bool {
        self.region.contains_point_strict(pos)
    }

    /// Re-anchors the region on a moved target position, preserving the
    /// region's extent (classes (2)/(3) of the taxonomy: moving targets).
    pub fn with_target_position(&self, new_target_pos: Point) -> SpatialAlarm {
        let half_w = self.region.width() / 2.0;
        let half_h = self.region.height() / 2.0;
        let region = Rect::new(
            new_target_pos.x - half_w,
            new_target_pos.y - half_h,
            new_target_pos.x + half_w,
            new_target_pos.y + half_h,
        )
        .expect("translated region stays valid");
        SpatialAlarm { id: self.id, region, target: self.target, scope: self.scope.clone() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn user(n: u32) -> SubscriberId {
        SubscriberId(n)
    }

    #[test]
    fn private_alarm_is_relevant_only_to_owner() {
        let a = SpatialAlarm::around_static_target(
            AlarmId(1),
            Point::new(0.0, 0.0),
            100.0,
            AlarmScope::Private { owner: user(5) },
        )
        .unwrap();
        assert!(a.is_relevant_to(user(5)));
        assert!(!a.is_relevant_to(user(6)));
        assert!(!a.is_public());
    }

    #[test]
    fn shared_alarm_includes_owner_and_list() {
        let scope = AlarmScope::shared(user(1), vec![user(3), user(2), user(3)]);
        let a = SpatialAlarm::around_static_target(AlarmId(2), Point::new(0.0, 0.0), 50.0, scope)
            .unwrap();
        assert!(a.is_relevant_to(user(1))); // owner auto-subscribes
        assert!(a.is_relevant_to(user(2)));
        assert!(a.is_relevant_to(user(3)));
        assert!(!a.is_relevant_to(user(4)));
        if let AlarmScope::Shared { subscribers, .. } = a.scope() {
            assert_eq!(subscribers.len(), 3, "list is deduplicated");
        } else {
            panic!("expected shared scope");
        }
    }

    #[test]
    fn public_alarm_is_relevant_to_everyone() {
        let a = SpatialAlarm::around_static_target(
            AlarmId(3),
            Point::new(0.0, 0.0),
            10.0,
            AlarmScope::Public { owner: user(0) },
        )
        .unwrap();
        assert!(a.is_public());
        for u in 0..100 {
            assert!(a.is_relevant_to(user(u)));
        }
    }

    #[test]
    fn region_containment_is_closed() {
        let a = SpatialAlarm::around_static_target(
            AlarmId(4),
            Point::new(100.0, 100.0),
            25.0,
            AlarmScope::Public { owner: user(0) },
        )
        .unwrap();
        assert!(a.contains(Point::new(100.0, 100.0)));
        assert!(a.contains(Point::new(125.0, 125.0)));
        assert!(!a.contains(Point::new(126.0, 100.0)));
    }

    #[test]
    fn moving_target_reanchoring_preserves_extent() {
        let a = SpatialAlarm::new(
            AlarmId(5),
            Rect::new(0.0, 0.0, 200.0, 100.0).unwrap(),
            AlarmTarget::Moving(user(9)),
            AlarmScope::Private { owner: user(9) },
        );
        let moved = a.with_target_position(Point::new(1_000.0, 1_000.0));
        assert_eq!(moved.region().width(), 200.0);
        assert_eq!(moved.region().height(), 100.0);
        assert_eq!(moved.region().center(), Point::new(1_000.0, 1_000.0));
        assert_eq!(moved.id(), a.id());
    }

    #[test]
    fn scope_owner_accessor() {
        assert_eq!(AlarmScope::Private { owner: user(7) }.owner(), user(7));
        assert_eq!(AlarmScope::Public { owner: user(8) }.owner(), user(8));
        assert_eq!(AlarmScope::shared(user(9), vec![]).owner(), user(9));
    }
}

#[cfg(test)]
mod trigger_tests {
    use super::*;

    #[test]
    fn triggering_is_strict_while_contains_is_closed() {
        let a = SpatialAlarm::around_static_target(
            AlarmId(0),
            Point::new(100.0, 100.0),
            50.0,
            AlarmScope::Public { owner: SubscriberId(0) },
        )
        .unwrap();
        let boundary = Point::new(150.0, 100.0);
        let inside = Point::new(149.9, 100.0);
        assert!(a.contains(boundary));
        assert!(!a.triggers_at(boundary));
        assert!(a.triggers_at(inside));
    }
}
