//! Property-based equivalence: an epoch-pinned [`AlarmSnapshot`] must
//! answer `relevant_at` / `relevant_intersecting` exactly like a fresh
//! mutable [`AlarmIndex`] built from the same surviving alarm set, across
//! randomized interleavings of install / deactivate / query — and a
//! generation pinned mid-sequence must keep answering for the state it
//! was pinned at, whatever churn follows.

use proptest::prelude::*;
use sa_alarms::{
    AlarmId, AlarmIndex, AlarmScope, AlarmSnapshot, SpatialAlarm, SubscriberId,
    VersionedAlarmIndex,
};
use sa_geometry::{Point, Rect};
use std::sync::Arc;

#[derive(Debug, Clone)]
enum Op {
    /// Install an alarm centred at (x, y) with half-extent r; `scope`
    /// picks public / private / shared, owned by `owner`.
    Install { x: f64, y: f64, r: f64, scope: u8, owner: u32 },
    /// Deactivate the k-th (mod current count) installed alarm.
    Deactivate(usize),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (50.0..950.0f64, 50.0..950.0f64, 5.0..80.0f64, 0u8..3, 0u32..4)
            .prop_map(|(x, y, r, scope, owner)| Op::Install { x, y, r, scope, owner }),
        1 => (0usize..64).prop_map(Op::Deactivate),
    ]
}

fn make_alarm(id: u64, op: &Op) -> SpatialAlarm {
    let Op::Install { x, y, r, scope, owner } = *op else { unreachable!() };
    let owner_id = SubscriberId(owner);
    let scope = match scope {
        0 => AlarmScope::Public { owner: owner_id },
        1 => AlarmScope::Private { owner: owner_id },
        _ => AlarmScope::shared(owner_id, vec![SubscriberId(owner + 1)]),
    };
    SpatialAlarm::around_static_target(AlarmId(id), Point::new(x, y), r, scope).unwrap()
}

/// The mutable-path reference: build over every installed alarm, then
/// replay the deactivations.
fn reference(installed: &[SpatialAlarm], dead: &[AlarmId]) -> AlarmIndex {
    let mut idx = AlarmIndex::build(installed.to_vec());
    for &id in dead {
        idx.deactivate(id);
    }
    idx
}

/// Deterministic probe set covering the op-generation area.
fn probes() -> (Vec<Point>, Vec<Rect>) {
    let points = (0..6)
        .flat_map(|i| (0..6).map(move |j| Point::new(100.0 + i as f64 * 150.0, 100.0 + j as f64 * 150.0)))
        .collect();
    let rects = (0..4)
        .map(|i| {
            let min = 50.0 + i as f64 * 200.0;
            Rect::new(min, min, min + 350.0, min + 350.0).unwrap()
        })
        .collect();
    (points, rects)
}

fn verify(snap: &AlarmSnapshot, installed: &[SpatialAlarm], dead: &[AlarmId]) {
    let refidx = reference(installed, dead);
    assert_eq!(snap.len(), refidx.len());
    let (points, rects) = probes();
    for user in [SubscriberId(0), SubscriberId(2), SubscriberId(4)] {
        for &p in &points {
            let mut got: Vec<u64> = snap.relevant_at(user, p).0.iter().map(|a| a.id().0).collect();
            got.sort_unstable();
            let mut want: Vec<u64> =
                refidx.relevant_at(user, p).0.iter().map(|a| a.id().0).collect();
            want.sort_unstable();
            assert_eq!(got, want, "relevant_at diverged for user {user:?} at {p:?}");
            // The visit-based form must agree with the materializing one.
            let mut visited: Vec<u64> = Vec::new();
            snap.relevant_at_visit(user, p, |a| visited.push(a.id().0));
            visited.sort_unstable();
            assert_eq!(visited, got, "relevant_at_visit diverged from relevant_at");
        }
        for &area in &rects {
            let mut got: Vec<u64> =
                snap.relevant_intersecting(user, area).iter().map(|a| a.id().0).collect();
            got.sort_unstable();
            let mut want: Vec<u64> =
                refidx.relevant_intersecting(user, area).iter().map(|a| a.id().0).collect();
            want.sort_unstable();
            assert_eq!(got, want, "relevant_intersecting diverged for user {user:?}");
        }
    }
}

fn run(ops: Vec<Op>, merge_threshold: usize) {
    let v = VersionedAlarmIndex::with_merge_threshold(Vec::new(), merge_threshold).unwrap();
    let mut installed: Vec<SpatialAlarm> = Vec::new();
    let mut dead: Vec<AlarmId> = Vec::new();
    // Pinned mid-sequence: the generation plus the state it saw.
    let mut pinned: Option<(Arc<AlarmSnapshot>, Vec<SpatialAlarm>, Vec<AlarmId>)> = None;
    let half = ops.len() / 2;
    for (step, op) in ops.into_iter().enumerate() {
        match op {
            Op::Install { .. } => {
                let alarm = make_alarm(installed.len() as u64, &op);
                v.try_install(alarm.clone()).unwrap();
                installed.push(alarm);
            }
            Op::Deactivate(k) => {
                if installed.is_empty() {
                    continue;
                }
                let id = AlarmId((k % installed.len()) as u64);
                let first_time = !dead.contains(&id);
                assert_eq!(v.deactivate(id), first_time, "deactivate({id:?}) idempotence");
                if first_time {
                    dead.push(id);
                }
            }
        }
        if step == half {
            pinned = Some((v.snapshot(), installed.clone(), dead.clone()));
        }
    }
    // The current generation answers like a fresh index over the
    // surviving set...
    verify(&v.snapshot(), &installed, &dead);
    // ...and the mid-sequence pin still answers for the state it was
    // pinned at, untouched by everything published since.
    if let Some((snap, installed_then, dead_then)) = pinned {
        verify(&snap, &installed_then, &dead_then);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn snapshot_matches_fresh_index(ops in prop::collection::vec(arb_op(), 1..40)) {
        run(ops, 64);
    }

    #[test]
    fn snapshot_matches_fresh_index_across_merges(ops in prop::collection::vec(arb_op(), 1..40)) {
        // A merge threshold of 3 forces repeated generation merges, so
        // base rebuilds, delta scans, and the dead-set reset all happen
        // inside most sequences.
        run(ops, 3);
    }
}
