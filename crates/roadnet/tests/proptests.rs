//! Property-based tests for the road-network substrate: generated networks
//! are well-formed, routing is optimal against brute force on small graphs,
//! and vehicle motion respects physics over arbitrary seeds.

use proptest::prelude::*;
use sa_roadnet::{generate_network, Fleet, FleetConfig, NetworkConfig, NodeId, RoadClass, Router};

fn arb_network_config() -> impl Strategy<Value = NetworkConfig> {
    (0u64..5_000, 0.0..0.45f64, 0.0..0.25f64, 2u32..8, 1u32..4).prop_map(
        |(seed, jitter, dropout, highway, arterial)| NetworkConfig {
            universe_side_m: 3_000.0,
            junction_spacing_m: 500.0,
            jitter_fraction: jitter,
            dropout,
            highway_period: highway,
            arterial_period: arterial,
            seed,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn generated_networks_are_connected_and_in_bounds(config in arb_network_config()) {
        let net = generate_network(&config);
        prop_assert!(net.is_connected());
        let bb = net.bounding_box();
        prop_assert!(bb.min_x() >= -1e-9 && bb.max_x() <= config.universe_side_m + 1e-9);
        prop_assert!(bb.min_y() >= -1e-9 && bb.max_y() <= config.universe_side_m + 1e-9);
        // Every edge has positive length and valid endpoints.
        for e in net.edges() {
            prop_assert!(e.length > 0.0);
            prop_assert!((e.a.0 as usize) < net.node_count());
            prop_assert!((e.b.0 as usize) < net.node_count());
        }
    }

    #[test]
    fn dijkstra_matches_brute_force_on_small_networks(seed in 0u64..2_000) {
        let net = generate_network(&NetworkConfig {
            universe_side_m: 1_500.0,
            junction_spacing_m: 500.0,
            seed,
            ..NetworkConfig::small_test()
        });
        let n = net.node_count();
        // Floyd–Warshall oracle over travel times.
        let mut dist = vec![vec![f64::INFINITY; n]; n];
        for (i, row) in dist.iter_mut().enumerate() {
            row[i] = 0.0;
        }
        for e in net.edges() {
            let (a, b) = (e.a.0 as usize, e.b.0 as usize);
            let t = e.travel_time();
            if t < dist[a][b] {
                dist[a][b] = t;
                dist[b][a] = t;
            }
        }
        for k in 0..n {
            for i in 0..n {
                for j in 0..n {
                    let via = dist[i][k] + dist[k][j];
                    if via < dist[i][j] {
                        dist[i][j] = via;
                    }
                }
            }
        }
        let mut router = Router::new(&net);
        for (from, to) in [(0usize, n - 1), (1, n / 2), (n / 3, 2 * n / 3)] {
            let path = router.route(NodeId(from as u32), NodeId(to as u32));
            prop_assert!(path.is_some(), "connected network must route");
            let cost = router.last_cost(NodeId(to as u32)).unwrap();
            prop_assert!(
                (cost - dist[from][to]).abs() < 1e-6,
                "route {from}->{to}: dijkstra {cost} vs oracle {}", dist[from][to]
            );
        }
    }

    #[test]
    fn vehicles_obey_speed_limits_and_stay_on_the_map(
        seed in 0u64..2_000,
        vehicles in 1usize..8,
        dt in 0.5..2.5f64,
    ) {
        let config = NetworkConfig { seed: seed ^ 0x11, ..NetworkConfig::small_test() };
        let net = generate_network(&config);
        let fleet_config = FleetConfig {
            vehicles,
            seed,
            ..FleetConfig::default()
        };
        let mut fleet = Fleet::new(&net, &fleet_config);
        let bb = net.bounding_box();
        let v_max = RoadClass::Highway.speed_mps() * fleet_config.max_speed_factor;
        let mut prev: Option<Vec<sa_geometry::Point>> = None;
        for _ in 0..60 {
            let samples = fleet.step(dt);
            for (i, s) in samples.iter().enumerate() {
                prop_assert!(bb.contains_point(s.pos), "vehicle {i} left the map");
                prop_assert!(s.speed > 0.0 && s.speed <= v_max + 1e-9);
                if let Some(prev) = &prev {
                    // Straight-line displacement can never exceed the track
                    // distance travelled at v_max.
                    prop_assert!(prev[i].distance(s.pos) <= v_max * dt + 1e-6);
                }
            }
            prev = Some(samples.iter().map(|s| s.pos).collect());
        }
    }
}
