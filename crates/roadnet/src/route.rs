use crate::{EdgeId, NodeId, RoadNetwork};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Dijkstra shortest-travel-time router with reusable internal buffers.
///
/// Routing cost is edge travel time at design speed, so trips prefer
/// highways over shorter local-road paths when the detour pays off —
/// the behaviour that gives vehicle traces their characteristic
/// highway-heavy structure.
///
/// ```
/// use sa_roadnet::{generate_network, NetworkConfig, NodeId, Router};
///
/// let net = generate_network(&NetworkConfig::small_test());
/// let mut router = Router::new(&net);
/// let path = router.route(NodeId(0), NodeId((net.node_count() - 1) as u32)).unwrap();
/// assert!(path.len() >= 2);
/// ```
#[derive(Debug)]
pub struct Router<'a> {
    network: &'a RoadNetwork,
    dist: Vec<f64>,
    prev_edge: Vec<Option<EdgeId>>,
    visited_epoch: Vec<u64>,
    epoch: u64,
}

#[derive(PartialEq)]
struct HeapItem {
    cost: f64,
    node: NodeId,
}

impl Eq for HeapItem {}

impl Ord for HeapItem {
    fn cmp(&self, other: &HeapItem) -> Ordering {
        // Min-heap on cost.
        other
            .cost
            .partial_cmp(&self.cost)
            .expect("costs are finite")
            .then_with(|| other.node.0.cmp(&self.node.0))
    }
}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &HeapItem) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<'a> Router<'a> {
    /// Creates a router bound to `network`.
    pub fn new(network: &'a RoadNetwork) -> Router<'a> {
        let n = network.node_count();
        Router {
            network,
            dist: vec![f64::INFINITY; n],
            prev_edge: vec![None; n],
            visited_epoch: vec![0; n],
            epoch: 0,
        }
    }

    /// Shortest-travel-time path from `from` to `to` as the sequence of
    /// edges to traverse. Returns `None` when `to` is unreachable, and an
    /// empty path when `from == to`.
    pub fn route(&mut self, from: NodeId, to: NodeId) -> Option<Vec<EdgeId>> {
        if from == to {
            return Some(Vec::new());
        }
        self.epoch += 1;
        let epoch = self.epoch;
        let mark = |slot: &mut u64| *slot = epoch;

        let mut heap = BinaryHeap::new();
        self.dist[from.0 as usize] = 0.0;
        self.prev_edge[from.0 as usize] = None;
        mark(&mut self.visited_epoch[from.0 as usize]);
        heap.push(HeapItem { cost: 0.0, node: from });

        let mut settled = vec![false; self.network.node_count()];
        while let Some(HeapItem { cost, node }) = heap.pop() {
            if settled[node.0 as usize] {
                continue;
            }
            settled[node.0 as usize] = true;
            if node == to {
                break;
            }
            for &eid in self.network.incident_edges(node) {
                let edge = self.network.edge(eid);
                let next = edge.other(node);
                let ni = next.0 as usize;
                let next_cost = cost + edge.travel_time();
                let fresh = self.visited_epoch[ni] != epoch;
                if fresh || next_cost < self.dist[ni] {
                    self.visited_epoch[ni] = epoch;
                    self.dist[ni] = next_cost;
                    self.prev_edge[ni] = Some(eid);
                    heap.push(HeapItem { cost: next_cost, node: next });
                }
            }
        }

        if self.visited_epoch[to.0 as usize] != self.epoch || !settled[to.0 as usize] {
            return None;
        }
        // Walk predecessors back to the origin.
        let mut path = Vec::new();
        let mut cur = to;
        while cur != from {
            let eid = self.prev_edge[cur.0 as usize].expect("reached node has a predecessor");
            path.push(eid);
            cur = self.network.edge(eid).other(cur);
        }
        path.reverse();
        Some(path)
    }

    /// Travel time (seconds) of the last route to `to` computed by
    /// [`Router::route`]. Only meaningful directly after a successful call.
    pub fn last_cost(&self, to: NodeId) -> Option<f64> {
        if self.visited_epoch[to.0 as usize] == self.epoch {
            Some(self.dist[to.0 as usize])
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate_network, NetworkConfig, RoadClass, RoadNetwork};
    use sa_geometry::Point;

    fn line(n: u32) -> RoadNetwork {
        RoadNetwork::new(
            (0..n).map(|i| Point::new(i as f64 * 100.0, 0.0)).collect(),
            (0..n - 1).map(|i| (i, i + 1, RoadClass::Local)).collect(),
        )
    }

    #[test]
    fn routes_along_a_line() {
        let net = line(5);
        let mut router = Router::new(&net);
        let path = router.route(NodeId(0), NodeId(4)).unwrap();
        assert_eq!(path.len(), 4);
        assert_eq!(path, vec![EdgeId(0), EdgeId(1), EdgeId(2), EdgeId(3)]);
        let expected = 400.0 / RoadClass::Local.speed_mps();
        assert!((router.last_cost(NodeId(4)).unwrap() - expected).abs() < 1e-9);
    }

    #[test]
    fn empty_route_to_self() {
        let net = line(3);
        let mut router = Router::new(&net);
        assert_eq!(router.route(NodeId(1), NodeId(1)).unwrap(), vec![]);
    }

    #[test]
    fn unreachable_returns_none() {
        let net = RoadNetwork::new(
            vec![
                Point::new(0.0, 0.0),
                Point::new(100.0, 0.0),
                Point::new(500.0, 500.0),
                Point::new(600.0, 500.0),
            ],
            vec![(0, 1, RoadClass::Local), (2, 3, RoadClass::Local)],
        );
        let mut router = Router::new(&net);
        assert!(router.route(NodeId(0), NodeId(3)).is_none());
    }

    #[test]
    fn prefers_fast_roads_over_short_ones() {
        // Two routes from 0 to 3: direct local chain (0-1-3, 200 m at 11 m/s
        // ≈ 18.2 s) vs a longer highway detour (0-2-3, 300 m at 29 m/s
        // ≈ 10.3 s). Router must take the highway.
        let net = RoadNetwork::new(
            vec![
                Point::new(0.0, 0.0),
                Point::new(100.0, 0.0),
                Point::new(0.0, 150.0),
                Point::new(200.0, 0.0),
            ],
            vec![
                (0, 1, RoadClass::Local),
                (1, 3, RoadClass::Local),
                (0, 2, RoadClass::Highway),
                (2, 3, RoadClass::Highway),
            ],
        );
        let mut router = Router::new(&net);
        let path = router.route(NodeId(0), NodeId(3)).unwrap();
        assert_eq!(path, vec![EdgeId(2), EdgeId(3)]);
    }

    #[test]
    fn path_edges_are_contiguous() {
        let net = generate_network(&NetworkConfig::small_test());
        let mut router = Router::new(&net);
        let from = NodeId(0);
        let to = NodeId((net.node_count() - 1) as u32);
        let path = router.route(from, to).unwrap();
        let mut cur = from;
        for eid in path {
            let e = net.edge(eid);
            assert!(e.a == cur || e.b == cur, "edge not incident to current node");
            cur = e.other(cur);
        }
        assert_eq!(cur, to);
    }

    #[test]
    fn router_is_reusable_across_queries() {
        let net = generate_network(&NetworkConfig::small_test());
        let mut router = Router::new(&net);
        let a = router.route(NodeId(0), NodeId(10)).unwrap();
        let b = router.route(NodeId(0), NodeId(10)).unwrap();
        assert_eq!(a, b);
        // A different query afterwards still works.
        assert!(router.route(NodeId(5), NodeId(20)).is_some());
    }
}
