use crate::{RoadClass, RoadNetwork};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sa_geometry::Point;
use serde::{Deserialize, Serialize};

/// Configuration of the synthetic road-network generator.
///
/// The defaults reproduce the paper's setting: a universe of roughly
/// 1000 km² (31.6 km × 31.6 km) covered by a hierarchical road grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkConfig {
    /// Side of the square universe in meters.
    pub universe_side_m: f64,
    /// Spacing of the junction lattice in meters.
    pub junction_spacing_m: f64,
    /// Fraction of each lattice spacing used as random positional jitter
    /// (`0.0` = perfectly regular grid). Must be `< 0.5` to keep lattice
    /// neighbours geometrically sensible.
    pub jitter_fraction: f64,
    /// Probability of deleting a candidate local road segment, creating
    /// irregular blocks. Deletions that would disconnect the network are
    /// rolled back.
    pub dropout: f64,
    /// Every `highway_period`-th row/column of the lattice is a highway.
    pub highway_period: u32,
    /// Every `arterial_period`-th row/column is (at least) an arterial.
    pub arterial_period: u32,
    /// Seed for deterministic generation.
    pub seed: u64,
}

impl Default for NetworkConfig {
    fn default() -> NetworkConfig {
        NetworkConfig {
            universe_side_m: 31_623.0, // ≈ 1000 km², the paper's Atlanta extent
            junction_spacing_m: 1_000.0,
            jitter_fraction: 0.25,
            dropout: 0.08,
            highway_period: 8,
            arterial_period: 2,
            seed: 0x5A1A_0001,
        }
    }
}

impl NetworkConfig {
    /// A tiny 4 km × 4 km network for fast unit tests.
    pub fn small_test() -> NetworkConfig {
        NetworkConfig {
            universe_side_m: 4_000.0,
            junction_spacing_m: 500.0,
            seed: 7,
            ..NetworkConfig::default()
        }
    }
}

/// Generates a connected hierarchical road network.
///
/// Junctions form a jittered lattice; lattice-neighbour pairs become road
/// segments. Rows/columns at the configured periods are upgraded to
/// arterials and highways, mirroring the hierarchy of a real urban network
/// (the substitution for the USGS Atlanta map — see `DESIGN.md` §4).
///
/// # Panics
///
/// Panics when the configuration is degenerate (non-positive sizes, jitter
/// ≥ 0.5, or a lattice with fewer than 2×2 junctions).
pub fn generate_network(config: &NetworkConfig) -> RoadNetwork {
    assert!(
        config.universe_side_m > 0.0 && config.junction_spacing_m > 0.0,
        "universe and spacing must be positive"
    );
    assert!(
        (0.0..0.5).contains(&config.jitter_fraction),
        "jitter_fraction must be in [0, 0.5)"
    );
    let n = (config.universe_side_m / config.junction_spacing_m).round() as u32 + 1;
    assert!(n >= 2, "lattice must have at least 2x2 junctions");
    assert!(config.highway_period >= 1 && config.arterial_period >= 1);

    let mut rng = SmallRng::seed_from_u64(config.seed);
    let spacing = config.universe_side_m / (n - 1) as f64;
    let jitter = spacing * config.jitter_fraction;

    // Jittered lattice positions; boundary nodes stay on the boundary so the
    // network spans the whole universe.
    let mut positions = Vec::with_capacity((n * n) as usize);
    for row in 0..n {
        for col in 0..n {
            let base_x = col as f64 * spacing;
            let base_y = row as f64 * spacing;
            let dx = if col == 0 || col == n - 1 { 0.0 } else { rng.gen_range(-jitter..=jitter) };
            let dy = if row == 0 || row == n - 1 { 0.0 } else { rng.gen_range(-jitter..=jitter) };
            positions.push(Point::new(
                (base_x + dx).clamp(0.0, config.universe_side_m),
                (base_y + dy).clamp(0.0, config.universe_side_m),
            ));
        }
    }

    let id = |col: u32, row: u32| row * n + col;
    let line_class = |index: u32| {
        if index.is_multiple_of(config.highway_period) {
            RoadClass::Highway
        } else if index.is_multiple_of(config.arterial_period) {
            RoadClass::Arterial
        } else {
            RoadClass::Local
        }
    };

    // Candidate segments: 4-neighbour lattice edges. Horizontal segments
    // inherit the class of their row; vertical segments the class of their
    // column.
    let mut specs: Vec<(u32, u32, RoadClass)> = Vec::new();
    for row in 0..n {
        for col in 0..n {
            if col + 1 < n {
                specs.push((id(col, row), id(col + 1, row), line_class(row)));
            }
            if row + 1 < n {
                specs.push((id(col, row), id(col, row + 1), line_class(col)));
            }
        }
    }

    // Randomly drop local segments to create irregular blocks, keeping the
    // network connected: build once with all edges, then re-check after each
    // tentative batch would be costly, so instead drop only edges whose
    // removal provably keeps both endpoints well-connected (degree > 2) and
    // verify global connectivity once at the end, restoring dropped edges if
    // needed.
    let mut degree = vec![0u32; (n * n) as usize];
    for &(a, b, _) in &specs {
        degree[a as usize] += 1;
        degree[b as usize] += 1;
    }
    let mut kept: Vec<(u32, u32, RoadClass)> = Vec::with_capacity(specs.len());
    let mut dropped: Vec<(u32, u32, RoadClass)> = Vec::new();
    for spec in specs {
        let (a, b, class) = spec;
        let droppable = class == RoadClass::Local
            && degree[a as usize] > 2
            && degree[b as usize] > 2
            && rng.gen_bool(config.dropout);
        if droppable {
            degree[a as usize] -= 1;
            degree[b as usize] -= 1;
            dropped.push(spec);
        } else {
            kept.push(spec);
        }
    }

    let mut network = RoadNetwork::new(positions.clone(), kept.clone());
    if !network.is_connected() {
        // Rare: restore all dropped segments. Correctness over sparsity.
        kept.extend(dropped);
        network = RoadNetwork::new(positions, kept);
    }
    debug_assert!(network.is_connected());
    network
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_network_spans_the_paper_universe() {
        let net = generate_network(&NetworkConfig::default());
        let bb = net.bounding_box();
        assert!((bb.width() - 31_623.0).abs() < 1.0);
        assert!((bb.height() - 31_623.0).abs() < 1.0);
        // ~32x32 lattice
        assert!(net.node_count() >= 32 * 32);
        assert!(net.is_connected());
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_network(&NetworkConfig::small_test());
        let b = generate_network(&NetworkConfig::small_test());
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate_network(&NetworkConfig::small_test());
        let b = generate_network(&NetworkConfig { seed: 8, ..NetworkConfig::small_test() });
        assert_ne!(a, b);
    }

    #[test]
    fn contains_all_three_road_classes() {
        let net = generate_network(&NetworkConfig::default());
        let mut has = std::collections::HashSet::new();
        for e in net.edges() {
            has.insert(e.class);
        }
        assert!(has.contains(&RoadClass::Highway));
        assert!(has.contains(&RoadClass::Arterial));
        assert!(has.contains(&RoadClass::Local));
    }

    #[test]
    fn dropout_reduces_edges_but_preserves_connectivity() {
        let dense = generate_network(&NetworkConfig { dropout: 0.0, ..NetworkConfig::small_test() });
        let sparse = generate_network(&NetworkConfig { dropout: 0.3, ..NetworkConfig::small_test() });
        assert!(sparse.edge_count() < dense.edge_count());
        assert!(sparse.is_connected());
    }

    #[test]
    fn zero_jitter_gives_regular_grid() {
        let net = generate_network(&NetworkConfig {
            jitter_fraction: 0.0,
            dropout: 0.0,
            ..NetworkConfig::small_test()
        });
        // 9x9 lattice at 500 m spacing over 4 km.
        assert_eq!(net.node_count(), 81);
        // Every interior junction has degree 4.
        let interior_degree = net.incident_edges(crate::NodeId(4 * 9 + 4)).len();
        assert_eq!(interior_degree, 4);
    }

    #[test]
    #[should_panic(expected = "jitter_fraction")]
    fn rejects_excessive_jitter() {
        generate_network(&NetworkConfig { jitter_fraction: 0.6, ..NetworkConfig::small_test() });
    }
}
