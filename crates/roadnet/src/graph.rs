use sa_geometry::{Point, Rect};
use serde::{Deserialize, Serialize};

/// Index of a junction in a [`RoadNetwork`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u32);

/// Index of a road segment in a [`RoadNetwork`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct EdgeId(pub u32);

/// Functional class of a road segment, determining its travel speed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RoadClass {
    /// Limited-access highway.
    Highway,
    /// Major surface street.
    Arterial,
    /// Residential / local street.
    Local,
}

impl RoadClass {
    /// Design speed in meters per second (≈ 105 / 60 / 40 km/h).
    pub fn speed_mps(self) -> f64 {
        match self {
            RoadClass::Highway => 29.0,
            RoadClass::Arterial => 16.5,
            RoadClass::Local => 11.0,
        }
    }
}

/// A junction of the road network.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RoadNode {
    /// Stable identifier (equal to the node's index).
    pub id: NodeId,
    /// Position in universe coordinates (meters).
    pub pos: Point,
}

/// An undirected road segment between two junctions. Vehicles may traverse
/// it in either direction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RoadEdge {
    /// Stable identifier (equal to the edge's index).
    pub id: EdgeId,
    /// One endpoint.
    pub a: NodeId,
    /// The other endpoint.
    pub b: NodeId,
    /// Segment length in meters (straight-line between endpoints).
    pub length: f64,
    /// Functional class, determining travel speed.
    pub class: RoadClass,
}

impl RoadEdge {
    /// Travel time to traverse the whole segment at design speed, seconds.
    pub fn travel_time(&self) -> f64 {
        self.length / self.class.speed_mps()
    }

    /// The endpoint opposite to `n`.
    ///
    /// # Panics
    ///
    /// Panics when `n` is not an endpoint of this edge.
    pub fn other(&self, n: NodeId) -> NodeId {
        if n == self.a {
            self.b
        } else if n == self.b {
            self.a
        } else {
            panic!("node {n:?} is not an endpoint of edge {:?}", self.id)
        }
    }
}

/// An undirected road network with adjacency lists.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoadNetwork {
    nodes: Vec<RoadNode>,
    edges: Vec<RoadEdge>,
    /// `adjacency[node] = edges incident to node`.
    adjacency: Vec<Vec<EdgeId>>,
}

impl RoadNetwork {
    /// Builds a network from nodes and endpoint pairs.
    ///
    /// # Panics
    ///
    /// Panics when an edge references a missing node or is a self-loop.
    pub fn new(node_positions: Vec<Point>, edge_specs: Vec<(u32, u32, RoadClass)>) -> RoadNetwork {
        let nodes: Vec<RoadNode> = node_positions
            .into_iter()
            .enumerate()
            .map(|(i, pos)| RoadNode { id: NodeId(i as u32), pos })
            .collect();
        let mut adjacency: Vec<Vec<EdgeId>> = vec![Vec::new(); nodes.len()];
        let mut edges = Vec::with_capacity(edge_specs.len());
        for (i, (a, b, class)) in edge_specs.into_iter().enumerate() {
            assert!(a != b, "self-loop edges are not allowed");
            let pa = nodes[a as usize].pos;
            let pb = nodes[b as usize].pos;
            let edge = RoadEdge {
                id: EdgeId(i as u32),
                a: NodeId(a),
                b: NodeId(b),
                length: pa.distance(pb).max(1.0e-6),
                class,
            };
            adjacency[a as usize].push(edge.id);
            adjacency[b as usize].push(edge.id);
            edges.push(edge);
        }
        RoadNetwork { nodes, edges, adjacency }
    }

    /// Number of junctions.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of road segments.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Junction lookup.
    pub fn node(&self, id: NodeId) -> &RoadNode {
        &self.nodes[id.0 as usize]
    }

    /// Segment lookup.
    pub fn edge(&self, id: EdgeId) -> &RoadEdge {
        &self.edges[id.0 as usize]
    }

    /// All junctions.
    pub fn nodes(&self) -> &[RoadNode] {
        &self.nodes
    }

    /// All segments.
    pub fn edges(&self) -> &[RoadEdge] {
        &self.edges
    }

    /// Edges incident to `n`.
    pub fn incident_edges(&self, n: NodeId) -> &[EdgeId] {
        &self.adjacency[n.0 as usize]
    }

    /// Smallest rectangle containing all junctions.
    ///
    /// # Panics
    ///
    /// Panics on an empty network.
    pub fn bounding_box(&self) -> Rect {
        let mut it = self.nodes.iter();
        let first = it.next().expect("network has at least one node");
        it.fold(Rect::point(first.pos), |acc, n| acc.extended_to(n.pos))
    }

    /// Total road length in meters.
    pub fn total_length(&self) -> f64 {
        self.edges.iter().map(|e| e.length).sum()
    }

    /// True when every junction can reach every other junction.
    pub fn is_connected(&self) -> bool {
        if self.nodes.is_empty() {
            return true;
        }
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![NodeId(0)];
        seen[0] = true;
        let mut count = 1usize;
        while let Some(n) = stack.pop() {
            for &eid in self.incident_edges(n) {
                let m = self.edge(eid).other(n);
                if !seen[m.0 as usize] {
                    seen[m.0 as usize] = true;
                    count += 1;
                    stack.push(m);
                }
            }
        }
        count == self.nodes.len()
    }

    /// Position along edge `eid` at `progress ∈ [0, 1]` measured from
    /// endpoint `from`.
    pub fn position_on_edge(&self, eid: EdgeId, from: NodeId, progress: f64) -> Point {
        let e = self.edge(eid);
        let (pa, pb) = if from == e.a {
            (self.node(e.a).pos, self.node(e.b).pos)
        } else {
            (self.node(e.b).pos, self.node(e.a).pos)
        };
        pa.lerp(pb, progress.clamp(0.0, 1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> RoadNetwork {
        RoadNetwork::new(
            vec![Point::new(0.0, 0.0), Point::new(100.0, 0.0), Point::new(0.0, 100.0)],
            vec![
                (0, 1, RoadClass::Local),
                (1, 2, RoadClass::Arterial),
                (2, 0, RoadClass::Highway),
            ],
        )
    }

    #[test]
    fn edge_lengths_are_euclidean() {
        let net = triangle();
        assert!((net.edge(EdgeId(0)).length - 100.0).abs() < 1e-9);
        assert!((net.edge(EdgeId(1)).length - (2.0f64).sqrt() * 100.0).abs() < 1e-9);
    }

    #[test]
    fn adjacency_lists_are_symmetric() {
        let net = triangle();
        for e in net.edges() {
            assert!(net.incident_edges(e.a).contains(&e.id));
            assert!(net.incident_edges(e.b).contains(&e.id));
        }
        assert_eq!(net.incident_edges(NodeId(0)).len(), 2);
    }

    #[test]
    fn other_endpoint_round_trips() {
        let net = triangle();
        let e = net.edge(EdgeId(1));
        assert_eq!(e.other(e.a), e.b);
        assert_eq!(e.other(e.b), e.a);
    }

    #[test]
    #[should_panic(expected = "not an endpoint")]
    fn other_rejects_foreign_node() {
        let net = triangle();
        net.edge(EdgeId(0)).other(NodeId(2));
    }

    #[test]
    fn connectivity_detection() {
        let net = triangle();
        assert!(net.is_connected());
        let disconnected = RoadNetwork::new(
            vec![
                Point::new(0.0, 0.0),
                Point::new(1.0, 0.0),
                Point::new(10.0, 10.0),
                Point::new(11.0, 10.0),
            ],
            vec![(0, 1, RoadClass::Local), (2, 3, RoadClass::Local)],
        );
        assert!(!disconnected.is_connected());
    }

    #[test]
    fn position_on_edge_interpolates_both_directions() {
        let net = triangle();
        let mid_fwd = net.position_on_edge(EdgeId(0), NodeId(0), 0.5);
        let mid_rev = net.position_on_edge(EdgeId(0), NodeId(1), 0.5);
        assert_eq!(mid_fwd, mid_rev);
        assert_eq!(net.position_on_edge(EdgeId(0), NodeId(0), 0.0), Point::new(0.0, 0.0));
        assert_eq!(net.position_on_edge(EdgeId(0), NodeId(1), 0.0), Point::new(100.0, 0.0));
        // Progress clamps.
        assert_eq!(net.position_on_edge(EdgeId(0), NodeId(0), 2.0), Point::new(100.0, 0.0));
    }

    #[test]
    fn class_speeds_are_ordered() {
        assert!(RoadClass::Highway.speed_mps() > RoadClass::Arterial.speed_mps());
        assert!(RoadClass::Arterial.speed_mps() > RoadClass::Local.speed_mps());
    }

    #[test]
    fn travel_time_uses_class_speed() {
        let net = triangle();
        let e = net.edge(EdgeId(0));
        assert!((e.travel_time() - 100.0 / RoadClass::Local.speed_mps()).abs() < 1e-9);
    }

    #[test]
    fn bounding_box_and_total_length() {
        let net = triangle();
        assert_eq!(net.bounding_box(), Rect::new(0.0, 0.0, 100.0, 100.0).unwrap());
        assert!(net.total_length() > 300.0);
    }
}
