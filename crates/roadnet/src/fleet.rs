use crate::{EdgeId, NodeId, RoadNetwork, Router};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sa_geometry::Point;
use serde::{Deserialize, Serialize};

/// Identifies a vehicle (mobile subscriber) in a [`Fleet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct VehicleId(pub u32);

/// One position sample of one vehicle — the unit of the "very high
/// frequency trace of the motion pattern of the vehicles" the paper uses to
/// determine the ground-truth alarm sequence (§5).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceSample {
    /// Simulation time in seconds since the start of the trace.
    pub time: f64,
    /// The sampled vehicle.
    pub vehicle: VehicleId,
    /// Position in universe coordinates.
    pub pos: Point,
    /// Travel direction in radians (counterclockwise from +x).
    pub heading: f64,
    /// Instantaneous speed in meters per second.
    pub speed: f64,
}

/// Configuration of a vehicle fleet.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetConfig {
    /// Number of vehicles (the paper's default traffic volume is 10,000).
    pub vehicles: usize,
    /// Seed controlling start positions, trip choices and speed factors.
    pub seed: u64,
    /// Lower bound of the per-vehicle speed multiplier.
    pub min_speed_factor: f64,
    /// Upper bound of the per-vehicle speed multiplier.
    pub max_speed_factor: f64,
}

impl Default for FleetConfig {
    fn default() -> FleetConfig {
        FleetConfig {
            vehicles: 100,
            seed: 1,
            min_speed_factor: 0.8,
            max_speed_factor: 1.2,
        }
    }
}

/// A vehicle following shortest-travel-time trips across the road network,
/// re-rolling a fresh random destination whenever it arrives.
#[derive(Debug, Clone)]
pub struct Vehicle {
    id: VehicleId,
    /// Remaining edges of the current trip (reversed: next edge is `last`).
    route_rev: Vec<EdgeId>,
    /// Node at which the current edge was entered.
    entered_from: NodeId,
    /// Current edge being traversed.
    current_edge: EdgeId,
    /// Meters progressed along the current edge.
    progress_m: f64,
    /// Per-vehicle speed multiplier applied to the road-class design speed.
    speed_factor: f64,
    rng: SmallRng,
}

impl Vehicle {
    /// The vehicle's identifier.
    pub fn id(&self) -> VehicleId {
        self.id
    }

    /// Current position on the network.
    pub fn position(&self, network: &RoadNetwork) -> Point {
        let edge = network.edge(self.current_edge);
        network.position_on_edge(self.current_edge, self.entered_from, self.progress_m / edge.length)
    }

    /// Current travel direction in radians.
    pub fn heading(&self, network: &RoadNetwork) -> f64 {
        let edge = network.edge(self.current_edge);
        let from = network.node(self.entered_from).pos;
        let to = network.node(edge.other(self.entered_from)).pos;
        from.heading_to(to)
    }

    /// Current speed in meters per second.
    pub fn speed(&self, network: &RoadNetwork) -> f64 {
        network.edge(self.current_edge).class.speed_mps() * self.speed_factor
    }

    /// Advances the vehicle by `dt` seconds, rolling new trips as needed.
    fn advance(&mut self, network: &RoadNetwork, router: &mut Router<'_>, dt: f64) {
        let mut budget = dt;
        // Guard against pathological zero-length hops.
        let mut hops = 0usize;
        while budget > 1.0e-12 && hops < 10_000 {
            hops += 1;
            let edge = network.edge(self.current_edge);
            let speed = edge.class.speed_mps() * self.speed_factor;
            let remaining_m = edge.length - self.progress_m;
            let reachable_m = speed * budget;
            if reachable_m < remaining_m {
                self.progress_m += reachable_m;
                return;
            }
            // Consume the rest of this edge and hop to the next.
            budget -= remaining_m / speed;
            let arrived_at = edge.other(self.entered_from);
            match self.route_rev.pop() {
                Some(next_edge) => {
                    self.entered_from = arrived_at;
                    self.current_edge = next_edge;
                    self.progress_m = 0.0;
                }
                None => {
                    // Trip finished: start a new one from `arrived_at`.
                    self.start_trip(network, router, arrived_at);
                }
            }
        }
    }

    /// Routes a fresh trip from `origin` to a random destination and enters
    /// its first edge.
    fn start_trip(&mut self, network: &RoadNetwork, router: &mut Router<'_>, origin: NodeId) {
        let n = network.node_count() as u32;
        for _ in 0..16 {
            let dest = NodeId(self.rng.gen_range(0..n));
            if dest == origin {
                continue;
            }
            if let Some(mut path) = router.route(origin, dest) {
                if let Some(first) = path.first().copied() {
                    path.reverse();
                    path.pop(); // the first edge becomes current
                    self.route_rev = path;
                    self.entered_from = origin;
                    self.current_edge = first;
                    self.progress_m = 0.0;
                    return;
                }
            }
        }
        // Extremely defensive fallback (connected networks never get here):
        // shuttle along any incident edge.
        let eid = network.incident_edges(origin)[0];
        self.route_rev = Vec::new();
        self.entered_from = origin;
        self.current_edge = eid;
        self.progress_m = 0.0;
    }
}

/// A set of vehicles advancing in lock-step over a shared road network.
///
/// See the [crate docs](crate) for an example.
#[derive(Debug)]
pub struct Fleet<'a> {
    network: &'a RoadNetwork,
    router: Router<'a>,
    vehicles: Vec<Vehicle>,
    time: f64,
}

impl<'a> Fleet<'a> {
    /// Spawns `config.vehicles` vehicles at random junctions, each with a
    /// routed initial trip. Deterministic for a fixed config.
    pub fn new(network: &'a RoadNetwork, config: &FleetConfig) -> Fleet<'a> {
        Fleet::with_id_range(network, config, 0..config.vehicles as u32)
    }

    /// Spawns only the vehicles whose ids fall in `range`, each identical
    /// (same start, trips and speed) to the corresponding vehicle of the
    /// full fleet — per-vehicle state is seeded from the vehicle id, so a
    /// fleet can be sharded across threads without changing the trace.
    ///
    /// # Panics
    ///
    /// Panics when `range` exceeds `config.vehicles` or the speed-factor
    /// bounds are invalid.
    pub fn with_id_range(
        network: &'a RoadNetwork,
        config: &FleetConfig,
        range: std::ops::Range<u32>,
    ) -> Fleet<'a> {
        assert!(
            config.min_speed_factor > 0.0 && config.max_speed_factor >= config.min_speed_factor,
            "speed factors must be positive and ordered"
        );
        assert!(
            range.end as usize <= config.vehicles,
            "vehicle range {range:?} exceeds fleet size {}",
            config.vehicles
        );
        let mut router = Router::new(network);
        let mut vehicles = Vec::with_capacity(range.len());
        for i in range.map(|i| i as usize) {
            let mut rng = SmallRng::seed_from_u64(config.seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i as u64 + 1)));
            let origin = NodeId(rng.gen_range(0..network.node_count() as u32));
            let speed_factor = if config.max_speed_factor > config.min_speed_factor {
                rng.gen_range(config.min_speed_factor..config.max_speed_factor)
            } else {
                config.min_speed_factor
            };
            let mut v = Vehicle {
                id: VehicleId(i as u32),
                route_rev: Vec::new(),
                entered_from: origin,
                current_edge: network.incident_edges(origin)[0],
                progress_m: 0.0,
                speed_factor,
                rng,
            };
            v.start_trip(network, &mut router, origin);
            vehicles.push(v);
        }
        Fleet { network, router, vehicles, time: 0.0 }
    }

    /// The road network vehicles move on.
    pub fn network(&self) -> &RoadNetwork {
        self.network
    }

    /// Number of vehicles.
    pub fn len(&self) -> usize {
        self.vehicles.len()
    }

    /// True when the fleet has no vehicles.
    pub fn is_empty(&self) -> bool {
        self.vehicles.is_empty()
    }

    /// Current simulation time in seconds.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Read access to the vehicles.
    pub fn vehicles(&self) -> &[Vehicle] {
        &self.vehicles
    }

    /// Advances every vehicle by `dt` seconds and returns one sample per
    /// vehicle, taken *after* the move.
    ///
    /// # Panics
    ///
    /// Panics when `dt` is not a positive finite number.
    pub fn step(&mut self, dt: f64) -> Vec<TraceSample> {
        let mut out = Vec::with_capacity(self.vehicles.len());
        self.step_into(dt, &mut out);
        out
    }

    /// Allocation-reusing variant of [`Fleet::step`].
    pub fn step_into(&mut self, dt: f64, out: &mut Vec<TraceSample>) {
        assert!(dt.is_finite() && dt > 0.0, "dt must be positive and finite");
        self.time += dt;
        out.clear();
        for v in &mut self.vehicles {
            v.advance(self.network, &mut self.router, dt);
            out.push(TraceSample {
                time: self.time,
                vehicle: v.id,
                pos: v.position(self.network),
                heading: v.heading(self.network),
                speed: v.speed(self.network),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate_network, NetworkConfig};

    fn small_fleet(vehicles: usize, seed: u64) -> (crate::RoadNetwork, FleetConfig) {
        let net = generate_network(&NetworkConfig::small_test());
        (net, FleetConfig { vehicles, seed, ..FleetConfig::default() })
    }

    #[test]
    fn fleet_spawns_requested_vehicles() {
        let (net, cfg) = small_fleet(25, 3);
        let fleet = Fleet::new(&net, &cfg);
        assert_eq!(fleet.len(), 25);
        assert!(!fleet.is_empty());
    }

    #[test]
    fn samples_stay_on_the_network_bounding_box() {
        let (net, cfg) = small_fleet(20, 5);
        let bb = net.bounding_box();
        let mut fleet = Fleet::new(&net, &cfg);
        for _ in 0..300 {
            for s in fleet.step(1.0) {
                assert!(bb.contains_point(s.pos), "vehicle left the universe: {}", s.pos);
                assert!(s.speed > 0.0);
            }
        }
    }

    #[test]
    fn vehicles_actually_move() {
        let (net, cfg) = small_fleet(10, 9);
        let mut fleet = Fleet::new(&net, &cfg);
        let before: Vec<_> = fleet.step(1.0).iter().map(|s| s.pos).collect();
        // After a minute everyone has moved by at least 100 m of track.
        let mut samples = Vec::new();
        for _ in 0..60 {
            fleet.step_into(1.0, &mut samples);
        }
        let mut moved = 0;
        for (b, a) in before.iter().zip(samples.iter()) {
            if b.distance(a.pos) > 50.0 {
                moved += 1;
            }
        }
        assert!(moved >= 8, "only {moved}/10 vehicles moved");
    }

    #[test]
    fn trace_is_deterministic_for_fixed_seed() {
        let (net, cfg) = small_fleet(15, 11);
        let run = |cfg: &FleetConfig| {
            let mut fleet = Fleet::new(&net, cfg);
            let mut all = Vec::new();
            for _ in 0..120 {
                all.extend(fleet.step(1.0));
            }
            all
        };
        assert_eq!(run(&cfg), run(&cfg));
    }

    #[test]
    fn different_seeds_give_different_traces() {
        let (net, cfg) = small_fleet(15, 11);
        let cfg2 = FleetConfig { seed: 12, ..cfg.clone() };
        let mut f1 = Fleet::new(&net, &cfg);
        let mut f2 = Fleet::new(&net, &cfg2);
        let s1 = f1.step(1.0);
        let s2 = f2.step(1.0);
        assert_ne!(s1, s2);
    }

    #[test]
    fn movement_distance_respects_speed_limits() {
        let (net, cfg) = small_fleet(30, 13);
        let mut fleet = Fleet::new(&net, &cfg);
        let mut prev: Vec<_> = fleet.step(1.0).iter().map(|s| s.pos).collect();
        let max_speed = crate::RoadClass::Highway.speed_mps() * cfg.max_speed_factor;
        for _ in 0..120 {
            let now = fleet.step(1.0);
            for (p, s) in prev.iter().zip(now.iter()) {
                // Straight-line displacement can never exceed track distance.
                assert!(
                    p.distance(s.pos) <= max_speed * 1.0 + 1e-6,
                    "vehicle teleported: {} -> {}",
                    p,
                    s.pos
                );
            }
            prev = now.iter().map(|s| s.pos).collect();
        }
    }

    #[test]
    fn time_advances_with_steps() {
        let (net, cfg) = small_fleet(1, 2);
        let mut fleet = Fleet::new(&net, &cfg);
        assert_eq!(fleet.time(), 0.0);
        fleet.step(2.5);
        fleet.step(2.5);
        assert!((fleet.time() - 5.0).abs() < 1e-12);
        let s = fleet.step(1.0);
        assert!((s[0].time - 6.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "dt must be positive")]
    fn rejects_non_positive_dt() {
        let (net, cfg) = small_fleet(1, 2);
        let mut fleet = Fleet::new(&net, &cfg);
        fleet.step(0.0);
    }

    #[test]
    fn heading_matches_displacement_direction() {
        let (net, cfg) = small_fleet(5, 21);
        let mut fleet = Fleet::new(&net, &cfg);
        let a = fleet.step(0.5);
        let b = fleet.step(0.5);
        for (s0, s1) in a.iter().zip(b.iter()) {
            let d = s0.pos.distance(s1.pos);
            // Only check when the vehicle stayed on one edge (heading constant
            // and displacement meaningful).
            if d > 1.0 && (s0.heading - s1.heading).abs() < 1e-9 {
                let observed = s0.pos.heading_to(s1.pos);
                let diff = sa_geometry::normalize_angle(observed - s1.heading).abs();
                assert!(diff < 1e-6, "heading {} vs displacement {}", s1.heading, observed);
            }
        }
    }
}

#[cfg(test)]
mod shard_tests {
    use super::*;
    use crate::{generate_network, NetworkConfig};

    #[test]
    fn sharded_fleets_reproduce_the_full_trace() {
        let net = generate_network(&NetworkConfig::small_test());
        let cfg = FleetConfig { vehicles: 12, seed: 77, ..FleetConfig::default() };
        let mut full = Fleet::new(&net, &cfg);
        let mut shard_a = Fleet::with_id_range(&net, &cfg, 0..5);
        let mut shard_b = Fleet::with_id_range(&net, &cfg, 5..12);
        for _ in 0..60 {
            let f = full.step(1.0);
            let a = shard_a.step(1.0);
            let b = shard_b.step(1.0);
            let merged: Vec<TraceSample> = a.into_iter().chain(b).collect();
            assert_eq!(f, merged);
        }
    }

    #[test]
    #[should_panic(expected = "exceeds fleet size")]
    fn range_beyond_fleet_size_panics() {
        let net = generate_network(&NetworkConfig::small_test());
        let cfg = FleetConfig { vehicles: 3, seed: 1, ..FleetConfig::default() };
        let _ = Fleet::with_id_range(&net, &cfg, 0..4);
    }
}
