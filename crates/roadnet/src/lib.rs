//! Road-network mobility simulator.
//!
//! The paper evaluates on traces of 10,000 vehicles moving for one hour on
//! the Atlanta road network (~1000 km², USGS maps). This crate is the
//! self-contained substitution documented in `DESIGN.md` §4: a **seeded
//! synthetic hierarchical road network** plus a trip-structured vehicle
//! mobility model that produces deterministic, high-frequency position
//! traces.
//!
//! Pipeline:
//!
//! 1. [`NetworkConfig`] → [`generate_network`] → [`RoadNetwork`] — a jittered
//!    lattice of junctions connected by highway / arterial / local road
//!    segments with per-class speed limits,
//! 2. [`Router`] — Dijkstra shortest-travel-time trip routing,
//! 3. [`Fleet`] — a set of [`Vehicle`]s that follow routed trips, re-rolling
//!    a new destination on arrival,
//! 4. [`Fleet::step`] — advances all vehicles by one sample period and
//!    reports a [`TraceSample`] per vehicle.
//!
//! Traces are streamed rather than materialized: a paper-scale run
//! (10,000 vehicles × 1 h × 1 Hz = 36 M samples) never needs to reside in
//! memory.
//!
//! # Example
//!
//! ```
//! use sa_roadnet::{generate_network, Fleet, FleetConfig, NetworkConfig};
//!
//! let network = generate_network(&NetworkConfig::small_test());
//! let mut fleet = Fleet::new(&network, &FleetConfig { vehicles: 5, seed: 42, ..FleetConfig::default() });
//! let samples = fleet.step(1.0);
//! assert_eq!(samples.len(), 5);
//! for s in &samples {
//!     assert!(network.bounding_box().contains_point(s.pos));
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fleet;
mod generator;
mod graph;
mod route;
mod trace;

pub use fleet::{Fleet, FleetConfig, TraceSample, Vehicle, VehicleId};
pub use generator::{generate_network, NetworkConfig};
pub use graph::{EdgeId, NodeId, RoadClass, RoadEdge, RoadNetwork, RoadNode};
pub use route::Router;
pub use trace::{TraceError, TraceLog};
