//! Trace recording and replay: materialize a fleet's samples into a
//! [`TraceLog`] that can be saved to / loaded from a simple CSV format,
//! summarized, and replayed step by step — useful for debugging a specific
//! run, sharing a workload, or feeding external tools.

use crate::{Fleet, FleetConfig, RoadNetwork, TraceSample, VehicleId};
use sa_geometry::{Point, Rect};
use std::fmt;
use std::io::{BufRead, BufReader, Read, Write};

/// A materialized mobility trace: samples in step-major order (all vehicles
/// of step 0, then step 1, …).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TraceLog {
    samples: Vec<TraceSample>,
    vehicles: u32,
    steps: u32,
}

/// Errors produced when parsing a serialized trace.
#[derive(Debug)]
pub enum TraceError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed line, with its 1-based line number.
    Parse {
        /// 1-based line number of the offending record.
        line: usize,
        /// Description of what failed to parse.
        reason: String,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace i/o error: {e}"),
            TraceError::Parse { line, reason } => {
                write!(f, "trace parse error at line {line}: {reason}")
            }
        }
    }
}

impl std::error::Error for TraceError {}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> TraceError {
        TraceError::Io(e)
    }
}

impl TraceLog {
    /// Records `steps` steps of a fresh fleet built from `config`.
    ///
    /// # Panics
    ///
    /// Panics when `steps` is zero or `dt` is not positive.
    pub fn record(
        network: &RoadNetwork,
        config: &FleetConfig,
        steps: u32,
        dt: f64,
    ) -> TraceLog {
        assert!(steps > 0, "a trace needs at least one step");
        let mut fleet = Fleet::new(network, config);
        let mut samples = Vec::with_capacity(steps as usize * config.vehicles);
        let mut buf = Vec::new();
        for _ in 0..steps {
            fleet.step_into(dt, &mut buf);
            samples.extend_from_slice(&buf);
        }
        TraceLog { samples, vehicles: config.vehicles as u32, steps }
    }

    /// All samples, step-major.
    pub fn samples(&self) -> &[TraceSample] {
        &self.samples
    }

    /// Number of vehicles per step.
    pub fn vehicles(&self) -> u32 {
        self.vehicles
    }

    /// Number of recorded steps.
    pub fn steps(&self) -> u32 {
        self.steps
    }

    /// The samples of one step (all vehicles), or an empty slice out of
    /// range.
    pub fn step(&self, step: u32) -> &[TraceSample] {
        if step >= self.steps {
            return &[];
        }
        let per = self.vehicles as usize;
        let start = step as usize * per;
        &self.samples[start..start + per]
    }

    /// One vehicle's positions across all steps.
    pub fn trajectory(&self, vehicle: VehicleId) -> Vec<Point> {
        (0..self.steps)
            .filter_map(|s| {
                self.step(s)
                    .iter()
                    .find(|sample| sample.vehicle == vehicle)
                    .map(|sample| sample.pos)
            })
            .collect()
    }

    /// The bounding box of every sampled position, or `None` for an empty
    /// trace.
    pub fn bounding_box(&self) -> Option<Rect> {
        let mut it = self.samples.iter();
        let first = it.next()?;
        Some(it.fold(Rect::point(first.pos), |acc, s| acc.extended_to(s.pos)))
    }

    /// Total distance driven by all vehicles (sum of per-step straight-line
    /// displacements), in meters.
    pub fn total_distance_m(&self) -> f64 {
        let mut total = 0.0;
        for v in 0..self.vehicles {
            let traj = self.trajectory(VehicleId(v));
            total += traj.windows(2).map(|w| w[0].distance(w[1])).sum::<f64>();
        }
        total
    }

    /// Serializes to the CSV wire format:
    /// `step,vehicle,x,y,heading,speed` with a header line.
    ///
    /// # Errors
    ///
    /// Propagates writer failures.
    pub fn save<W: Write>(&self, mut writer: W) -> std::io::Result<()> {
        writeln!(writer, "step,vehicle,x,y,heading,speed")?;
        let per = self.vehicles as usize;
        for (i, s) in self.samples.iter().enumerate() {
            writeln!(
                writer,
                "{},{},{:.3},{:.3},{:.6},{:.3}",
                i / per,
                s.vehicle.0,
                s.pos.x,
                s.pos.y,
                s.heading,
                s.speed
            )?;
        }
        Ok(())
    }

    /// Parses the CSV wire format produced by [`TraceLog::save`].
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Parse`] on malformed records (wrong arity,
    /// unparsable numbers, inconsistent per-step vehicle counts) and
    /// [`TraceError::Io`] on reader failures.
    pub fn load<R: Read>(reader: R) -> Result<TraceLog, TraceError> {
        let reader = BufReader::new(reader);
        let mut samples: Vec<TraceSample> = Vec::new();
        let mut vehicles_per_step: Option<u32> = None;
        let mut current_step: i64 = -1;
        let mut count_in_step = 0u32;
        for (idx, line) in reader.lines().enumerate() {
            let line = line?;
            let lineno = idx + 1;
            if idx == 0 {
                if !line.starts_with("step,") {
                    return Err(TraceError::Parse {
                        line: lineno,
                        reason: "missing header".into(),
                    });
                }
                continue;
            }
            if line.trim().is_empty() {
                continue;
            }
            let fields: Vec<&str> = line.split(',').collect();
            if fields.len() != 6 {
                return Err(TraceError::Parse {
                    line: lineno,
                    reason: format!("expected 6 fields, found {}", fields.len()),
                });
            }
            let parse_f = |s: &str, what: &str| -> Result<f64, TraceError> {
                s.parse().map_err(|_| TraceError::Parse {
                    line: lineno,
                    reason: format!("bad {what}: {s:?}"),
                })
            };
            let step: u32 = fields[0].parse().map_err(|_| TraceError::Parse {
                line: lineno,
                reason: format!("bad step: {:?}", fields[0]),
            })?;
            let vehicle: u32 = fields[1].parse().map_err(|_| TraceError::Parse {
                line: lineno,
                reason: format!("bad vehicle: {:?}", fields[1]),
            })?;
            let x = parse_f(fields[2], "x")?;
            let y = parse_f(fields[3], "y")?;
            let heading = parse_f(fields[4], "heading")?;
            let speed = parse_f(fields[5], "speed")?;

            if step as i64 != current_step {
                if let Some(v) = vehicles_per_step {
                    if current_step >= 0 && count_in_step != v {
                        return Err(TraceError::Parse {
                            line: lineno,
                            reason: format!(
                                "step {current_step} has {count_in_step} vehicles, expected {v}"
                            ),
                        });
                    }
                } else if current_step >= 0 {
                    vehicles_per_step = Some(count_in_step);
                }
                current_step = step as i64;
                count_in_step = 0;
            }
            count_in_step += 1;
            samples.push(TraceSample {
                time: step as f64,
                vehicle: VehicleId(vehicle),
                pos: Point::new(x, y),
                heading,
                speed,
            });
        }
        let vehicles = vehicles_per_step.unwrap_or(count_in_step);
        if vehicles == 0 {
            return Ok(TraceLog::default());
        }
        if !samples.len().is_multiple_of(vehicles as usize) {
            return Err(TraceError::Parse {
                line: 0,
                reason: "sample count is not a multiple of the vehicle count".into(),
            });
        }
        let steps = (samples.len() / vehicles as usize) as u32;
        Ok(TraceLog { samples, vehicles, steps })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate_network, NetworkConfig};

    fn recorded() -> TraceLog {
        let net = generate_network(&NetworkConfig::small_test());
        let config = FleetConfig { vehicles: 5, seed: 21, ..FleetConfig::default() };
        TraceLog::record(&net, &config, 40, 1.0)
    }

    #[test]
    fn record_has_expected_shape() {
        let log = recorded();
        assert_eq!(log.vehicles(), 5);
        assert_eq!(log.steps(), 40);
        assert_eq!(log.samples().len(), 200);
        assert_eq!(log.step(0).len(), 5);
        assert_eq!(log.step(40).len(), 0, "out of range step is empty");
    }

    #[test]
    fn trajectories_are_continuous() {
        let log = recorded();
        let traj = log.trajectory(VehicleId(2));
        assert_eq!(traj.len(), 40);
        for w in traj.windows(2) {
            assert!(w[0].distance(w[1]) < 40.0, "jump between steps");
        }
        assert!(log.total_distance_m() > 100.0);
    }

    #[test]
    fn save_load_round_trips_positions() {
        let log = recorded();
        let mut bytes = Vec::new();
        log.save(&mut bytes).unwrap();
        let loaded = TraceLog::load(bytes.as_slice()).unwrap();
        assert_eq!(loaded.vehicles(), log.vehicles());
        assert_eq!(loaded.steps(), log.steps());
        for (a, b) in log.samples().iter().zip(loaded.samples()) {
            assert_eq!(a.vehicle, b.vehicle);
            assert!(a.pos.distance(b.pos) < 0.01, "positions round-trip at mm precision");
            assert!((a.speed - b.speed).abs() < 0.01);
        }
    }

    #[test]
    fn load_rejects_missing_header() {
        let err = TraceLog::load("1,2,3,4,5,6\n".as_bytes()).unwrap_err();
        assert!(matches!(err, TraceError::Parse { line: 1, .. }), "{err}");
    }

    #[test]
    fn load_rejects_bad_arity_and_numbers() {
        let header = "step,vehicle,x,y,heading,speed\n";
        let short = format!("{header}0,0,1.0,2.0,0.5\n");
        assert!(TraceLog::load(short.as_bytes()).is_err());
        let bad_num = format!("{header}0,0,abc,2.0,0.5,3.0\n");
        let err = TraceLog::load(bad_num.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("bad x"), "{err}");
    }

    #[test]
    fn load_rejects_inconsistent_vehicle_counts() {
        let text = "step,vehicle,x,y,heading,speed\n\
                    0,0,1.0,1.0,0.0,1.0\n\
                    0,1,2.0,2.0,0.0,1.0\n\
                    1,0,1.5,1.5,0.0,1.0\n\
                    2,0,2.0,2.0,0.0,1.0\n\
                    2,1,2.5,2.5,0.0,1.0\n";
        let err = TraceLog::load(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("expected 2"), "{err}");
    }

    #[test]
    fn empty_trace_loads_as_default() {
        let log = TraceLog::load("step,vehicle,x,y,heading,speed\n".as_bytes()).unwrap();
        assert_eq!(log, TraceLog::default());
        assert!(log.bounding_box().is_none());
    }

    #[test]
    fn bounding_box_covers_all_samples() {
        let log = recorded();
        let bb = log.bounding_box().unwrap();
        for s in log.samples() {
            assert!(bb.contains_point(s.pos));
        }
    }
}
