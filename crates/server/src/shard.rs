//! Grid-cell sharding: worker threads, bounded job queues with explicit
//! backpressure, and the shard-local alarm indexes.
//!
//! The router maps every grid cell to one shard with the deterministic
//! [`shard_of_index`] function; a shard owns every alarm whose region
//! intersects one of its cells. Because a triggering alarm contains the
//! client's position — and therefore intersects the position's cell — the
//! owning shard can evaluate triggers and compute safe regions for its
//! cells entirely from its local index.
//!
//! Jobs reach workers through **bounded** channels. The router only ever
//! uses [`ShardPool::try_submit`]: when a shard's queue is full the
//! submission fails immediately and the router answers
//! `Response::Overloaded` instead of blocking behind a slow shard.

use crate::clock::SharedClock;
use crate::wire::{Request, Response};
use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use parking_lot::Mutex;
use sa_alarms::{AlarmId, AlarmIndex, SnapshotCache, SnapshotCell, SpatialAlarm, SubscriberId};
use sa_geometry::{Point, Rect};
use sa_obs::{Counter, Gauge, Registry};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Deterministic cell → shard mapping over flattened cell indexes.
pub fn shard_of_index(cell_index: u64, num_shards: usize) -> usize {
    (cell_index % num_shards as u64) as usize
}

/// One alarm as seen by a worker: global id plus the fields trigger
/// checks and safe-region computations consume.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlarmView {
    /// Global alarm id.
    pub id: AlarmId,
    /// The alarm's spatial region.
    pub region: Rect,
    /// True for public-scope alarms.
    pub public: bool,
    /// True when the alarm can fire for the queried subscriber.
    pub relevant: bool,
}

/// A shard-local [`AlarmIndex`] over the alarms intersecting the shard's
/// cells.
///
/// `AlarmIndex` requires a dense id space (ids double as vector indexes),
/// but a shard holds an arbitrary subset of the global alarms, so the
/// index relabels them with dense local ids and keeps the local ↔ global
/// mapping here. All public methods speak global ids.
#[derive(Debug)]
pub struct ShardIndex {
    index: AlarmIndex,
    to_global: Vec<AlarmId>,
    from_global: HashMap<AlarmId, AlarmId>,
}

impl ShardIndex {
    /// Builds the index over the given (globally-labelled) alarms in one
    /// STR bulk load (relabelling to dense local ids first).
    pub fn build(alarms: &[SpatialAlarm]) -> ShardIndex {
        let mut to_global = Vec::with_capacity(alarms.len());
        let mut from_global = HashMap::with_capacity(alarms.len());
        let local_alarms: Vec<SpatialAlarm> = alarms
            .iter()
            .enumerate()
            .map(|(i, a)| {
                let local = AlarmId(i as u64);
                to_global.push(a.id());
                from_global.insert(a.id(), local);
                SpatialAlarm::new(local, a.region(), a.target(), a.scope().clone())
            })
            .collect();
        ShardIndex { index: AlarmIndex::build(local_alarms), to_global, from_global }
    }

    /// Adds one alarm (next dense local id).
    pub fn install(&mut self, alarm: &SpatialAlarm) {
        let local = AlarmId(self.to_global.len() as u64);
        self.to_global.push(alarm.id());
        self.from_global.insert(alarm.id(), local);
        self.index.install(SpatialAlarm::new(
            local,
            alarm.region(),
            alarm.target(),
            alarm.scope().clone(),
        ));
    }

    /// Deactivates an alarm by global id. Returns false when this shard
    /// never owned it.
    pub fn deactivate(&mut self, global: AlarmId) -> bool {
        match self.from_global.get(&global) {
            Some(&local) => self.index.deactivate(local),
            None => false,
        }
    }

    /// Number of alarms ever installed in this shard.
    pub fn len(&self) -> usize {
        self.to_global.len()
    }

    /// True when the shard owns no alarms.
    pub fn is_empty(&self) -> bool {
        self.to_global.is_empty()
    }

    fn global(&self, local: AlarmId) -> AlarmId {
        self.to_global[local.0 as usize]
    }

    /// True when this shard tracks the given global id.
    pub fn owns(&self, global: AlarmId) -> bool {
        self.from_global.contains_key(&global)
    }

    /// Reconstructs the shard's alarms with their **global** ids — the
    /// input `build` would need to reproduce this shard. Used by the
    /// versioned layer's generation merges.
    fn global_alarms(&self) -> Vec<SpatialAlarm> {
        self.index
            .alarms()
            .iter()
            .map(|a| SpatialAlarm::new(self.global(a.id()), a.region(), a.target(), a.scope().clone()))
            .collect()
    }

    /// Global ids of the relevant alarms whose regions *strictly* contain
    /// `pos` — the server-side trigger check (the caller still filters by
    /// fired state).
    pub fn triggering_at(&self, user: SubscriberId, pos: Point) -> Vec<AlarmId> {
        let mut out = Vec::new();
        self.for_each_triggering(user, pos, |id| out.push(id));
        out
    }

    /// Visits the global id of every relevant alarm triggering at `pos`
    /// without allocating — the worker hot path's trigger check. Callers
    /// push hits into a reused scratch buffer so the steady-state (no
    /// triggering alarms) update touches the heap zero times.
    pub fn for_each_triggering(&self, user: SubscriberId, pos: Point, mut f: impl FnMut(AlarmId)) {
        self.index.relevant_at_visit(user, pos, |a| {
            if a.triggers_at(pos) {
                f(self.global(a.id()));
            }
        });
    }

    /// Views of the alarms relevant to `user` intersecting `area` — the
    /// obstacle candidates for a safe-region computation.
    pub fn relevant_intersecting(&self, user: SubscriberId, area: Rect) -> Vec<AlarmView> {
        self.index
            .relevant_intersecting(user, area)
            .into_iter()
            .map(|a| AlarmView {
                id: self.global(a.id()),
                region: a.region(),
                public: a.is_public(),
                relevant: true,
            })
            .collect()
    }

    /// Views of **all** alarms intersecting `area` (the OPT push payload),
    /// with per-user relevance flags.
    pub fn all_intersecting(&self, user: SubscriberId, area: Rect) -> Vec<AlarmView> {
        self.index
            .all_intersecting(area)
            .into_iter()
            .map(|a| AlarmView {
                id: self.global(a.id()),
                region: a.region(),
                public: a.is_public(),
                relevant: a.is_relevant_to(user),
            })
            .collect()
    }
}

/// One immutable generation of a shard's index: a bulk-loaded
/// [`ShardIndex`] base plus a small delta of globally-labelled alarms
/// installed since, and the global ids deactivated since. The shard
/// worker's trigger checks read a pinned generation lock-free while the
/// install path builds the next one.
#[derive(Debug)]
pub struct ShardSnapshot {
    base: Arc<ShardIndex>,
    delta: Vec<SpatialAlarm>,
    dead: HashSet<AlarmId>,
}

impl ShardSnapshot {
    /// Number of alarms this generation tracks (base + delta; alarms
    /// dropped by a generation merge no longer count).
    pub fn len(&self) -> usize {
        self.base.len() + self.delta.len()
    }

    /// True when the generation tracks no alarms.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True unless `global` was deactivated in this generation.
    fn live(&self, global: AlarmId) -> bool {
        self.dead.is_empty() || !self.dead.contains(&global)
    }

    fn owns(&self, global: AlarmId) -> bool {
        self.base.owns(global) || self.delta.iter().any(|a| a.id() == global)
    }

    /// Visits the global id of every relevant alarm triggering at `pos`
    /// without allocating — the worker hot path. See
    /// [`ShardIndex::for_each_triggering`].
    pub fn for_each_triggering(&self, user: SubscriberId, pos: Point, mut f: impl FnMut(AlarmId)) {
        self.base.for_each_triggering(user, pos, |gid| {
            if self.live(gid) {
                f(gid);
            }
        });
        for a in &self.delta {
            if self.live(a.id()) && a.is_relevant_to(user) && a.triggers_at(pos) {
                f(a.id());
            }
        }
    }

    /// Global ids of the relevant alarms triggering at `pos` (allocating
    /// convenience over [`ShardSnapshot::for_each_triggering`]).
    pub fn triggering_at(&self, user: SubscriberId, pos: Point) -> Vec<AlarmId> {
        let mut out = Vec::new();
        self.for_each_triggering(user, pos, |id| out.push(id));
        out
    }

    /// Views of the alarms relevant to `user` intersecting `area`.
    pub fn relevant_intersecting(&self, user: SubscriberId, area: Rect) -> Vec<AlarmView> {
        let mut views: Vec<AlarmView> = self
            .base
            .relevant_intersecting(user, area)
            .into_iter()
            .filter(|v| self.live(v.id))
            .collect();
        for a in &self.delta {
            if self.live(a.id()) && a.is_relevant_to(user) && a.region().intersects(&area) {
                views.push(AlarmView {
                    id: a.id(),
                    region: a.region(),
                    public: a.is_public(),
                    relevant: true,
                });
            }
        }
        views
    }

    /// Views of **all** alarms intersecting `area`, with per-user
    /// relevance flags.
    pub fn all_intersecting(&self, user: SubscriberId, area: Rect) -> Vec<AlarmView> {
        let mut views: Vec<AlarmView> = self
            .base
            .all_intersecting(user, area)
            .into_iter()
            .filter(|v| self.live(v.id))
            .collect();
        for a in &self.delta {
            if self.live(a.id()) && a.region().intersects(&area) {
                views.push(AlarmView {
                    id: a.id(),
                    region: a.region(),
                    public: a.is_public(),
                    relevant: a.is_relevant_to(user),
                });
            }
        }
        views
    }
}

/// How many delta entries (or dead ids) a shard generation tolerates
/// before the writer folds them into a rebuilt (bulk-loaded) base.
const SHARD_MERGE_THRESHOLD: usize = 64;

/// Epoch-versioned shard index: the churn-tolerant wrapper the server
/// mounts per shard. Readers pin a [`ShardSnapshot`] generation through a
/// per-thread [`SnapshotCache`] (lock-free, allocation-free on the steady
/// state); [`VersionedShardIndex::install`] and
/// [`VersionedShardIndex::deactivate`] serialize on an internal mutex and
/// publish the next generation with an `Arc` swap.
#[derive(Debug)]
pub struct VersionedShardIndex {
    cell: SnapshotCell<ShardSnapshot>,
    /// Global ids ever deactivated (never cleared: generation merges drop
    /// the dead fringe, and repeated deactivates must stay no-ops).
    retired: Mutex<HashSet<AlarmId>>,
    merge_threshold: usize,
}

impl VersionedShardIndex {
    /// Builds the first generation over the given globally-labelled
    /// alarms (one STR bulk load).
    pub fn build(alarms: &[SpatialAlarm]) -> VersionedShardIndex {
        VersionedShardIndex::with_merge_threshold(alarms, SHARD_MERGE_THRESHOLD)
    }

    /// Like [`VersionedShardIndex::build`] with an explicit merge
    /// threshold (tests use small values to force generation merges).
    pub fn with_merge_threshold(
        alarms: &[SpatialAlarm],
        merge_threshold: usize,
    ) -> VersionedShardIndex {
        VersionedShardIndex {
            cell: SnapshotCell::new(ShardSnapshot {
                base: Arc::new(ShardIndex::build(alarms)),
                delta: Vec::new(),
                dead: HashSet::new(),
            }),
            retired: Mutex::new(HashSet::new()),
            merge_threshold: merge_threshold.max(1),
        }
    }

    /// Pins and returns the current generation.
    pub fn snapshot(&self) -> Arc<ShardSnapshot> {
        self.cell.load()
    }

    /// Hot-path read through a per-thread cache: no lock and no
    /// allocation while no writer has published.
    pub fn load_cached<'a>(&self, cache: &'a mut SnapshotCache<ShardSnapshot>) -> &'a ShardSnapshot {
        self.cell.load_cached(cache)
    }

    /// Adds one globally-labelled alarm to the next generation.
    pub fn install(&self, alarm: &SpatialAlarm) {
        let retired = self.retired.lock();
        let cur = self.cell.load();
        let next = if cur.delta.len() + 1 >= self.merge_threshold {
            let mut alarms = cur.base.global_alarms();
            alarms.extend(cur.delta.iter().cloned());
            alarms.push(alarm.clone());
            alarms.retain(|a| !retired.contains(&a.id()));
            ShardSnapshot {
                base: Arc::new(ShardIndex::build(&alarms)),
                delta: Vec::new(),
                dead: HashSet::new(),
            }
        } else {
            let mut delta = cur.delta.clone();
            delta.push(alarm.clone());
            ShardSnapshot { base: Arc::clone(&cur.base), delta, dead: cur.dead.clone() }
        };
        self.cell.publish(Arc::new(next));
    }

    /// Deactivates an alarm by global id in the next generation. Returns
    /// false when this shard never owned it or it was already
    /// deactivated.
    pub fn deactivate(&self, global: AlarmId) -> bool {
        let mut retired = self.retired.lock();
        let cur = self.cell.load();
        if !cur.owns(global) || !retired.insert(global) {
            return false;
        }
        let next = if cur.dead.len() + 1 >= self.merge_threshold {
            let mut alarms = cur.base.global_alarms();
            alarms.extend(cur.delta.iter().cloned());
            alarms.retain(|a| !retired.contains(&a.id()));
            ShardSnapshot {
                base: Arc::new(ShardIndex::build(&alarms)),
                delta: Vec::new(),
                dead: HashSet::new(),
            }
        } else {
            let mut dead = cur.dead.clone();
            dead.insert(global);
            ShardSnapshot { base: Arc::clone(&cur.base), delta: cur.delta.clone(), dead }
        };
        self.cell.publish(Arc::new(next));
        true
    }
}

/// One update of a batch sliced out for a single shard: the batch-wide
/// position of the update (so the router can reassemble replies in
/// order) plus the session and the per-update request.
#[derive(Debug)]
pub struct ShardUpdate {
    /// Index of this update in the original batch frame.
    pub index: u32,
    /// The session the update belongs to.
    pub session: u32,
    /// The per-update request (a `LocationUpdate` in practice).
    pub req: Request,
}

/// What a shard worker is asked to do.
#[derive(Debug)]
pub enum JobPayload {
    /// One decoded request on one session — the per-request path.
    Single {
        /// The session the request arrived on.
        session: u32,
        /// The decoded request.
        req: Request,
    },
    /// The shard's slice of a [`crate::wire::Request::Batch`]: every
    /// update whose cell this shard owns, in batch order. The worker
    /// processes them back to back and answers once.
    Batch(Vec<ShardUpdate>),
}

/// One reply unit a worker sends back: the batch index the responses
/// belong to (0 for single-request jobs) and the full response sequence
/// of that update.
pub type JobReply = Vec<(u32, Vec<Response>)>;

/// One queued unit of shard work: a payload plus the reply channel the
/// worker answers on.
#[derive(Debug)]
pub struct Job {
    /// What to do.
    pub payload: JobPayload,
    /// Where the worker sends the indexed response sequences.
    pub reply: Sender<JobReply>,
    /// When the request entered the router, in the server clock's
    /// nanoseconds — stamped **once** at router entry and threaded
    /// through, so the hot path pays a single clock read per request
    /// instead of one per job hop. The dispatch-wait histogram
    /// therefore measures router-entry→worker-pickup (queue wait plus
    /// the router's constant-time fan-out work).
    pub enqueued_at_ns: u64,
    /// Pre-allocated reply buffers the worker fills and sends back over
    /// `reply` instead of allocating its own. The router's reply-slot
    /// pool seeds this with warmed (already-at-capacity) vectors and
    /// recycles them once the reply is consumed, making the steady-state
    /// single-update round trip allocation-free. An empty scratch is
    /// always valid — the worker falls back to fresh vectors.
    pub scratch: JobReply,
}

impl Job {
    /// A single-request job carrying the router's entry timestamp.
    pub fn new(session: u32, req: Request, reply: Sender<JobReply>, entered_ns: u64) -> Job {
        Job {
            payload: JobPayload::Single { session, req },
            reply,
            enqueued_at_ns: entered_ns,
            scratch: Vec::new(),
        }
    }

    /// A batch-slice job carrying the router's entry timestamp.
    pub fn batch(updates: Vec<ShardUpdate>, reply: Sender<JobReply>, entered_ns: u64) -> Job {
        Job {
            payload: JobPayload::Batch(updates),
            reply,
            enqueued_at_ns: entered_ns,
            scratch: Vec::new(),
        }
    }

    /// The single request inside a [`JobPayload::Single`] job, if any.
    pub fn request(&self) -> Option<&Request> {
        match &self.payload {
            JobPayload::Single { req, .. } => Some(req),
            JobPayload::Batch(_) => None,
        }
    }

    /// Number of position updates this job carries.
    pub fn update_count(&self) -> usize {
        match &self.payload {
            JobPayload::Single { .. } => 1,
            JobPayload::Batch(updates) => updates.len(),
        }
    }
}

/// Per-shard instrumentation handles.
#[derive(Debug, Clone)]
struct ShardMeter {
    /// Jobs currently sitting in (or being drained from) the queue.
    depth: Gauge,
    /// Submissions bounced because the queue was at capacity.
    queue_full: Counter,
}

/// Submission failure modes of [`ShardPool::try_submit`].
#[derive(Debug)]
pub enum SubmitError {
    /// The shard's bounded queue is full — answer `Overloaded`.
    Full(Job),
    /// The shard's worker is gone (pool shut down).
    Disconnected(Job),
}

/// The worker shards: one bounded queue and (normally) one thread each.
///
/// Instrumentation registered on the pool's registry: a
/// `sa_shard_queue_depth{shard=…}` gauge and a
/// `sa_shard_queue_full_total{shard=…}` counter per shard — so an
/// `Overloaded` bounce is attributable to the one shard that was
/// saturated — plus one `sa_shard_dispatch_wait_ns` histogram of the
/// submit-to-pickup queue wait.
#[derive(Debug)]
pub struct ShardPool {
    senders: Vec<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    meters: Vec<ShardMeter>,
}

fn shard_meters(num_shards: usize, registry: &Registry) -> Vec<ShardMeter> {
    (0..num_shards)
        .map(|shard| {
            let label = shard.to_string();
            ShardMeter {
                depth: registry.gauge_with("sa_shard_queue_depth", &[("shard", &label)]),
                queue_full: registry
                    .counter_with("sa_shard_queue_full_total", &[("shard", &label)]),
            }
        })
        .collect()
}

impl ShardPool {
    /// Spawns `num_shards` workers, each draining its own queue of
    /// capacity `queue_capacity` through `handler(shard, job)`, with
    /// queue instrumentation registered on `registry`. Queue-wait
    /// measurements read `clock` — the same clock that stamped the jobs.
    ///
    /// # Panics
    ///
    /// Panics when `num_shards` or `queue_capacity` is zero.
    pub fn spawn<H>(
        num_shards: usize,
        queue_capacity: usize,
        handler: Arc<H>,
        registry: &Registry,
        clock: SharedClock,
    ) -> ShardPool
    where
        H: Fn(usize, Job) + Send + Sync + 'static,
    {
        assert!(num_shards > 0, "need at least one shard");
        assert!(queue_capacity > 0, "queues must hold at least one job");
        let meters = shard_meters(num_shards, registry);
        let dispatch_wait = registry.histogram("sa_shard_dispatch_wait_ns");
        let mut senders = Vec::with_capacity(num_shards);
        let mut workers = Vec::with_capacity(num_shards);
        for (shard, meter) in meters.iter().enumerate() {
            let (tx, rx): (Sender<Job>, Receiver<Job>) = bounded(queue_capacity);
            senders.push(tx);
            let handler = Arc::clone(&handler);
            let depth = meter.depth.clone();
            let dispatch_wait = dispatch_wait.clone();
            let clock = Arc::clone(&clock);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("sa-shard-{shard}"))
                    .spawn(move || {
                        for job in rx.iter() {
                            depth.dec();
                            dispatch_wait.record_duration(clock.elapsed_since(job.enqueued_at_ns));
                            handler(shard, job);
                        }
                    })
                    .expect("spawning a shard worker"),
            );
        }
        ShardPool { senders, workers, meters }
    }

    /// A pool with queues but **no worker threads** — nothing ever drains
    /// the queues, so `queue_capacity` submissions fill a shard. Only
    /// useful to test backpressure.
    pub fn without_workers(
        num_shards: usize,
        queue_capacity: usize,
        registry: &Registry,
    ) -> ShardPool {
        assert!(num_shards > 0, "need at least one shard");
        assert!(queue_capacity > 0, "queues must hold at least one job");
        let meters = shard_meters(num_shards, registry);
        let mut senders = Vec::with_capacity(num_shards);
        let mut workers = Vec::new();
        for _ in 0..num_shards {
            let (tx, rx): (Sender<Job>, Receiver<Job>) = bounded(queue_capacity);
            // Park the receiver in a thread that never reads, keeping the
            // channel connected so try_send reports Full, not Disconnected.
            senders.push(tx);
            workers.push(
                std::thread::Builder::new()
                    .spawn(move || {
                        let _rx = rx;
                        std::thread::park();
                    })
                    .expect("spawning a parked holder"),
            );
        }
        ShardPool { senders, workers, meters }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.senders.len()
    }

    /// Queue depth of one shard (for tests and stats).
    pub fn queue_len(&self, shard: usize) -> usize {
        self.senders[shard].len()
    }

    /// Non-blocking submission. The job keeps the router-entry
    /// timestamp it was built with — no re-stamp, no extra clock read on
    /// the hot path.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Full`] when the shard's queue is at capacity (the
    /// router converts this to `Overloaded`), [`SubmitError::Disconnected`]
    /// after shutdown.
    ///
    /// # Panics
    ///
    /// Panics when `shard` is out of range.
    // The large Err is the point: a bounced job comes back by value so
    // the router can reclaim its pooled scratch buffers, and the error
    // path (queue full / shutdown) is cold by construction.
    #[allow(clippy::result_large_err)]
    pub fn try_submit(&self, shard: usize, job: Job) -> Result<(), SubmitError> {
        match self.senders[shard].try_send(job) {
            Ok(()) => {
                self.meters[shard].depth.inc();
                Ok(())
            }
            Err(TrySendError::Full(job)) => {
                self.meters[shard].queue_full.inc();
                Err(SubmitError::Full(job))
            }
            Err(TrySendError::Disconnected(job)) => Err(SubmitError::Disconnected(job)),
        }
    }

    /// Drops the queues and joins the workers. Workers holding queued
    /// jobs finish them first; parked no-worker holders are unparked.
    pub fn shutdown(self) {
        drop(self.senders);
        for worker in &self.workers {
            worker.thread().unpark();
        }
        for worker in self.workers {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::StrategySpec;
    use crossbeam::channel::unbounded;
    use sa_alarms::{AlarmScope, AlarmTarget};

    fn alarm(id: u64, min: f64, public: bool) -> SpatialAlarm {
        let scope = if public {
            AlarmScope::Public { owner: SubscriberId(0) }
        } else {
            AlarmScope::Private { owner: SubscriberId(1) }
        };
        SpatialAlarm::new(
            AlarmId(id),
            Rect::new(min, min, min + 100.0, min + 100.0).unwrap(),
            AlarmTarget::Static(Point::new(min + 50.0, min + 50.0)),
            scope,
        )
    }

    #[test]
    fn shard_index_speaks_global_ids() {
        // Sparse global ids 7 and 42: a plain AlarmIndex would reject them.
        let alarms = vec![alarm(7, 0.0, true), alarm(42, 1_000.0, false)];
        let shard = ShardIndex::build(&alarms);
        assert_eq!(shard.len(), 2);
        let hit = shard.triggering_at(SubscriberId(9), Point::new(50.0, 50.0));
        assert_eq!(hit, vec![AlarmId(7)]);
        // The private alarm only triggers for its owner.
        assert!(shard.triggering_at(SubscriberId(9), Point::new(1_050.0, 1_050.0)).is_empty());
        assert_eq!(
            shard.triggering_at(SubscriberId(1), Point::new(1_050.0, 1_050.0)),
            vec![AlarmId(42)]
        );
        let area = Rect::new(0.0, 0.0, 2_000.0, 2_000.0).unwrap();
        let all = shard.all_intersecting(SubscriberId(9), area);
        assert_eq!(all.len(), 2);
        assert!(all.iter().any(|v| v.id == AlarmId(42) && !v.relevant && !v.public));
        assert_eq!(shard.relevant_intersecting(SubscriberId(9), area).len(), 1);
    }

    #[test]
    fn shard_index_deactivation() {
        let alarms = vec![alarm(7, 0.0, true)];
        let mut shard = ShardIndex::build(&alarms);
        assert!(!shard.is_empty());
        assert!(shard.deactivate(AlarmId(7)));
        assert!(!shard.deactivate(AlarmId(7)), "second deactivation is a no-op");
        assert!(!shard.deactivate(AlarmId(99)), "unknown ids are not owned");
        assert!(shard.triggering_at(SubscriberId(9), Point::new(50.0, 50.0)).is_empty());
    }

    #[test]
    fn versioned_shard_pins_generations_and_tracks_churn() {
        let v = VersionedShardIndex::with_merge_threshold(&[alarm(7, 0.0, true)], 3);
        let pinned = v.snapshot();
        // Churn past the merge threshold with sparse global ids.
        for (i, min) in [(20u64, 1_000.0), (31, 2_000.0), (55, 3_000.0), (90, 4_000.0)] {
            v.install(&alarm(i, min, true));
        }
        assert!(v.deactivate(AlarmId(31)));
        assert!(!v.deactivate(AlarmId(31)), "second deactivation is a no-op");
        assert!(!v.deactivate(AlarmId(999)), "unknown ids are not owned");
        // The pinned generation still answers from before the churn.
        assert_eq!(pinned.triggering_at(SubscriberId(9), Point::new(50.0, 50.0)), vec![AlarmId(7)]);
        assert!(pinned.triggering_at(SubscriberId(9), Point::new(2_050.0, 2_050.0)).is_empty());
        // The current generation sees installs minus the deactivation.
        let cur = v.snapshot();
        assert_eq!(cur.triggering_at(SubscriberId(9), Point::new(1_050.0, 1_050.0)), vec![AlarmId(20)]);
        assert!(cur.triggering_at(SubscriberId(9), Point::new(2_050.0, 2_050.0)).is_empty());
        let area = Rect::new(0.0, 0.0, 10_000.0, 10_000.0).unwrap();
        let views = cur.relevant_intersecting(SubscriberId(9), area);
        let mut ids: Vec<u64> = views.iter().map(|view| view.id.0).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![7, 20, 55, 90]);
        assert_eq!(cur.all_intersecting(SubscriberId(9), area).len(), 4);
    }

    #[test]
    fn versioned_shard_cached_reads_survive_merges() {
        let v = VersionedShardIndex::with_merge_threshold(&[], 2);
        let mut cache = SnapshotCache::new();
        assert!(v.load_cached(&mut cache).is_empty());
        for i in 0..20u64 {
            v.install(&alarm(i * 3, i as f64 * 500.0, i % 2 == 0));
        }
        let snap = v.load_cached(&mut cache);
        assert_eq!(snap.len(), 20);
        // A deactivate folded through a merge stays deactivated.
        assert!(v.deactivate(AlarmId(0)));
        assert!(v
            .load_cached(&mut cache)
            .triggering_at(SubscriberId(5), Point::new(50.0, 50.0))
            .is_empty());
    }

    #[test]
    fn full_queue_reports_backpressure_without_blocking() {
        let registry = Registry::new();
        let pool = ShardPool::without_workers(2, 1, &registry);
        let (reply, _keep) = unbounded();
        let job = |seq| Job::new(0, Request::Bye { seq }, reply.clone(), 0);
        assert!(pool.try_submit(0, job(1)).is_ok());
        let start = std::time::Instant::now();
        match pool.try_submit(0, job(2)) {
            Err(SubmitError::Full(job)) => {
                assert_eq!(job.request(), Some(&Request::Bye { seq: 2 }))
            }
            other => panic!("expected Full, got {other:?}"),
        }
        assert!(
            start.elapsed() < std::time::Duration::from_millis(100),
            "try_submit must not block on a full queue"
        );
        // The sibling shard still accepts work.
        assert!(pool.try_submit(1, job(3)).is_ok());
        assert_eq!(pool.queue_len(0), 1);
        pool.shutdown();
    }

    #[test]
    fn workers_drain_jobs_and_answer_on_the_reply_channel() {
        let handler = Arc::new(|shard: usize, job: Job| {
            let seq = job.request().expect("single job").seq();
            let _ = job
                .reply
                .send(vec![(0, vec![Response::Error { seq, code: shard as u32 }])]);
        });
        let registry = Registry::new();
        let pool =
            ShardPool::spawn(3, 4, handler, &registry, crate::clock::SystemClock::shared());
        assert_eq!(pool.num_shards(), 3);
        let (reply_tx, reply_rx) = unbounded();
        for shard in 0..3 {
            pool.try_submit(
                shard,
                Job::new(
                    1,
                    Request::Hello { seq: shard as u32, user: 0, strategy: StrategySpec::Mwpsr },
                    reply_tx.clone(),
                    0,
                ),
            )
            .unwrap();
        }
        let mut codes: Vec<u32> = (0..3)
            .map(|_| match reply_rx.recv().unwrap().pop().unwrap() {
                (0, resps) => match resps.last() {
                    Some(Response::Error { code, .. }) => *code,
                    other => panic!("unexpected {other:?}"),
                },
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        codes.sort_unstable();
        assert_eq!(codes, vec![0, 1, 2]);
        // After the drain every depth gauge is back to zero and the
        // dispatch-wait histogram saw all three jobs.
        let snap = registry.snapshot();
        for shard in ["0", "1", "2"] {
            assert_eq!(snap.gauge("sa_shard_queue_depth", &[("shard", shard)]), Some(0));
        }
        assert_eq!(
            snap.histogram("sa_shard_dispatch_wait_ns", &[]).map(|h| h.count),
            Some(3)
        );
        pool.shutdown();
    }

    #[test]
    fn saturating_one_shard_spikes_only_its_gauge() {
        const CAPACITY: usize = 5;
        let registry = Registry::new();
        let pool = ShardPool::without_workers(3, CAPACITY, &registry);
        let (reply, _keep) = unbounded();
        // Fill shard 1 to capacity, then push two more over the brim.
        for seq in 0..CAPACITY as u32 {
            pool.try_submit(1, Job::new(0, Request::Bye { seq }, reply.clone(), 0)).unwrap();
        }
        for seq in 0..2 {
            let job = Job::new(0, Request::Bye { seq: 100 + seq }, reply.clone(), 0);
            match pool.try_submit(1, job) {
                Err(SubmitError::Full(_)) => {}
                other => panic!("expected Full, got {other:?}"),
            }
        }
        // One stray job on shard 2 so "only shard 1 spikes" is tested
        // against a non-idle sibling, not an empty pool.
        pool.try_submit(2, Job::new(0, Request::Bye { seq: 7 }, reply.clone(), 0)).unwrap();

        let snap = registry.snapshot();
        assert_eq!(
            snap.gauge("sa_shard_queue_depth", &[("shard", "1")]),
            Some(CAPACITY as i64),
            "the saturated shard's gauge shows a full queue"
        );
        assert_eq!(snap.gauge("sa_shard_queue_depth", &[("shard", "0")]), Some(0));
        assert_eq!(snap.gauge("sa_shard_queue_depth", &[("shard", "2")]), Some(1));
        assert_eq!(
            snap.counter("sa_shard_queue_full_total", &[("shard", "1")]),
            Some(2),
            "both bounces are charged to the saturated shard"
        );
        assert_eq!(snap.counter("sa_shard_queue_full_total", &[("shard", "0")]), Some(0));
        assert_eq!(snap.counter("sa_shard_queue_full_total", &[("shard", "2")]), Some(0));
        pool.shutdown();
    }
}
