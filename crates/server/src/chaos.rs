//! Deterministic fault injection for the live runtime.
//!
//! [`FaultyTransport`] decorates any [`Transport`] and injects failures
//! at **exchange granularity** — the wire protocol is strictly
//! request→response, so a "message" here is one whole exchange leg:
//!
//! * **uplink drop** — the request never reaches the server (the inner
//!   transport is not called); the caller sees [`TransportError::TimedOut`].
//! * **downlink drop** — the server *processes* the request but every
//!   response frame is lost; the caller again sees `TimedOut`. This is
//!   the nasty case: server state advanced, client learned nothing —
//!   exactly what [`crate::wire::Request::Resync`] exists to repair.
//! * **uplink duplicate** — the server receives the request twice (the
//!   second response set is delivered), exercising server idempotency.
//! * **downlink duplicate** — every non-terminal response frame is
//!   delivered twice, exercising the client's delivery dedup gate.
//! * **delay** — a bounded random sleep before (uplink) or after
//!   (downlink) the exchange.
//! * **disconnect** — while the externally driven breaker is down,
//!   every exchange fails with [`TransportError::Closed`] without
//!   touching the inner transport.
//!
//! All randomness comes from one [`SmallRng`] seeded from the
//! [`FaultPlan`] plus a per-client salt, so a chaos run is exactly
//! reproducible. Injections are observable as
//! `sa_chaos_injected_total{kind=…}` counters and through the
//! [`InjectedCounts`] handle shared with the driver.
//!
//! [`chaos_replay_in_proc`] is the end-to-end harness: it replays a
//! simulator trace through resilient clients on faulty transports,
//! drives the disconnect windows from the plan's step ranges, and
//! verifies the fired-alarm sequence against the ground truth — the
//! paper's 100%-accuracy requirement must survive the fault plan.

use crate::client::{Client, ResiliencePolicy};
use crate::clock::{SharedClock, SystemClock};
use crate::replay::{ReplayConfig, ReplayOutcome};
use crate::server::Server;
use crate::transport::{InProcTransport, Transport, TransportError};
use crate::wire::{Request, Response};
use rand::{rngs::SmallRng, Rng, SeedableRng};
use sa_alarms::SubscriberId;
use sa_obs::{Counter, Registry};
use sa_roadnet::Fleet;
use sa_sim::{FiredEvent, GroundTruth, SimulationHarness};
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Fault probabilities for one direction of an exchange.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultLeg {
    /// Probability the leg is dropped entirely.
    pub drop: f64,
    /// Probability the leg is delivered twice.
    pub duplicate: f64,
    /// Probability the leg is delayed.
    pub delay: f64,
    /// Upper bound of an injected delay.
    pub max_delay: Duration,
}

impl FaultLeg {
    /// A leg that never misbehaves.
    pub const CLEAN: FaultLeg = FaultLeg {
        drop: 0.0,
        duplicate: 0.0,
        delay: 0.0,
        max_delay: Duration::ZERO,
    };
}

impl Default for FaultLeg {
    fn default() -> FaultLeg {
        FaultLeg::CLEAN
    }
}

/// A deterministic fault schedule: per-direction probabilities plus
/// full-disconnect windows expressed in simulation steps.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Seed of the injection RNG (combined with a per-client salt).
    pub seed: u64,
    /// Client→server faults.
    pub up: FaultLeg,
    /// Server→client faults.
    pub down: FaultLeg,
    /// Step ranges during which the link is fully down for every
    /// client (the replay driver throws the breaker at these steps).
    pub disconnect_steps: Vec<Range<u32>>,
}

impl FaultPlan {
    /// No faults at all — [`FaultyTransport`] under this plan must be
    /// byte-identical to the inner transport.
    pub fn clean() -> FaultPlan {
        FaultPlan::default()
    }

    /// The acceptance-gate preset: 10% drops on both legs, a sprinkle
    /// of duplicates, and one 5-second (5-step at the smoke trace's
    /// 1 Hz sampling) disconnect window.
    pub fn lossy(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            up: FaultLeg { drop: 0.10, duplicate: 0.02, delay: 0.0, max_delay: Duration::ZERO },
            down: FaultLeg { drop: 0.10, duplicate: 0.02, delay: 0.0, max_delay: Duration::ZERO },
            disconnect_steps: std::iter::once(60..65).collect(),
        }
    }

    /// No probabilistic faults, but two long disconnect windows — the
    /// pure-partition case that exercises degraded mode and resync.
    pub fn partitioned(seed: u64) -> FaultPlan {
        FaultPlan { seed, disconnect_steps: vec![40..55, 150..170], ..FaultPlan::default() }
    }

    /// Heavy duplication on both legs with no drops — every exchange
    /// may be replayed at the server and every delivery doubled at the
    /// client; accuracy must hold through idempotency and dedup alone.
    pub fn duplicating(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            up: FaultLeg { drop: 0.0, duplicate: 0.25, delay: 0.0, max_delay: Duration::ZERO },
            down: FaultLeg { drop: 0.0, duplicate: 0.25, delay: 0.0, max_delay: Duration::ZERO },
            ..FaultPlan::default()
        }
    }

    /// Looks up a preset by name (`clean`, `lossy`, `partitioned`,
    /// `duplicating`).
    pub fn preset(name: &str, seed: u64) -> Option<FaultPlan> {
        match name {
            "clean" => Some(FaultPlan::clean()),
            "lossy" => Some(FaultPlan::lossy(seed)),
            "partitioned" => Some(FaultPlan::partitioned(seed)),
            "duplicating" => Some(FaultPlan::duplicating(seed)),
            _ => None,
        }
    }

    /// Whether `step` falls inside a disconnect window.
    pub fn disconnected_at(&self, step: u32) -> bool {
        self.disconnect_steps.iter().any(|w| w.contains(&step))
    }
}

/// Shared tally of injected faults, one counter per kind.
#[derive(Debug, Default)]
pub struct InjectedCounts {
    /// Requests dropped before the server saw them.
    pub drop_up: AtomicU64,
    /// Response sequences dropped after the server processed.
    pub drop_down: AtomicU64,
    /// Requests delivered to the server twice.
    pub dup_up: AtomicU64,
    /// Response frames delivered to the client twice.
    pub dup_down: AtomicU64,
    /// Delays injected before the request.
    pub delay_up: AtomicU64,
    /// Delays injected after the response.
    pub delay_down: AtomicU64,
    /// Exchanges refused while the breaker was down.
    pub disconnect: AtomicU64,
}

impl InjectedCounts {
    /// Sum over every fault kind.
    pub fn total(&self) -> u64 {
        self.drop_up.load(Ordering::Relaxed)
            + self.drop_down.load(Ordering::Relaxed)
            + self.dup_up.load(Ordering::Relaxed)
            + self.dup_down.load(Ordering::Relaxed)
            + self.delay_up.load(Ordering::Relaxed)
            + self.delay_down.load(Ordering::Relaxed)
            + self.disconnect.load(Ordering::Relaxed)
    }

    /// `(kind, count)` pairs for reporting, in a stable order.
    pub fn by_kind(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("drop_up", self.drop_up.load(Ordering::Relaxed)),
            ("drop_down", self.drop_down.load(Ordering::Relaxed)),
            ("dup_up", self.dup_up.load(Ordering::Relaxed)),
            ("dup_down", self.dup_down.load(Ordering::Relaxed)),
            ("delay_up", self.delay_up.load(Ordering::Relaxed)),
            ("delay_down", self.delay_down.load(Ordering::Relaxed)),
            ("disconnect", self.disconnect.load(Ordering::Relaxed)),
        ]
    }
}

/// External switches of one faulty link, shared with the driver.
#[derive(Debug, Clone, Default)]
pub struct ChaosControls {
    /// While true, every exchange fails with `Closed`.
    link_down: Arc<AtomicBool>,
    /// While false, the transport is a pure passthrough (used to keep
    /// handshakes and final drains fault-free).
    armed: Arc<AtomicBool>,
}

impl ChaosControls {
    /// Throws (true) or restores (false) the breaker.
    pub fn set_link_down(&self, down: bool) {
        self.link_down.store(down, Ordering::SeqCst);
    }

    /// Enables (true) or suspends (false) probabilistic injection.
    pub fn set_armed(&self, armed: bool) {
        self.armed.store(armed, Ordering::SeqCst);
    }

    /// Whether the breaker is currently thrown.
    pub fn is_link_down(&self) -> bool {
        self.link_down.load(Ordering::SeqCst)
    }
}

/// Pre-resolved `sa_chaos_injected_total{kind=…}` handles.
#[derive(Debug, Clone)]
struct ChaosMeter {
    drop_up: Counter,
    drop_down: Counter,
    dup_up: Counter,
    dup_down: Counter,
    delay_up: Counter,
    delay_down: Counter,
    disconnect: Counter,
}

impl ChaosMeter {
    fn new(registry: &Registry) -> ChaosMeter {
        let k = |kind| registry.counter_with("sa_chaos_injected_total", &[("kind", kind)]);
        ChaosMeter {
            drop_up: k("drop_up"),
            drop_down: k("drop_down"),
            dup_up: k("dup_up"),
            dup_down: k("dup_down"),
            delay_up: k("delay_up"),
            delay_down: k("delay_down"),
            disconnect: k("disconnect"),
        }
    }
}

/// A [`Transport`] decorator injecting the faults of a [`FaultPlan`],
/// deterministically under a seeded RNG.
pub struct FaultyTransport<T: Transport> {
    inner: T,
    plan: FaultPlan,
    rng: SmallRng,
    controls: ChaosControls,
    counts: Arc<InjectedCounts>,
    meter: Option<ChaosMeter>,
    /// Injected delays sleep on this clock; under a
    /// [`crate::clock::VirtualClock`] they advance simulated time
    /// instead of blocking, keeping chaos runs deterministic and fast.
    clock: SharedClock,
}

impl<T: Transport> FaultyTransport<T> {
    /// Wraps `inner` under `plan`. `salt` decorrelates the RNG streams
    /// of transports sharing one plan (use the client index). The
    /// transport starts **disarmed** (pure passthrough) — arm it via
    /// [`FaultyTransport::controls`] once the handshake is done.
    pub fn new(inner: T, plan: FaultPlan, salt: u64) -> FaultyTransport<T> {
        let seed = plan.seed.wrapping_add(salt.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        FaultyTransport {
            inner,
            plan,
            rng: SmallRng::seed_from_u64(seed),
            controls: ChaosControls::default(),
            counts: Arc::new(InjectedCounts::default()),
            meter: None,
            clock: SystemClock::shared(),
        }
    }

    /// Replaces the clock injected delays sleep on (builder-style).
    pub fn with_clock(mut self, clock: SharedClock) -> FaultyTransport<T> {
        self.clock = clock;
        self
    }

    /// The switches the driver flips (breaker, arming). Clone it
    /// before handing the transport to a client.
    pub fn controls(&self) -> ChaosControls {
        self.controls.clone()
    }

    /// The shared injected-fault tally. Clone it before handing the
    /// transport to a client.
    pub fn counts(&self) -> Arc<InjectedCounts> {
        Arc::clone(&self.counts)
    }

    /// Registers the `sa_chaos_injected_total{kind=…}` counters on
    /// `registry`; all instrumented transports aggregate there.
    pub fn instrument(&mut self, registry: &Registry) {
        self.meter = Some(ChaosMeter::new(registry));
    }

    fn roll(&mut self, p: f64) -> bool {
        p > 0.0 && self.rng.gen_range(0..1_000_000u64) < (p * 1_000_000.0) as u64
    }

    fn inject_delay(&mut self, max: Duration) {
        let max_ns = max.as_nanos().min(u128::from(u64::MAX)) as u64;
        if max_ns > 0 {
            let ns = self.rng.gen_range(1..=max_ns);
            self.clock.sleep(Duration::from_nanos(ns));
        }
    }
}

impl<T: Transport> Transport for FaultyTransport<T> {
    fn request(&mut self, req: Request) -> Result<Vec<Response>, TransportError> {
        if !self.controls.armed.load(Ordering::SeqCst) {
            return self.inner.request(req);
        }
        if self.controls.link_down.load(Ordering::SeqCst) {
            self.counts.disconnect.fetch_add(1, Ordering::Relaxed);
            if let Some(m) = &self.meter {
                m.disconnect.inc();
            }
            return Err(TransportError::Closed);
        }
        let up = self.plan.up;
        let down = self.plan.down;
        if self.roll(up.delay) {
            self.counts.delay_up.fetch_add(1, Ordering::Relaxed);
            if let Some(m) = &self.meter {
                m.delay_up.inc();
            }
            self.inject_delay(up.max_delay);
        }
        if self.roll(up.drop) {
            // The server never sees the request.
            self.counts.drop_up.fetch_add(1, Ordering::Relaxed);
            if let Some(m) = &self.meter {
                m.drop_up.inc();
            }
            return Err(TransportError::TimedOut);
        }
        let mut resps = if self.roll(up.duplicate) {
            // The server processes the request twice; the client reads
            // the first response set and never learns about the replay.
            // (A lost first response is a different fault — drop_down —
            // which forces the client through Resync.)
            self.counts.dup_up.fetch_add(1, Ordering::Relaxed);
            if let Some(m) = &self.meter {
                m.dup_up.inc();
            }
            let resps = self.inner.request(req.clone())?;
            let _ = self.inner.request(req)?;
            resps
        } else {
            self.inner.request(req)?
        };
        if self.roll(down.delay) {
            self.counts.delay_down.fetch_add(1, Ordering::Relaxed);
            if let Some(m) = &self.meter {
                m.delay_down.inc();
            }
            self.inject_delay(down.max_delay);
        }
        if self.roll(down.drop) {
            // The server processed and answered, but the client hears
            // nothing — the divergence Resync repairs.
            self.counts.drop_down.fetch_add(1, Ordering::Relaxed);
            if let Some(m) = &self.meter {
                m.drop_down.inc();
            }
            return Err(TransportError::TimedOut);
        }
        if self.roll(down.duplicate) {
            // Double every non-terminal frame (trigger deliveries);
            // duplicating the terminal would be a framing violation.
            self.counts.dup_down.fetch_add(1, Ordering::Relaxed);
            if let Some(m) = &self.meter {
                m.dup_down.inc();
            }
            let mut doubled = Vec::with_capacity(resps.len() * 2);
            for r in resps {
                if !r.is_terminal() {
                    doubled.push(r.clone());
                }
                doubled.push(r);
            }
            resps = doubled;
        }
        Ok(resps)
    }
}

/// Chaos-specific sizing on top of a [`ReplayConfig`].
#[derive(Debug, Clone, Default)]
pub struct ChaosConfig {
    /// Base replay shape (steps, server sizing, strategies).
    pub replay: ReplayConfig,
    /// The fault schedule.
    pub plan: FaultPlan,
    /// Per-client resilience knobs; `None` uses
    /// [`ResiliencePolicy::standard`] seeded per client.
    pub policy: Option<ResiliencePolicy>,
}

/// A [`ReplayOutcome`] plus the chaos-specific evidence.
#[derive(Debug)]
pub struct ChaosOutcome {
    /// The underlying replay result (fired events, verification,
    /// per-client and server stats, metric snapshot).
    pub replay: ReplayOutcome,
    /// Injected faults by kind.
    pub injected: Vec<(&'static str, u64)>,
    /// Total injected faults.
    pub injected_total: u64,
    /// Fraction of (client, step) samples processed in degraded mode.
    pub degraded_fraction: f64,
    /// Sum of client transient-failure retries.
    pub retries: u64,
    /// Sum of client resync exchanges.
    pub resyncs: u64,
}

/// Replays `harness`'s trace through resilient clients on
/// [`FaultyTransport`]-wrapped in-proc connections, driving the plan's
/// disconnect windows, and verifies the fired sequence against the
/// ground truth. The handshake runs fault-free; faults arm for the
/// replayed steps; the final drain ([`Client::finish`]) runs with the
/// link restored, as a real outage ends.
///
/// # Errors
///
/// Fails when a client hits a non-transient transport error.
///
/// # Panics
///
/// Panics when the harness was built with moving-target alarms or no
/// strategy was configured.
pub fn chaos_replay_in_proc(
    harness: &SimulationHarness,
    cfg: &ChaosConfig,
) -> Result<ChaosOutcome, TransportError> {
    assert!(
        harness.moving_alarms().is_none(),
        "the live wire protocol carries static alarms only"
    );
    assert!(!cfg.replay.strategies.is_empty(), "need at least one strategy to assign");

    let config = harness.config();
    let dt = config.sample_period_s;
    let steps = cfg.replay.steps.unwrap_or(config.steps() as u32).min(config.steps() as u32);

    let server = Server::start(
        harness.grid().clone(),
        harness.index().alarms().to_vec(),
        harness.v_max(),
        cfg.replay.server,
    );
    let registry = server.registry().clone();

    let mut controls = Vec::new();
    let mut counts = Vec::new();
    let mut clients: Vec<Client<FaultyTransport<InProcTransport>>> = (0..config
        .fleet
        .vehicles as u32)
        .map(|v| {
            let strategy = cfg.replay.strategies[v as usize % cfg.replay.strategies.len()];
            let inner = InProcTransport::connect(Arc::clone(&server));
            let mut transport = FaultyTransport::new(inner, cfg.plan.clone(), u64::from(v));
            transport.instrument(&registry);
            controls.push(transport.controls());
            counts.push(transport.counts());
            let mut client = Client::connect(
                transport,
                SubscriberId(v),
                strategy,
                harness.grid().clone(),
                dt,
            )?;
            let policy = cfg
                .policy
                .unwrap_or_else(|| ResiliencePolicy::standard(cfg.plan.seed ^ u64::from(v)));
            client.enable_resilience(policy);
            client.instrument(&registry);
            Ok(client)
        })
        .collect::<Result<_, TransportError>>()?;

    // Handshakes are done — let the faults fly.
    for c in &controls {
        c.set_armed(true);
    }

    let mut fleet = Fleet::new(harness.network(), &config.fleet);
    let mut samples = Vec::new();
    let mut was_down = false;
    for step in 0..steps {
        let down = cfg.plan.disconnected_at(step);
        if down != was_down {
            for c in &controls {
                c.set_link_down(down);
            }
            was_down = down;
        }
        fleet.step_into(dt, &mut samples);
        for s in &samples {
            clients[s.vehicle.0 as usize].observe(step, s.pos, s.heading, s.speed)?;
        }
    }

    // The outage is over: restore the link, keep probabilistic faults
    // off for the drain, and reconcile every backlog.
    for c in &controls {
        c.set_link_down(false);
        c.set_armed(false);
    }
    for client in &mut clients {
        client.finish()?;
    }

    let mut fired = Vec::new();
    let mut per_client = Vec::new();
    let mut degraded_steps = 0u64;
    let mut retries = 0u64;
    let mut resyncs = 0u64;
    for client in &mut clients {
        let stats = client.stats();
        degraded_steps += stats.degraded_steps;
        retries += stats.retries;
        resyncs += stats.resyncs;
        per_client.push((client.user(), client.strategy(), stats));
        fired.extend(client.take_fired());
    }

    let expected: Vec<FiredEvent> = harness
        .ground_truth()
        .events()
        .iter()
        .filter(|e| e.step < steps)
        .cloned()
        .collect();
    let verification = GroundTruth::new(expected).verify(&fired).map_err(|e| {
        let dump = server.trace_dump();
        if dump.is_empty() {
            e
        } else {
            format!("{e}\nserver trace ring:\n{dump}")
        }
    });

    // Fold the per-transport tallies into one.
    let mut by_kind: Vec<(&'static str, u64)> = vec![
        ("drop_up", 0),
        ("drop_down", 0),
        ("dup_up", 0),
        ("dup_down", 0),
        ("delay_up", 0),
        ("delay_down", 0),
        ("disconnect", 0),
    ];
    for c in &counts {
        for (slot, (kind, n)) in by_kind.iter_mut().zip(c.by_kind()) {
            debug_assert_eq!(slot.0, kind);
            slot.1 += n;
        }
    }
    let injected_total: u64 = by_kind.iter().map(|(_, n)| n).sum();

    let total_samples = u64::from(steps) * config.fleet.vehicles as u64;
    let outcome = ChaosOutcome {
        replay: ReplayOutcome {
            fired,
            verification,
            clients: per_client,
            server: server.stats(),
            cache: server.cache_stats(),
            metrics: server.registry().snapshot(),
            steps,
        },
        injected: by_kind,
        injected_total,
        degraded_fraction: if total_samples == 0 {
            0.0
        } else {
            degraded_steps as f64 / total_samples as f64
        },
        retries,
        resyncs,
    };
    server.shutdown();
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServerConfig;
    use crate::wire::StrategySpec;
    use sa_geometry::{Grid, Rect};

    fn tiny_server() -> Arc<Server> {
        let universe = Rect::new(0.0, 0.0, 3_000.0, 3_000.0).unwrap();
        let grid = Grid::new(universe, 1_000.0).unwrap();
        Server::start(grid, Vec::new(), 30.0, ServerConfig::default())
    }

    fn hello(seq: u32) -> Request {
        Request::Hello { seq, user: 7, strategy: StrategySpec::Mwpsr }
    }

    #[test]
    fn disarmed_transport_is_a_passthrough() {
        let server = tiny_server();
        let inner = InProcTransport::connect(Arc::clone(&server));
        let mut t = FaultyTransport::new(inner, FaultPlan::lossy(1), 0);
        // Never armed: even a lossy plan must not interfere.
        assert_eq!(t.request(hello(1)).unwrap(), vec![Response::Ack { seq: 1 }]);
        for seq in 2..=200 {
            assert!(t.request(Request::Stats { seq }).is_ok(), "exchange {seq} interfered");
        }
        assert_eq!(t.counts().total(), 0);
        server.shutdown();
    }

    #[test]
    fn breaker_refuses_exchanges_and_counts_them() {
        let server = tiny_server();
        let inner = InProcTransport::connect(Arc::clone(&server));
        let mut t = FaultyTransport::new(inner, FaultPlan::clean(), 0);
        let controls = t.controls();
        let counts = t.counts();
        assert!(t.request(hello(1)).is_ok());
        controls.set_armed(true);
        controls.set_link_down(true);
        assert!(controls.is_link_down());
        let err = t.request(hello(2)).unwrap_err();
        assert!(err.is_transient(), "a thrown breaker must look transient: {err}");
        assert_eq!(counts.disconnect.load(Ordering::Relaxed), 1);
        controls.set_link_down(false);
        assert!(t.request(hello(3)).is_ok());
        server.shutdown();
    }

    #[test]
    fn injection_is_deterministic_per_seed_and_salt() {
        let plan = FaultPlan::lossy(99);
        let outcomes = |salt: u64| -> Vec<bool> {
            let server = tiny_server();
            let inner = InProcTransport::connect(Arc::clone(&server));
            let mut t = FaultyTransport::new(inner, plan.clone(), salt);
            t.controls().set_armed(true);
            let mut pattern = vec![t.request(hello(1)).is_ok()];
            for seq in 2..200 {
                pattern.push(t.request(Request::Stats { seq }).is_ok());
            }
            server.shutdown();
            pattern
        };
        assert_eq!(outcomes(3), outcomes(3), "same salt must replay identically");
        assert_ne!(outcomes(3), outcomes(4), "salts must decorrelate streams");
    }

    #[test]
    fn lossy_preset_actually_drops() {
        let server = tiny_server();
        let inner = InProcTransport::connect(Arc::clone(&server));
        let mut t = FaultyTransport::new(inner, FaultPlan::lossy(7), 1);
        t.controls().set_armed(true);
        let counts = t.counts();
        let mut failures = 0;
        for seq in 1..=300 {
            let req = if seq == 1 { hello(seq) } else { Request::Stats { seq } };
            if t.request(req).is_err() {
                failures += 1;
            }
        }
        assert!(failures > 0, "10% drop over 300 exchanges must fail sometimes");
        assert!(
            counts.drop_up.load(Ordering::Relaxed) + counts.drop_down.load(Ordering::Relaxed) > 0
        );
        server.shutdown();
    }
}
