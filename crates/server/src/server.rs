//! The concurrent safe-region server: session registry, request router,
//! and the per-shard worker logic.
//!
//! The router ([`Server::handle`]) is intentionally thin. Control
//! messages (`Hello`, `Bye`, alarm install/remove, OPT trigger notify)
//! are answered inline — they touch only lock-protected shared maps and
//! never compute geometry. Location updates — the hot path — are routed
//! to the owning shard's bounded queue; a full queue answers
//! [`Response::Overloaded`] immediately instead of blocking the caller
//! behind a slow shard.
//!
//! Lock discipline: workers and the router take at most one lock at a
//! time. Alarm-index reads never lock at all — workers pin an
//! epoch-versioned snapshot through a per-thread cache (see
//! [`sa_alarms::VersionedAlarmIndex`]) and query it while the install
//! path publishes the next generation; no writer ever takes a second
//! lock, so no cycle exists.

use crate::arena::ReplyPool;
use crate::cache::{CacheStats, RegionCache};
use crate::clock::{SharedClock, SystemClock};
use crate::shard::{
    shard_of_index, Job, JobPayload, ShardPool, ShardSnapshot, ShardUpdate, SubmitError,
    VersionedShardIndex,
};
use crate::wire::{
    dequantize_m, quantize_m, unpack_motion, BatchReply, BatchedUpdate, CellRange, Request,
    Response, SessionState, StrategySpec, TraceCtxExt, SEQ_MASK,
};
use parking_lot::RwLock;
use sa_alarms::{
    AlarmId, AlarmScope, AlarmSnapshot, AlarmTarget, SnapshotCache, SpatialAlarm, SubscriberId,
    VersionedAlarmIndex,
};
use sa_core::{BitVec, MwpsrComputer, PyramidComputer, PyramidConfig};
use sa_geometry::{CellId, Grid, Point, Rect};
use sa_obs::{
    client_root_span, dispatch_span, trace_id_for, Counter, Exemplars, Histogram, Registry, Span,
    SpanKind, SpanRecorder, TimeSource, TraceCtx, TraceMode, TraceRing,
};
use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

thread_local! {
    /// Per-thread scratch for the worker trigger check's hit list, reused
    /// across updates so the steady-state case (no triggering alarms)
    /// never touches the heap.
    static TRIGGER_SCRATCH: RefCell<Vec<AlarmId>> = const { RefCell::new(Vec::new()) };
    /// Per-thread pinned generation of the worker's shard index. While no
    /// install/deactivate has published, a refresh is one atomic epoch
    /// load — no lock, no allocation.
    static SHARD_SNAP: RefCell<SnapshotCache<ShardSnapshot>> =
        const { RefCell::new(SnapshotCache::new()) };
    /// Per-thread pinned generation of the global alarm index (the
    /// safe-period nearest-distance path).
    static GLOBAL_SNAP: RefCell<SnapshotCache<AlarmSnapshot>> =
        const { RefCell::new(SnapshotCache::new()) };
}

/// Error codes carried by [`Response::Error`].
pub mod error_code {
    /// The session id is unknown (no `Hello` seen).
    pub const NO_SESSION: u32 = 1;
    /// The request is invalid in the session's current state.
    pub const BAD_REQUEST: u32 = 2;
    /// An alarm id was out of range.
    pub const UNKNOWN_ALARM: u32 = 3;
}

/// Sizing knobs of a [`Server`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerConfig {
    /// Number of worker shards (grid cells map to shards round-robin by
    /// flattened index).
    pub num_shards: usize,
    /// Bounded per-shard queue capacity; a full queue answers
    /// `Overloaded`.
    pub queue_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig { num_shards: 4, queue_capacity: 64 }
    }
}

/// Aggregate counter snapshot of one server instance — a thin view over
/// the server's `sa-obs` registry, kept so existing callers of
/// [`Server::stats`] don't change.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServerStats {
    /// Location updates processed by workers.
    pub location_updates: u64,
    /// Alarm firings recorded (server- or client-detected).
    pub triggers: u64,
    /// Requests bounced with `Overloaded`.
    pub overloads: u64,
    /// Safe-region / safe-period computations performed.
    pub region_computations: u64,
}

#[derive(Debug)]
struct Session {
    user: SubscriberId,
    strategy: StrategySpec,
    /// The last cell a bitmap/push was issued for (PBSR quick-update and
    /// OPT cell-transition bookkeeping).
    last_cell: Option<CellId>,
    /// Every alarm a `TriggerDelivery` was generated for on this
    /// session, in generation order. Each alarm appears at most once
    /// (the fired-set gate), so a [`Request::Resync`] carrying a
    /// delivery cursor of `acked` recovers exactly the suffix
    /// `delivery_log[acked..]` — the deliveries a lossy downlink may
    /// have swallowed.
    delivery_log: Vec<u32>,
    /// `Some(cap)` when the session was admitted under overload
    /// (reactor admission control): PBSR safe regions are computed at
    /// `min(requested_height, cap)` pyramid levels and padded back to
    /// the requested wire layout — coarser and cheaper, never refused.
    degraded_height_cap: Option<u32>,
}

/// Stripe count of the [`SessionTable`] — a power of two comfortably
/// above the shard counts the configs use, so session ids spread across
/// stripes and the batch router, the shard workers, and the federation
/// handoff exporter almost always lock different stripes.
const SESSION_STRIPES: usize = 16;

/// The session registry, striped by session id so no single lock
/// serializes every session touch the way the old
/// `RwLock<HashMap<u32, Session>>` did.
struct SessionTable {
    stripes: Vec<RwLock<HashMap<u32, Session>>>,
}

impl SessionTable {
    fn new() -> SessionTable {
        SessionTable {
            stripes: (0..SESSION_STRIPES).map(|_| RwLock::new(HashMap::new())).collect(),
        }
    }

    fn stripe(&self, session: u32) -> &RwLock<HashMap<u32, Session>> {
        &self.stripes[session as usize % SESSION_STRIPES]
    }

    fn insert(&self, session: u32, s: Session) {
        self.stripe(session).write().insert(session, s);
    }

    fn remove(&self, session: u32) -> Option<Session> {
        self.stripe(session).write().remove(&session)
    }

    fn contains(&self, session: u32) -> bool {
        self.stripe(session).read().contains_key(&session)
    }

    /// Copies the cheap per-session header (subscriber, strategy,
    /// degraded-admission height cap).
    fn peek(&self, session: u32) -> Option<(SubscriberId, StrategySpec, Option<u32>)> {
        self.stripe(session)
            .read()
            .get(&session)
            .map(|s| (s.user, s.strategy, s.degraded_height_cap))
    }

    /// Live sessions across every stripe.
    fn len(&self) -> usize {
        self.stripes.iter().map(|s| s.read().len()).sum()
    }

    /// Runs `f` on the session under its stripe's write lock.
    fn with_mut<R>(&self, session: u32, f: impl FnOnce(&mut Session) -> R) -> Option<R> {
        self.stripe(session).write().get_mut(&session).map(f)
    }

    /// Clones the migratable fields of a session (the handoff export).
    fn snapshot(
        &self,
        session: u32,
    ) -> Option<(SubscriberId, StrategySpec, Option<CellId>, Vec<u32>)> {
        self.stripe(session)
            .read()
            .get(&session)
            .map(|s| (s.user, s.strategy, s.last_cell, s.delivery_log.clone()))
    }
}

/// Federation membership of one server: its id and the epoch-versioned
/// partition map it enforces on position-bearing requests.
#[derive(Debug, Clone)]
struct FedState {
    self_id: u32,
    epoch: u64,
    /// Ownership ranges over the grid's Morton keys, sorted by start.
    ranges: Vec<CellRange>,
}

impl FedState {
    /// The owner of Morton key `key`, or `None` when the map has a gap
    /// there (a malformed map; the caller treats the cell as local
    /// rather than bouncing traffic into a void).
    fn owner_of(&self, key: u64) -> Option<u32> {
        let idx = self.ranges.partition_point(|r| r.start <= key);
        let r = &self.ranges[idx.checked_sub(1)?];
        (key < r.end).then_some(r.owner)
    }
}

/// Pre-resolved handles onto the server's registry: one registry lock at
/// startup, then every hot-path increment is a single atomic RMW.
#[derive(Debug, Clone)]
pub(crate) struct ServerMetrics {
    location_updates: Counter,
    triggers: Counter,
    overloads: Counter,
    region_computations: Counter,
    /// `Resync` requests processed by workers.
    resyncs: Counter,
    /// Trigger deliveries re-sent from a session's delivery log.
    redeliveries: Counter,
    /// Position-bearing requests bounced with `WrongOwner`.
    wrong_owner: Counter,
    /// Sessions exported to another federation member.
    handoff_exports: Counter,
    /// Sessions imported from another federation member.
    handoff_imports: Counter,
    /// End-to-end location-update round trip: router entry to worker
    /// reply received.
    update_rtt: Histogram,
    /// One `RegionCache::lookup` call inside the PBSR path.
    cache_lookup: Histogram,
    /// Server-side response encoding (used by the transports).
    pub(crate) wire_encode: Histogram,
    /// Server-side request decoding (used by the transports).
    pub(crate) wire_decode: Histogram,
    /// Safe-region computation latency, labelled per algorithm.
    mwpsr: Histogram,
    pbsr: Histogram,
    opt: Histogram,
    safe_period: Histogram,
}

impl ServerMetrics {
    fn new(registry: &Registry) -> ServerMetrics {
        let compute = |algo: &str| {
            registry.histogram_with("sa_region_compute_ns", &[("algo", algo)])
        };
        ServerMetrics {
            location_updates: registry.counter("sa_server_location_updates_total"),
            triggers: registry.counter("sa_server_triggers_total"),
            overloads: registry.counter("sa_server_overloads_total"),
            region_computations: registry.counter("sa_server_region_computations_total"),
            resyncs: registry.counter("sa_server_resyncs_total"),
            redeliveries: registry.counter("sa_server_redeliveries_total"),
            wrong_owner: registry.counter("sa_server_wrong_owner_total"),
            handoff_exports: registry.counter("sa_server_handoff_exports_total"),
            handoff_imports: registry.counter("sa_server_handoff_imports_total"),
            update_rtt: registry.histogram("sa_update_rtt_ns"),
            cache_lookup: registry.histogram("sa_cache_lookup_ns"),
            wire_encode: registry.histogram("sa_wire_encode_ns"),
            wire_decode: registry.histogram("sa_wire_decode_ns"),
            mwpsr: compute("mwpsr"),
            pbsr: compute("pbsr"),
            opt: compute("opt"),
            safe_period: compute("safe_period"),
        }
    }

    /// The per-algorithm safe-region-computation histogram.
    fn compute_hist(&self, strategy: StrategySpec) -> &Histogram {
        match strategy {
            StrategySpec::Mwpsr => &self.mwpsr,
            StrategySpec::Pbsr { .. } => &self.pbsr,
            StrategySpec::Opt => &self.opt,
            StrategySpec::SafePeriod => &self.safe_period,
        }
    }
}

/// Shared state reachable from the router and every worker.
struct Core {
    grid: Grid,
    v_max: f64,
    num_shards: usize,
    /// Global index (dense ids) — safe-period nearest-distance queries
    /// must see every alarm, wherever it lives. Epoch-versioned: readers
    /// pin snapshots, installs publish new generations.
    global_index: VersionedAlarmIndex,
    /// Shard-local indexes over the alarms intersecting each shard's
    /// cells, each epoch-versioned like the global index.
    shard_indexes: Vec<VersionedShardIndex>,
    /// (subscriber, alarm) pairs that already fired — alarms fire once.
    fired: RwLock<HashSet<(SubscriberId, AlarmId)>>,
    sessions: SessionTable,
    /// Federation membership, when [`Server::enable_federation`] was
    /// called; `None` on a standalone server (no ownership checks).
    fed: RwLock<Option<FedState>>,
    /// One update counter per grid cell (`sa_cell_updates_total`), the
    /// load signal the federation's hot-cell repartitioner reads.
    cell_updates: Vec<Counter>,
    cache: RegionCache,
    /// Recycled reply channels and buffers for routed updates — the
    /// steady-state hot path leases a warm slot instead of allocating a
    /// one-shot channel per request.
    replies: ReplyPool,
    /// Every counter/gauge/histogram of this server instance — scrapeable
    /// over the wire via [`Request::Stats`].
    registry: Arc<Registry>,
    metrics: ServerMetrics,
    /// One ring per shard plus a router pseudo-shard (index
    /// `num_shards`).
    tracer: TraceRing,
    /// Typed causal spans, one lane per shard plus the router lane —
    /// the raw material of the federation-wide trace assembly.
    spans: SpanRecorder,
    /// Per-bucket trace exemplars of `sa_update_rtt_ns`, linking a p99
    /// readout to a trace that actually landed in that bucket.
    rtt_exemplars: Exemplars,
    next_session: AtomicU32,
    /// Every timestamp the runtime takes reads this clock — swap in a
    /// [`crate::clock::VirtualClock`] and timings become simulated.
    clock: SharedClock,
}

/// Ring capacity per shard of the server's [`TraceRing`].
const TRACE_RING_CAPACITY: usize = 256;

/// Span capacity per lane of the server's [`SpanRecorder`] — sized so a
/// replay-scale run keeps every span of its final divergence window.
const SPAN_LANE_CAPACITY: usize = 1024;

/// The live safe-region service. Build with [`Server::start`], talk to it
/// through a [`crate::transport::Transport`].
pub struct Server {
    core: Arc<Core>,
    pool: RwLock<Option<ShardPool>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut s = f.debug_struct("Server");
        s.field("num_shards", &self.core.num_shards);
        // fmt must never block: debug-logging a server while a writer is
        // mid-publish degrades to a placeholder instead of deadlocking.
        match self.core.global_index.try_peek() {
            Some(snap) => s.field("alarms", &snap.len()),
            None => s.field("alarms", &"<locked>"),
        };
        s.finish()
    }
}

impl Server {
    /// Builds the shard indexes from `alarms` and spawns the worker
    /// threads.
    ///
    /// # Panics
    ///
    /// Panics when `v_max` is not positive or the config has zero shards
    /// or queue capacity.
    pub fn start(
        grid: Grid,
        alarms: Vec<SpatialAlarm>,
        v_max: f64,
        config: ServerConfig,
    ) -> Arc<Server> {
        Server::start_with_clock(grid, alarms, v_max, config, SystemClock::shared())
    }

    /// [`Server::start`] with an explicit [`SharedClock`]. Every
    /// timestamp the server takes (router entry, shard queue wait,
    /// safe-region compute timing, cache lookups, wire codec timing on
    /// the attached transports) reads this clock, so a
    /// [`crate::clock::VirtualClock`] makes the whole run's timing
    /// deterministic.
    ///
    /// # Panics
    ///
    /// Panics when `v_max` is not positive or the config has zero shards
    /// or queue capacity.
    pub fn start_with_clock(
        grid: Grid,
        alarms: Vec<SpatialAlarm>,
        v_max: f64,
        config: ServerConfig,
        clock: SharedClock,
    ) -> Arc<Server> {
        assert!(v_max > 0.0, "maximum speed must be positive");
        assert!(config.num_shards > 0, "need at least one shard");

        // Partition: each shard owns the alarms intersecting its cells.
        let mut per_shard: Vec<Vec<SpatialAlarm>> = vec![Vec::new(); config.num_shards];
        for alarm in &alarms {
            let mut owners: Vec<usize> = grid
                .cells_intersecting(alarm.region())
                .map(|cell| shard_of_index(grid.cell_index(cell), config.num_shards))
                .collect();
            owners.sort_unstable();
            owners.dedup();
            for shard in owners {
                per_shard[shard].push(alarm.clone());
            }
        }

        let registry = Arc::new(Registry::new());
        let metrics = ServerMetrics::new(&registry);
        // Trace rings and spans timestamp on the *server clock's* axis:
        // under a VirtualClock two identical schedules produce
        // byte-identical ring dumps (the old Instant-based axis leaked
        // wall time into them).
        let time = {
            let clock = Arc::clone(&clock);
            TimeSource::new(move || clock.now_ns() / 1_000)
        };
        let cell_updates = (0..grid.cell_count())
            .map(|idx| {
                let label = idx.to_string();
                registry.counter_with("sa_cell_updates_total", &[("cell", &label)])
            })
            .collect();
        let core = Arc::new(Core {
            num_shards: config.num_shards,
            v_max,
            global_index: VersionedAlarmIndex::new(alarms).unwrap_or_else(|e| panic!("{e}")),
            shard_indexes: per_shard
                .iter()
                .map(|owned| VersionedShardIndex::build(owned))
                .collect(),
            fired: RwLock::new(HashSet::new()),
            sessions: SessionTable::new(),
            fed: RwLock::new(None),
            cell_updates,
            cache: RegionCache::with_registry(&registry),
            replies: ReplyPool::new(),
            metrics,
            // One extra pseudo-shard ring for router-side events
            // (overloads, session open/close).
            tracer: TraceRing::with_time_source(
                config.num_shards + 1,
                TRACE_RING_CAPACITY,
                time.clone(),
            ),
            spans: SpanRecorder::new(config.num_shards + 1, SPAN_LANE_CAPACITY, time),
            rtt_exemplars: Exemplars::new(),
            registry,
            next_session: AtomicU32::new(1),
            clock,
            grid,
        });

        let worker_core = Arc::clone(&core);
        let handler = Arc::new(move |shard: usize, job: Job| {
            let Job { payload, reply, enqueued_at_ns, mut scratch } = job;
            match payload {
                JobPayload::Single { session, req } => {
                    worker_core.shard_wait_span(shard, session, req.seq(), enqueued_at_ns);
                    // Fill the router's pooled buffers instead of
                    // allocating; an unseeded job (only tests build
                    // those) falls back to fresh vectors.
                    let (_, mut responses) = scratch.pop().unwrap_or((0, Vec::new()));
                    responses.clear();
                    worker_core.process_into(shard, session, &req, &mut responses);
                    scratch.clear();
                    scratch.push((0, responses));
                    let _ = reply.send(scratch);
                }
                JobPayload::Batch(updates) => {
                    scratch.clear();
                    scratch.reserve(updates.len());
                    for u in updates {
                        worker_core.shard_wait_span(shard, u.session, u.req.seq(), enqueued_at_ns);
                        let mut responses = Vec::new();
                        worker_core.process_into(shard, u.session, &u.req, &mut responses);
                        scratch.push((u.index, responses));
                    }
                    let _ = reply.send(scratch);
                }
            }
        });
        let pool = ShardPool::spawn(
            config.num_shards,
            config.queue_capacity,
            handler,
            &core.registry,
            Arc::clone(&core.clock),
        );
        Arc::new(Server { core, pool: RwLock::new(Some(pool)) })
    }

    /// Allocates a fresh session id. The session only becomes usable
    /// after a [`Request::Hello`] on it.
    pub fn open_session(&self) -> u32 {
        self.core.next_session.fetch_add(1, Ordering::Relaxed)
    }

    /// How many sessions are currently registered (i.e. have completed
    /// a `Hello` and not been closed). The reactor's soak tests use
    /// this to assert the table returns to baseline after churn.
    pub fn session_count(&self) -> usize {
        self.core.sessions.len()
    }

    /// Drops a session's server-side state (safe region, delivery log,
    /// fired set). Called by the network front end when a connection
    /// closes. Returns `false` when the session was never registered
    /// (e.g. the peer disconnected before `Hello`).
    pub fn close_session(&self, session: u32) -> bool {
        self.core.sessions.remove(session).is_some()
    }

    /// Caps the pyramid height this session's PBSR regions are
    /// *computed* at — the wire encoding is padded back to the height
    /// the client requested (see `pad_bitmap_wire_bits`), so the
    /// client is unaffected except for receiving a
    /// coarser (still sound) region. The reactor applies this to
    /// sessions admitted under overload. Returns `false` for an
    /// unknown session.
    pub fn degrade_session(&self, session: u32, height_cap: u32) -> bool {
        self.core
            .sessions
            .with_mut(session, |s| s.degraded_height_cap = Some(height_cap.max(1)))
            .is_some()
    }

    /// The grid the server shards over.
    pub fn grid(&self) -> &Grid {
        &self.core.grid
    }

    /// Joins a federation as member `self_id` under the given partition
    /// map. From here on, position-bearing requests whose cell another
    /// member owns are bounced with
    /// [`Response::WrongOwner`], and
    /// [`Request::InstallTopology`] pushes with a newer epoch replace
    /// the map.
    ///
    /// # Panics
    ///
    /// Panics when `ranges` is empty or not sorted by start key.
    pub fn enable_federation(&self, self_id: u32, epoch: u64, ranges: Vec<CellRange>) {
        assert!(!ranges.is_empty(), "a partition map needs at least one range");
        assert!(
            ranges.windows(2).all(|w| w[0].start <= w[1].start),
            "partition ranges must be sorted by start key"
        );
        self.core.spans.set_member(self_id);
        *self.core.fed.write() = Some(FedState { self_id, epoch, ranges });
    }

    /// The server's current partition map: `(epoch, ranges)`. A
    /// standalone server reports the trivial epoch-0 map owning the
    /// whole key space as member 0.
    pub fn topology(&self) -> (u64, Vec<CellRange>) {
        match self.core.fed.read().as_ref() {
            Some(f) => (f.epoch, f.ranges.clone()),
            None => (0, vec![CellRange { start: 0, end: u64::MAX, owner: 0 }]),
        }
    }

    /// This member's federation id, when federation is enabled.
    pub fn federation_id(&self) -> Option<u32> {
        self.core.fed.read().as_ref().map(|f| f.self_id)
    }

    /// Per-cell update counts (indexed by flattened cell index) — the
    /// load distribution the repartitioning coordinator balances on.
    pub fn cell_update_counts(&self) -> Vec<u64> {
        self.core.cell_updates.iter().map(Counter::get).collect()
    }

    /// How many position-bearing requests this member bounced with
    /// [`Response::WrongOwner`].
    pub fn wrong_owner_total(&self) -> u64 {
        self.core.metrics.wrong_owner.get()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ServerStats {
        let m = &self.core.metrics;
        ServerStats {
            location_updates: m.location_updates.get(),
            triggers: m.triggers.get(),
            overloads: m.overloads.get(),
            region_computations: m.region_computations.get(),
        }
    }

    /// Safe-region cache counter snapshot.
    pub fn cache_stats(&self) -> CacheStats {
        self.core.cache.stats()
    }

    /// The metrics registry every counter, gauge, and histogram of this
    /// server (cache, shards, wire, algorithms) is registered on.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.core.registry
    }

    /// The full metric state rendered in Prometheus text exposition
    /// format — the same text a [`Request::Stats`] scrape returns.
    pub fn prometheus(&self) -> String {
        sa_obs::render(&self.core.registry)
    }

    /// The merged, time-sorted trace-ring dump (router pseudo-shard is
    /// index `num_shards`).
    pub fn trace_dump(&self) -> String {
        self.core.tracer.dump()
    }

    /// Switches causal-span recording between [`TraceMode::Off`],
    /// sampled, and full. The trace ring is unaffected; already-buffered
    /// spans stay.
    pub fn set_trace_mode(&self, mode: TraceMode) {
        self.core.spans.set_mode(mode);
    }

    /// Every causal span this server retains, start-time ordered —
    /// one member's contribution to the federation-wide trace assembly.
    pub fn spans(&self) -> Vec<Span> {
        self.core.spans.spans()
    }

    /// Per-bucket trace exemplars of the `sa_update_rtt_ns` histogram:
    /// pass a snapshot quantile to
    /// [`Exemplars::for_value`] and get the trace id of a request that
    /// actually landed in that latency bucket.
    pub fn rtt_exemplars(&self) -> &Exemplars {
        &self.core.rtt_exemplars
    }

    /// Pre-resolved metric handles, for the transports' wire timers.
    pub(crate) fn metrics(&self) -> &ServerMetrics {
        &self.core.metrics
    }

    /// The clock every runtime timestamp reads (the transports time
    /// their codec work against it too).
    pub fn clock(&self) -> &SharedClock {
        &self.core.clock
    }

    /// Routes one request and returns its full response sequence: zero or
    /// more trigger deliveries followed by one terminal response.
    ///
    /// Allocates a fresh result vector per call; allocation-conscious
    /// callers use [`Server::handle_into`] with a reused buffer instead.
    pub fn handle(&self, session: u32, req: Request) -> Vec<Response> {
        let mut out = Vec::new();
        self.handle_into(session, req, &mut out);
        out
    }

    /// Routes one request, appending its full response sequence (zero or
    /// more trigger deliveries followed by one terminal response) to
    /// `out`.
    ///
    /// This is the allocation-free entry point of the update hot path:
    /// once `out`, the reply-slot pool, and the shard queues are warm, a
    /// steady-state location update (the PBSR quick-update answer) runs
    /// router → shard queue → worker → reply without a single heap
    /// allocation — the invariant the `alloc_steady_state` integration
    /// test pins with a counting allocator.
    pub fn handle_into(&self, session: u32, req: Request, out: &mut Vec<Response>) {
        let seq = req.seq();
        match req {
            Request::Hello { seq, user, strategy } => {
                self.core.sessions.insert(
                    session,
                    Session {
                        user: SubscriberId(user),
                        strategy,
                        last_cell: None,
                        delivery_log: Vec::new(),
                        degraded_height_cap: None,
                    },
                );
                out.push(Response::Ack { seq });
            }
            Request::Bye { seq } => {
                self.core.sessions.remove(session);
                out.push(Response::Ack { seq });
            }
            Request::TriggerNotify { seq, alarm } => {
                out.extend(self.core.notify_trigger(session, seq, alarm));
            }
            Request::InstallAlarm { seq, alarm, flags, rect } => {
                out.extend(self.install_alarm(session, seq, alarm, flags, rect));
            }
            Request::RemoveAlarm { seq, alarm } => {
                out.extend(self.remove_alarm(session, seq, alarm));
            }
            Request::Stats { seq } => {
                out.push(Response::Stats { seq, text: self.prometheus() });
            }
            Request::Topology { seq, .. } => {
                let (epoch, ranges) = self.topology();
                out.push(Response::Topology { seq, epoch, ranges });
            }
            Request::HandoffExport { seq, session: target, trace } => {
                out.extend(self.core.export_session(seq, target, trace));
            }
            Request::HandoffImport { seq, session: target, state, trace } => {
                out.extend(self.core.import_session(seq, target, state, trace));
            }
            Request::HandoffRelease { seq, session: target, trace } => {
                // Idempotent by design: releasing an absent session (a
                // retried handoff's second release) still acks. The
                // subscriber's fired entries stay — they can only
                // suppress an already-fired alarm, never add a firing.
                let started_ns = self.core.clock.now_ns();
                self.core.sessions.remove(target);
                self.core.tracer.event(self.core.num_shards, "handoff_release", target as u64, 0);
                self.core.control_span(
                    SpanKind::HandoffRelease,
                    trace,
                    started_ns,
                    u64::from(target),
                    0,
                );
                out.push(Response::Ack { seq });
            }
            Request::InstallTopology { seq, epoch, ranges, trace } => {
                out.extend(self.core.install_topology(seq, epoch, ranges, trace));
            }
            req @ (Request::LocationUpdate { .. } | Request::Resync { .. }) => {
                let (x_fx, y_fx) =
                    req.position_fx().expect("position-bearing requests carry coordinates");
                let entered_ns = self.core.clock.now_ns();
                let pos = self.core.clamped_position(x_fx, y_fx);
                let cell = self.core.grid.cell_of(pos);
                // Ownership precedes the session check: mid-handoff the
                // old owner has released the session, and the useful
                // answer there is the redirect, not NO_SESSION.
                if let Some(bounce) = self.core.wrong_owner(cell, seq) {
                    out.push(bounce);
                    return;
                }
                if !self.core.session_exists(session) {
                    out.push(Response::Error { seq, code: error_code::NO_SESSION });
                    return;
                }
                let shard = shard_of_index(self.core.grid.cell_index(cell), self.core.num_shards);
                // Lease a warm reply slot: channel and reply buffers are
                // recycled across requests instead of allocated anew.
                let mut slot = self.core.replies.acquire();
                let mut job = Job::new(session, req, slot.tx.clone(), entered_ns);
                job.scratch = slot.take_scratch();
                // Submit under the read guard, but wait for the reply
                // outside it so shutdown() is never blocked behind a
                // slow worker.
                let submitted = {
                    let pool = self.pool.read();
                    match pool.as_ref() {
                        Some(pool) => pool.try_submit(shard, job),
                        None => Err(SubmitError::Disconnected(job)),
                    }
                };
                match submitted {
                    Ok(()) => {}
                    Err(SubmitError::Full(job)) => {
                        slot.reclaim(job.scratch);
                        self.core.replies.release(slot);
                        self.core.metrics.overloads.inc();
                        self.core.tracer.event(
                            self.core.num_shards,
                            "overload",
                            session as u64,
                            shard as u64,
                        );
                        out.push(Response::Overloaded { seq });
                        return;
                    }
                    Err(SubmitError::Disconnected(job)) => {
                        slot.reclaim(job.scratch);
                        self.core.replies.release(slot);
                        out.push(Response::Error { seq, code: error_code::BAD_REQUEST });
                        return;
                    }
                }
                match slot.rx.recv() {
                    Ok(mut groups) => match groups.pop() {
                        Some((_, mut responses)) => {
                            // Move the worker's responses out, then hand
                            // the emptied buffers back to the slot.
                            out.append(&mut responses);
                            groups.push((0, responses));
                            slot.restore(groups);
                        }
                        None => {
                            slot.restore(groups);
                            out.push(Response::Error { seq, code: error_code::BAD_REQUEST });
                        }
                    },
                    // Unreachable while the slot holds its sender, kept
                    // total for safety.
                    Err(_) => out.push(Response::Error { seq, code: error_code::BAD_REQUEST }),
                }
                self.core.replies.release(slot);
                let elapsed = self.core.clock.elapsed_since(entered_ns);
                self.core.metrics.update_rtt.record_duration(elapsed);
                let trace = trace_id_for(session, seq);
                self.core
                    .rtt_exemplars
                    .observe(u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX), trace);
                self.core.record_dispatch(shard as u32, trace, entered_ns, session, seq);
            }
            Request::Batch { seq, updates } => self.handle_batch(seq, updates, out),
        }
    }

    /// Routes one [`Request::Batch`]: group the updates by owning shard,
    /// submit **once per shard queue**, and reassemble the per-update
    /// response groups in batch entry order. A shard whose queue is full
    /// bounces its whole slice as per-update `Overloaded` (the driver
    /// retries those entries); unknown sessions error individually
    /// without touching any shard. The wall clock is read exactly once,
    /// at entry, and threaded through every job.
    ///
    /// The reply channel is leased from the slot pool, but the per-update
    /// grouping and reply vectors still allocate — the allocation-free
    /// invariant covers the single-update path only; batches amortize
    /// their allocations over the whole frame.
    fn handle_batch(&self, seq: u32, updates: Vec<BatchedUpdate>, out: &mut Vec<Response>) {
        let entered_ns = self.core.clock.now_ns();
        // Per-update sequence numbers, kept so the reply loop can derive
        // each update's trace id after `updates` is consumed.
        let seqs: Vec<u32> = updates.iter().map(|u| u.seq).collect();
        let mut replies: Vec<BatchReply> = updates
            .iter()
            .map(|u| BatchReply { session: u.session, responses: Vec::new() })
            .collect();

        // Group by owning shard, preserving batch order within a slice.
        // Session lookups hit the striped table per entry — no single
        // guard serializes the whole batch against the workers anymore.
        let mut by_shard: HashMap<usize, Vec<ShardUpdate>> = HashMap::new();
        for (index, u) in updates.into_iter().enumerate() {
            let pos = self.core.clamped_position(u.x_fx, u.y_fx);
            let cell = self.core.grid.cell_of(pos);
            // Ownership precedes the session check, as on the
            // single-update path: mid-handoff the released session
            // should redirect, not error.
            if let Some(bounce) = self.core.wrong_owner(cell, u.seq) {
                replies[index].responses = vec![bounce];
                continue;
            }
            if !self.core.sessions.contains(u.session) {
                replies[index].responses =
                    vec![Response::Error { seq: u.seq, code: error_code::NO_SESSION }];
                continue;
            }
            let shard = shard_of_index(self.core.grid.cell_index(cell), self.core.num_shards);
            by_shard.entry(shard).or_default().push(ShardUpdate {
                index: index as u32,
                session: u.session,
                req: Request::LocationUpdate {
                    seq: u.seq,
                    x_fx: u.x_fx,
                    y_fx: u.y_fx,
                    motion: u.motion,
                },
            });
        }

        let slot = self.core.replies.acquire();
        let mut submitted = 0usize;
        // Bounce a whole shard slice as per-update responses.
        let bounce = |replies: &mut Vec<BatchReply>, slice: Vec<ShardUpdate>, overloaded| {
            for u in slice {
                replies[u.index as usize].responses = vec![if overloaded {
                    Response::Overloaded { seq: u.req.seq() }
                } else {
                    Response::Error { seq: u.req.seq(), code: error_code::BAD_REQUEST }
                }];
            }
        };
        // Submit under the read guard, but wait for replies outside it so
        // shutdown() is never blocked behind a slow worker.
        {
            let pool = self.pool.read();
            for (shard, slice) in by_shard {
                match pool.as_ref() {
                    None => bounce(&mut replies, slice, false),
                    Some(pool) => {
                        match pool.try_submit(shard, Job::batch(slice, slot.tx.clone(), entered_ns))
                        {
                            Ok(()) => submitted += 1,
                            Err(SubmitError::Full(job)) => {
                                let JobPayload::Batch(slice) = job.payload else {
                                    unreachable!("batch jobs carry batch payloads")
                                };
                                self.core.metrics.overloads.add(slice.len() as u64);
                                self.core.tracer.event(
                                    self.core.num_shards,
                                    "overload",
                                    slice.len() as u64,
                                    shard as u64,
                                );
                                bounce(&mut replies, slice, true);
                            }
                            Err(SubmitError::Disconnected(job)) => {
                                let JobPayload::Batch(slice) = job.payload else {
                                    unreachable!("batch jobs carry batch payloads")
                                };
                                bounce(&mut replies, slice, false);
                            }
                        }
                    }
                }
            }
        }
        // Every submitted job sends exactly one reply, so the loop count
        // replaces the old sender-drop/disconnect protocol (the slot
        // keeps its sender alive for the next lease).
        for _ in 0..submitted {
            let Ok(groups) = slot.rx.recv() else { break };
            for (index, responses) in groups {
                // Each batched update's round trip is the batch's: entry
                // to its worker reply.
                let elapsed = self.core.clock.elapsed_since(entered_ns);
                self.core.metrics.update_rtt.record_duration(elapsed);
                let session = replies[index as usize].session;
                let trace = trace_id_for(session, seqs[index as usize]);
                self.core
                    .rtt_exemplars
                    .observe(u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX), trace);
                self.core.record_dispatch(
                    self.core.num_shards as u32,
                    trace,
                    entered_ns,
                    session,
                    seqs[index as usize],
                );
                replies[index as usize].responses = responses;
            }
        }
        self.core.replies.release(slot);
        out.push(Response::Batch { seq, replies });
    }

    /// Installs a static-target alarm everywhere it belongs: the global
    /// index, every intersecting shard, and the epoch/invalidations of
    /// every intersecting cell. Moving-target alarms are not part of wire
    /// protocol v1.
    fn install_alarm(&self, session: u32, seq: u32, alarm: u32, flags: u32, rect: [u32; 4]) -> Vec<Response> {
        if !self.core.session_exists(session) {
            return vec![Response::Error { seq, code: error_code::NO_SESSION }];
        }
        let region = match dequantize_rect(rect) {
            Some(r) => r,
            None => return vec![Response::Error { seq, code: error_code::BAD_REQUEST }],
        };
        let owner = SubscriberId(flags >> 1);
        let scope = if flags & 1 == 1 {
            AlarmScope::Public { owner }
        } else {
            AlarmScope::Private { owner }
        };
        let center = region.center();
        let alarm = SpatialAlarm::new(
            AlarmId(alarm as u64),
            region,
            AlarmTarget::Static(center),
            scope,
        );
        // A gapped or out-of-order id is a malformed (wire-reachable)
        // frame: reject it with a typed error mapped to a response, never
        // a panic on a worker or router thread.
        if self.core.global_index.try_install(alarm.clone()).is_err() {
            return vec![Response::Error { seq, code: error_code::UNKNOWN_ALARM }];
        }
        for shard in self.core.shards_of_region(region) {
            self.core.shard_indexes[shard].install(&alarm);
        }
        self.core.bump_cells(region);
        self.core.tracer.event(self.core.num_shards, "install", alarm.id().0, session as u64);
        vec![Response::Ack { seq }]
    }

    /// Deactivates an alarm in the global and shard indexes and
    /// invalidates the cached regions of every cell it intersected.
    fn remove_alarm(&self, session: u32, seq: u32, alarm: u32) -> Vec<Response> {
        if !self.core.session_exists(session) {
            return vec![Response::Error { seq, code: error_code::NO_SESSION }];
        }
        let id = AlarmId(alarm as u64);
        let region = {
            let global = self.core.global_index.snapshot();
            if id.0 as usize >= global.len() {
                return vec![Response::Error { seq, code: error_code::UNKNOWN_ALARM }];
            }
            global.alarm(id).region()
        };
        if !self.core.global_index.deactivate(id) {
            return vec![Response::Error { seq, code: error_code::UNKNOWN_ALARM }];
        }
        for shard in self.core.shards_of_region(region) {
            self.core.shard_indexes[shard].deactivate(id);
        }
        self.core.bump_cells(region);
        self.core.tracer.event(self.core.num_shards, "remove", id.0, session as u64);
        vec![Response::Ack { seq }]
    }

    /// Stops the worker threads (queued jobs finish first). Subsequent
    /// location updates are rejected.
    pub fn shutdown(&self) {
        if let Some(pool) = self.pool.write().take() {
            pool.shutdown();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn dequantize_rect(rect: [u32; 4]) -> Option<Rect> {
    Rect::new(
        dequantize_m(rect[0]),
        dequantize_m(rect[1]),
        dequantize_m(rect[2]),
        dequantize_m(rect[3]),
    )
    .ok()
}

/// Quantizes a rect to its wire corners.
pub fn quantize_rect(rect: Rect) -> [u32; 4] {
    [
        quantize_m(rect.min_x()),
        quantize_m(rect.min_y()),
        quantize_m(rect.max_x()),
        quantize_m(rect.max_y()),
    ]
}

/// Re-encodes a pyramid region computed at a *lower* height into the
/// nominal wire layout of `target_height`, by appending the phantom
/// all-zero child blocks the deeper levels would carry.
///
/// In the paper's layout every zero bit at level `l < h` owns a
/// `U × V` child block at level `l + 1`; when the region was computed
/// at height `d < h`, levels `d+1..=h` are exactly those phantom
/// blocks — all zeros, sized `zeros(level) × fanout` cascading. The
/// padded encoding therefore decodes (at `target_height`) to the
/// *same* geometric region the height-`d` computation produced:
/// coarser than a native height-`h` region, but sound, and cheaper by
/// `h − d` levels of geometry probes. This is the degraded-admission
/// encoding bridge (see `DESIGN.md` S18): the client keeps decoding at
/// the height it asked for.
pub(crate) fn pad_bitmap_wire_bits(
    region: &sa_core::BitmapSafeRegion,
    target_height: u32,
) -> BitVec {
    let mut bits = region.to_wire_bits();
    let cfg = region.config();
    if region.is_whole_cell_free() || cfg.height >= target_height {
        return bits;
    }
    let fanout = u64::from(cfg.split_u) * u64::from(cfg.split_v);
    let mut zeros = region.nominal_level_zeros().last().copied().unwrap_or(0);
    for _ in cfg.height..target_height {
        let block = zeros.saturating_mul(fanout);
        bits.push_zeros(block as usize);
        zeros = block;
    }
    bits
}

impl Core {
    fn session_exists(&self, session: u32) -> bool {
        self.sessions.contains(session)
    }

    /// Runs `f` against this thread's pinned generation of `shard`'s
    /// index. Steady state (no publish since the last call on this
    /// thread) is one atomic load — no lock, no allocation.
    fn with_shard_snapshot<R>(&self, shard: usize, f: impl FnOnce(&ShardSnapshot) -> R) -> R {
        SHARD_SNAP.with(|c| {
            let mut cache = c.borrow_mut();
            f(self.shard_indexes[shard].load_cached(&mut cache))
        })
    }

    /// Runs `f` against this thread's pinned generation of the global
    /// alarm index.
    fn with_global_snapshot<R>(&self, f: impl FnOnce(&AlarmSnapshot) -> R) -> R {
        GLOBAL_SNAP.with(|c| {
            let mut cache = c.borrow_mut();
            f(self.global_index.load_cached(&mut cache))
        })
    }

    /// Records the member's dispatch span for one routed update. Its id
    /// and its parent (the client-side root) are *derived* from the
    /// trace id, so worker-side children on this member and the root on
    /// the client join up in assembly with no wire bytes spent.
    fn record_dispatch(&self, shard: u32, trace: u64, entered_ns: u64, session: u32, seq: u32) {
        if !self.spans.enabled(trace) {
            return;
        }
        let member = self.spans.member();
        self.spans.record(
            self.num_shards,
            Span {
                ctx: TraceCtx {
                    trace_id: trace,
                    span_id: dispatch_span(trace, member),
                    parent: client_root_span(trace),
                },
                kind: SpanKind::UpdateDispatch,
                start_us: entered_ns / 1_000,
                dur_us: self.clock.elapsed_since(entered_ns).as_micros() as u64,
                member,
                shard,
                a: u64::from(session),
                b: u64::from(seq),
            },
        );
    }

    /// Records a worker-side span as a child of the update's dispatch
    /// span, `started_ns` to now.
    fn worker_span(&self, shard: usize, trace: u64, kind: SpanKind, started_ns: u64, a: u64, b: u64) {
        if !self.spans.enabled(trace) {
            return;
        }
        let member = self.spans.member();
        self.spans.record(
            shard,
            Span {
                ctx: TraceCtx {
                    trace_id: trace,
                    span_id: self.spans.fresh_span_id(),
                    parent: dispatch_span(trace, member),
                },
                kind,
                start_us: started_ns / 1_000,
                dur_us: self.clock.elapsed_since(started_ns).as_micros() as u64,
                member,
                shard: shard as u32,
                a,
                b,
            },
        );
    }

    /// The shard-queue wait of one update: submit (`enqueued_at_ns`) to
    /// worker pickup (now).
    fn shard_wait_span(&self, shard: usize, session: u32, seq: u32, enqueued_at_ns: u64) {
        let trace = trace_id_for(session, seq);
        self.worker_span(
            shard,
            trace,
            SpanKind::ShardWait,
            enqueued_at_ns,
            u64::from(session),
            u64::from(seq),
        );
    }

    /// Records a federation control-plane span under the wire-carried
    /// context. A zero trace id (an untraced peer) records nothing.
    fn control_span(&self, kind: SpanKind, trace: TraceCtxExt, started_ns: u64, a: u64, b: u64) {
        if trace.trace_id == 0 || !self.spans.enabled(trace.trace_id) {
            return;
        }
        self.spans.record(
            self.num_shards,
            Span {
                ctx: TraceCtx {
                    trace_id: trace.trace_id,
                    span_id: self.spans.fresh_span_id(),
                    parent: trace.parent_span,
                },
                kind,
                start_us: started_ns / 1_000,
                dur_us: self.clock.elapsed_since(started_ns).as_micros() as u64,
                member: self.spans.member(),
                shard: self.num_shards as u32,
                a,
                b,
            },
        );
    }

    /// When federation is enabled and `cell` belongs to another member,
    /// the `WrongOwner` bounce for it; `None` means "process locally"
    /// (standalone server, locally owned cell, or a map gap — the last
    /// treated as local so a malformed map degrades to the
    /// single-server behavior instead of bouncing traffic into a void).
    fn wrong_owner(&self, cell: CellId, seq: u32) -> Option<Response> {
        let fed = self.fed.read();
        let fed = fed.as_ref()?;
        let owner = fed.owner_of(self.grid.morton_of(cell)).unwrap_or(fed.self_id);
        if owner == fed.self_id {
            return None;
        }
        self.metrics.wrong_owner.inc();
        self.tracer.event(self.num_shards, "wrong_owner", owner as u64, fed.epoch);
        Some(Response::WrongOwner { seq, owner, epoch: fed.epoch })
    }

    /// The first leg of a handoff: a read-only snapshot of the named
    /// session plus the subscriber's fired alarms, sorted so the blob's
    /// encoding is deterministic.
    fn export_session(&self, seq: u32, target: u32, trace: TraceCtxExt) -> Vec<Response> {
        let started_ns = self.clock.now_ns();
        let Some((user, strategy, last_cell, delivery_log)) = self.sessions.snapshot(target)
        else {
            // A retried handoff whose release already happened lands
            // here; the mesh treats NO_SESSION as "already moved".
            return vec![Response::Error { seq, code: error_code::NO_SESSION }];
        };
        let mut fired: Vec<u32> = self.fired_for(user).into_iter().map(|a| a.0 as u32).collect();
        fired.sort_unstable();
        self.metrics.handoff_exports.inc();
        self.tracer.event(self.num_shards, "handoff_export", target as u64, user.0 as u64);
        self.control_span(
            SpanKind::HandoffExport,
            trace,
            started_ns,
            u64::from(target),
            u64::from(user.0),
        );
        let state = SessionState {
            user: user.0,
            strategy,
            last_cell: last_cell.map(|c| self.grid.cell_index(c) as u32),
            delivery_log,
            fired,
        };
        vec![Response::SessionState { seq, state }]
    }

    /// The second leg of a handoff: installs the blob at `target`,
    /// overwriting any stale copy, and unions the fired alarms into the
    /// fired set — both idempotent, so a retried import is harmless.
    fn import_session(
        &self,
        seq: u32,
        target: u32,
        state: SessionState,
        trace: TraceCtxExt,
    ) -> Vec<Response> {
        let started_ns = self.clock.now_ns();
        let last_cell = match state.last_cell {
            Some(w) if u64::from(w) >= self.grid.cell_count() => {
                return vec![Response::Error { seq, code: error_code::BAD_REQUEST }];
            }
            Some(w) => Some(self.grid.cell_at_index(u64::from(w))),
            None => None,
        };
        let user = SubscriberId(state.user);
        {
            let mut fired = self.fired.write();
            for &alarm in &state.fired {
                fired.insert((user, AlarmId(u64::from(alarm))));
            }
        }
        self.sessions.insert(
            target,
            Session {
                user,
                strategy: state.strategy,
                last_cell,
                delivery_log: state.delivery_log,
                // Degradation is an admission-time condition of the
                // *admitting* server; an imported session starts at
                // full quality on its new owner.
                degraded_height_cap: None,
            },
        );
        self.metrics.handoff_imports.inc();
        self.tracer.event(self.num_shards, "handoff_import", target as u64, user.0 as u64);
        self.control_span(
            SpanKind::HandoffImport,
            trace,
            started_ns,
            u64::from(target),
            u64::from(user.0),
        );
        vec![Response::Ack { seq }]
    }

    /// The coordinator's topology push: replace the map when the pushed
    /// epoch is newer; acknowledge (idempotently) when it is not.
    fn install_topology(
        &self,
        seq: u32,
        epoch: u64,
        ranges: Vec<CellRange>,
        trace: TraceCtxExt,
    ) -> Vec<Response> {
        if ranges.is_empty() || ranges.windows(2).any(|w| w[0].start > w[1].start) {
            return vec![Response::Error { seq, code: error_code::BAD_REQUEST }];
        }
        let started_ns = self.clock.now_ns();
        let num_ranges = ranges.len() as u64;
        let mut fed = self.fed.write();
        match fed.as_mut() {
            // Only federation members enforce ownership; a standalone
            // server rejects the push rather than silently absorbing a
            // map it would never apply.
            None => vec![Response::Error { seq, code: error_code::BAD_REQUEST }],
            Some(state) => {
                if epoch > state.epoch {
                    state.epoch = epoch;
                    state.ranges = ranges;
                    self.tracer.event(self.num_shards, "topology", epoch, 0);
                    self.control_span(
                        SpanKind::TopologyInstall,
                        trace,
                        started_ns,
                        epoch,
                        num_ranges,
                    );
                }
                vec![Response::Ack { seq }]
            }
        }
    }

    /// Dequantizes a wire position and clamps it into the universe, so a
    /// coordinate that rounded marginally past the boundary still
    /// resolves to a valid cell whose rectangle contains it.
    fn clamped_position(&self, x_fx: u32, y_fx: u32) -> Point {
        let u = self.grid.universe();
        Point::new(
            dequantize_m(x_fx).clamp(u.min_x(), u.max_x()),
            dequantize_m(y_fx).clamp(u.min_y(), u.max_y()),
        )
    }

    fn shards_of_region(&self, region: Rect) -> Vec<usize> {
        let mut shards: Vec<usize> = self
            .grid
            .cells_intersecting(region)
            .map(|cell| shard_of_index(self.grid.cell_index(cell), self.num_shards))
            .collect();
        shards.sort_unstable();
        shards.dedup();
        shards
    }

    fn bump_cells(&self, region: Rect) {
        for cell in self.grid.cells_intersecting(region) {
            self.cache.bump_epoch(self.grid.cell_index(cell));
        }
    }

    /// The subscriber's already-fired alarm set (snapshot).
    fn fired_for(&self, user: SubscriberId) -> HashSet<AlarmId> {
        self.fired.read().iter().filter(|(u, _)| *u == user).map(|(_, a)| *a).collect()
    }

    /// OPT client-side trigger notification: record the firing (routed
    /// inline — it only touches the fired set).
    fn notify_trigger(&self, session: u32, seq: u32, alarm: u32) -> Vec<Response> {
        let user = match self.sessions.peek(session) {
            Some((user, _, _)) => user,
            None => return vec![Response::Error { seq, code: error_code::NO_SESSION }],
        };
        if self.fired.write().insert((user, AlarmId(alarm as u64))) {
            self.metrics.triggers.inc();
            self.tracer.event(self.num_shards, "trigger", user.0 as u64, alarm as u64);
        }
        vec![Response::Ack { seq }]
    }

    /// The shard-worker entry point: evaluate one location update or
    /// post-failure resync, appending the response sequence to `out`
    /// (normally a recycled buffer from the router's reply-slot pool).
    fn process_into(&self, shard: usize, session: u32, req: &Request, out: &mut Vec<Response>) {
        let (seq, x_fx, y_fx, motion, resync_acked) = match *req {
            Request::LocationUpdate { seq, x_fx, y_fx, motion } => {
                (seq, x_fx, y_fx, motion, None)
            }
            Request::Resync { seq, x_fx, y_fx, motion, acked } => {
                (seq, x_fx, y_fx, motion, Some(acked))
            }
            _ => {
                out.push(Response::Error { seq: req.seq(), code: error_code::BAD_REQUEST });
                return;
            }
        };
        let (user, strategy, degraded_cap) = match self.sessions.peek(session) {
            Some(header) => header,
            None => {
                out.push(Response::Error { seq, code: error_code::NO_SESSION });
                return;
            }
        };
        self.metrics.location_updates.inc();
        let trace = trace_id_for(session, seq);

        let pos = self.clamped_position(x_fx, y_fx);
        let (heading, _speed) = unpack_motion(motion);
        let cell = self.grid.cell_of(pos);
        let cell_rect = self.grid.cell_rect(cell);
        let cell_word = self.grid.cell_index(cell) as u32;
        self.cell_updates[cell_word as usize].inc();

        let before = out.len();
        if let Some(acked) = resync_acked {
            // A resync is never an error, whatever state the session is
            // in: re-send the deliveries past the client's cursor (lost
            // on a broken downlink) and drop the quick-update shortcut
            // so the terminal response reinstalls a full region.
            self.metrics.resyncs.inc();
            self.tracer.event(shard, "resync", session as u64, acked as u64);
            let redeliver_started_ns = self.clock.now_ns();
            let redeliver = self.sessions.with_mut(session, |s| {
                s.last_cell = None;
                s.delivery_log.get(acked as usize..).unwrap_or(&[]).to_vec()
            });
            for alarm in redeliver.unwrap_or_default() {
                self.metrics.redeliveries.inc();
                out.push(Response::TriggerDelivery { seq, alarm });
            }
            // Recorded even when nothing was pending: the redelivery
            // leg ran, and a post-handoff resync delivering 0 is as
            // causally interesting as one delivering 5 (b = count).
            self.worker_span(
                shard,
                trace,
                SpanKind::Redelivery,
                redeliver_started_ns,
                session as u64,
                (out.len() - before) as u64,
            );
        }

        // Server-side trigger check against the shard-local index; the
        // triggering alarm contains `pos`, hence intersects `cell`, hence
        // is owned by this shard. Hits land in a per-thread scratch
        // buffer, so the steady-state case (no triggering alarms) queries
        // the pinned snapshot lock-free, finds nothing, and never
        // allocates — and the `fired` write lock is not taken at all.
        let fired_now = TRIGGER_SCRATCH.with(|scratch| {
            let mut triggering = scratch.borrow_mut();
            triggering.clear();
            self.with_shard_snapshot(shard, |snap| {
                snap.for_each_triggering(user, pos, |id| triggering.push(id));
            });
            if triggering.is_empty() {
                return false;
            }
            let mut newly_fired = Vec::new();
            {
                let mut fired = self.fired.write();
                for &id in triggering.iter() {
                    if fired.insert((user, id)) {
                        self.metrics.triggers.inc();
                        self.tracer.event(shard, "trigger", user.0 as u64, id.0);
                        newly_fired.push(id.0 as u32);
                    }
                }
            }
            if newly_fired.is_empty() {
                return false;
            }
            // First-time firings join the session's delivery log so a
            // later resync can recover them if this response is lost.
            self.sessions.with_mut(session, |s| s.delivery_log.extend_from_slice(&newly_fired));
            out.extend(newly_fired.iter().map(|&alarm| Response::TriggerDelivery { seq, alarm }));
            true
        });

        match strategy {
            StrategySpec::Mwpsr => {
                let candidates =
                    self.with_shard_snapshot(shard, |s| s.relevant_intersecting(user, cell_rect));
                let fired = self.fired_for(user);
                let obstacles: Vec<Rect> = candidates
                    .iter()
                    .filter(|v| !fired.contains(&v.id))
                    .map(|v| v.region)
                    .collect();
                self.metrics.region_computations.inc();
                let started_ns = self.clock.now_ns();
                let region =
                    MwpsrComputer::non_weighted().compute(pos, heading, cell_rect, &obstacles);
                self.metrics
                    .compute_hist(strategy)
                    .record_duration(self.clock.elapsed_since(started_ns));
                self.worker_span(
                    shard,
                    trace,
                    SpanKind::RegionCompute,
                    started_ns,
                    session as u64,
                    cell_word as u64,
                );
                out.push(Response::RectInstall {
                    seq,
                    cell: cell_word,
                    rect: quantize_rect(region.rect()),
                });
            }
            StrategySpec::Pbsr { height } => {
                let prev = self.sessions.with_mut(session, |s| s.last_cell.replace(cell)).flatten();
                // §4.2: inside the base cell the region is only refreshed
                // when an alarm actually fired (the quick update); plain
                // blocked-subcell reports get a bare acknowledgement.
                if prev == Some(cell) && !fired_now {
                    out.push(Response::Ack { seq });
                } else {
                    // A degraded admission computes the pyramid at a
                    // capped height (fewer levels of geometry probes)
                    // and pads the encoding back to the height the
                    // client decodes with — same region, coarser and
                    // cheaper (DESIGN.md S18).
                    let eff = degraded_cap.map_or(height, |cap| height.min(cap.max(1)));
                    let started_ns = self.clock.now_ns();
                    let region = self.pbsr_region(shard, user, cell, cell_rect, eff, trace);
                    self.metrics
                        .compute_hist(strategy)
                        .record_duration(self.clock.elapsed_since(started_ns));
                    self.worker_span(
                        shard,
                        trace,
                        SpanKind::RegionCompute,
                        started_ns,
                        session as u64,
                        cell_word as u64,
                    );
                    out.push(Response::BitmapInstall {
                        seq,
                        cell: cell_word,
                        bits: pad_bitmap_wire_bits(&region, height),
                    });
                }
            }
            StrategySpec::Opt => {
                let started_ns = self.clock.now_ns();
                let views =
                    self.with_shard_snapshot(shard, |s| s.all_intersecting(user, cell_rect));
                let fired = self.fired_for(user);
                self.metrics.region_computations.inc();
                let alarms = views
                    .iter()
                    .filter(|v| !fired.contains(&v.id))
                    .map(|v| crate::wire::PushedAlarm {
                        alarm: v.id.0 as u32,
                        relevant: v.relevant,
                        rect: quantize_rect(v.region),
                    })
                    .collect();
                self.metrics
                    .compute_hist(strategy)
                    .record_duration(self.clock.elapsed_since(started_ns));
                self.worker_span(
                    shard,
                    trace,
                    SpanKind::RegionCompute,
                    started_ns,
                    session as u64,
                    cell_word as u64,
                );
                out.push(Response::AlarmPush { seq, cell: cell_word, alarms });
            }
            StrategySpec::SafePeriod => {
                self.metrics.region_computations.inc();
                let started_ns = self.clock.now_ns();
                let fired = self.fired_for(user);
                let (nearest, _) = self.with_global_snapshot(|g| {
                    g.nearest_relevant_distance(user, pos, |id| !fired.contains(&id))
                });
                let universe = self.grid.universe();
                let max_extent = universe.width().max(universe.height()) * 2.0;
                let period_s = nearest.unwrap_or(max_extent) / self.v_max;
                self.metrics
                    .compute_hist(strategy)
                    .record_duration(self.clock.elapsed_since(started_ns));
                self.worker_span(
                    shard,
                    trace,
                    SpanKind::RegionCompute,
                    started_ns,
                    session as u64,
                    cell_word as u64,
                );
                // Flooring to milliseconds only shortens the silence —
                // the safe direction.
                let period_ms = ((period_s * 1_000.0).floor() as u64).min(SEQ_MASK as u64) as u32;
                out.push(Response::SafePeriodGrant { period_ms });
            }
        }
    }

    /// The PBSR terminal payload for one (user, cell): served from the
    /// public-bitmap cache when the user's view of the cell equals the
    /// public view (no personal obstacles, no fired public alarms),
    /// computed fresh otherwise.
    fn pbsr_region(
        &self,
        shard: usize,
        user: SubscriberId,
        cell: CellId,
        cell_rect: Rect,
        height: u32,
        trace: u64,
    ) -> sa_core::BitmapSafeRegion {
        let views = self.with_shard_snapshot(shard, |s| s.relevant_intersecting(user, cell_rect));
        let fired = self.fired_for(user);
        let personal_unfired: Vec<Rect> = views
            .iter()
            .filter(|v| !v.public && !fired.contains(&v.id))
            .map(|v| v.region)
            .collect();
        let any_public_fired = views.iter().any(|v| v.public && fired.contains(&v.id));
        let computer = PyramidComputer::new(PyramidConfig::three_by_three(height));

        if personal_unfired.is_empty() && !any_public_fired {
            // The user's obstacle set is exactly the cell's public set:
            // the cacheable case the paper precomputes offline.
            let cell_index = self.grid.cell_index(cell);
            let lookup_started_ns = self.clock.now_ns();
            let cached = self.cache.lookup(cell_index, height);
            self.metrics
                .cache_lookup
                .record_duration(self.clock.elapsed_since(lookup_started_ns));
            self.worker_span(
                shard,
                trace,
                SpanKind::CacheLookup,
                lookup_started_ns,
                cell_index,
                u64::from(cached.is_some()),
            );
            if let Some(region) = cached {
                return region;
            }
            let epoch = self.cache.epoch(cell_index);
            let public: Vec<Rect> =
                views.iter().filter(|v| v.public).map(|v| v.region).collect();
            self.metrics.region_computations.inc();
            let region = computer.compute(cell_rect, &public);
            self.cache.insert(cell_index, height, epoch, region.clone());
            region
        } else {
            let obstacles: Vec<Rect> = views
                .iter()
                .filter(|v| !fired.contains(&v.id))
                .map(|v| v.region)
                .collect();
            self.metrics.region_computations.inc();
            computer.compute(cell_rect, &obstacles)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_core::{BitmapSafeRegion, PyramidComputer, SafeRegion};

    fn region(height: u32, alarms: &[Rect]) -> BitmapSafeRegion {
        let cell = Rect::new(0.0, 0.0, 9.0, 9.0).unwrap();
        PyramidComputer::new(PyramidConfig::three_by_three(height)).compute(cell, alarms)
    }

    #[test]
    fn padded_bits_decode_at_the_requested_height_to_the_coarse_region() {
        let cell = Rect::new(0.0, 0.0, 9.0, 9.0).unwrap();
        let alarm = Rect::new(1.0, 1.0, 2.0, 2.0).unwrap();
        let coarse = region(2, &[alarm]);
        let bits = pad_bitmap_wire_bits(&coarse, 5);
        let decoded = BitmapSafeRegion::from_wire_bits(
            cell,
            PyramidConfig::three_by_three(5),
            &bits,
        )
        .expect("padded bits must decode at the requested height");
        assert!(
            (decoded.coverage() - coarse.coverage()).abs() < 1e-9,
            "padding must not change the region's area: {} vs {}",
            decoded.coverage(),
            coarse.coverage()
        );
        // Spot-check containment agreement on a grid of probe points.
        for ix in 0..30 {
            for iy in 0..30 {
                let p = Point::new(0.15 + ix as f64 * 0.3, 0.15 + iy as f64 * 0.3);
                assert_eq!(
                    decoded.contains(p),
                    coarse.contains(p),
                    "padded and coarse regions disagree at {p:?}"
                );
            }
        }
    }

    #[test]
    fn padding_is_identity_at_or_above_the_target_height() {
        let alarm = Rect::new(1.0, 1.0, 2.0, 2.0).unwrap();
        let native = region(3, &[alarm]);
        assert_eq!(pad_bitmap_wire_bits(&native, 3), native.to_wire_bits());
        assert_eq!(pad_bitmap_wire_bits(&native, 2), native.to_wire_bits());
    }

    #[test]
    fn whole_cell_free_needs_no_padding() {
        // No alarms → the root bit alone encodes the region at any height.
        let free = region(2, &[]);
        assert!(free.is_whole_cell_free());
        let bits = pad_bitmap_wire_bits(&free, 6);
        assert_eq!(bits, free.to_wire_bits());
        let cell = Rect::new(0.0, 0.0, 9.0, 9.0).unwrap();
        let decoded = BitmapSafeRegion::from_wire_bits(cell, PyramidConfig::three_by_three(6), &bits)
            .expect("root-free bits are height-independent");
        assert!(decoded.is_whole_cell_free());
    }
}
