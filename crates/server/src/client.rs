//! Client-side strategy mirrors and the link-resilience state machine.
//!
//! Each [`Client`] owns one transport connection and reproduces the
//! client half of a `sa-sim` strategy over the wire protocol:
//!
//! * **MWPSR** — silent while inside the installed rectangle, uplink on
//!   exit, install the rectangle the server answers with.
//! * **PBSR** — silent while the pyramid bitmap grants the position,
//!   uplink on a blocked subcell or base-cell exit; a bare `Ack` means
//!   the current bitmap is still the right one (§4.2 quick update).
//! * **OPT** — uplink only on base-cell change; between uplinks the
//!   client checks its pushed alarm set locally and notifies the server
//!   of client-detected firings.
//! * **Safe period** — silent until the granted period expires.
//!
//! Every alarm firing observed by the client — delivered by the server
//! or detected locally — is recorded as a [`FiredEvent`] with the step
//! it happened at, so a replay can be diffed against the simulator's
//! ground truth. Deliveries are deduplicated by alarm id (alarms fire
//! once per subscriber), so injected duplicates and resync re-deliveries
//! never double-record.
//!
//! # Resilience: retry → degraded → resync → steady
//!
//! With a [`ResiliencePolicy`] enabled, a transient exchange failure
//! (lost message, timeout, broken link — see
//! [`TransportError::is_transient`]) no longer aborts the client.
//! Instead the client walks a four-state machine:
//!
//! 1. **Retry** — the unacknowledged uplink is retried up to
//!    `max_retries` times under capped exponential backoff with jitter
//!    ([`Backoff`]). Because the first send *may* have been processed
//!    (only the response lost), every retry is a
//!    [`Request::Resync`] carrying the client's delivery cursor, so the
//!    server re-sends any trigger deliveries the downlink swallowed.
//! 2. **Degraded** — when retries are exhausted the client stops
//!    talking and monitors **against its last installed safe region**,
//!    which stays sound by the paper's safe-region invariant: no
//!    unfired relevant alarm intersects the region, so silence inside
//!    it can never miss a firing. Samples that *would* have required an
//!    uplink (region exit, period expiry, cell change) are buffered in
//!    order with their step numbers; OPT clients keep detecting firings
//!    locally and buffer the notifies.
//! 3. **Resync** — every subsequent sample first probes the link once:
//!    buffered operations are replayed in order (samples as `Resync`
//!    requests attributed to their *original* steps, notifies as plain
//!    `TriggerNotify`), recovering both lost deliveries and the
//!    crossings that happened while disconnected.
//! 4. **Steady** — once the backlog drains the client is back to
//!    normal silent-inside-the-region operation.
//!
//! What degraded mode does **not** guarantee: alarms installed or
//! removed *during* the outage are only observed at resync, and the
//! buffered crossings are reported late in wall-clock terms (their
//! step attribution stays exact).

use crate::clock::{SharedClock, SystemClock};
use crate::transport::{Transport, TransportError};
use crate::wire::{
    dequantize_m, pack_motion, quantize_m, BatchedUpdate, PushedAlarm, Request, Response,
    StrategySpec,
};
use rand::{rngs::SmallRng, Rng, SeedableRng};
use sa_alarms::{AlarmId, SubscriberId};
use sa_core::{BitmapSafeRegion, PyramidConfig, SafeRegion as _};
use sa_geometry::{CellId, Grid, Point, Rect};
use sa_obs::{Counter, Histogram, Registry};
use sa_sim::FiredEvent;
use std::collections::{HashSet, VecDeque};
use std::time::Duration;

/// How many times an `Overloaded` bounce is retried before giving up.
const MAX_OVERLOAD_RETRIES: u32 = 10_000;

/// Reconciliation rounds [`Client::finish`] attempts before declaring
/// the backlog undeliverable.
const FINISH_ROUNDS: u32 = 64;

/// Capped exponential backoff with equal jitter, deterministic under a
/// seeded RNG.
///
/// Retry `attempt` (0-based) sleeps a duration drawn uniformly from
/// `[exp/2, exp]` where `exp = min(cap, base · 2^attempt)` — the
/// "equal jitter" scheme: never less than half the exponential target
/// (so retry pressure still decays exponentially) and never more than
/// the cap (so a long outage cannot push waits unboundedly).
#[derive(Debug)]
pub struct Backoff {
    base: Duration,
    cap: Duration,
    rng: SmallRng,
}

impl Backoff {
    /// A schedule starting at `base`, capped at `cap`, jittered by a
    /// stream seeded with `seed`.
    pub fn new(base: Duration, cap: Duration, seed: u64) -> Backoff {
        Backoff { base, cap, rng: SmallRng::seed_from_u64(seed) }
    }

    /// The sleep before retry `attempt` (0-based).
    pub fn delay(&mut self, attempt: u32) -> Duration {
        let base_ns = self.base.as_nanos().min(u128::from(u64::MAX)) as u64;
        let cap_ns = self.cap.as_nanos().min(u128::from(u64::MAX)) as u64;
        let scale = 1u64.checked_shl(attempt).unwrap_or(u64::MAX);
        let exp = base_ns.saturating_mul(scale).min(cap_ns);
        if exp == 0 {
            return Duration::ZERO;
        }
        let half = exp / 2;
        Duration::from_nanos(self.rng.gen_range(half..=exp))
    }
}

/// Knobs of the client's retry/degraded-mode machinery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResiliencePolicy {
    /// Backoff-retried attempts after the initial send before the
    /// client declares the link down and enters degraded mode.
    pub max_retries: u32,
    /// First backoff step.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
    /// Seed of the jitter stream (keep it distinct per client so
    /// retries do not synchronize into thundering herds).
    pub seed: u64,
}

impl ResiliencePolicy {
    /// A schedule tuned for the replay drivers: microsecond-scale
    /// backoff so a chaos run over thousands of exchanges stays fast,
    /// with enough attempts that an isolated drop almost never
    /// escalates to degraded mode.
    pub fn standard(seed: u64) -> ResiliencePolicy {
        ResiliencePolicy {
            max_retries: 6,
            backoff_base: Duration::from_micros(50),
            backoff_cap: Duration::from_millis(2),
            seed,
        }
    }
}

/// One buffered operation awaiting reconciliation, in arrival order.
#[derive(Debug, Clone, Copy)]
enum PendingOp {
    /// A position sample that required server contact while the link
    /// was down; replayed as a [`Request::Resync`] attributed to `step`.
    Sample { step: u32, pos: Point, heading: f64, speed: f64 },
    /// A locally detected firing (OPT) whose notify could not be sent.
    Notify { alarm: u32 },
}

/// The resilience state riding along a client when a
/// [`ResiliencePolicy`] is enabled.
#[derive(Debug)]
struct Resilience {
    policy: ResiliencePolicy,
    backoff: Backoff,
    /// Buffered operations, oldest first.
    pending: VecDeque<PendingOp>,
    /// True while the client has given up on the link and buffers.
    degraded: bool,
    /// When the current outage was first observed, in client-clock
    /// nanoseconds (for the reconnect RTT histogram).
    outage_started_ns: Option<u64>,
    /// Simulated seconds spent degraded, not yet flushed to the
    /// whole-second `sa_client_degraded_seconds` counter.
    degraded_acc_s: f64,
}

impl Resilience {
    fn new(policy: ResiliencePolicy) -> Resilience {
        Resilience {
            backoff: Backoff::new(policy.backoff_base, policy.backoff_cap, policy.seed),
            policy,
            pending: VecDeque::new(),
            degraded: false,
            outage_started_ns: None,
            degraded_acc_s: 0.0,
        }
    }
}

/// Pre-resolved `sa-obs` handles for the client-side failure metrics
/// (shared series — every instrumented client of a run aggregates into
/// them).
#[derive(Debug, Clone)]
struct ClientMeter {
    /// `sa_client_retries_total`.
    retries: Counter,
    /// `sa_client_resyncs_total`.
    resyncs: Counter,
    /// `sa_client_degraded_seconds` (whole simulated seconds).
    degraded_seconds: Counter,
    /// `sa_client_reconnect_rtt_ns` — outage start to backlog drained.
    reconnect_rtt: Histogram,
    /// `sa_client_redirects_total` — federation `WrongOwner` bounces.
    redirects: Counter,
}

/// Per-client message counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ClientStats {
    /// Location-update uplinks that were accepted (retries not counted).
    pub uplinks: u64,
    /// Client-detected firings notified to the server (OPT only).
    pub notifies: u64,
    /// Safe-region installs received (rectangle or bitmap).
    pub region_installs: u64,
    /// Alarm-set pushes received (OPT only).
    pub alarm_pushes: u64,
    /// Safe-period grants received.
    pub grants: u64,
    /// Trigger deliveries received from the server.
    pub deliveries: u64,
    /// Firings the client detected locally (OPT only).
    pub client_fires: u64,
    /// `Overloaded` bounces that were retried.
    pub overload_retries: u64,
    /// Encoded request bytes sent.
    pub bytes_up: u64,
    /// Encoded response bytes received.
    pub bytes_down: u64,
    /// Transient-failure retries (backoff attempts), excluding
    /// overload bounces.
    pub retries: u64,
    /// `Resync` requests acknowledged (retry path + reconciliation).
    pub resyncs: u64,
    /// Samples processed while the link was degraded.
    pub degraded_steps: u64,
    /// Samples buffered for post-reconnect reconciliation.
    pub buffered_samples: u64,
    /// Locally detected firings whose notify was buffered.
    pub buffered_notifies: u64,
    /// Duplicate trigger deliveries ignored by the dedup gate.
    pub dup_deliveries: u64,
    /// Federation `WrongOwner` bounces surfaced by the retry machine.
    /// Redirects are **not** retried here — re-routing is the federation
    /// router's job, so each bounce escapes immediately as
    /// [`TransportError::WrongOwner`] instead of burning backoff budget.
    pub redirects: u64,
}

/// An alarm the server pushed for local monitoring (OPT).
#[derive(Debug, Clone, Copy)]
struct LocalAlarm {
    id: AlarmId,
    relevant: bool,
    rect: Rect,
}

#[derive(Debug)]
enum State {
    Rect { region: Option<Rect> },
    Bitmap { region: Option<BitmapSafeRegion> },
    Opt { last_cell: Option<CellId>, alarms: Vec<LocalAlarm> },
    SafePeriod { until: u32 },
}

/// Context of an uplink staged by [`Client::poll_update`], consumed when
/// [`Client::complete_update`] absorbs the batch round trip.
#[derive(Debug, Clone, Copy)]
struct PendingBatch {
    step: u32,
    cell: CellId,
}

/// One simulated mobile client bound to a strategy and a transport.
pub struct Client<T: Transport> {
    transport: T,
    user: SubscriberId,
    strategy: StrategySpec,
    grid: Grid,
    /// Simulation step length in seconds (converts safe periods to
    /// silent steps exactly like the simulator).
    dt: f64,
    state: State,
    seq: u32,
    fired: Vec<FiredEvent>,
    /// Alarm ids already recorded as fired (delivered or local) — the
    /// dedup gate that makes duplicate delivery harmless.
    fired_alarms: HashSet<u32>,
    /// Alarm ids received as server `TriggerDelivery` frames; its size
    /// is the delivery cursor a `Resync` advertises.
    counted_deliveries: HashSet<u32>,
    resilience: Option<Resilience>,
    meter: Option<ClientMeter>,
    stats: ClientStats,
    /// Set between a [`Client::poll_update`] that staged an uplink and
    /// the [`Client::complete_update`] that absorbs its responses.
    pending_batch: Option<PendingBatch>,
    /// Backoff sleeps and outage timing read this clock; a
    /// [`crate::clock::VirtualClock`] makes them simulated.
    clock: SharedClock,
}

impl<T: Transport> Client<T> {
    /// Performs the `Hello` handshake and returns a ready client.
    ///
    /// # Errors
    ///
    /// Fails when the handshake cannot be exchanged or is rejected.
    pub fn connect(
        mut transport: T,
        user: SubscriberId,
        strategy: StrategySpec,
        grid: Grid,
        dt: f64,
    ) -> Result<Client<T>, TransportError> {
        assert!(dt > 0.0, "sample period must be positive");
        let hello = Request::Hello { seq: 0, user: user.0, strategy };
        let mut stats = ClientStats::default();
        stats.bytes_up += hello.encoded_len() as u64;
        let resps = transport.request(hello)?;
        stats.bytes_down += resps.iter().map(|r| r.encoded_len() as u64).sum::<u64>();
        if !matches!(resps.as_slice(), [Response::Ack { .. }]) {
            return Err(TransportError::Protocol("hello was not acknowledged"));
        }
        let state = match strategy {
            StrategySpec::Mwpsr => State::Rect { region: None },
            StrategySpec::Pbsr { .. } => State::Bitmap { region: None },
            StrategySpec::Opt => State::Opt { last_cell: None, alarms: Vec::new() },
            StrategySpec::SafePeriod => State::SafePeriod { until: 0 },
        };
        Ok(Client {
            transport,
            user,
            strategy,
            grid,
            dt,
            state,
            seq: 0,
            fired: Vec::new(),
            fired_alarms: HashSet::new(),
            counted_deliveries: HashSet::new(),
            resilience: None,
            meter: None,
            stats,
            pending_batch: None,
            clock: SystemClock::shared(),
        })
    }

    /// Replaces the clock backoff sleeps and outage timing read
    /// (deterministic harnesses hand every client one
    /// [`crate::clock::VirtualClock`]).
    pub fn set_clock(&mut self, clock: SharedClock) {
        self.clock = clock;
    }

    /// Enables the retry/degraded-mode machinery. Without this, any
    /// transport failure aborts the client (the pre-chaos behaviour).
    pub fn enable_resilience(&mut self, policy: ResiliencePolicy) {
        self.resilience = Some(Resilience::new(policy));
    }

    /// Registers the client failure metrics (`sa_client_retries_total`,
    /// `sa_client_resyncs_total`, `sa_client_degraded_seconds`,
    /// `sa_client_reconnect_rtt_ns`, `sa_client_redirects_total`) on
    /// `registry`. Instrumented clients sharing one registry aggregate
    /// into the same series.
    pub fn instrument(&mut self, registry: &Registry) {
        self.meter = Some(ClientMeter {
            retries: registry.counter("sa_client_retries_total"),
            resyncs: registry.counter("sa_client_resyncs_total"),
            degraded_seconds: registry.counter("sa_client_degraded_seconds"),
            reconnect_rtt: registry.histogram("sa_client_reconnect_rtt_ns"),
            redirects: registry.counter("sa_client_redirects_total"),
        });
    }

    /// The subscriber this client simulates.
    pub fn user(&self) -> SubscriberId {
        self.user
    }

    /// The strategy this client runs.
    pub fn strategy(&self) -> StrategySpec {
        self.strategy
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ClientStats {
        self.stats
    }

    /// True while the client has declared the link down and buffers
    /// operations instead of exchanging.
    pub fn is_degraded(&self) -> bool {
        self.resilience.as_ref().is_some_and(|r| r.degraded)
    }

    /// Buffered operations awaiting reconciliation.
    pub fn pending_ops(&self) -> usize {
        self.resilience.as_ref().map_or(0, |r| r.pending.len())
    }

    /// Mutable access to the underlying transport — the federation
    /// batch driver needs it to steer ownership (topology refresh,
    /// session handoff) between polls without tearing the client down.
    pub fn transport_mut(&mut self) -> &mut T {
        &mut self.transport
    }

    /// Every firing observed so far, in observation order.
    pub fn fired(&self) -> &[FiredEvent] {
        &self.fired
    }

    /// Drains the recorded firings.
    pub fn take_fired(&mut self) -> Vec<FiredEvent> {
        std::mem::take(&mut self.fired)
    }

    /// Feeds one position sample; exchanges messages with the server
    /// exactly when the strategy requires it, riding out transient
    /// transport failures when a [`ResiliencePolicy`] is enabled.
    ///
    /// # Errors
    ///
    /// Fails when the transport breaks non-transiently (or at all,
    /// without resilience), or the server answers outside the protocol.
    pub fn observe(
        &mut self,
        step: u32,
        pos: Point,
        heading: f64,
        speed: f64,
    ) -> Result<(), TransportError> {
        // While degraded, probe the link once; only a fully drained
        // backlog returns this sample to normal processing below.
        if self.is_degraded() && !self.try_reconcile()? {
            self.degraded_observe(step, pos, heading, speed);
            return Ok(());
        }
        self.steady_observe(step, pos, heading, speed)
    }

    /// Drains any degraded-mode backlog, retrying with backoff, so a
    /// replay ends with every buffered crossing reconciled. Call after
    /// the last [`Client::observe`].
    ///
    /// # Errors
    ///
    /// Fails on a non-transient error, or with
    /// [`TransportError::TimedOut`] when the link never came back.
    pub fn finish(&mut self) -> Result<(), TransportError> {
        if self.resilience.is_none() || !self.is_degraded() {
            return Ok(());
        }
        for attempt in 0..FINISH_ROUNDS {
            if self.try_reconcile()? {
                return Ok(());
            }
            self.count_retry();
            let delay = self
                .resilience
                .as_mut()
                .expect("resilience checked above")
                .backoff
                .delay(attempt.min(16));
            self.clock.sleep(delay);
        }
        Err(TransportError::TimedOut)
    }

    /// Stages one position sample for a **batched** exchange instead of
    /// exchanging inline: returns the [`BatchedUpdate`] entry to put in
    /// the step's [`Request::Batch`] when the strategy demands server
    /// contact, `None` when the sample is silent. OPT local firings are
    /// still detected (and notified on this client's own transport —
    /// they are rare and must reach the server before the next batch).
    ///
    /// The caller must feed the entry's response group back through
    /// [`Client::complete_update`] before polling the next step. The
    /// batch path assumes a reliable transport (no [`ResiliencePolicy`]
    /// machinery runs here).
    ///
    /// # Errors
    ///
    /// Fails when an OPT notify cannot be exchanged or is rejected.
    pub fn poll_update(
        &mut self,
        session: u32,
        step: u32,
        pos: Point,
        heading: f64,
        speed: f64,
    ) -> Result<Option<BatchedUpdate>, TransportError> {
        debug_assert!(
            self.pending_batch.is_none(),
            "complete_update must absorb the previous step before the next poll"
        );
        let cell = self.grid.cell_of(pos);
        if !self.uplink_needed(step, pos, cell) {
            for id in self.local_opt_fires(pos) {
                if self.record_fire(id.0 as u32, step) {
                    self.stats.client_fires += 1;
                }
                if !self.resilient_notify(id.0 as u32)? {
                    return Err(TransportError::Protocol("notify failed on the batch path"));
                }
                self.stats.notifies += 1;
            }
            return Ok(None);
        }
        let seq = self.next_seq();
        let update = BatchedUpdate {
            session,
            seq,
            x_fx: quantize_m(pos.x),
            y_fx: quantize_m(pos.y),
            motion: pack_motion(heading, speed),
        };
        // 20 bytes: the entry's exact footprint inside the batch frame.
        self.stats.bytes_up += 20;
        self.pending_batch = Some(PendingBatch { step, cell });
        Ok(Some(update))
    }

    /// Absorbs the response group a batched update produced. Returns
    /// `false` when the terminal response was `Overloaded` — the staged
    /// state stays pending and the caller must re-send the same entry
    /// (its retransmission bytes are charged here).
    ///
    /// # Errors
    ///
    /// Fails when no update is pending, the group is empty, or a
    /// response is outside the protocol.
    pub fn complete_update(&mut self, responses: Vec<Response>) -> Result<bool, TransportError> {
        let pending = self
            .pending_batch
            .ok_or(TransportError::Protocol("no batched update pending"))?;
        if responses.is_empty() {
            return Err(TransportError::Protocol("empty batch response group"));
        }
        self.stats.bytes_down += responses.iter().map(|r| r.encoded_len() as u64).sum::<u64>();
        if matches!(responses.last(), Some(Response::Overloaded { .. })) {
            self.stats.overload_retries += 1;
            self.stats.bytes_up += 20;
            return Ok(false);
        }
        self.pending_batch = None;
        self.stats.uplinks += 1;
        for resp in responses {
            self.absorb(resp, pending.step, pending.cell)?;
        }
        Ok(true)
    }

    /// Steady-state sample processing (the pre-chaos `observe` body,
    /// with resilient exchanges).
    fn steady_observe(
        &mut self,
        step: u32,
        pos: Point,
        heading: f64,
        speed: f64,
    ) -> Result<(), TransportError> {
        let cell = self.grid.cell_of(pos);
        if !self.uplink_needed(step, pos, cell) {
            // OPT monitors its pushed set locally between cell changes.
            let locally_fired = self.local_opt_fires(pos);
            for (i, id) in locally_fired.iter().enumerate() {
                if self.record_fire(id.0 as u32, step) {
                    self.stats.client_fires += 1;
                }
                match self.resilient_notify(id.0 as u32)? {
                    true => self.stats.notifies += 1,
                    false => {
                        // Link is down: buffer this notify and the rest.
                        for later in &locally_fired[i..] {
                            if self.record_fire(later.0 as u32, step) {
                                self.stats.client_fires += 1;
                            }
                            self.buffer(PendingOp::Notify { alarm: later.0 as u32 });
                        }
                        self.go_degraded();
                        return Ok(());
                    }
                }
            }
            return Ok(());
        }

        match self.resilient_uplink(step, pos, heading, speed)? {
            Some(resps) => {
                self.stats.uplinks += 1;
                for resp in resps {
                    self.absorb(resp, step, cell)?;
                }
                Ok(())
            }
            None => {
                // Retries exhausted: this sample still needs the server
                // — buffer it and fall back to the last safe region.
                self.buffer(PendingOp::Sample { step, pos, heading, speed });
                self.go_degraded();
                // With the server unreachable, the local OPT check must
                // run even on a cell-changed sample: a boundary-spanning
                // alarm entered right now would otherwise be detected a
                // step late. The buffered replay re-fires it server-side
                // at this same step, so the records agree.
                for id in self.local_opt_fires(pos) {
                    if self.record_fire(id.0 as u32, step) {
                        self.stats.client_fires += 1;
                    }
                    self.buffer(PendingOp::Notify { alarm: id.0 as u32 });
                }
                Ok(())
            }
        }
    }

    /// Degraded-mode sample processing: monitor against the (stale but
    /// sound) installed region, buffer everything that would need the
    /// server.
    fn degraded_observe(&mut self, step: u32, pos: Point, heading: f64, speed: f64) {
        self.account_degraded_step();
        let cell = self.grid.cell_of(pos);
        if self.uplink_needed(step, pos, cell) {
            self.buffer(PendingOp::Sample { step, pos, heading, speed });
        }
        // Inside the installed region nothing can fire by the
        // safe-region invariant — except for OPT, whose "region" is the
        // pushed alarm set, monitored locally exactly as when steady.
        // The check runs even on buffered (cell-changed) samples: with
        // no server to evaluate the crossing now, skipping it would
        // record a boundary-spanning alarm one step late. The buffered
        // replay re-fires it server-side at this same step, so the
        // records agree (deliveries dedup).
        for id in self.local_opt_fires(pos) {
            if self.record_fire(id.0 as u32, step) {
                self.stats.client_fires += 1;
            }
            self.buffer(PendingOp::Notify { alarm: id.0 as u32 });
        }
    }

    /// Whether the current strategy state demands server contact for
    /// this sample.
    fn uplink_needed(&self, step: u32, pos: Point, cell: CellId) -> bool {
        match &self.state {
            State::Rect { region } => !region.is_some_and(|r| r.contains_point(pos)),
            State::Bitmap { region } => !region.as_ref().is_some_and(|r| r.contains(pos)),
            State::Opt { last_cell, .. } => *last_cell != Some(cell),
            State::SafePeriod { until } => step >= *until,
        }
    }

    /// OPT local containment pass: removes spatially satisfied alarms
    /// from the pushed set and returns the relevant hits.
    fn local_opt_fires(&mut self, pos: Point) -> Vec<AlarmId> {
        match &mut self.state {
            State::Opt { alarms, .. } => {
                let mut hits = Vec::new();
                alarms.retain(|a| {
                    if a.rect.contains_point_strict(pos) {
                        // A spatially satisfied alarm leaves the set
                        // whether or not it concerns this user.
                        if a.relevant {
                            hits.push(a.id);
                        }
                        false
                    } else {
                        true
                    }
                });
                hits
            }
            _ => Vec::new(),
        }
    }

    /// Records one firing unless the alarm already fired for this
    /// client. Returns whether the event was recorded.
    fn record_fire(&mut self, alarm: u32, step: u32) -> bool {
        if self.fired_alarms.insert(alarm) {
            self.fired.push(FiredEvent {
                subscriber: self.user,
                alarm: AlarmId(alarm as u64),
                step,
            });
            true
        } else {
            false
        }
    }

    /// The uplink for one sample: a plain `LocationUpdate` first, then
    /// — because the server may have processed a send whose response
    /// was lost — `Resync` retries under backoff. `Ok(None)` means the
    /// retry budget is exhausted (enter degraded mode).
    fn resilient_uplink(
        &mut self,
        step: u32,
        pos: Point,
        heading: f64,
        speed: f64,
    ) -> Result<Option<Vec<Response>>, TransportError> {
        let seq = self.next_seq();
        let first = Request::LocationUpdate {
            seq,
            x_fx: quantize_m(pos.x),
            y_fx: quantize_m(pos.y),
            motion: pack_motion(heading, speed),
        };
        match self.exchange_with_retry(first) {
            Ok(resps) => {
                self.note_recovery();
                return Ok(Some(resps));
            }
            Err(e) if e.is_transient() && self.resilience.is_some() => self.note_outage(),
            Err(e) => return Err(e),
        }
        let max_retries = self.resilience.as_ref().expect("checked above").policy.max_retries;
        for attempt in 0..max_retries {
            self.count_retry();
            let delay =
                self.resilience.as_mut().expect("checked above").backoff.delay(attempt);
            self.clock.sleep(delay);
            match self.resync_once(step, pos, heading, speed)? {
                Some(resps) => return Ok(Some(resps)),
                None => continue,
            }
        }
        Ok(None)
    }

    /// One `Resync` exchange for a (possibly buffered) sample.
    /// `Ok(None)` is a transient failure; fatal errors propagate.
    fn resync_once(
        &mut self,
        _step: u32,
        pos: Point,
        heading: f64,
        speed: f64,
    ) -> Result<Option<Vec<Response>>, TransportError> {
        let seq = self.next_seq();
        let req = Request::Resync {
            seq,
            x_fx: quantize_m(pos.x),
            y_fx: quantize_m(pos.y),
            motion: pack_motion(heading, speed),
            acked: self.counted_deliveries.len() as u32,
        };
        match self.exchange_with_retry(req) {
            Ok(resps) => {
                self.stats.resyncs += 1;
                if let Some(m) = &self.meter {
                    m.resyncs.inc();
                }
                self.note_recovery();
                Ok(Some(resps))
            }
            Err(e) if e.is_transient() => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// One notify exchange with the transient-retry ladder. Returns
    /// whether it was acknowledged (false = link down, go degraded).
    fn resilient_notify(&mut self, alarm: u32) -> Result<bool, TransportError> {
        let max_retries =
            self.resilience.as_ref().map_or(0, |r| r.policy.max_retries);
        let mut attempt = 0;
        loop {
            let seq = self.next_seq();
            match self.exchange_with_retry(Request::TriggerNotify { seq, alarm }) {
                Ok(resps) => {
                    if !matches!(resps.as_slice(), [Response::Ack { .. }]) {
                        return Err(TransportError::Protocol(
                            "trigger notify was not acknowledged",
                        ));
                    }
                    self.note_recovery();
                    return Ok(true);
                }
                Err(e) if e.is_transient() && self.resilience.is_some() => {
                    self.note_outage();
                    if attempt >= max_retries {
                        return Ok(false);
                    }
                    self.count_retry();
                    let delay = self
                        .resilience
                        .as_mut()
                        .expect("resilience checked above")
                        .backoff
                        .delay(attempt);
                    self.clock.sleep(delay);
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// One reconciliation probe: replays buffered operations in order,
    /// one single attempt each. `Ok(true)` when the backlog fully
    /// drained (back to steady), `Ok(false)` when the link is still
    /// down.
    fn try_reconcile(&mut self) -> Result<bool, TransportError> {
        let had_backlog = self.resilience.as_ref().is_some_and(|r| !r.pending.is_empty());
        while let Some(op) = self.resilience.as_ref().and_then(|r| r.pending.front().copied()) {
            let done = match op {
                PendingOp::Sample { step, pos, heading, speed } => {
                    match self.resync_once(step, pos, heading, speed)? {
                        Some(resps) => {
                            self.stats.uplinks += 1;
                            let cell = self.grid.cell_of(pos);
                            for resp in resps {
                                // Deliveries recovered here are
                                // attributed to the buffered sample's
                                // original step.
                                self.absorb(resp, step, cell)?;
                            }
                            true
                        }
                        None => false,
                    }
                }
                PendingOp::Notify { alarm } => {
                    let seq = self.next_seq();
                    match self.exchange_with_retry(Request::TriggerNotify { seq, alarm }) {
                        Ok(resps) => {
                            if !matches!(resps.as_slice(), [Response::Ack { .. }]) {
                                return Err(TransportError::Protocol(
                                    "trigger notify was not acknowledged",
                                ));
                            }
                            self.stats.notifies += 1;
                            true
                        }
                        Err(e) if e.is_transient() => false,
                        Err(e) => return Err(e),
                    }
                }
            };
            if !done {
                return Ok(false);
            }
            self.resilience
                .as_mut()
                .expect("resilience holds a pending op")
                .pending
                .pop_front();
        }
        if let Some(r) = self.resilience.as_mut() {
            r.degraded = false;
        }
        // An empty backlog proves nothing about the link; leave the
        // outage open until a real exchange succeeds.
        if had_backlog {
            self.note_recovery();
        }
        Ok(true)
    }

    /// Buffers one operation for reconciliation.
    fn buffer(&mut self, op: PendingOp) {
        match op {
            PendingOp::Sample { .. } => self.stats.buffered_samples += 1,
            PendingOp::Notify { .. } => self.stats.buffered_notifies += 1,
        }
        self.resilience
            .as_mut()
            .expect("buffering requires a resilience policy")
            .pending
            .push_back(op);
    }

    /// Declares the link down; the entering step counts as degraded.
    fn go_degraded(&mut self) {
        if let Some(r) = self.resilience.as_mut() {
            r.degraded = true;
        }
        self.account_degraded_step();
    }

    /// Adds one sample period to the degraded-time accounting.
    fn account_degraded_step(&mut self) {
        self.stats.degraded_steps += 1;
        let Some(r) = self.resilience.as_mut() else { return };
        r.degraded_acc_s += self.dt;
        if let Some(m) = &self.meter {
            while r.degraded_acc_s >= 1.0 {
                m.degraded_seconds.inc();
                r.degraded_acc_s -= 1.0;
            }
        }
    }

    /// Marks the start of an outage (first transient failure).
    fn note_outage(&mut self) {
        let now_ns = self.clock.now_ns();
        if let Some(r) = self.resilience.as_mut() {
            r.outage_started_ns.get_or_insert(now_ns);
        }
    }

    /// Marks recovery; records the outage duration into the reconnect
    /// RTT histogram.
    fn note_recovery(&mut self) {
        let now_ns = self.clock.now_ns();
        let Some(r) = self.resilience.as_mut() else { return };
        if let Some(started_ns) = r.outage_started_ns.take() {
            if let Some(m) = &self.meter {
                m.reconnect_rtt
                    .record_duration(Duration::from_nanos(now_ns.saturating_sub(started_ns)));
            }
        }
    }

    /// Counts one transient-failure retry.
    fn count_retry(&mut self) {
        self.stats.retries += 1;
        if let Some(m) = &self.meter {
            m.retries.inc();
        }
    }

    /// Applies one response to the client state. Deliveries are
    /// attributed to `step` and deduplicated by alarm id.
    fn absorb(&mut self, resp: Response, step: u32, cell: CellId) -> Result<(), TransportError> {
        match resp {
            Response::TriggerDelivery { alarm, .. } => {
                // The delivery cursor advances on every distinct
                // server delivery, even when the firing was already
                // known locally (OPT).
                self.counted_deliveries.insert(alarm);
                if self.record_fire(alarm, step) {
                    self.stats.deliveries += 1;
                } else {
                    self.stats.dup_deliveries += 1;
                }
            }
            Response::RectInstall { rect, .. } => {
                let region = Rect::new(
                    dequantize_m(rect[0]),
                    dequantize_m(rect[1]),
                    dequantize_m(rect[2]),
                    dequantize_m(rect[3]),
                )
                .map_err(|_| TransportError::Protocol("degenerate safe-region rectangle"))?;
                self.state = State::Rect { region: Some(region) };
                self.stats.region_installs += 1;
            }
            Response::BitmapInstall { cell: cell_word, bits, .. } => {
                let StrategySpec::Pbsr { height } = self.strategy else {
                    return Err(TransportError::Protocol("bitmap install for a non-PBSR client"));
                };
                let cell_rect = self.grid.cell_rect(self.cell_from_index(cell_word)?);
                let region = BitmapSafeRegion::from_wire_bits(
                    cell_rect,
                    PyramidConfig::three_by_three(height),
                    &bits,
                )
                .map_err(|_| TransportError::Protocol("malformed bitmap install"))?;
                self.state = State::Bitmap { region: Some(region) };
                self.stats.region_installs += 1;
            }
            Response::AlarmPush { alarms, .. } => {
                let set = alarms
                    .iter()
                    .map(|a: &PushedAlarm| {
                        Rect::new(
                            dequantize_m(a.rect[0]),
                            dequantize_m(a.rect[1]),
                            dequantize_m(a.rect[2]),
                            dequantize_m(a.rect[3]),
                        )
                        .map(|rect| LocalAlarm {
                            id: AlarmId(a.alarm as u64),
                            relevant: a.relevant,
                            rect,
                        })
                        .map_err(|_| TransportError::Protocol("degenerate pushed alarm"))
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                self.state = State::Opt { last_cell: Some(cell), alarms: set };
                self.stats.alarm_pushes += 1;
            }
            Response::SafePeriodGrant { period_ms } => {
                // Mirror the simulator: silent for floor(period / dt)
                // steps, at least one.
                let silent_steps = ((f64::from(period_ms) / 1_000.0) / self.dt).floor() as u32;
                self.state = State::SafePeriod { until: step + silent_steps.max(1) };
                self.stats.grants += 1;
            }
            Response::Ack { .. } => {
                // PBSR quick-update path: the installed bitmap stands.
            }
            Response::Overloaded { .. } => {
                return Err(TransportError::Protocol("overload leaked past the retry loop"));
            }
            Response::Stats { .. } => {
                return Err(TransportError::Protocol("stats reply to a location update"));
            }
            Response::Error { .. } => {
                return Err(TransportError::Protocol("server rejected a location update"));
            }
            Response::Batch { .. } => {
                return Err(TransportError::Protocol("batch reply to a per-request exchange"));
            }
            Response::Topology { .. } => {
                return Err(TransportError::Protocol("topology reply to a location update"));
            }
            Response::WrongOwner { .. } => {
                // exchange_with_retry converts bounces into
                // TransportError::WrongOwner before absorb ever runs.
                return Err(TransportError::Protocol("wrong-owner bounce leaked past routing"));
            }
            Response::SessionState { .. } => {
                return Err(TransportError::Protocol("session export reply to a location update"));
            }
        }
        Ok(())
    }

    fn cell_from_index(&self, index: u32) -> Result<CellId, TransportError> {
        let cols = self.grid.cols();
        let cell = CellId { col: index % cols, row: index / cols };
        if cell.row >= self.grid.rows() {
            return Err(TransportError::Protocol("cell index outside the grid"));
        }
        Ok(cell)
    }

    fn next_seq(&mut self) -> u32 {
        self.seq = (self.seq + 1) & crate::wire::SEQ_MASK;
        self.seq
    }

    /// One request/response exchange with byte accounting.
    fn exchange(&mut self, req: Request) -> Result<Vec<Response>, TransportError> {
        self.stats.bytes_up += req.encoded_len() as u64;
        let resps = self.transport.request(req)?;
        self.stats.bytes_down += resps.iter().map(|r| r.encoded_len() as u64).sum::<u64>();
        Ok(resps)
    }

    /// Exchange that retries `Overloaded` bounces, yielding between
    /// attempts so the shard worker can drain its queue. A federation
    /// `WrongOwner` bounce is **not** retried: resending to the same
    /// server can never succeed, so it surfaces immediately as the
    /// non-transient [`TransportError::WrongOwner`] — the federation
    /// router catches it and re-routes; a plain client propagates it.
    fn exchange_with_retry(&mut self, req: Request) -> Result<Vec<Response>, TransportError> {
        for _ in 0..MAX_OVERLOAD_RETRIES {
            let resps = self.exchange(req.clone())?;
            if matches!(resps.last(), Some(Response::Overloaded { .. })) {
                self.stats.overload_retries += 1;
                std::thread::yield_now();
                continue;
            }
            if let Some(Response::WrongOwner { owner, epoch, .. }) = resps.last() {
                let (owner, epoch) = (*owner, *epoch);
                self.stats.redirects += 1;
                if let Some(m) = &self.meter {
                    m.redirects.inc();
                }
                return Err(TransportError::WrongOwner { owner, epoch });
            }
            return Ok(resps);
        }
        Err(TransportError::Protocol("server stayed overloaded"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_under_a_seed() {
        let mut a = Backoff::new(Duration::from_millis(1), Duration::from_millis(100), 7);
        let mut b = Backoff::new(Duration::from_millis(1), Duration::from_millis(100), 7);
        let sa: Vec<Duration> = (0..12).map(|i| a.delay(i)).collect();
        let sb: Vec<Duration> = (0..12).map(|i| b.delay(i)).collect();
        assert_eq!(sa, sb, "same seed must give the same schedule");
        let mut c = Backoff::new(Duration::from_millis(1), Duration::from_millis(100), 8);
        let sc: Vec<Duration> = (0..12).map(|i| c.delay(i)).collect();
        assert_ne!(sa, sc, "different seeds must jitter differently");
    }

    #[test]
    fn backoff_is_capped_and_jittered_within_the_envelope() {
        let base = Duration::from_millis(1);
        let cap = Duration::from_millis(64);
        let mut b = Backoff::new(base, cap, 42);
        for attempt in 0..40 {
            let exp = (base * 2u32.saturating_pow(attempt.min(20))).min(cap);
            let d = b.delay(attempt);
            assert!(d <= exp, "attempt {attempt}: {d:?} above envelope {exp:?}");
            assert!(d >= exp / 2, "attempt {attempt}: {d:?} below half-envelope {exp:?}");
            assert!(d <= cap, "attempt {attempt}: {d:?} exceeds the cap");
        }
        // Attempt numbers beyond the shift width must not panic or
        // overflow past the cap.
        assert!(b.delay(200) <= cap);
    }

    #[test]
    fn backoff_grows_exponentially_before_the_cap() {
        let mut b = Backoff::new(Duration::from_millis(1), Duration::from_secs(3600), 1);
        // Lower bounds double per attempt: delay(n) >= 2^n * base / 2.
        for attempt in 0..10u32 {
            let floor = Duration::from_micros(500) * 2u32.pow(attempt);
            assert!(b.delay(attempt) >= floor);
        }
    }

    #[test]
    fn zero_base_schedules_zero_delay() {
        let mut b = Backoff::new(Duration::ZERO, Duration::from_secs(1), 3);
        assert_eq!(b.delay(0), Duration::ZERO);
        assert_eq!(b.delay(63), Duration::ZERO);
    }
}
