//! Client-side strategy mirrors.
//!
//! Each [`Client`] owns one transport connection and reproduces the
//! client half of a `sa-sim` strategy over the wire protocol:
//!
//! * **MWPSR** — silent while inside the installed rectangle, uplink on
//!   exit, install the rectangle the server answers with.
//! * **PBSR** — silent while the pyramid bitmap grants the position,
//!   uplink on a blocked subcell or base-cell exit; a bare `Ack` means
//!   the current bitmap is still the right one (§4.2 quick update).
//! * **OPT** — uplink only on base-cell change; between uplinks the
//!   client checks its pushed alarm set locally and notifies the server
//!   of client-detected firings.
//! * **Safe period** — silent until the granted period expires.
//!
//! Every alarm firing observed by the client — delivered by the server
//! or detected locally — is recorded as a [`FiredEvent`] with the step
//! it happened at, so a replay can be diffed against the simulator's
//! ground truth.

use crate::transport::{Transport, TransportError};
use crate::wire::{
    dequantize_m, pack_motion, quantize_m, PushedAlarm, Request, Response, StrategySpec,
};
use sa_alarms::{AlarmId, SubscriberId};
use sa_core::{BitmapSafeRegion, PyramidConfig, SafeRegion as _};
use sa_geometry::{CellId, Grid, Point, Rect};
use sa_sim::FiredEvent;

/// How many times an `Overloaded` bounce is retried before giving up.
const MAX_OVERLOAD_RETRIES: u32 = 10_000;

/// Per-client message counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ClientStats {
    /// Location-update uplinks that were accepted (retries not counted).
    pub uplinks: u64,
    /// Client-detected firings notified to the server (OPT only).
    pub notifies: u64,
    /// Safe-region installs received (rectangle or bitmap).
    pub region_installs: u64,
    /// Alarm-set pushes received (OPT only).
    pub alarm_pushes: u64,
    /// Safe-period grants received.
    pub grants: u64,
    /// Trigger deliveries received from the server.
    pub deliveries: u64,
    /// Firings the client detected locally (OPT only).
    pub client_fires: u64,
    /// `Overloaded` bounces that were retried.
    pub overload_retries: u64,
    /// Encoded request bytes sent.
    pub bytes_up: u64,
    /// Encoded response bytes received.
    pub bytes_down: u64,
}

/// An alarm the server pushed for local monitoring (OPT).
#[derive(Debug, Clone, Copy)]
struct LocalAlarm {
    id: AlarmId,
    relevant: bool,
    rect: Rect,
}

#[derive(Debug)]
enum State {
    Rect { region: Option<Rect> },
    Bitmap { region: Option<BitmapSafeRegion> },
    Opt { last_cell: Option<CellId>, alarms: Vec<LocalAlarm> },
    SafePeriod { until: u32 },
}

/// One simulated mobile client bound to a strategy and a transport.
pub struct Client<T: Transport> {
    transport: T,
    user: SubscriberId,
    strategy: StrategySpec,
    grid: Grid,
    /// Simulation step length in seconds (converts safe periods to
    /// silent steps exactly like the simulator).
    dt: f64,
    state: State,
    seq: u32,
    fired: Vec<FiredEvent>,
    stats: ClientStats,
}

impl<T: Transport> Client<T> {
    /// Performs the `Hello` handshake and returns a ready client.
    ///
    /// # Errors
    ///
    /// Fails when the handshake cannot be exchanged or is rejected.
    pub fn connect(
        mut transport: T,
        user: SubscriberId,
        strategy: StrategySpec,
        grid: Grid,
        dt: f64,
    ) -> Result<Client<T>, TransportError> {
        assert!(dt > 0.0, "sample period must be positive");
        let hello = Request::Hello { seq: 0, user: user.0, strategy };
        let mut stats = ClientStats::default();
        stats.bytes_up += hello.encoded_len() as u64;
        let resps = transport.request(hello)?;
        stats.bytes_down += resps.iter().map(|r| r.encoded_len() as u64).sum::<u64>();
        if !matches!(resps.as_slice(), [Response::Ack { .. }]) {
            return Err(TransportError::Protocol("hello was not acknowledged"));
        }
        let state = match strategy {
            StrategySpec::Mwpsr => State::Rect { region: None },
            StrategySpec::Pbsr { .. } => State::Bitmap { region: None },
            StrategySpec::Opt => State::Opt { last_cell: None, alarms: Vec::new() },
            StrategySpec::SafePeriod => State::SafePeriod { until: 0 },
        };
        Ok(Client { transport, user, strategy, grid, dt, state, seq: 0, fired: Vec::new(), stats })
    }

    /// The subscriber this client simulates.
    pub fn user(&self) -> SubscriberId {
        self.user
    }

    /// The strategy this client runs.
    pub fn strategy(&self) -> StrategySpec {
        self.strategy
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ClientStats {
        self.stats
    }

    /// Every firing observed so far, in observation order.
    pub fn fired(&self) -> &[FiredEvent] {
        &self.fired
    }

    /// Drains the recorded firings.
    pub fn take_fired(&mut self) -> Vec<FiredEvent> {
        std::mem::take(&mut self.fired)
    }

    /// Feeds one position sample; exchanges messages with the server
    /// exactly when the strategy requires it.
    ///
    /// # Errors
    ///
    /// Fails when the transport breaks or the server answers outside the
    /// protocol.
    pub fn observe(
        &mut self,
        step: u32,
        pos: Point,
        heading: f64,
        speed: f64,
    ) -> Result<(), TransportError> {
        let cell = self.grid.cell_of(pos);
        let uplink_needed = match &self.state {
            State::Rect { region } => !region.is_some_and(|r| r.contains_point(pos)),
            State::Bitmap { region } => !region.as_ref().is_some_and(|r| r.contains(pos)),
            State::Opt { last_cell, .. } => *last_cell != Some(cell),
            State::SafePeriod { until } => step >= *until,
        };

        if !uplink_needed {
            // OPT monitors its pushed set locally between cell changes.
            let locally_fired = match &mut self.state {
                State::Opt { alarms, .. } => {
                    let mut hits = Vec::new();
                    alarms.retain(|a| {
                        if a.rect.contains_point_strict(pos) {
                            // A spatially satisfied alarm leaves the set
                            // whether or not it concerns this user.
                            if a.relevant {
                                hits.push(a.id);
                            }
                            false
                        } else {
                            true
                        }
                    });
                    hits
                }
                _ => Vec::new(),
            };
            for id in locally_fired {
                self.fired.push(FiredEvent { subscriber: self.user, alarm: id, step });
                self.stats.client_fires += 1;
                let seq = self.next_seq();
                let resps = self.exchange(Request::TriggerNotify { seq, alarm: id.0 as u32 })?;
                if !matches!(resps.as_slice(), [Response::Ack { .. }]) {
                    return Err(TransportError::Protocol("trigger notify was not acknowledged"));
                }
                self.stats.notifies += 1;
            }
            return Ok(());
        }

        let seq = self.next_seq();
        let req = Request::LocationUpdate {
            seq,
            x_fx: quantize_m(pos.x),
            y_fx: quantize_m(pos.y),
            motion: pack_motion(heading, speed),
        };
        let resps = self.exchange_with_retry(req)?;
        self.stats.uplinks += 1;
        for resp in resps {
            self.absorb(resp, step, cell)?;
        }
        Ok(())
    }

    /// Applies one response to the client state.
    fn absorb(&mut self, resp: Response, step: u32, cell: CellId) -> Result<(), TransportError> {
        match resp {
            Response::TriggerDelivery { alarm, .. } => {
                self.fired.push(FiredEvent {
                    subscriber: self.user,
                    alarm: AlarmId(alarm as u64),
                    step,
                });
                self.stats.deliveries += 1;
            }
            Response::RectInstall { rect, .. } => {
                let region = Rect::new(
                    dequantize_m(rect[0]),
                    dequantize_m(rect[1]),
                    dequantize_m(rect[2]),
                    dequantize_m(rect[3]),
                )
                .map_err(|_| TransportError::Protocol("degenerate safe-region rectangle"))?;
                self.state = State::Rect { region: Some(region) };
                self.stats.region_installs += 1;
            }
            Response::BitmapInstall { cell: cell_word, bits, .. } => {
                let StrategySpec::Pbsr { height } = self.strategy else {
                    return Err(TransportError::Protocol("bitmap install for a non-PBSR client"));
                };
                let cell_rect = self.grid.cell_rect(self.cell_from_index(cell_word)?);
                let region = BitmapSafeRegion::from_wire_bits(
                    cell_rect,
                    PyramidConfig::three_by_three(height),
                    &bits,
                )
                .map_err(|_| TransportError::Protocol("malformed bitmap install"))?;
                self.state = State::Bitmap { region: Some(region) };
                self.stats.region_installs += 1;
            }
            Response::AlarmPush { alarms, .. } => {
                let set = alarms
                    .iter()
                    .map(|a: &PushedAlarm| {
                        Rect::new(
                            dequantize_m(a.rect[0]),
                            dequantize_m(a.rect[1]),
                            dequantize_m(a.rect[2]),
                            dequantize_m(a.rect[3]),
                        )
                        .map(|rect| LocalAlarm {
                            id: AlarmId(a.alarm as u64),
                            relevant: a.relevant,
                            rect,
                        })
                        .map_err(|_| TransportError::Protocol("degenerate pushed alarm"))
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                self.state = State::Opt { last_cell: Some(cell), alarms: set };
                self.stats.alarm_pushes += 1;
            }
            Response::SafePeriodGrant { period_ms } => {
                // Mirror the simulator: silent for floor(period / dt)
                // steps, at least one.
                let silent_steps = ((f64::from(period_ms) / 1_000.0) / self.dt).floor() as u32;
                self.state = State::SafePeriod { until: step + silent_steps.max(1) };
                self.stats.grants += 1;
            }
            Response::Ack { .. } => {
                // PBSR quick-update path: the installed bitmap stands.
            }
            Response::Overloaded { .. } => {
                return Err(TransportError::Protocol("overload leaked past the retry loop"));
            }
            Response::Stats { .. } => {
                return Err(TransportError::Protocol("stats reply to a location update"));
            }
            Response::Error { .. } => {
                return Err(TransportError::Protocol("server rejected a location update"));
            }
        }
        Ok(())
    }

    fn cell_from_index(&self, index: u32) -> Result<CellId, TransportError> {
        let cols = self.grid.cols();
        let cell = CellId { col: index % cols, row: index / cols };
        if cell.row >= self.grid.rows() {
            return Err(TransportError::Protocol("cell index outside the grid"));
        }
        Ok(cell)
    }

    fn next_seq(&mut self) -> u32 {
        self.seq = (self.seq + 1) & crate::wire::SEQ_MASK;
        self.seq
    }

    /// One request/response exchange with byte accounting.
    fn exchange(&mut self, req: Request) -> Result<Vec<Response>, TransportError> {
        self.stats.bytes_up += req.encoded_len() as u64;
        let resps = self.transport.request(req)?;
        self.stats.bytes_down += resps.iter().map(|r| r.encoded_len() as u64).sum::<u64>();
        Ok(resps)
    }

    /// Exchange that retries `Overloaded` bounces, yielding between
    /// attempts so the shard worker can drain its queue.
    fn exchange_with_retry(&mut self, req: Request) -> Result<Vec<Response>, TransportError> {
        for _ in 0..MAX_OVERLOAD_RETRIES {
            let resps = self.exchange(req.clone())?;
            if matches!(resps.last(), Some(Response::Overloaded { .. })) {
                self.stats.overload_retries += 1;
                std::thread::yield_now();
                continue;
            }
            return Ok(resps);
        }
        Err(TransportError::Protocol("server stayed overloaded"))
    }
}
