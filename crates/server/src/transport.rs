//! Two transports behind one trait.
//!
//! [`InProcTransport`] calls the server directly but still round-trips
//! every message through the wire codec, so in-process tests exercise
//! exactly the bytes a socket would carry. [`TcpTransport`] speaks
//! length-prefixed frames over a loopback [`std::net::TcpStream`] to a
//! [`TcpServerHandle`] accept loop.
//!
//! A request's response sequence is zero or more
//! [`Response::TriggerDelivery`] frames followed by exactly one terminal
//! frame; [`Transport::request`] reads until the terminal and returns
//! the whole sequence.

use crate::server::Server;
use crate::wire::{frame, read_frame, write_frame, Request, Response, WireError};
use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Failure while exchanging one request.
#[derive(Debug)]
pub enum TransportError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// A frame decoded to garbage.
    Wire(WireError),
    /// The peer closed the connection mid-exchange.
    Closed,
    /// The exchange was sent but no acknowledgement arrived in time —
    /// either leg may have been lost, so the sender must assume the
    /// server *may* have processed the request (retry with
    /// [`crate::wire::Request::Resync`], not a blind resend).
    TimedOut,
    /// The peer answered with something the protocol does not allow
    /// here (e.g. an `Error` response to a well-formed update).
    Protocol(&'static str),
    /// A federation server bounced the request with
    /// [`Response::WrongOwner`]: the
    /// position's cell belongs to `owner` under map epoch `epoch`.
    /// Deliberately **not** transient — backing off and resending to the
    /// same server can never succeed. The cure is re-routing (refresh
    /// the topology, hand the session off, send to `owner`), which the
    /// federation router does before this error ever escapes; a plain
    /// client surfaces it instead of burning its retry budget.
    WrongOwner {
        /// The federation server id that owns the cell.
        owner: u32,
        /// The bouncing server's map epoch.
        epoch: u64,
    },
}

impl TransportError {
    /// True for failures a retry can plausibly cure (lost or timed-out
    /// exchanges, broken links). Wire garbage and protocol violations
    /// are deterministic: retrying reproduces them, so the client
    /// escalates instead of looping.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            TransportError::Io(_) | TransportError::Closed | TransportError::TimedOut
        )
    }
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Io(e) => write!(f, "transport i/o error: {e}"),
            TransportError::Wire(e) => write!(f, "wire error: {e}"),
            TransportError::Closed => write!(f, "connection closed mid-exchange"),
            TransportError::TimedOut => write!(f, "exchange timed out awaiting a response"),
            TransportError::Protocol(what) => write!(f, "protocol violation: {what}"),
            TransportError::WrongOwner { owner, epoch } => {
                write!(f, "wrong owner: cell belongs to server {owner} at epoch {epoch}")
            }
        }
    }
}

impl std::error::Error for TransportError {}

impl From<std::io::Error> for TransportError {
    fn from(e: std::io::Error) -> TransportError {
        TransportError::Io(e)
    }
}

impl From<WireError> for TransportError {
    fn from(e: WireError) -> TransportError {
        TransportError::Wire(e)
    }
}

/// A client's view of the server: send one request, receive its full
/// response sequence (trigger deliveries, then one terminal response).
pub trait Transport {
    /// Exchanges one request.
    fn request(&mut self, req: Request) -> Result<Vec<Response>, TransportError>;
}

/// In-process transport: direct calls, but every request and response
/// passes through encode→decode so the codec is always on the path.
pub struct InProcTransport {
    server: Arc<Server>,
    session: u32,
}

impl InProcTransport {
    /// Opens a fresh session on `server`.
    pub fn connect(server: Arc<Server>) -> InProcTransport {
        let session = server.open_session();
        InProcTransport { server, session }
    }

    /// The session this transport speaks on — batched drivers need it to
    /// address [`crate::wire::Request::Batch`] entries at this client.
    pub fn session(&self) -> u32 {
        self.session
    }
}

impl Transport for InProcTransport {
    fn request(&mut self, req: Request) -> Result<Vec<Response>, TransportError> {
        // Round-trip the request through the codec before the server
        // sees it — the in-proc path must not skip quantization.
        let clock = Arc::clone(self.server.clock());
        let decode_started_ns = clock.now_ns();
        let req = Request::decode(&req.encode())?;
        self.server
            .metrics()
            .wire_decode
            .record_duration(clock.elapsed_since(decode_started_ns));
        let mut out = Vec::new();
        for resp in self.server.handle(self.session, req) {
            let encode_started_ns = clock.now_ns();
            let bytes = resp.encode();
            self.server
                .metrics()
                .wire_encode
                .record_duration(clock.elapsed_since(encode_started_ns));
            let resp = Response::decode(&bytes)?;
            let terminal = resp.is_terminal();
            out.push(resp);
            if terminal {
                return Ok(out);
            }
        }
        Err(TransportError::Closed)
    }
}

/// A running TCP accept loop serving one [`Server`] on loopback.
pub struct TcpServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl TcpServerHandle {
    /// Binds `127.0.0.1:0` and starts accepting connections; each
    /// connection gets its own session and handler thread.
    pub fn serve(server: Arc<Server>) -> std::io::Result<TcpServerHandle> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let accept_thread = std::thread::Builder::new()
            .name("sa-accept".into())
            .spawn(move || {
                for stream in listener.incoming() {
                    if stop_flag.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let server = Arc::clone(&server);
                    // Detached on purpose: a connection thread lives
                    // exactly as long as its client keeps the socket
                    // open, and joining it here would deadlock a
                    // shutdown racing a still-connected client.
                    std::thread::Builder::new()
                        .name("sa-conn".into())
                        .spawn(move || serve_connection(server, stream))
                        .expect("spawn connection thread");
                }
            })
            .expect("spawn accept thread");
        Ok(TcpServerHandle { addr, stop, accept_thread: Some(accept_thread) })
    }

    /// The bound loopback address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting and joins the accept loop. Connections already
    /// open finish when their client disconnects.
    pub fn shutdown(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for TcpServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Per-connection loop: one session, frames in, frames out, until the
/// client disconnects or a frame fails to parse.
fn serve_connection(server: Arc<Server>, mut stream: TcpStream) {
    let session = server.open_session();
    stream.set_nodelay(true).ok();
    let clock = Arc::clone(server.clock());
    while let Ok(Some(body)) = read_frame(&mut stream) {
        let decode_started_ns = clock.now_ns();
        let decoded = Request::decode(&body);
        server.metrics().wire_decode.record_duration(clock.elapsed_since(decode_started_ns));
        let Ok(req) = decoded else { break };
        let mut failed = false;
        for resp in server.handle(session, req) {
            let encode_started_ns = clock.now_ns();
            let bytes = resp.encode();
            server.metrics().wire_encode.record_duration(clock.elapsed_since(encode_started_ns));
            if write_frame(&mut stream, &bytes).is_err() {
                failed = true;
                break;
            }
        }
        if failed || stream.flush().is_err() {
            break;
        }
    }
}

/// Loopback TCP client endpoint.
pub struct TcpTransport {
    stream: TcpStream,
}

impl TcpTransport {
    /// Connects to a [`TcpServerHandle`]'s address.
    pub fn connect(addr: SocketAddr) -> std::io::Result<TcpTransport> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(TcpTransport { stream })
    }
}

impl Transport for TcpTransport {
    fn request(&mut self, req: Request) -> Result<Vec<Response>, TransportError> {
        self.stream.write_all(&frame(&req.encode()))?;
        self.stream.flush()?;
        let mut out = Vec::new();
        loop {
            let body = read_frame(&mut self.stream)?.ok_or(TransportError::Closed)?;
            let resp = Response::decode(&body)?;
            let terminal = resp.is_terminal();
            out.push(resp);
            if terminal {
                return Ok(out);
            }
        }
    }
}

/// A TCP endpoint that survives server restarts: on a transport error it
/// tears the socket down, and the next request transparently re-dials
/// and replays the cached `Hello` so the fresh connection's session is
/// registered before the request goes out.
///
/// Pairs with the client's [`crate::client::ResiliencePolicy`] machine:
/// the client backs off and re-issues the failed request, and this
/// transport turns that retry into dial → `Hello` → request. One
/// caveat is inherited from the per-connection session model: the new
/// session starts with an empty delivery log, so redeliveries recovered
/// by `Resync` can only cover losses *after* the reconnect (see
/// `DESIGN.md` S18).
pub struct ReconnectingTcpTransport {
    addr: SocketAddr,
    stream: Option<TcpStream>,
    hello: Option<Request>,
    reconnects: Arc<std::sync::atomic::AtomicU64>,
}

impl ReconnectingTcpTransport {
    /// Connects to `addr` now; later reconnects are lazy (on the next
    /// request after a failure).
    pub fn connect(addr: SocketAddr) -> std::io::Result<ReconnectingTcpTransport> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(ReconnectingTcpTransport {
            addr,
            stream: Some(stream),
            hello: None,
            reconnects: Arc::new(std::sync::atomic::AtomicU64::new(0)),
        })
    }

    /// A shareable handle onto the reconnect counter (dials after the
    /// initial connect).
    pub fn reconnect_counter(&self) -> Arc<std::sync::atomic::AtomicU64> {
        Arc::clone(&self.reconnects)
    }

    /// Exchanges one already-framed request on `stream` and reads its
    /// response sequence.
    fn exchange(stream: &mut TcpStream, req: &Request) -> Result<Vec<Response>, TransportError> {
        stream.write_all(&frame(&req.encode()))?;
        stream.flush()?;
        let mut out = Vec::new();
        loop {
            let body = read_frame(stream)?.ok_or(TransportError::Closed)?;
            let resp = Response::decode(&body)?;
            let terminal = resp.is_terminal();
            out.push(resp);
            if terminal {
                return Ok(out);
            }
        }
    }

    /// Returns a live socket, dialing and replaying the cached `Hello`
    /// when the previous one died. `dialing_for_hello` suppresses the
    /// replay when the request about to be sent is itself a `Hello`.
    fn ensure_connected(
        &mut self,
        dialing_for_hello: bool,
    ) -> Result<&mut TcpStream, TransportError> {
        if self.stream.is_none() {
            let stream = TcpStream::connect(self.addr)?;
            stream.set_nodelay(true)?;
            self.stream = Some(stream);
            self.reconnects.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            if !dialing_for_hello {
                if let Some(hello) = self.hello.clone() {
                    let stream = self.stream.as_mut().expect("just connected");
                    match Self::exchange(stream, &hello) {
                        // The replay must actually re-register the
                        // session: an `Error`/`Overloaded` terminal
                        // means the fresh connection has no session, so
                        // the reconnect failed — surface that here
                        // rather than letting the next request die with
                        // a confusing NO_SESSION.
                        Ok(responses)
                            if matches!(responses.last(), Some(Response::Ack { .. })) => {}
                        Ok(_) => {
                            self.stream = None;
                            return Err(TransportError::Protocol(
                                "hello replay was not acknowledged",
                            ));
                        }
                        Err(e) => {
                            self.stream = None;
                            return Err(e);
                        }
                    }
                }
            }
        }
        Ok(self.stream.as_mut().expect("connected above"))
    }
}

impl Transport for ReconnectingTcpTransport {
    fn request(&mut self, req: Request) -> Result<Vec<Response>, TransportError> {
        let is_hello = matches!(req, Request::Hello { .. });
        if is_hello {
            self.hello = Some(req.clone());
        }
        let stream = self.ensure_connected(is_hello)?;
        match Self::exchange(stream, &req) {
            Ok(out) => Ok(out),
            Err(e) => {
                // Any failed exchange leaves the stream position
                // unknown — a decode error mid-response-sequence
                // desynchronizes the framing just as surely as a broken
                // socket — so always drop it; `is_transient` only tells
                // the caller whether a retry is worth attempting.
                self.stream = None;
                Err(e)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServerConfig;
    use crate::wire::StrategySpec;
    use sa_geometry::{Grid, Rect};

    fn tiny_server() -> Arc<Server> {
        let universe = Rect::new(0.0, 0.0, 3_000.0, 3_000.0).unwrap();
        let grid = Grid::new(universe, 1_000.0).unwrap();
        Server::start(grid, Vec::new(), 30.0, ServerConfig::default())
    }

    fn hello(seq: u32) -> Request {
        Request::Hello { seq, user: 7, strategy: StrategySpec::Mwpsr }
    }

    #[test]
    fn in_proc_round_trips_through_the_codec() {
        let server = tiny_server();
        let mut t = InProcTransport::connect(Arc::clone(&server));
        let resp = t.request(hello(1)).unwrap();
        assert_eq!(resp, vec![Response::Ack { seq: 1 }]);
        let resp = t.request(Request::Bye { seq: 2 }).unwrap();
        assert_eq!(resp, vec![Response::Ack { seq: 2 }]);
        server.shutdown();
    }

    #[test]
    fn tcp_serves_frames_on_loopback() {
        let server = tiny_server();
        let mut handle = TcpServerHandle::serve(Arc::clone(&server)).unwrap();
        let mut a = TcpTransport::connect(handle.addr()).unwrap();
        let mut b = TcpTransport::connect(handle.addr()).unwrap();
        assert_eq!(a.request(hello(1)).unwrap(), vec![Response::Ack { seq: 1 }]);
        assert_eq!(b.request(hello(9)).unwrap(), vec![Response::Ack { seq: 9 }]);
        // Sessions are per-connection: both clients said Hello for user 7
        // but on distinct sessions, so each Bye only tears down its own.
        assert_eq!(a.request(Request::Bye { seq: 2 }).unwrap(), vec![Response::Ack { seq: 2 }]);
        assert_eq!(b.request(Request::Bye { seq: 10 }).unwrap(), vec![Response::Ack { seq: 10 }]);
        handle.shutdown();
        server.shutdown();
    }

    #[test]
    fn wrong_owner_is_not_transient() {
        assert!(!TransportError::WrongOwner { owner: 1, epoch: 2 }.is_transient());
        assert!(TransportError::TimedOut.is_transient());
    }

    #[test]
    fn reconnecting_transport_drops_the_stream_on_decode_garbage() {
        // First connection answers the Hello with Ack, then answers the
        // next request with an undecodable frame; the second connection
        // (the redial) acks the replayed Hello and the retried request.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let peer = std::thread::spawn(move || {
            let (mut first, _) = listener.accept().unwrap();
            let _ = read_frame(&mut first).unwrap();
            write_frame(&mut first, &Response::Ack { seq: 1 }.encode()).unwrap();
            let _ = read_frame(&mut first).unwrap();
            // A framing-valid 2-byte body: too short to even hold the
            // response head word, so decode fails with Truncated.
            first.write_all(&2u32.to_be_bytes()).unwrap();
            first.write_all(&[0xff, 0xff]).unwrap();
            // Keep `first` open: a desynchronized-but-live stream is the
            // case where caching the socket would read stale bytes.
            let (mut second, _) = listener.accept().unwrap();
            let _ = read_frame(&mut second).unwrap(); // replayed Hello
            write_frame(&mut second, &Response::Ack { seq: 1 }.encode()).unwrap();
            let _ = read_frame(&mut second).unwrap(); // retried Stats
            write_frame(&mut second, &Response::Ack { seq: 2 }.encode()).unwrap();
            drop(first);
        });

        let mut t = ReconnectingTcpTransport::connect(addr).unwrap();
        let reconnects = t.reconnect_counter();
        assert_eq!(t.request(hello(1)).unwrap(), vec![Response::Ack { seq: 1 }]);
        let err = t.request(Request::Stats { seq: 2 }).unwrap_err();
        assert!(matches!(err, TransportError::Wire(_)), "got {err}");
        // A Wire error is not transient, but the poisoned socket must
        // still be gone: the next request redials instead of reading
        // from the middle of the old stream.
        assert_eq!(t.request(Request::Stats { seq: 2 }).unwrap(), vec![Response::Ack { seq: 2 }]);
        assert_eq!(reconnects.load(std::sync::atomic::Ordering::Relaxed), 1);
        peer.join().unwrap();
    }

    #[test]
    fn rejected_hello_replay_fails_the_reconnect() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let peer = std::thread::spawn(move || {
            // Connection 1: Hello → Ack, then close (forcing a redial).
            let (mut first, _) = listener.accept().unwrap();
            let _ = read_frame(&mut first).unwrap();
            write_frame(&mut first, &Response::Ack { seq: 1 }.encode()).unwrap();
            drop(first);
            // Connection 2: the replayed Hello is rejected.
            let (mut second, _) = listener.accept().unwrap();
            let _ = read_frame(&mut second).unwrap();
            write_frame(&mut second, &Response::Error { seq: 1, code: 99 }.encode()).unwrap();
            drop(second);
            // Connection 3: the replay succeeds, then the request does.
            let (mut third, _) = listener.accept().unwrap();
            let _ = read_frame(&mut third).unwrap();
            write_frame(&mut third, &Response::Ack { seq: 1 }.encode()).unwrap();
            let _ = read_frame(&mut third).unwrap();
            write_frame(&mut third, &Response::Ack { seq: 2 }.encode()).unwrap();
        });

        let mut t = ReconnectingTcpTransport::connect(addr).unwrap();
        assert_eq!(t.request(hello(1)).unwrap(), vec![Response::Ack { seq: 1 }]);
        // Connection 1 is gone: this request fails transiently.
        assert!(t.request(Request::Stats { seq: 2 }).unwrap_err().is_transient());
        // The retry dials connection 2, whose Hello replay is bounced —
        // that must surface as a failed reconnect, not as a later
        // NO_SESSION error on the request.
        let err = t.request(Request::Stats { seq: 2 }).unwrap_err();
        assert!(
            matches!(err, TransportError::Protocol("hello replay was not acknowledged")),
            "got {err}"
        );
        // And the bounced stream was dropped: the next retry redials.
        assert_eq!(t.request(Request::Stats { seq: 2 }).unwrap(), vec![Response::Ack { seq: 2 }]);
        peer.join().unwrap();
    }

    #[test]
    fn location_update_without_hello_is_an_error() {
        let server = tiny_server();
        let mut t = InProcTransport::connect(Arc::clone(&server));
        let resp = t
            .request(Request::LocationUpdate { seq: 3, x_fx: 0, y_fx: 0, motion: 0 })
            .unwrap();
        assert!(matches!(resp.as_slice(), [Response::Error { seq: 3, .. }]));
        server.shutdown();
    }
}
